"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` works on minimal environments that lack the
``wheel`` package (pip then falls back to the legacy ``setup.py develop``
editable path).
"""

from setuptools import setup

setup()
