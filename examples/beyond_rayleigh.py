"""Beyond Rayleigh: the optimum gap and general fading families.

Two questions the paper leaves open (Section 8), answered empirically
with the library's analysis layer:

1. *Is the Theorem-2 factor really O(log* n), or constant?*  We compute
   both optima numerically — the non-fading one by local search, the
   Rayleigh one by gradient ascent on the exact Theorem-1 objective —
   and print the measured ratio next to log* n.

2. *Do the guarantees survive other fading models?*  Nakagami-m and
   Rician-K both contain Rayleigh (m=1, K=0) and converge to the
   non-fading model as their parameter grows.  We replay one greedy
   schedule across the whole family and watch the retention climb from
   the Rayleigh value towards 1 — Rayleigh is the conservative case.

Run:  python examples/beyond_rayleigh.py
"""

import numpy as np

from repro import (
    NakagamiFading,
    Network,
    RicianFading,
    SINRInstance,
    UniformPower,
    expected_successes_with_model,
    greedy_capacity,
    log_star,
    measured_optimum_gap,
    paper_random_network,
    rayleigh_expected_binary,
)

BETA, ALPHA, NOISE = 2.5, 2.2, 4e-7


def main() -> None:
    # --- 1. the optimum gap --------------------------------------------------
    print("Rayleigh optimum vs non-fading optimum (Theorem 2 bounds the")
    print("ratio by O(log* n); Section 8 conjectures a constant):\n")
    print("   n  log*n  OPT^nf   OPT^R   ratio")
    for n in (20, 40, 80):
        area = 1000.0 * (n / 100.0) ** 0.5  # hold density at Figure-1 level
        s, r = paper_random_network(n, area=area, rng=n)
        inst = SINRInstance.from_network(Network(s, r), UniformPower(2.0), ALPHA, NOISE)
        gap = measured_optimum_gap(inst, BETA, rng=n + 1, restarts=4)
        print(f"{n:4d}  {log_star(n):5d}  {gap.nonfading_value:6d}  "
              f"{gap.rayleigh_value:6.2f}  {gap.ratio:6.3f}")
    print("\nThe ratio sits *below 1* here: with interference dominating,")
    print("fading strictly hurts even the best probabilistic strategy —")
    print("far under the log* n ceiling.\n")

    # --- 2. the fading-family dial --------------------------------------------
    s, r = paper_random_network(80, area=1000.0 * 0.8**0.5, rng=5)
    inst = SINRInstance.from_network(Network(s, r), UniformPower(2.0), ALPHA, NOISE)
    chosen = greedy_capacity(inst, BETA)
    size = chosen.size
    ray = rayleigh_expected_binary(inst, chosen, BETA) / size
    print(f"greedy schedule of {size} links; retention under fading families")
    print(f"(Rayleigh exact: {ray:.3f}; Lemma 2 floor: {1 / np.e:.3f}):\n")
    print("model                 retention")
    for m in (0.5, 1.0, 2.0, 4.0, 16.0):
        v = expected_successes_with_model(
            inst, chosen, BETA, NakagamiFading(m), rng=int(m * 10), num_slots=4000
        )
        tag = "  <- Rayleigh" if m == 1.0 else ""
        print(f"nakagami m={m:<4g}        {v / size:.3f}{tag}")
    for k in (0.0, 1.0, 4.0, 16.0):
        v = expected_successes_with_model(
            inst, chosen, BETA, RicianFading(k), rng=int(k * 10) + 1, num_slots=4000
        )
        tag = "  <- Rayleigh" if k == 0.0 else ""
        print(f"rician   K={k:<4g}        {v / size:.3f}{tag}")
    print("\nMilder fading (larger m or K) always retains more: the paper's")
    print("Rayleigh guarantees are the worst case of the whole family.")


if __name__ == "__main__":
    main()
