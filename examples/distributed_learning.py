"""Distributed capacity maximization by regret learning (Section 6).

No central scheduler: every link runs its own Randomized Weighted
Majority learner (losses and η schedule exactly as in the paper's
Figure 2) and decides each round whether to transmit.  The example runs
the game in both interference models, prints the convergence trajectory,
and verifies the paper's analysis quantities:

* external regret per round (Definition 2) falls over time,
* realized and expected regret stay close (Lemma 4),
* the invariant X ≤ F ≤ 2X + εn holds (Lemma 5),
* the converged capacity is a constant fraction of the non-fading
  optimum (Theorems 3–4).

Run:  python examples/distributed_learning.py
"""

import numpy as np

from repro import (
    CapacityGame,
    Exp3Learner,
    Network,
    SINRInstance,
    UniformPower,
    local_search_capacity,
    paper_random_network,
)

BETA, ALPHA, NOISE = 0.5, 2.1, 0.0  # Figure-2 physics
N_LINKS, ROUNDS = 120, 120


def main() -> None:
    senders, receivers = paper_random_network(
        N_LINKS, min_length=0.0, max_length=100.0, rng=2012
    )
    net = Network(senders, receivers)
    inst = SINRInstance.from_network(net, UniformPower(2.0), ALPHA, NOISE)
    opt = local_search_capacity(inst, BETA, rng=0, restarts=8).size
    print(f"{N_LINKS} links; non-fading OPT estimate: {opt} simultaneous successes\n")

    results = {}
    for model in ("nonfading", "rayleigh"):
        game = CapacityGame(inst, BETA, model=model, rng=42)
        results[model] = game.play(ROUNDS)

    print("round   successes (non-fading)   successes (Rayleigh)")
    for t in (1, 5, 10, 20, 30, 40, 60, 80, ROUNDS):
        nf = results["nonfading"].success_counts[t - 1]
        ray = results["rayleigh"].success_counts[t - 1]
        print(f"{t:5d}   {nf:23d}   {ray:20d}")

    for model, res in results.items():
        tail = res.average_successes(30)
        regret = res.realized_regret()
        print(f"\n[{model}] tail capacity {tail:.1f}/round "
              f"({tail / opt:.0%} of OPT), "
              f"mean regret/round {regret.mean() / ROUNDS:+.3f}")
        X, F = res.lemma5(inst)
        eps = float(res.expected_regret(inst).max()) / ROUNDS
        print(f"[{model}] Lemma 5: X={X:.1f} <= F={F:.1f} "
              f"<= 2X+εn={2 * X + eps * N_LINKS:.1f}  "
              f"({'OK' if X <= F <= 2 * X + eps * N_LINKS + 1e-6 else 'VIOLATED'})")
        if model == "rayleigh":
            gap = np.abs(res.expected_regret(inst) - regret).max()
            bound = 4.0 * np.sqrt(ROUNDS * np.log(ROUNDS))
            print(f"[rayleigh] Lemma 4: max |R_h - R_h̄| = {gap:.1f} "
                  f"(O(sqrt(T ln T)) scale: {bound:.1f})")

    # Bandit-feedback variant: links observe only what they played.
    bandit = CapacityGame(inst, BETA, model="rayleigh", rng=43)
    learners = [Exp3Learner(rng=i, horizon=ROUNDS) for i in range(N_LINKS)]
    res = bandit.play(ROUNDS, learners=learners)
    print(f"\n[exp3 bandit, rayleigh] tail capacity "
          f"{res.average_successes(30):.1f}/round — partial information "
          "learns slower but the same dynamics apply ([23]).")


if __name__ == "__main__":
    main()
