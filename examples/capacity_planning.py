"""Capacity planning for a dense sensor deployment.

Scenario: 120 sensor links in two hot-spot clusters plus background
traffic.  The operator wants one transmission slot packed with as many
successful links as possible and asks three questions the paper answers:

1. Which scheduling algorithm should run — uniform power, square-root
   (oblivious) power, or full power control?
2. How much of the scheduled capacity survives real (Rayleigh-fading)
   propagation?  (Lemma 2: at least 1/e, usually much more.)
3. What if links carry different traffic values, or we care about total
   Shannon rate rather than a success count?

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import (
    Network,
    ShannonUtility,
    SINRInstance,
    SquareRootPower,
    UniformPower,
    WeightedUtility,
    cluster_network,
    flexible_rate_capacity,
    greedy_capacity,
    power_control_capacity,
    rayleigh_expected_binary,
)

BETA, ALPHA, NOISE = 2.0, 2.8, 1e-7


def build_network() -> Network:
    senders, receivers = cluster_network(
        n_clusters=4,
        links_per_cluster=30,
        area=800.0,
        cluster_radius=70.0,
        min_length=15.0,
        max_length=35.0,
        rng=7,
    )
    return Network(senders, receivers)


def main() -> None:
    net = build_network()
    print(f"deployment: {net.n} links in 4 clusters\n")

    # --- Question 1: which algorithm? ------------------------------------
    rows = []
    for name, power in [("uniform p=2", UniformPower(2.0)),
                        ("square-root", SquareRootPower(2.0))]:
        inst = SINRInstance.from_network(net, power, ALPHA, NOISE)
        chosen = greedy_capacity(inst, BETA)
        rayleigh = rayleigh_expected_binary(inst, chosen, BETA)
        rows.append((f"greedy, {name}", chosen.size, rayleigh))

    pc = power_control_capacity(net, BETA, ALPHA, NOISE)
    pc_inst = SINRInstance.from_network(net, pc.power_assignment(net.n), ALPHA, NOISE)
    pc_ray = rayleigh_expected_binary(pc_inst, pc.selected, BETA)
    rows.append(("power control [6]", pc.selected.size, pc_ray))

    print("algorithm                non-fading  E[Rayleigh]  retained")
    for name, nf, ray in rows:
        print(f"{name:24s} {nf:10d}  {ray:11.2f}  {ray / max(nf, 1):8.1%}")
    best = max(rows, key=lambda r: r[2])
    print(f"\n-> schedule with: {best[0]}  (Lemma 2 floor is 1/e = 36.8%)\n")

    # --- Question 3a: weighted traffic ------------------------------------
    inst = SINRInstance.from_network(net, UniformPower(2.0), ALPHA, NOISE)
    rng = np.random.default_rng(1)
    weights = np.where(rng.random(net.n) < 0.2, 5.0, 1.0)  # 20% priority links
    weighted = greedy_capacity(inst, BETA, weights=weights)
    mask = np.zeros(net.n, dtype=bool)
    mask[weighted] = True
    print(f"weighted traffic: scheduled weight "
          f"{weights[mask].sum():.0f} of {weights.sum():.0f} total "
          f"({weighted.size} links, "
          f"{int((weights[mask] > 1).sum())} of {int((weights > 1).sum())} "
          f"priority links served)")
    assert WeightedUtility(weights, BETA).is_valid_for(inst)

    # --- Question 3b: Shannon-rate objective -------------------------------
    shannon = ShannonUtility(net.n, cap=1e4)
    result = flexible_rate_capacity(inst, shannon)
    everyone = float(shannon(inst.sinr(np.ones(net.n, dtype=bool))).sum())
    print(f"Shannon objective: {result.utility:.1f} nats/slot with "
          f"{result.selected.size} links at level β={result.level:.2f} "
          f"(vs {everyone:.1f} when everyone transmits at once)")


if __name__ == "__main__":
    main()
