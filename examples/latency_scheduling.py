"""Latency: drain every link's queue at least once, fast.

Scenario: a periodic data-collection round in a 60-link field network.
Every link must deliver one packet; the objective is the number of slots
until the last link is served.  The example compares

* the centralized repeated-maximization scheduler ([8]-style) against
  the distributed ALOHA-style protocol ([9]-style), and
* the non-fading prediction against the Rayleigh reality, where the
  ALOHA protocol uses the paper's 4-repeat transformation (Section 4).

It finishes with a multi-hop round: packets relayed across a relay chain
towards a sink, scheduled hop-by-hop.

Run:  python examples/latency_scheduling.py
"""

import numpy as np

from repro import (
    MultiHopRequest,
    Network,
    SINRInstance,
    UniformPower,
    aloha_latency,
    multihop_latency,
    paper_random_network,
    repeated_max_latency,
)

BETA, ALPHA, NOISE = 2.5, 2.2, 4e-7


def main() -> None:
    senders, receivers = paper_random_network(60, area=800.0, rng=99)
    net = Network(senders, receivers)
    inst = SINRInstance.from_network(net, UniformPower(2.0), ALPHA, NOISE)
    print(f"collection round over {net.n} links\n")

    # --- single-hop: four scheduler/model combinations --------------------
    rm_nf = repeated_max_latency(inst, BETA)
    rm_ray = [
        repeated_max_latency(inst, BETA, model="rayleigh", rng=t).latency
        for t in range(10)
    ]
    al_nf = aloha_latency(inst, BETA, rng=0)
    al_ray = [
        aloha_latency(inst, BETA, rng=100 + t, model="rayleigh").latency
        for t in range(10)
    ]
    print("scheduler          model       latency (slots)")
    print(f"repeated-max       non-fading  {rm_nf.latency}")
    print(f"repeated-max       Rayleigh    {np.mean(rm_ray):.1f} "
          f"(min {min(rm_ray)}, max {max(rm_ray)})")
    print(f"aloha (q={al_nf.q_used:.2f})     non-fading  {al_nf.latency}")
    print(f"aloha x4 transform Rayleigh    {np.mean(al_ray):.1f}")
    print(f"\n-> fading costs a factor "
          f"{np.mean(rm_ray) / rm_nf.latency:.1f} (repeated-max) / "
          f"{np.mean(al_ray) / al_nf.latency:.1f} (aloha incl. 4x repeats) "
          "— the constant-factor transfers of Section 4.\n")

    # --- multi-hop: relay chains toward a sink -----------------------------
    sink = np.array([400.0, 400.0])
    rng = np.random.default_rng(5)
    requests = []
    for _ in range(12):
        src = rng.uniform(0, 800, size=2)
        hops = max(1, int(np.linalg.norm(src - sink) // 120))
        path = np.linspace(src, sink, hops + 1)
        requests.append(MultiHopRequest(path))
    total_hops = sum(r.num_hops for r in requests)
    nf = multihop_latency(requests, beta=BETA, alpha=ALPHA, noise=NOISE)
    ray = multihop_latency(
        requests, beta=BETA, alpha=ALPHA, noise=NOISE, model="rayleigh", rng=1
    )
    print(f"multi-hop: {len(requests)} requests, {total_hops} hops total")
    print(f"  makespan non-fading: {nf.makespan} slots "
          f"(longest request {max(r.num_hops for r in requests)} hops)")
    print(f"  makespan Rayleigh:   {ray.makespan} slots")


if __name__ == "__main__":
    main()
