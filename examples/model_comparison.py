"""Rayleigh vs non-fading, side by side (the paper's Figure 1 in small).

Sweeps the common transmission probability q and prints the mean number
of successful transmissions under both interference models and both
power assignments, reproducing the qualitative findings of Section 7:

* the Rayleigh curve is a smoothed version of the non-fading curve,
* the non-fading model predicts more success when interference is small
  (low q), Rayleigh more when interference is large (high q),
* both models peak at an interior q — neither "everyone transmits" nor
  "almost nobody" is optimal.

Uses the exact Theorem-1 expectation for the Rayleigh side (no fading
seeds needed).  The full-scale version of this experiment is
``benchmarks/bench_figure1.py`` (set REPRO_PAPER_SCALE=1 for the verbatim
paper parameters).

Run:  python examples/model_comparison.py
"""

from repro.experiments import Figure1Config, run_figure1
from repro.utils.tables import sparkline


def main() -> None:
    cfg = Figure1Config(
        num_networks=10,
        num_links=100,
        num_transmit_seeds=15,
        probabilities=tuple(round(0.05 * k, 2) for k in range(1, 21)),
        seed=7,
    )
    result = run_figure1(cfg)
    print(result.text)
    print()
    q = result.data["q"]
    nf = result.data["uniform nonfading"]
    ray = result.data["uniform rayleigh"]
    peak_nf = q[nf.index(max(nf))]
    peak_ray = q[ray.index(max(ray))]
    crossings = [
        q[i] for i in range(1, len(q))
        if (nf[i] - ray[i]) * (nf[i - 1] - ray[i - 1]) < 0
    ]
    print(f"uniform power: non-fading peaks at q={peak_nf}, "
          f"Rayleigh at q={peak_ray}")
    if crossings:
        print(f"curves cross near q={crossings[0]} — below it the "
              "non-fading model is optimistic, above it fading helps "
              "(some links get lucky draws against heavy interference).")
    print("\nshape checks:", "all pass" if result.all_checks_pass else "FAILED")
    print("non-fading:", sparkline(nf))
    print("rayleigh:  ", sparkline(ray))


if __name__ == "__main__":
    main()
