"""Quickstart — the library in 60 seconds.

Builds a random wireless network, schedules a capacity-maximizing set of
links in the non-fading SINR model, and transfers the schedule unchanged
to the Rayleigh-fading model, verifying the paper's 1/e guarantee
(Lemma 2) with the exact probabilities of Theorem 1.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Network,
    SINRInstance,
    UniformPower,
    greedy_capacity,
    paper_random_network,
    success_probability,
)

# Section-7 physics: SINR threshold, path-loss exponent, ambient noise.
BETA, ALPHA, NOISE = 2.5, 2.2, 4e-7


def main() -> None:
    # 1. A random network exactly as in the paper's simulations:
    #    receivers uniform on a 1000x1000 plane, senders 20-40 away.
    senders, receivers = paper_random_network(100, rng=2012)
    net = Network(senders, receivers)
    print(f"network: {net}  (link lengths {net.lengths.min():.1f}"
          f"-{net.lengths.max():.1f})")

    # 2. The non-fading instance: mean signal strengths S̄(j,i) = p/d^α.
    inst = SINRInstance.from_network(net, UniformPower(2.0), ALPHA, NOISE)

    # 3. Schedule a feasible set with the affectance greedy ([8]-style).
    chosen = greedy_capacity(inst, BETA)
    mask = np.zeros(net.n, dtype=bool)
    mask[chosen] = True
    assert inst.is_feasible(chosen, BETA)
    print(f"non-fading schedule: {chosen.size} links transmit, "
          f"all reach SINR >= {BETA}")

    # 4. Replay the same schedule under Rayleigh fading.  Theorem 1 gives
    #    each link's success probability in closed form; Lemma 2 promises
    #    the expected number of successes is at least |S|/e.
    q = mask.astype(np.float64)
    probs = success_probability(inst, q, BETA)
    expected = float(probs[chosen].sum())
    print(f"Rayleigh expectation:  {expected:.2f} successes "
          f"(Lemma 2 bound: {chosen.size / np.e:.2f}, "
          f"ratio {expected / chosen.size:.3f} >= 1/e = {1 / np.e:.3f})")

    # 5. Per-link view for the first few links of the schedule.
    print("\nlink  length  P[success under fading]")
    for i in chosen[:8]:
        print(f"{i:4d}  {net.lengths[i]:6.1f}  {probs[i]:.3f}")


if __name__ == "__main__":
    main()
