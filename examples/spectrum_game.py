"""Spectrum access as a game: equilibria, anarchy, and learning.

The capacity game of Section 6 through a game-theoretic lens (the
Andrews–Dinitz [5] transfer): selfish links decide whether to transmit;
we find pure Nash equilibria by best-response dynamics, measure the
price of anarchy against the scheduling optimum, and show that the
decentralized no-regret learners of Figure 2 reach the same welfare
ballpark — without any link ever seeing the network.

Run:  python examples/spectrum_game.py
"""

import numpy as np

from repro import (
    CapacityGame,
    Network,
    SINRInstance,
    UniformPower,
    best_response_dynamics,
    is_equilibrium,
    local_search_capacity,
    paper_random_network,
    price_of_anarchy_sample,
)
from repro.learning.diagnostics import convergence_report

BETA, ALPHA, NOISE = 2.5, 2.2, 4e-7


def main() -> None:
    senders, receivers = paper_random_network(80, area=900.0, rng=17)
    net = Network(senders, receivers)
    inst = SINRInstance.from_network(net, UniformPower(2.0), ALPHA, NOISE)
    opt = local_search_capacity(inst, BETA, rng=0, restarts=8).size
    print(f"{net.n} selfish links; scheduling optimum ≈ {opt} simultaneous successes\n")

    # --- pure equilibria by best-response dynamics -------------------------
    print("best-response dynamics from 6 random profiles:")
    for s in range(6):
        eq = best_response_dynamics(inst, BETA, rng=s)
        tag = "Nash" if eq.converged and is_equilibrium(inst, eq.actions, BETA) else "no fixpoint"
        print(f"  start {s}: {int(eq.actions.sum()):3d} senders, "
              f"welfare {eq.welfare:5.1f}, {eq.steps:3d} switches  [{tag}]")

    for model in ("nonfading", "rayleigh"):
        sample = price_of_anarchy_sample(inst, BETA, rng=100, model=model, num_starts=10)
        print(f"\n[{model}] equilibrium welfare {sample['worst']:.1f}"
              f"-{sample['best']:.1f} vs OPT {sample['opt']:.0f} "
              f"-> empirical PoA {sample['poa']:.2f}")
    print("\nNon-fading equilibria are (strongly maximal) feasible sets —")
    print("anarchy costs almost nothing on random instances; fading adds")
    print("its usual ~1/0.62 discount (cf. experiments E11/E16).\n")

    # --- and learning gets there without best-response coordination --------
    game = CapacityGame(inst, BETA, model="rayleigh", rng=7)
    res = game.play(120)
    rep = convergence_report(res.success_counts.astype(float))
    print(f"no-regret learners (Rayleigh): final {rep.final_level:.1f} "
          f"successes/round; reached 50% of that by round {rep.round_to_half}, "
          f"90% by round {rep.round_to_90pct} "
          "(paper: 'good performance after 30 to 40 time steps').")


if __name__ == "__main__":
    main()
