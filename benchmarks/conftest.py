"""Benchmark harness configuration.

Each experiment bench runs its DESIGN.md driver once (timed by
pytest-benchmark), writes the rendered table to
``benchmarks/results/<id>.txt``, prints it (visible with ``-s`` or in the
captured output), and asserts the experiment's shape checks — so a
benchmark run is also a reproduction verdict.

Scale control: benches default to the ``quick()`` configurations (the
whole suite finishes in a few minutes).  Set ``REPRO_PAPER_SCALE=1`` to
run the verbatim Section-7 parameters (40 networks, 25+10 seeds, ...).
Results are written per scale — ``results/quick/`` and ``results/paper/``
— so a quick run never clobbers archived paper-scale tables.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_ROOT = Path(__file__).parent / "results"


def paper_scale() -> bool:
    """Whether to run full paper-scale configurations."""
    return os.environ.get("REPRO_PAPER_SCALE", "0") == "1"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    out = RESULTS_ROOT / ("paper" if paper_scale() else "quick")
    out.mkdir(parents=True, exist_ok=True)
    return out


@pytest.fixture
def record_result(results_dir):
    """Write an ExperimentResult to disk, echo it, and assert its checks."""

    def _record(result):
        path = results_dir / f"{result.experiment_id}.txt"
        rendered = result.render()
        path.write_text(rendered + "\n", encoding="utf-8")
        print("\n" + rendered)
        assert result.all_checks_pass, {
            k: v for k, v in result.checks.items() if not v
        }
        return result

    return _record
