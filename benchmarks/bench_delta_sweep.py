"""E21 — the power-assignment hierarchy across length diversity Δ.

Paper reference: the related-work ordering — uniform power O(log Δ) [5],
square-root power O(log log Δ + log n) [4], power control O(1) [6].
Expected shape: on nested hotspot workloads, uniform-power capacity
stays flat (one link per hotspot) while square-root and power control
scale with the class count; the uniform/PC ratio falls towards
1/classes as Δ grows.
"""

from repro.experiments import run_delta_sweep

from conftest import paper_scale


def test_delta_sweep(benchmark, record_result):
    nets = 8 if paper_scale() else 4
    result = benchmark.pedantic(
        run_delta_sweep, kwargs={"networks_per_delta": nets}, rounds=1, iterations=1
    )
    record_result(result)
