"""E20 — the graph-model gap: why SINR models are needed at all.

Paper reference: the introduction's observation that graph-based
interference models miss aggregate interference.  Expected shape: the
fraction of conflict-graph-independent schedules that violate SINR rises
from 0 (sparse) to ~1 at the paper's density — at Figure-1 density the
graph abstraction is essentially useless.
"""

from repro.experiments import run_graph_gap

from conftest import paper_scale


def test_graph_gap(benchmark, record_result):
    kwargs = (
        {"networks_per_area": 5, "num_samples": 300}
        if paper_scale()
        else {"networks_per_area": 3, "num_samples": 120}
    )
    result = benchmark.pedantic(run_graph_gap, kwargs=kwargs, rounds=1, iterations=1)
    record_result(result)
