"""E22 — full-information vs bandit feedback in the capacity game.

Paper reference: Section 6's reliance on generic no-regret algorithms,
citing the bandit work [23] for partial information.  Expected shape:
both feedback models converge to constant fractions of OPT in both
interference models; full information converges faster and higher; the
Rayleigh discount applies to both.
"""

from repro.experiments import Figure2Config, run_feedback_comparison

from conftest import paper_scale


def test_feedback_comparison(benchmark, record_result):
    cfg = Figure2Config.paper() if paper_scale() else Figure2Config.quick()
    result = benchmark.pedantic(
        run_feedback_comparison, kwargs={"config": cfg}, rounds=1, iterations=1
    )
    record_result(result)
