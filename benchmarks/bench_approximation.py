"""E19 — measured approximation factors vs exact optima.

Paper reference: the approximation-factor framing of the entire paper.
Expected shape: the refined local search is essentially exact on every
family; greedy stays within its constant factor; power control exceeds
the uniform-power optimum exactly where the theory says it must (the
nested family).
"""

from repro.experiments import run_approximation_factors

from conftest import paper_scale


def test_approximation_factors(benchmark, record_result):
    seeds = 6 if paper_scale() else 3
    result = benchmark.pedantic(
        run_approximation_factors, kwargs={"seeds": seeds}, rounds=1, iterations=1
    )
    record_result(result)
