"""E7 — capacity algorithms in both models.

Paper reference: Section 4's transfer claims over the algorithm toolbox
[6], [7], [8].  Expected shape: every algorithm's Rayleigh value is at
least 1/e of its non-fading value; the OPT estimate dominates greedy;
power control wins decisively on the nested-pairs family where uniform
power collapses.
"""

from repro.experiments import Figure1Config, run_capacity_compare

from conftest import paper_scale


def test_capacity_compare(benchmark, record_result):
    cfg = Figure1Config.paper() if paper_scale() else Figure1Config.quick()
    result = benchmark.pedantic(
        run_capacity_compare, args=(cfg,), kwargs={"nested_n": 10},
        rounds=1, iterations=1,
    )
    record_result(result)
