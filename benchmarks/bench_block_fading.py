"""E15 — block fading: pricing the i.i.d.-slots assumption.

Paper reference: the independence assumption of Section 2 and the
4-repeat transformation of Section 4.  Expected shape: the transformed
step's success matches the exact i.i.d. value at coherence time L = 1
and decreases monotonically as L grows — repeats sharing a channel stop
helping — while the protocol's own pattern randomness keeps the step
useful.
"""

from repro.experiments import run_block_fading_check

from conftest import paper_scale


def test_block_fading(benchmark, record_result):
    trials = 5000 if paper_scale() else 1500
    result = benchmark.pedantic(
        run_block_fading_check, kwargs={"trials": trials}, rounds=1, iterations=1
    )
    record_result(result)
