"""E18 — latency scaling against certified lower bounds.

Paper reference: the O(log n) latency-approximation guarantees of the
Section-4 transferred schedulers.  Expected shape: repeated-max stays
within a small flat factor of the instance lower bound across sizes;
the distributed protocols pay a bounded contention overhead.
"""

from repro.experiments import run_latency_scaling

from conftest import paper_scale


def test_latency_scaling(benchmark, record_result):
    kwargs = (
        {"sizes": (25, 50, 100, 200), "networks_per_size": 5}
        if paper_scale()
        else {"sizes": (25, 50, 100), "networks_per_size": 3}
    )
    result = benchmark.pedantic(
        run_latency_scaling, kwargs=kwargs, rounds=1, iterations=1
    )
    record_result(result)
