"""E5 — Lemma 2: black-box transfer keeps ≥ 1/e of the utility.

Paper reference: Lemma 2 (Section 4).  Expected shape: measured
Rayleigh/non-fading utility ratios are above 1/e ≈ 0.368 on every
instance, for binary, weighted, and Shannon utilities, under both power
assignments.
"""

from repro.experiments import Figure1Config, run_lemma2_transfer

from conftest import paper_scale


def test_lemma2_transfer(benchmark, record_result):
    cfg = Figure1Config.paper() if paper_scale() else Figure1Config.quick()
    samples = 5000 if paper_scale() else 1000
    result = benchmark.pedantic(
        run_lemma2_transfer, args=(cfg,), kwargs={"mc_samples": samples},
        rounds=1, iterations=1,
    )
    record_result(result)
