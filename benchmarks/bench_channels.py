"""Per-round cost of the channel layer, across members.

Every consumer (game rounds, scheduler slots, transform replays) pays one
channel call per round, so the per-call cost of each member is the unit
economics of the whole library.  This module benchmarks the four
operations of the interface — ``realize``, ``realize_batch``,
``counterfactual``, ``success_probability`` — on the non-fading,
exact-Rayleigh, and Monte-Carlo (Nakagami) channels at paper scale
(n = 100).

Run under pytest-benchmark as usual, or execute the module directly to
(re)record the JSON baseline::

    PYTHONPATH=src python benchmarks/bench_channels.py   # writes BENCH_channels.json
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.channel import MonteCarloChannel, NonFadingChannel, RayleighChannel
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.fading.models import NakagamiFading
from repro.geometry.placement import paper_random_network

BETA = 2.5
N = 100
BATCH = 256

_BASELINE = Path(__file__).resolve().parent / "BENCH_channels.json"


def _instance() -> SINRInstance:
    s, r = paper_random_network(N, rng=0)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


@pytest.fixture(scope="module")
def inst100() -> SINRInstance:
    return _instance()


def _channels(inst):
    return {
        "nonfading": NonFadingChannel(inst, BETA),
        "rayleigh": RayleighChannel(inst, BETA),
        "nakagami_m2": MonteCarloChannel(inst, BETA, NakagamiFading(2.0), mc_slots=500),
    }


def _mask(n):
    mask = np.zeros(n, dtype=bool)
    mask[:40] = True
    return mask


@pytest.mark.parametrize("kind", ["nonfading", "rayleigh", "nakagami_m2"])
def test_realize_per_slot(benchmark, inst100, kind):
    ch = _channels(inst100)[kind]
    mask, gen = _mask(N), np.random.default_rng(1)
    benchmark(ch.realize, mask, gen)


@pytest.mark.parametrize("kind", ["nonfading", "rayleigh", "nakagami_m2"])
def test_realize_batch_256(benchmark, inst100, kind):
    ch = _channels(inst100)[kind]
    gen = np.random.default_rng(2)
    patterns = gen.random((BATCH, N)) < 0.4
    benchmark(ch.realize_batch, patterns, gen)


@pytest.mark.parametrize("kind", ["nonfading", "rayleigh", "nakagami_m2"])
def test_counterfactual_per_round(benchmark, inst100, kind):
    ch = _channels(inst100)[kind]
    mask, gen = _mask(N), np.random.default_rng(3)
    benchmark(ch.counterfactual, mask, gen)


@pytest.mark.parametrize("kind", ["nonfading", "rayleigh", "nakagami_m2"])
def test_counterfactual_batch_256(benchmark, inst100, kind):
    ch = _channels(inst100)[kind]
    gen = np.random.default_rng(6)
    patterns = gen.random((BATCH, N)) < 0.4
    benchmark(ch.counterfactual_batch, patterns, gen)


@pytest.mark.parametrize("kind", ["rayleigh", "nakagami_m2"])
def test_success_probability(benchmark, inst100, kind):
    ch = _channels(inst100)[kind]
    q, gen = np.full(N, 0.4), np.random.default_rng(4)
    benchmark(ch.success_probability, q, gen)


def _time_call(fn, *args, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def record_baseline(path=_BASELINE) -> dict:
    """Time every (channel, operation) pair and write the JSON baseline."""
    inst = _instance()
    mask = _mask(N)
    q = np.full(N, 0.4)
    gen = np.random.default_rng(0)
    patterns = gen.random((BATCH, N)) < 0.4
    out = {"n": N, "beta": BETA, "batch": BATCH, "seconds": {}}
    for kind, ch in _channels(inst).items():
        ch.realize(mask, gen)  # warm-up
        entry = {
            "realize": _time_call(ch.realize, mask, gen),
            "realize_batch_256": _time_call(ch.realize_batch, patterns, gen),
            "counterfactual": _time_call(ch.counterfactual, mask, gen),
            "counterfactual_batch_256": _time_call(
                ch.counterfactual_batch, patterns, gen
            ),
        }
        if kind != "nonfading":
            entry["success_probability"] = _time_call(ch.success_probability, q, gen)
        out["seconds"][kind] = entry
    Path(path).write_text(json.dumps(out, indent=2) + "\n", encoding="utf-8")
    return out


def test_exact_rayleigh_beats_monte_carlo(inst100):
    """The Bernoulli fast path must stay well under the explicit-sampling
    channel per slot — that gap is why RayleighChannel is the default."""
    chans = _channels(inst100)
    mask, gen = _mask(N), np.random.default_rng(5)
    for ch in chans.values():
        ch.realize(mask, gen)
    exact = _time_call(chans["rayleigh"].realize, mask, gen, repeats=20)
    mc = _time_call(chans["nakagami_m2"].realize, mask, gen, repeats=20)
    assert exact < mc * 1.5, f"exact {exact * 1e6:.0f}us vs MC {mc * 1e6:.0f}us"


if __name__ == "__main__":
    doc = record_baseline()
    print(json.dumps(doc, indent=2))
