"""E8 — latency schedulers, non-fading vs Rayleigh.

Paper reference: Section 4's latency transfers (repeated single-slot
maximization [8], ALOHA-style contention resolution [9] with the
4-repeat transformation).  Expected shape: Rayleigh latencies exceed
non-fading latencies by only a small constant factor; repeated-max beats
ALOHA in both models.
"""

from repro.experiments import Figure1Config, run_latency_compare

from conftest import paper_scale


def test_latency_compare(benchmark, record_result):
    cfg = Figure1Config.paper() if paper_scale() else Figure1Config.quick()
    trials = 10 if paper_scale() else 4
    result = benchmark.pedantic(
        run_latency_compare, args=(cfg,), kwargs={"rayleigh_trials": trials},
        rounds=1, iterations=1,
    )
    record_result(result)
