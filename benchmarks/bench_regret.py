"""E9 — regret-learning statistics (Theorems 3–4, Lemmas 4–5).

Paper reference: Section 6.  Expected shape: per-round regret shrinks;
realized and expected regret stay within O(sqrt(T ln T)) of each other
(Lemma 4); the Lemma-5 invariant X ≤ F ≤ 2X + εn holds; tail capacity
reaches a constant fraction of the non-fading OPT estimate (Theorem 3).
"""

from repro.experiments import Figure2Config, run_regret_stats

from conftest import paper_scale


def test_regret_stats(benchmark, record_result):
    cfg = Figure2Config.paper() if paper_scale() else Figure2Config.quick()
    result = benchmark.pedantic(run_regret_stats, args=(cfg,), rounds=1, iterations=1)
    record_result(result)
