"""E12 — ablation of Algorithm 1's constants (19 repeats, damping 4).

Paper reference: the constants fixed in the proof of Theorem 2 /
Lemma 3.  Expected shape: the paper's setting dominates everywhere;
slot cost is linear in the repeat count; the constants are conservative
(smaller repeat counts often already dominate on benign instances).
"""

from repro.experiments import run_alg1_ablation

from conftest import paper_scale


def test_alg1_ablation(benchmark, record_result):
    trials = 600 if paper_scale() else 200
    result = benchmark.pedantic(
        run_alg1_ablation, kwargs={"trials": trials}, rounds=1, iterations=1
    )
    record_result(result)
