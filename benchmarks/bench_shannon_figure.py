"""E17 — Figure 1 under Shannon utilities.

Paper reference: the general-utility theory of Sections 2–5, applied at
the figure level.  Expected shape: unlike the binary Figure 1, both
curves grow monotonically in q and never cross — the binary crossover
is an artifact of thresholding; the non-fading/Rayleigh ratio tracks
E5's Shannon transfer ratio (~0.88), comfortably above 1/e.
"""

from repro.experiments import Figure1Config, run_shannon_figure

from conftest import paper_scale


def test_shannon_figure(benchmark, record_result):
    cfg = Figure1Config.paper() if paper_scale() else Figure1Config.quick()
    slots = 10 if paper_scale() else 6
    result = benchmark.pedantic(
        run_shannon_figure, args=(cfg,), kwargs={"fading_slots": slots},
        rounds=1, iterations=1,
    )
    record_result(result)
