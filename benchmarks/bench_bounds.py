"""E4 — Theorem 1 exactness and the Lemma 1 sandwich.

Paper reference: Theorem 1 and Lemma 1 (Section 3).  Expected shape:
lower ≤ exact ≤ upper on every link and setting; Monte Carlo frequencies
agree with the closed form within sampling bands.
"""

from repro.experiments import Figure1Config, run_lemma_bounds

from conftest import paper_scale


def test_lemma_bounds(benchmark, record_result):
    cfg = Figure1Config.paper() if paper_scale() else Figure1Config.quick()
    samples = 20000 if paper_scale() else 3000
    result = benchmark.pedantic(
        run_lemma_bounds, args=(cfg,), kwargs={"mc_samples": samples},
        rounds=1, iterations=1,
    )
    record_result(result)
