"""E3 — the "49.75 successful transmissions" optimum statistic.

Paper reference: Section 7 text ("Choosing the optimal set of sending
links under uniform powers, we reach on average 49.75 successful
transmissions").  Expected shape: the local-search OPT estimate lands
near one half of the links; the greedy lower bound is close behind; on
small instances the estimator matches exact branch & bound.
"""

from repro.experiments import Figure1Config, run_optimum_stat

from conftest import paper_scale


def test_optimum_statistic(benchmark, record_result):
    cfg = Figure1Config.paper() if paper_scale() else Figure1Config.quick()
    restarts = 12 if paper_scale() else 8
    result = benchmark.pedantic(
        run_optimum_stat, args=(cfg,), kwargs={"restarts": restarts},
        rounds=1, iterations=1,
    )
    record_result(result)
