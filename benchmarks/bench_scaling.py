"""Kernel scaling in the number of links.

The library's hot paths are O(n²) gain-matrix operations (per the HPC
guide's vectorize-everything discipline); these benchmarks pin that down
empirically so a regression to O(n³) — e.g. an accidental per-link loop
around a matrix product — shows up as a benchmark cliff at n = 400.
"""

import numpy as np
import pytest

from repro.capacity.greedy import greedy_capacity
from repro.core.affectance import affectance_matrix
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.fading.success import success_probability
from repro.geometry.placement import paper_random_network

BETA = 2.5
SIZES = (100, 200, 400)


def make_instance(n: int) -> SINRInstance:
    s, r = paper_random_network(n, area=1000.0 * (n / 100.0) ** 0.5, rng=n)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


@pytest.mark.parametrize("n", SIZES)
def test_scaling_theorem1(benchmark, n):
    inst = make_instance(n)
    q = np.full(n, 0.5)
    benchmark(success_probability, inst, q, BETA)


@pytest.mark.parametrize("n", SIZES)
def test_scaling_sinr_batch(benchmark, n):
    inst = make_instance(n)
    patterns = np.random.default_rng(1).random((64, n)) < 0.5
    benchmark(inst.sinr_batch, patterns)


@pytest.mark.parametrize("n", SIZES)
def test_scaling_affectance(benchmark, n):
    inst = make_instance(n)
    benchmark(affectance_matrix, inst, BETA)


@pytest.mark.parametrize("n", SIZES)
def test_scaling_greedy(benchmark, n):
    inst = make_instance(n)
    benchmark(greedy_capacity, inst, BETA)
