"""E1 — regenerate Figure 1 (successes vs transmission probability).

Paper reference: Section 7, Figure 1.  Four curves on random 100-link
networks: {uniform, square-root power} x {non-fading, Rayleigh}.
Expected shape: interior maximum; non-fading ahead at low q, Rayleigh
ahead at high q (smoothed curve); square-root and uniform powers behave
similarly on this workload.
"""

from repro.experiments import Figure1Config, run_figure1

from conftest import paper_scale


def test_figure1(benchmark, record_result):
    cfg = Figure1Config.paper() if paper_scale() else Figure1Config.quick()
    result = benchmark.pedantic(run_figure1, args=(cfg,), rounds=1, iterations=1)
    record_result(result)
