"""E10 — the Section-4 ALOHA step transformation.

Paper reference: Section 4 (transform randomized protocols by running
each step 4 times).  Expected shape: the exact 4-repeat Rayleigh success
probability dominates the Monte-Carlo non-fading per-step success for
every link at every q ≤ 1/2.
"""

from repro.experiments import Figure1Config, run_aloha_transform_check

from conftest import paper_scale


def test_aloha_transform(benchmark, record_result):
    cfg = Figure1Config.paper() if paper_scale() else Figure1Config.quick()
    samples = 20000 if paper_scale() else 4000
    result = benchmark.pedantic(
        run_aloha_transform_check, args=(cfg,), kwargs={"mc_samples": samples},
        rounds=1, iterations=1,
    )
    record_result(result)
