"""Perf-regression harness for the hot-path kernels.

Times every cached/batched fast path against a retained *naive
reference* — the per-call / per-slot loop form the code used before the
kernel-caching work — and records per-kernel before/after seconds and
speedups in ``benchmarks/BENCH_summary.json``::

    PYTHONPATH=src python benchmarks/run_all.py            # full run: micro-kernels
                                                           # + every bench_*.py, rewrite baseline
    PYTHONPATH=src python benchmarks/run_all.py --quick    # micro-kernels only, fewer repeats
    PYTHONPATH=src python benchmarks/run_all.py --quick --check
                                                           # CI perf smoke: compare the fast-path
                                                           # timings against the recorded baseline
                                                           # and exit non-zero on a >5x regression

The naive references are kept *here*, not in the library: they pin the
cost model the optimisations were measured against, so the speedup
column stays meaningful after the original code is gone.  ``--check``
compares only the fast-path ("after") timings — reference timings drift
with the machine, but a fast path that lands within the regression
budget of its own recorded baseline is healthy regardless.

The array-backend **n-scaling sweep** times ``counterfactual_batch``
per backend mode (dense, top-k sparse, float32, numba when importable)
from ``n = 10²`` to ``n = 10⁴`` and records throughput, the sparse
speedup over dense, and the measured max deviation per point in
``benchmarks/BENCH_scaling.json``.  ``--check`` also enforces the
sparse-speedup floor (top-k ≥ 3x dense at ``n ≥ 3000``).

The **latency slot-loop** entries time each contention scheduler's
pre-engine sequential loop (one ``channel.realize`` interpreter round
trip per physical slot — the pre-engine ``_run_protocol`` form, retained
here) against the speculative block engine
(:func:`repro.latency.slotloop.run_contention`) on the same warm
Rayleigh channel and seed, at ``n = 10², 10³, 10⁴`` (full runs up to
``n = 10³``; fixed-step partial runs at ``n = 10⁴``).  ``--check``
enforces per-kernel speedup floors via ``KERNEL_EXPECTATIONS``: default
1.0 (a fast path must not lose to its reference), ≥5x for the ALOHA and
decay engines at ``n = 10³``, and explicit ``floor: None`` annotations
for overhead-tradeoff or informational entries.

The **executor throughput** entry times one identical sweep end-to-end
on the process-pool backend (``before_s``) and on the dispatch backend
with the same number of local workers (``after_s``), so the recorded
baseline pins how much the file-queue indirection costs and ``--check``
catches dispatch-path regressions like any other kernel.

``--filter SUBSTR`` restricts the micro-kernels, the scaling entries,
and the executor/telemetry benches to names containing the substring
(e.g. ``--filter scaling``); partial runs *merge* into the recorded
baselines instead of clobbering the entries they did not measure.  A
filter that matches nothing is an error: the run exits non-zero listing
the known bench names rather than silently rewriting baselines with an
empty measurement set.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.backend import BackendConfig, backend_scope, numba_available
from repro.channel import NonFadingChannel, RayleighChannel
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.geometry.placement import paper_random_network
from repro.learning.regret import expected_send_rewards, lemma5_quantities

BENCH_DIR = Path(__file__).resolve().parent
SUMMARY_PATH = BENCH_DIR / "BENCH_summary.json"
SCALING_PATH = BENCH_DIR / "BENCH_scaling.json"

N = 100
T = 2000
BATCH = 256
BETA = 2.5
BLOCK_L = 16
BLOCK_SLOTS = 512

#: n-scaling sweep sizes: 10² → 10⁴ (full) and the CI subset (quick).
SCALING_NS = (100, 300, 1000, 3000, 10000)
SCALING_NS_QUICK = (100, 1000, 3000)
SCALING_BATCH = 64
SCALING_TOPK = 32

#: ``--check`` fails when a fast path runs slower than this multiple of
#: its recorded baseline.
REGRESSION_FACTOR = 5.0

#: ``--check`` fails when the top-k sparse path is not at least this
#: much faster than dense on ``counterfactual_batch`` at large n.
SPARSE_SPEEDUP_FLOOR = 3.0
SPARSE_FLOOR_MIN_N = 3000

#: Latency slot-loop bench: Section-4 transformation repeats and the
#: measured ``(scheduler, n, square side, reference, partial steps,
#: q override)`` configurations.  The square side sets contention: the
#: enforced n=10³ kernels use the densest geometry where the engine's
#: advantage over the retained pre-engine loop was largest (ALOHA side
#: 500, decay side 125); n=10² and the n=10⁴ fixed-step partials are
#: informational.  The quick (CI perf-smoke) n=300 entries time the
#: batched engine against its own ``slot_block=1`` execution — B=1 *is*
#: the sequential path (identical trajectory), so that ratio isolates
#: speculation; at n=300 the pre-engine loop is interpreter-cheap and
#: not the bottleneck the engine exists for.
LATENCY_REPEATS = 4
LATENCY_BENCHES = (
    # (scheduler, n, side, reference, partial protocol steps, q override)
    ("aloha", 100, 1000.0, "naive", None, None),
    ("aloha", 1000, 500.0, "naive", None, None),
    ("aloha", 10000, 1000.0, "naive", 6, 0.01),
    ("decay", 100, 125.0, "naive", None, None),
    ("decay", 1000, 125.0, "naive", None, None),
    ("decay", 10000, 1000.0, "naive", 6, None),
)
LATENCY_BENCHES_QUICK = (
    ("aloha", 300, 125.0, "engine_b1", None, None),
    ("decay", 300, 125.0, "engine_b1", None, None),
)

#: ``--check`` fails when a kernel's *measured* speedup falls below its
#: floor.  Kernels absent from this table must simply not lose to their
#: reference (``DEFAULT_SPEEDUP_FLOOR``); ``floor: None`` marks an
#: entry as exempt — either an accepted overhead tradeoff or an
#: informational regime — so nothing is silently green anymore.
DEFAULT_SPEEDUP_FLOOR = 1.0
KERNEL_EXPECTATIONS: "dict[str, dict]" = {
    "executor_dispatch_vs_pool_32tasks": {
        "floor": None,
        "note": "overhead tradeoff: the file-queue dispatch backend pays "
        "claim/lease/envelope costs the in-process pool does not; it buys "
        "multi-host scale, not single-host speed (~0.9x expected since "
        "per-claim task chunking, ~0.7x before)",
    },
    "latency_aloha_n1000": {"floor": 5.0},
    "latency_decay_n1000": {"floor": 5.0},
    "latency_aloha_n300": {
        "floor": 3.0,
        "note": "CI perf-smoke: batched engine vs its own slot_block=1 "
        "sequential execution (identical trajectory)",
    },
    "latency_decay_n300": {
        "floor": 3.0,
        "note": "CI perf-smoke: batched engine vs its own slot_block=1 "
        "sequential execution (identical trajectory)",
    },
    "latency_aloha_n100": {
        "floor": None,
        "note": "informational: short runs, engine gain is marginal",
    },
    "latency_decay_n100": {
        "floor": None,
        "note": "informational: short runs, engine gain is marginal",
    },
    "latency_aloha_n10000": {
        "floor": None,
        "note": "informational: fixed-step partial run",
    },
    "latency_decay_n10000": {
        "floor": None,
        "note": "informational: fixed-step partial run",
    },
}


def _instance() -> SINRInstance:
    s, r = paper_random_network(N, rng=0)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


# ---------------------------------------------------------------------------
# Naive references — the pre-caching per-call/per-slot forms.
# ---------------------------------------------------------------------------


def _naive_conditional(instance: SINRInstance, q: np.ndarray, beta: float) -> np.ndarray:
    """Theorem-1 conditional probabilities, rebuilt from scratch per call
    (the original scalar-kernel form: one (n, n) factor matrix + product)."""
    signal = instance.signal
    t = beta * instance.gains
    factors = 1.0 - q[:, None] * (t / (t + signal[None, :]))
    np.fill_diagonal(factors, 1.0)
    prod = np.prod(factors, axis=0)
    noise_term = np.exp(-beta * instance.noise / signal)
    return noise_term * prod


def _naive_expected_send_rewards(
    instance: SINRInstance, actions: np.ndarray, beta: float
) -> np.ndarray:
    """Per-round loop of scalar Theorem-1 kernels (the pre-batching form)."""
    out = np.empty(actions.shape, dtype=np.float64)
    for t in range(actions.shape[0]):
        q = actions[t].astype(np.float64)
        out[t] = 2.0 * _naive_conditional(instance, q, beta) - 1.0
    return out


def _naive_lemma5(
    instance: SINRInstance, actions: np.ndarray, beta: float
) -> tuple[float, float]:
    rounds = actions.shape[0]
    f = actions.mean(axis=0)
    x = np.zeros(instance.n, dtype=np.float64)
    for t in range(rounds):
        q = actions[t].astype(np.float64)
        probs = _naive_conditional(instance, q, beta)
        x += np.where(actions[t], probs, 0.0)
    x /= rounds
    return float(x.sum()), float(f.sum())


def _naive_rayleigh_counterfactual(
    instance: SINRInstance, mask: np.ndarray, beta: float, gen: np.random.Generator
) -> np.ndarray:
    p = _naive_conditional(instance, mask.astype(np.float64), beta)
    return gen.random(instance.n) < p


def _naive_nonfading_counterfactual(
    instance: SINRInstance, mask: np.ndarray, beta: float
) -> np.ndarray:
    """The division-based had-I-sent test recomputed per call."""
    diag = instance.signal
    interference = mask.astype(np.float64) @ instance.gains - mask * diag
    denom = interference + instance.noise
    with np.errstate(divide="ignore"):
        sinr = np.where(denom > 0.0, diag / np.maximum(denom, 1e-300), np.inf)
    return sinr >= beta


# ---------------------------------------------------------------------------
# Timing helpers.
# ---------------------------------------------------------------------------


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_kernels(
    repeats: int,
    name_filter: "str | None" = None,
    known: "list[str] | None" = None,
) -> dict:
    """Time every (naive, fast) kernel pair; returns the summary mapping.

    ``name_filter`` skips every kernel whose name does not contain the
    substring (the ``--filter`` flag); skipped kernels are absent from
    the returned mapping, and the caller merge-writes the baseline.
    Every kernel name is appended to ``known`` (filtered or not), so the
    caller can report the full vocabulary when a filter matches nothing.
    """
    inst = _instance()
    gen = np.random.default_rng(0)
    actions = gen.random((T, N)) < 0.4
    mask = np.zeros(N, dtype=bool)
    mask[:40] = True
    patterns = gen.random((BATCH, N)) < 0.4

    ray = RayleighChannel(inst, BETA)
    nf = NonFadingChannel(inst, BETA)
    # Warm the cached tensors so "after" measures the steady state the
    # game/scheduler loops actually run in.
    ray.counterfactual(mask, np.random.default_rng(1))
    nf.counterfactual(mask)

    kernels: dict[str, dict] = {}

    def record(name, naive_fn, fast_fn, *, calls=1, naive_repeats=None):
        if known is not None:
            known.append(name)
        if name_filter is not None and name_filter not in name:
            return
        before = _best_of(naive_fn, naive_repeats or repeats) / calls
        after = _best_of(fast_fn, repeats) / calls
        kernels[name] = {
            "before_s": before,
            "after_s": after,
            "speedup": before / max(after, 1e-12),
        }
        print(
            f"  {name:35s} {before:10.3e}s -> {after:10.3e}s   "
            f"({kernels[name]['speedup']:6.1f}x)"
        )

    record(
        "expected_send_rewards_T2000_n100",
        lambda: _naive_expected_send_rewards(inst, actions, BETA),
        lambda: expected_send_rewards(inst, actions, BETA),
        naive_repeats=max(1, repeats // 2),
    )
    record(
        "lemma5_quantities_T2000_n100",
        lambda: _naive_lemma5(inst, actions, BETA),
        lambda: lemma5_quantities(inst, actions, BETA),
        naive_repeats=max(1, repeats // 2),
    )

    cf_calls = 200
    g1, g2 = np.random.default_rng(3), np.random.default_rng(3)
    record(
        "rayleigh_counterfactual_per_call",
        lambda: [
            _naive_rayleigh_counterfactual(inst, mask, BETA, g1)
            for _ in range(cf_calls)
        ],
        lambda: [ray.counterfactual(mask, g2) for _ in range(cf_calls)],
        calls=cf_calls,
    )
    record(
        "nonfading_counterfactual_per_call",
        lambda: [
            _naive_nonfading_counterfactual(inst, mask, BETA) for _ in range(cf_calls)
        ],
        lambda: [nf.counterfactual(mask) for _ in range(cf_calls)],
        calls=cf_calls,
    )

    g3, g4 = np.random.default_rng(4), np.random.default_rng(4)
    record(
        "rayleigh_counterfactual_batch_256",
        lambda: [
            _naive_rayleigh_counterfactual(inst, patterns[b], BETA, g3)
            for b in range(BATCH)
        ],
        lambda: ray.counterfactual_batch(patterns, g4),
    )

    from repro.fading.block import BlockFadingChannel

    def naive_block():
        ch = BlockFadingChannel(inst, BLOCK_L, rng=7)
        return [ch.step(mask, BETA) for _ in range(BLOCK_SLOTS)]

    def fast_block():
        ch = BlockFadingChannel(inst, BLOCK_L, rng=7)
        return ch.run(mask, BETA, BLOCK_SLOTS)

    record("block_fading_run_L16_512slots", naive_block, fast_block)
    return kernels


# ---------------------------------------------------------------------------
# Array-backend n-scaling sweep.
# ---------------------------------------------------------------------------


def _scaling_instance(n: int) -> SINRInstance:
    """Instance at density matched to the paper's geometry (area grows
    with n so the interference structure, not just the size, scales)."""
    s, r = paper_random_network(n, area=1000.0 * (n / 100.0) ** 0.5, rng=n)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


def _scaling_modes() -> "list[tuple[str, BackendConfig]]":
    modes = [
        ("dense", BackendConfig()),
        (f"topk{SCALING_TOPK}", BackendConfig(topk=SCALING_TOPK)),
        ("float32", BackendConfig(dtype="float32")),
    ]
    if numba_available():
        modes.append(
            (f"numba_topk{SCALING_TOPK}", BackendConfig(backend="numba", topk=SCALING_TOPK))
        )
    else:
        print("  (numba not importable; skipping the numba scaling leg)")
    return modes


def measure_scaling(
    repeats: int,
    ns: "tuple[int, ...]",
    name_filter: "str | None" = None,
    known: "list[str] | None" = None,
) -> dict:
    """Throughput of ``counterfactual_batch`` per backend mode and size.

    Every mode at one ``n`` shares the instance and the pattern batch;
    deviations are measured on the *deterministic* Theorem-1 batch
    probabilities (no sampling noise), dense float64 being the
    reference.  Entries are named ``scaling_n{n}_{mode}`` so
    ``--filter scaling`` selects the whole sweep.
    """
    entries: "dict[str, dict]" = {}
    modes = _scaling_modes()
    if known is not None:
        known.extend(f"scaling_n{n}_{m}" for n in ns for m, _ in modes)
    for n in ns:
        wanted = [m for m, _ in modes if name_filter is None or name_filter in f"scaling_n{n}_{m}"]
        if not wanted:
            continue
        inst = _scaling_instance(n)
        gen = np.random.default_rng(n)
        pats = gen.random((SCALING_BATCH, n)) < 0.4
        reps = max(1, repeats if n <= 1000 else repeats // 2)
        dense_seconds = None
        dense_probs = None
        for mode, config in modes:
            name = f"scaling_n{n}_{mode}"
            # The dense leg always runs when any mode at this n is wanted:
            # it is the speedup/deviation reference for the others.
            need_reference = mode == "dense"
            if name_filter is not None and name_filter not in name and not need_reference:
                continue
            with backend_scope(config):
                channel = RayleighChannel(inst, BETA)
                # Warm: builds the log-factor tensor + the mode's operator,
                # and yields the deterministic output for the deviation column.
                probs = channel.kernel.conditional_batch(pats)
                rng = np.random.default_rng(1)
                seconds = _best_of(lambda: channel.counterfactual_batch(pats, rng), reps)
            entry = {
                "n": n,
                "mode": mode,
                "seconds": seconds,
                "patterns_per_s": SCALING_BATCH / max(seconds, 1e-12),
            }
            if mode == "dense":
                dense_seconds, dense_probs = seconds, probs
            elif dense_probs is not None:
                entry["speedup_vs_dense"] = dense_seconds / max(seconds, 1e-12)
                entry["max_abs_dev"] = float(np.max(np.abs(probs - dense_probs)))
            if name_filter is None or name_filter in name:
                entries[name] = entry
                extra = (
                    f"  ({entry['speedup_vs_dense']:5.1f}x dense, "
                    f"dev {entry['max_abs_dev']:.2e})"
                    if "speedup_vs_dense" in entry
                    else ""
                )
                print(f"  {name:28s} {seconds:10.3e}s{extra}")
    return entries


def check_scaling(entries: dict) -> list[str]:
    """Compare scaling timings to the recorded baseline and enforce the
    sparse-speedup floor at large n; returns failure descriptions."""
    failures = []
    recorded = {}
    if SCALING_PATH.exists():
        recorded = json.loads(SCALING_PATH.read_text(encoding="utf-8")).get("entries", {})
    elif entries:
        failures.append(
            f"no recorded scaling baseline at {SCALING_PATH}; run without --check first"
        )
    for name, entry in entries.items():
        base = recorded.get(name)
        if base is not None and entry["seconds"] > REGRESSION_FACTOR * base["seconds"]:
            failures.append(
                f"{name}: {entry['seconds']:.3e}s vs recorded "
                f"{base['seconds']:.3e}s (>{REGRESSION_FACTOR:.0f}x regression)"
            )
        if (
            entry["n"] >= SPARSE_FLOOR_MIN_N
            and entry["mode"].endswith(f"topk{SCALING_TOPK}")
            and "speedup_vs_dense" in entry
            and entry["speedup_vs_dense"] < SPARSE_SPEEDUP_FLOOR
        ):
            failures.append(
                f"{name}: top-k sparse only {entry['speedup_vs_dense']:.1f}x dense "
                f"(floor {SPARSE_SPEEDUP_FLOOR:.0f}x at n >= {SPARSE_FLOOR_MIN_N})"
            )
    return failures


# ---------------------------------------------------------------------------
# Latency slot-loop kernels: sequential per-slot loop vs the block engine.
# ---------------------------------------------------------------------------


def _naive_slot_loop(channel, q_of_step, gen, executions: int, max_steps: int):
    """The pre-engine sequential contention loop — one
    ``channel.realize`` interpreter round trip per physical slot (the
    original ``_run_protocol`` form, generalized to a per-step
    probability function so it covers both ALOHA and the decay sweep)."""
    n = channel.n
    unserved = np.ones(n, dtype=bool)
    served_at = np.full(n, -1, dtype=np.int64)
    slots: list[np.ndarray] = []
    steps = 0
    while unserved.any():
        if steps >= max_steps:
            return False, slots, served_at
        q = q_of_step(steps)
        steps += 1
        for _ in range(executions):
            transmit = unserved & (gen.random(n) < q)
            slots.append(np.flatnonzero(transmit))
            if not transmit.any():
                continue
            ok = channel.realize(transmit, gen)
            newly = ok & unserved
            served_at[newly] = len(slots) - 1
            unserved &= ~ok
    return True, slots, served_at


def measure_latency(
    repeats: int,
    benches: "tuple[tuple, ...]",
    name_filter: "str | None" = None,
    known: "list[str] | None" = None,
) -> dict:
    """Sequential vs engine wall clock per contention scheduler and size.

    Both paths run the same warm Rayleigh channel (built once, kernel
    caches retained, ``reset()`` between runs — experiments reuse
    channels, so steady-state cost is the honest comparison) from the
    same seed, with the Section-4 ``repeats=4`` transformation.  The
    reference (``before_s``) is the retained pre-engine per-slot loop,
    or — for the ``engine_b1`` entries — the engine's own sequential
    ``slot_block=1`` execution.  Entries are named
    ``latency_{scheduler}_n{n}`` so ``--filter latency`` selects the
    sweep.
    """
    import math

    from repro.channel.spec import make_channel
    from repro.latency.aloha import _auto_probability
    from repro.latency.slotloop import run_contention

    kernels: dict[str, dict] = {}
    for sched, n, side, reference, partial_steps, q_override in benches:
        name = f"latency_{sched}_n{n}"
        if known is not None:
            known.append(name)
        if name_filter is not None and name_filter not in name:
            continue
        s, r = paper_random_network(n, area=side, rng=n)
        inst = SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)
        ch = make_channel("rayleigh", inst, BETA)
        sweep = max(1, int(math.ceil(math.log2(max(n, 2)))) + 1)
        if sched == "aloha":
            q = q_override if q_override is not None else _auto_probability(inst, BETA)
            q_of_step = lambda step, qv=q: qv
            full_steps = int(200 * n / q)
        else:
            q_of_step = lambda step, sl=sweep: 2.0 ** (-((step % sl) + 1))
            full_steps = 50 * n * sweep
        steps = partial_steps if partial_steps is not None else full_steps

        def engine_fn(qf=q_of_step, st=steps, c=ch, seed=n, block=None):
            c.reset()
            return run_contention(
                c, qf, np.random.default_rng(seed),
                executions=LATENCY_REPEATS, max_steps=st, slot_block=block,
            )

        if reference == "naive":
            def ref_fn(qf=q_of_step, st=steps, c=ch, seed=n):
                c.reset()
                return _naive_slot_loop(
                    c, qf, np.random.default_rng(seed), LATENCY_REPEATS, st
                )
        else:
            def ref_fn(run=engine_fn):
                return run(block=1)

        # Warm both paths once (kernel tensors, screen tables).
        engine_fn()
        reps = max(1, repeats if n <= 300 else (repeats // 2 if n <= 1000 else 1))
        before = _best_of(ref_fn, reps)
        after = _best_of(engine_fn, reps)
        kernels[name] = {
            "before_s": before,
            "after_s": after,
            "speedup": before / max(after, 1e-12),
            "reference": reference,
            "side": side,
            "protocol_steps": steps if partial_steps is not None else "full",
        }
        print(
            f"  {name:35s} {before:10.3e}s -> {after:10.3e}s   "
            f"({kernels[name]['speedup']:6.1f}x)"
        )
    return kernels


def check_speedup_floors(kernels: dict) -> list[str]:
    """Enforce per-kernel speedup floors on the *measured* entries; a
    kernel without a ``KERNEL_EXPECTATIONS`` floor must not lose to its
    reference, and ``floor: None`` entries are exempt by annotation."""
    failures = []
    for name, entry in kernels.items():
        expectation = KERNEL_EXPECTATIONS.get(name, {})
        floor = expectation.get("floor", DEFAULT_SPEEDUP_FLOOR)
        if floor is None:
            continue
        if entry["speedup"] < floor:
            failures.append(
                f"{name}: speedup {entry['speedup']:.2f}x below floor {floor:.2f}x"
            )
    return failures


# ---------------------------------------------------------------------------
# Executor throughput: dispatch backend vs the process pool.
# ---------------------------------------------------------------------------

EXECUTOR_BENCH = "executor_dispatch_vs_pool_32tasks"
EXECUTOR_TASKS = 32
EXECUTOR_JOBS = 4
EXECUTOR_TASK_SLEEP = 0.01


def measure_executor(
    repeats: int,
    name_filter: "str | None" = None,
    known: "list[str] | None" = None,
) -> dict:
    """One identical sweep end-to-end on the process pool (``before_s``)
    vs the dispatch backend with the same local worker count
    (``after_s``).  The tasks sleep a fixed 10ms so the entry measures
    orchestration overhead — queue files, leases, envelope streaming —
    not kernel arithmetic."""
    if known is not None:
        known.append(EXECUTOR_BENCH)
    if name_filter is not None and name_filter not in EXECUTOR_BENCH:
        return {}
    import tempfile

    from repro.engine.backends import DispatchBackend
    from repro.engine.backends.dispatch import sleep_echo_task
    from repro.engine.executor import make_tasks, map_tasks

    tasks = make_tasks(
        [{"v": i, "sleep": EXECUTOR_TASK_SLEEP} for i in range(EXECUTOR_TASKS)],
        root_seed=0,
    )
    reps = max(1, repeats // 2)
    pool_s = _best_of(
        lambda: map_tasks(
            sleep_echo_task, tasks, jobs=EXECUTOR_JOBS, executor="pool",
            stage="bench-pool",
        ),
        reps,
    )
    with tempfile.TemporaryDirectory() as root:
        backend = DispatchBackend(
            root, local_workers=EXECUTOR_JOBS, lease_timeout=10.0, poll=0.005
        )
        try:
            # Warm-up: spawns the local workers and pays their import cost
            # once, matching the pool measurement (best-of over repeats).
            map_tasks(sleep_echo_task, tasks[:EXECUTOR_JOBS],
                      executor=backend, stage="bench-warm")
            dispatch_s = _best_of(
                lambda: map_tasks(
                    sleep_echo_task, tasks, executor=backend,
                    stage="bench-dispatch",
                ),
                reps,
            )
        finally:
            backend.close()
    entry = {
        "before_s": pool_s,
        "after_s": dispatch_s,
        "speedup": pool_s / max(dispatch_s, 1e-12),
    }
    print(
        f"  {EXECUTOR_BENCH:35s} {pool_s:10.3e}s -> {dispatch_s:10.3e}s   "
        f"({entry['speedup']:6.1f}x)"
    )
    return {EXECUTOR_BENCH: entry}


def run_pytest_benches() -> dict:
    """Run every ``bench_*.py`` under pytest; record outcome and duration."""
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider", str(BENCH_DIR)],
        cwd=BENCH_DIR.parent,
    )
    return {
        "passed": proc.returncode == 0,
        "seconds": time.perf_counter() - start,
    }


def check_against_baseline(kernels: dict) -> list[str]:
    """Compare fast-path timings to the recorded summary; list failures."""
    if not SUMMARY_PATH.exists():
        return [f"no recorded baseline at {SUMMARY_PATH}; run without --check first"]
    recorded = json.loads(SUMMARY_PATH.read_text(encoding="utf-8"))["kernels"]
    failures = []
    for name, entry in kernels.items():
        base = recorded.get(name)
        if base is None:
            continue
        if entry["after_s"] > REGRESSION_FACTOR * base["after_s"]:
            failures.append(
                f"{name}: {entry['after_s']:.3e}s vs recorded "
                f"{base['after_s']:.3e}s (>{REGRESSION_FACTOR:.0f}x regression)"
            )
    return failures


def _merge_write(path: Path, fresh: dict, key: str, config: dict) -> None:
    """Write a baseline file, merging ``fresh`` into any recorded entries
    under ``key`` — a ``--filter`` run must not clobber what it skipped."""
    doc = {"config": config, key: fresh}
    if path.exists():
        recorded = json.loads(path.read_text(encoding="utf-8"))
        merged = dict(recorded.get(key, {}))
        merged.update(fresh)
        doc = dict(recorded)
        doc["config"] = config
        doc[key] = merged
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer timing repeats, the short scaling sweep, and skip the "
        "pytest experiment benches",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the recorded BENCH_summary.json / "
        "BENCH_scaling.json instead of rewriting them; exit 1 on a >5x "
        "fast-path regression or a sparse speedup below the floor",
    )
    parser.add_argument(
        "--filter",
        default=None,
        metavar="SUBSTR",
        help="only kernels/scaling entries whose name contains SUBSTR "
        "(partial runs merge into the recorded baselines)",
    )
    args = parser.parse_args(argv)

    repeats = 3 if args.quick else 7
    known: "list[str]" = []
    print(f"timing hot-path kernels (n={N}, T={T}, batch={BATCH}) ...")
    kernels = measure_kernels(repeats, args.filter, known)

    ns = SCALING_NS_QUICK if args.quick else SCALING_NS
    print(
        f"timing backend n-scaling (counterfactual_batch, batch={SCALING_BATCH}, "
        f"topk={SCALING_TOPK}, n in {ns}) ..."
    )
    scaling = measure_scaling(repeats, ns, args.filter, known)

    benches = (
        LATENCY_BENCHES_QUICK
        if args.quick
        else LATENCY_BENCHES_QUICK + LATENCY_BENCHES
    )
    print(
        f"timing latency slot-loop kernels (rayleigh, repeats={LATENCY_REPEATS}, "
        f"{len(benches)} configs) ..."
    )
    kernels.update(measure_latency(repeats, benches, args.filter, known))

    print(
        f"timing executor throughput (pool vs dispatch, {EXECUTOR_TASKS} tasks, "
        f"{EXECUTOR_JOBS} workers) ..."
    )
    kernels.update(measure_executor(repeats, args.filter, known))

    import bench_obs

    known.append("bench_obs")
    run_obs = args.filter is None or args.filter in "bench_obs"
    obs_results = None
    if run_obs:
        print("timing telemetry overhead (bench_obs) ...")
        obs_results = bench_obs.measure_overhead(repeats)

    if args.filter is not None and not kernels and not scaling and obs_results is None:
        print(
            f"--filter {args.filter!r} matched no bench; known names:",
            file=sys.stderr,
        )
        for name in known:
            print(f"  {name}", file=sys.stderr)
        return 2

    summary = {
        "config": {"n": N, "T": T, "batch": BATCH, "beta": BETA,
                   "block_length": BLOCK_L, "block_slots": BLOCK_SLOTS},
        "kernels": kernels,
    }

    if not args.quick and args.filter is None:
        print("running pytest benches (bench_*.py) ...")
        summary["pytest_benches"] = run_pytest_benches()
        if not summary["pytest_benches"]["passed"]:
            print("pytest benches FAILED", file=sys.stderr)
            return 1

    if args.check:
        failures = check_against_baseline(kernels)
        failures += check_speedup_floors(kernels)
        failures += check_scaling(scaling)
        if obs_results is not None:
            failures += bench_obs.check_overhead(obs_results)
        if failures:
            for line in failures:
                print("PERF REGRESSION:", line, file=sys.stderr)
            return 1
        print("perf check passed: every fast path within "
              f"{REGRESSION_FACTOR:.0f}x of its recorded baseline and above "
              "its speedup floor, sparse "
              f"top-k >= {SPARSE_SPEEDUP_FLOOR:.0f}x dense at n >= "
              f"{SPARSE_FLOOR_MIN_N}, and telemetry overhead within "
              f"{bench_obs.OVERHEAD_BUDGET:.0%}")
        return 0

    if args.filter is None:
        SUMMARY_PATH.write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {SUMMARY_PATH}")
    else:
        _merge_write(SUMMARY_PATH, kernels, "kernels", summary["config"])
    _merge_write(
        SCALING_PATH,
        scaling,
        "entries",
        {
            "batch": SCALING_BATCH,
            "topk": SCALING_TOPK,
            "beta": BETA,
            "sparse_speedup_floor": SPARSE_SPEEDUP_FLOOR,
            "sparse_floor_min_n": SPARSE_FLOOR_MIN_N,
        },
    )
    if obs_results is not None:
        bench_obs.write_baseline(obs_results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
