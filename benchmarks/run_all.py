"""Perf-regression harness for the hot-path kernels.

Times every cached/batched fast path against a retained *naive
reference* — the per-call / per-slot loop form the code used before the
kernel-caching work — and records per-kernel before/after seconds and
speedups in ``benchmarks/BENCH_summary.json``::

    PYTHONPATH=src python benchmarks/run_all.py            # full run: micro-kernels
                                                           # + every bench_*.py, rewrite baseline
    PYTHONPATH=src python benchmarks/run_all.py --quick    # micro-kernels only, fewer repeats
    PYTHONPATH=src python benchmarks/run_all.py --quick --check
                                                           # CI perf smoke: compare the fast-path
                                                           # timings against the recorded baseline
                                                           # and exit non-zero on a >5x regression

The naive references are kept *here*, not in the library: they pin the
cost model the optimisations were measured against, so the speedup
column stays meaningful after the original code is gone.  ``--check``
compares only the fast-path ("after") timings — reference timings drift
with the machine, but a fast path that lands within the regression
budget of its own recorded baseline is healthy regardless.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.channel import NonFadingChannel, RayleighChannel
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.geometry.placement import paper_random_network
from repro.learning.regret import expected_send_rewards, lemma5_quantities

BENCH_DIR = Path(__file__).resolve().parent
SUMMARY_PATH = BENCH_DIR / "BENCH_summary.json"

N = 100
T = 2000
BATCH = 256
BETA = 2.5
BLOCK_L = 16
BLOCK_SLOTS = 512

#: ``--check`` fails when a fast path runs slower than this multiple of
#: its recorded baseline.
REGRESSION_FACTOR = 5.0


def _instance() -> SINRInstance:
    s, r = paper_random_network(N, rng=0)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


# ---------------------------------------------------------------------------
# Naive references — the pre-caching per-call/per-slot forms.
# ---------------------------------------------------------------------------


def _naive_conditional(instance: SINRInstance, q: np.ndarray, beta: float) -> np.ndarray:
    """Theorem-1 conditional probabilities, rebuilt from scratch per call
    (the original scalar-kernel form: one (n, n) factor matrix + product)."""
    signal = instance.signal
    t = beta * instance.gains
    factors = 1.0 - q[:, None] * (t / (t + signal[None, :]))
    np.fill_diagonal(factors, 1.0)
    prod = np.prod(factors, axis=0)
    noise_term = np.exp(-beta * instance.noise / signal)
    return noise_term * prod


def _naive_expected_send_rewards(
    instance: SINRInstance, actions: np.ndarray, beta: float
) -> np.ndarray:
    """Per-round loop of scalar Theorem-1 kernels (the pre-batching form)."""
    out = np.empty(actions.shape, dtype=np.float64)
    for t in range(actions.shape[0]):
        q = actions[t].astype(np.float64)
        out[t] = 2.0 * _naive_conditional(instance, q, beta) - 1.0
    return out


def _naive_lemma5(
    instance: SINRInstance, actions: np.ndarray, beta: float
) -> tuple[float, float]:
    rounds = actions.shape[0]
    f = actions.mean(axis=0)
    x = np.zeros(instance.n, dtype=np.float64)
    for t in range(rounds):
        q = actions[t].astype(np.float64)
        probs = _naive_conditional(instance, q, beta)
        x += np.where(actions[t], probs, 0.0)
    x /= rounds
    return float(x.sum()), float(f.sum())


def _naive_rayleigh_counterfactual(
    instance: SINRInstance, mask: np.ndarray, beta: float, gen: np.random.Generator
) -> np.ndarray:
    p = _naive_conditional(instance, mask.astype(np.float64), beta)
    return gen.random(instance.n) < p


def _naive_nonfading_counterfactual(
    instance: SINRInstance, mask: np.ndarray, beta: float
) -> np.ndarray:
    """The division-based had-I-sent test recomputed per call."""
    diag = instance.signal
    interference = mask.astype(np.float64) @ instance.gains - mask * diag
    denom = interference + instance.noise
    with np.errstate(divide="ignore"):
        sinr = np.where(denom > 0.0, diag / np.maximum(denom, 1e-300), np.inf)
    return sinr >= beta


# ---------------------------------------------------------------------------
# Timing helpers.
# ---------------------------------------------------------------------------


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_kernels(repeats: int) -> dict:
    """Time every (naive, fast) kernel pair; returns the summary mapping."""
    inst = _instance()
    gen = np.random.default_rng(0)
    actions = gen.random((T, N)) < 0.4
    mask = np.zeros(N, dtype=bool)
    mask[:40] = True
    patterns = gen.random((BATCH, N)) < 0.4

    ray = RayleighChannel(inst, BETA)
    nf = NonFadingChannel(inst, BETA)
    # Warm the cached tensors so "after" measures the steady state the
    # game/scheduler loops actually run in.
    ray.counterfactual(mask, np.random.default_rng(1))
    nf.counterfactual(mask)

    kernels: dict[str, dict] = {}

    def record(name, naive_fn, fast_fn, *, calls=1, naive_repeats=None):
        before = _best_of(naive_fn, naive_repeats or repeats) / calls
        after = _best_of(fast_fn, repeats) / calls
        kernels[name] = {
            "before_s": before,
            "after_s": after,
            "speedup": before / max(after, 1e-12),
        }
        print(
            f"  {name:35s} {before:10.3e}s -> {after:10.3e}s   "
            f"({kernels[name]['speedup']:6.1f}x)"
        )

    record(
        "expected_send_rewards_T2000_n100",
        lambda: _naive_expected_send_rewards(inst, actions, BETA),
        lambda: expected_send_rewards(inst, actions, BETA),
        naive_repeats=max(1, repeats // 2),
    )
    record(
        "lemma5_quantities_T2000_n100",
        lambda: _naive_lemma5(inst, actions, BETA),
        lambda: lemma5_quantities(inst, actions, BETA),
        naive_repeats=max(1, repeats // 2),
    )

    cf_calls = 200
    g1, g2 = np.random.default_rng(3), np.random.default_rng(3)
    record(
        "rayleigh_counterfactual_per_call",
        lambda: [
            _naive_rayleigh_counterfactual(inst, mask, BETA, g1)
            for _ in range(cf_calls)
        ],
        lambda: [ray.counterfactual(mask, g2) for _ in range(cf_calls)],
        calls=cf_calls,
    )
    record(
        "nonfading_counterfactual_per_call",
        lambda: [
            _naive_nonfading_counterfactual(inst, mask, BETA) for _ in range(cf_calls)
        ],
        lambda: [nf.counterfactual(mask) for _ in range(cf_calls)],
        calls=cf_calls,
    )

    g3, g4 = np.random.default_rng(4), np.random.default_rng(4)
    record(
        "rayleigh_counterfactual_batch_256",
        lambda: [
            _naive_rayleigh_counterfactual(inst, patterns[b], BETA, g3)
            for b in range(BATCH)
        ],
        lambda: ray.counterfactual_batch(patterns, g4),
    )

    from repro.fading.block import BlockFadingChannel

    def naive_block():
        ch = BlockFadingChannel(inst, BLOCK_L, rng=7)
        return [ch.step(mask, BETA) for _ in range(BLOCK_SLOTS)]

    def fast_block():
        ch = BlockFadingChannel(inst, BLOCK_L, rng=7)
        return ch.run(mask, BETA, BLOCK_SLOTS)

    record("block_fading_run_L16_512slots", naive_block, fast_block)
    return kernels


def run_pytest_benches() -> dict:
    """Run every ``bench_*.py`` under pytest; record outcome and duration."""
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider", str(BENCH_DIR)],
        cwd=BENCH_DIR.parent,
    )
    return {
        "passed": proc.returncode == 0,
        "seconds": time.perf_counter() - start,
    }


def check_against_baseline(kernels: dict) -> list[str]:
    """Compare fast-path timings to the recorded summary; list failures."""
    if not SUMMARY_PATH.exists():
        return [f"no recorded baseline at {SUMMARY_PATH}; run without --check first"]
    recorded = json.loads(SUMMARY_PATH.read_text(encoding="utf-8"))["kernels"]
    failures = []
    for name, entry in kernels.items():
        base = recorded.get(name)
        if base is None:
            continue
        if entry["after_s"] > REGRESSION_FACTOR * base["after_s"]:
            failures.append(
                f"{name}: {entry['after_s']:.3e}s vs recorded "
                f"{base['after_s']:.3e}s (>{REGRESSION_FACTOR:.0f}x regression)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer timing repeats and skip the pytest experiment benches",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the recorded BENCH_summary.json instead of "
        "rewriting it; exit 1 on a >5x fast-path regression",
    )
    args = parser.parse_args(argv)

    repeats = 3 if args.quick else 7
    print(f"timing hot-path kernels (n={N}, T={T}, batch={BATCH}) ...")
    kernels = measure_kernels(repeats)

    import bench_obs

    print("timing telemetry overhead (bench_obs) ...")
    obs_results = bench_obs.measure_overhead(repeats)

    summary = {
        "config": {"n": N, "T": T, "batch": BATCH, "beta": BETA,
                   "block_length": BLOCK_L, "block_slots": BLOCK_SLOTS},
        "kernels": kernels,
    }

    if not args.quick:
        print("running pytest benches (bench_*.py) ...")
        summary["pytest_benches"] = run_pytest_benches()
        if not summary["pytest_benches"]["passed"]:
            print("pytest benches FAILED", file=sys.stderr)
            return 1

    if args.check:
        failures = check_against_baseline(kernels)
        failures += bench_obs.check_overhead(obs_results)
        if failures:
            for line in failures:
                print("PERF REGRESSION:", line, file=sys.stderr)
            return 1
        print("perf check passed: every fast path within "
              f"{REGRESSION_FACTOR:.0f}x of its recorded baseline and "
              f"telemetry overhead within {bench_obs.OVERHEAD_BUDGET:.0%}")
        return 0

    SUMMARY_PATH.write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {SUMMARY_PATH}")
    bench_obs.write_baseline(obs_results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
