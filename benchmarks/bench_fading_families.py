"""E14 — Nakagami-m / Rician-K retention (beyond-Rayleigh outlook).

Paper reference: Section 8's hope that the techniques extend to further
fading models.  Expected shape: retention of the greedy schedule rises
monotonically from the Rayleigh value towards 1 as fading gets milder
(m or K grows); the m = 1 and K = 0 points match exact Rayleigh; every
setting stays above the Lemma-2 floor 1/e.
"""

from repro.experiments import run_fading_families

from conftest import paper_scale


def test_fading_families(benchmark, record_result):
    slots = 10000 if paper_scale() else 2000
    result = benchmark.pedantic(
        run_fading_families, kwargs={"mc_slots": slots}, rounds=1, iterations=1
    )
    record_result(result)
