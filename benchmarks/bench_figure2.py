"""E2 — regenerate Figure 2 (no-regret learning over time).

Paper reference: Section 7, Figure 2.  RWM learners with the paper's loss
table and η schedule on 200-link networks (β = 0.5, α = 2.1, ν = 0).
Expected shape: both models converge within ~30–40 rounds to near the
non-fading optimum; the Rayleigh curve is noisier and slightly lower.
"""

from repro.experiments import Figure2Config, run_figure2

from conftest import paper_scale


def test_figure2(benchmark, record_result):
    cfg = Figure2Config.paper() if paper_scale() else Figure2Config.quick()
    result = benchmark.pedantic(run_figure2, args=(cfg,), rounds=1, iterations=1)
    record_result(result)
