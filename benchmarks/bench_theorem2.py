"""E6 — Theorem 2 / Algorithm 1: O(log* n) simulation of the Rayleigh optimum.

Paper reference: Theorem 2, Lemma 3, Algorithm 1 (Section 5).  Expected
shape: the simulation's any-slot success probability dominates the exact
single-slot Rayleigh probability per link; the stage count tracks log* n
(7 stages at n = 100).
"""

from repro.experiments import run_theorem2

from conftest import paper_scale


def test_theorem2_simulation(benchmark, record_result):
    sizes = (20, 50, 100, 200) if paper_scale() else (20, 50, 100)
    trials = 500 if paper_scale() else 150
    result = benchmark.pedantic(
        run_theorem2, kwargs={"sizes": sizes, "trials": trials},
        rounds=1, iterations=1,
    )
    record_result(result)
