"""Performance microbenchmarks of the library's hot kernels.

These time the vectorized primitives that every experiment is built on,
at paper scale (n = 100–200 links), so performance regressions in the
numerical core are caught independently of the experiment drivers.
"""

import time

import numpy as np
import pytest

from repro.capacity.greedy import greedy_capacity
from repro.capacity.optimum import local_search_capacity
from repro.core.affectance import affectance_matrix
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance, mean_signal_matrix
from repro.fading.rayleigh import (
    sample_fading_gains,
    simulate_sinr_patterns,
    simulate_slots,
    simulate_slots_bernoulli,
)
from repro.fading.success import (
    success_probability,
    success_probability_conditional_batch,
)
from repro.geometry.placement import paper_random_network
from repro.learning.game import CapacityGame
from repro.transform.simulation import simulate_rayleigh_optimum

BETA = 2.5


@pytest.fixture(scope="module")
def net100() -> Network:
    s, r = paper_random_network(100, rng=0)
    return Network(s, r)


@pytest.fixture(scope="module")
def inst100(net100) -> SINRInstance:
    return SINRInstance.from_network(net100, UniformPower(2.0), 2.2, 4e-7)


def test_gain_matrix_build(benchmark, net100):
    benchmark(mean_signal_matrix, net100, UniformPower(2.0), 2.2)


def test_sinr_batch_100x256(benchmark, inst100):
    patterns = np.random.default_rng(1).random((256, 100)) < 0.5
    benchmark(inst100.sinr_batch, patterns)


def test_theorem1_success_probability(benchmark, inst100):
    q = np.full(100, 0.5)
    benchmark(success_probability, inst100, q, BETA)


def test_theorem1_conditional_batch_256(benchmark, inst100):
    patterns = np.random.default_rng(2).random((256, 100)) < 0.5
    benchmark(success_probability_conditional_batch, inst100, patterns, BETA)


def test_affectance_matrix(benchmark, inst100):
    benchmark(affectance_matrix, inst100, BETA)


def test_fading_sample_100_slots(benchmark, inst100):
    gen = np.random.default_rng(3)
    benchmark(sample_fading_gains, inst100, gen, 100)


def test_bernoulli_slots_1000(benchmark, inst100):
    active = np.zeros(100, dtype=bool)
    active[:40] = True
    gen = np.random.default_rng(4)
    benchmark(simulate_slots_bernoulli, inst100, active, BETA, gen, num_slots=1000)


def _loop_success_counts(inst, qv, beta, gen, num_samples):
    """The seed repository's Monte-Carlo inner loop: one
    ``simulate_slots`` call per drawn transmit pattern.  Kept verbatim as
    the baseline the batched kernel is measured against."""
    counts = np.zeros(inst.n, dtype=np.int64)
    batch = 64
    done = 0
    while done < num_samples:
        t = min(batch, num_samples - done)
        patterns = gen.random((t, inst.n)) < qv
        for row in patterns:
            if row.any():
                counts += simulate_slots(inst, row, beta, gen, num_slots=1)[0]
        done += t
    return counts


def _batched_success_counts(inst, qv, beta, gen, num_samples):
    patterns = gen.random((num_samples, inst.n)) < qv
    sinr = simulate_sinr_patterns(inst, patterns, gen)
    return ((sinr >= beta) & patterns).sum(axis=0)


def test_batched_mc_kernel_speedup(inst100):
    """The batched ``(T, n, n)`` Monte-Carlo kernel must beat the seed's
    per-pattern Python loop by >= 3x at n=100, T=1000 (it measures ~10x+
    in practice; the margin absorbs machine noise)."""
    qv = np.full(100, 0.5)
    num_samples = 1000
    # Warm-up both paths once so allocator/first-call costs don't skew.
    _loop_success_counts(inst100, qv, BETA, np.random.default_rng(0), 64)
    _batched_success_counts(inst100, qv, BETA, np.random.default_rng(0), 64)

    def best_of(fn, repeats=3):
        times = []
        for rep in range(repeats):
            gen = np.random.default_rng(100 + rep)
            start = time.perf_counter()
            fn(inst100, qv, BETA, gen, num_samples)
            times.append(time.perf_counter() - start)
        return min(times)

    loop_time = best_of(_loop_success_counts)
    batched_time = best_of(_batched_success_counts)
    speedup = loop_time / batched_time
    print(
        f"\nbatched MC kernel: loop {loop_time * 1e3:.1f} ms, "
        f"batched {batched_time * 1e3:.1f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= 3.0, f"batched kernel only {speedup:.2f}x faster than loop"


def test_sinr_patterns_batched_1000(benchmark, inst100):
    gen = np.random.default_rng(8)
    patterns = gen.random((1000, 100)) < 0.5
    benchmark(simulate_sinr_patterns, inst100, patterns, gen)


def test_greedy_capacity_n100(benchmark, inst100):
    benchmark(greedy_capacity, inst100, BETA)


def test_local_search_n100(benchmark, inst100):
    benchmark.pedantic(
        local_search_capacity, args=(inst100, BETA),
        kwargs={"rng": 5, "restarts": 3}, rounds=3, iterations=1,
    )


def test_algorithm1_simulation_n100(benchmark, inst100):
    q = np.full(100, 0.5)
    gen = np.random.default_rng(6)
    benchmark(simulate_rayleigh_optimum, inst100, q, BETA, gen)


def test_capacity_game_50_rounds_n100(benchmark, inst100):
    def run():
        return CapacityGame(inst100, BETA, model="rayleigh", rng=7).play(50)

    benchmark.pedantic(run, rounds=3, iterations=1)
