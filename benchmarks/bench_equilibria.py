"""E16 — equilibria of the capacity game and their price of anarchy.

Paper reference: Section 6's remark that no-regret sequences generalize
Nash equilibria, transferring the game-theoretic studies of
Andrews–Dinitz [5].  Expected shape: best-response dynamics converge on
most starts; non-fading equilibria sit near the optimum (empirical PoA
≈ 1); Rayleigh equilibria carry the fading discount but keep a constant
fraction of OPT.
"""

from repro.experiments import run_equilibria_study

from conftest import paper_scale


def test_equilibria_study(benchmark, record_result):
    kwargs = (
        {"num_networks": 8, "num_starts": 12}
        if paper_scale()
        else {"num_networks": 4, "num_starts": 8}
    )
    result = benchmark.pedantic(
        run_equilibria_study, kwargs=kwargs, rounds=1, iterations=1
    )
    record_result(result)
