"""Telemetry-overhead benchmark: instrumented kernels, sink on vs off.

The observability layer promises that its instrumentation is near-free:
every hot-path report is a module-level call whose inactive fast path is
two ``None`` checks (:mod:`repro.obs.metrics`).  This bench measures the
*active* cost — the same kernel workloads timed with no sink installed
and then inside an ``obs_scope`` with a metrics registry collecting —
and records both timings plus the relative overhead::

    PYTHONPATH=src python benchmarks/bench_obs.py           # measure, rewrite BENCH_obs.json
    PYTHONPATH=src python benchmarks/bench_obs.py --check   # fail (exit 1) when overhead > 5%

``benchmarks/run_all.py`` runs the same measurement: a full run rewrites
the ``BENCH_obs.json`` baseline, and ``run_all.py --check`` fails on an
overhead budget violation exactly like ``--check`` here.

Workloads cover the two kernel families the acceptance bar names: the
Theorem-1 batched conditional kernel (counter per call + per pattern
row) and the Monte-Carlo SINR sampler (counter per slot batch) — plus,
since the live-observability work, one end-to-end sweep on the
**dispatch executor** (2 local workers) with the full monitored stack
on: metrics, stitched span collection, and the event bus with
heartbeats.  Timings are best-of-``repeats``; the overhead check also
requires the absolute slowdown to exceed a per-entry floor (``floor_s``,
default :data:`ABSOLUTE_FLOOR_S`) so timer noise — much larger for the
file-queue dispatch path than for in-process kernels — cannot fail CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.fading.rayleigh import simulate_sinr_patterns
from repro.fading.success import Theorem1Kernel
from repro.geometry.placement import paper_random_network
from repro.obs import MetricsRegistry, Telemetry, obs_scope

BENCH_DIR = Path(__file__).resolve().parent
BASELINE_PATH = BENCH_DIR / "BENCH_obs.json"

N = 100
BATCH = 256
MC_SLOTS = 512
BETA = 2.5
#: Kernel invocations per timed call — keeps one measurement at several
#: milliseconds so the relative overhead is resolvable above timer noise.
INNER_CALLS = {"theorem1": 32, "mc": 4}

#: ``--check`` fails when telemetry makes a kernel more than 5% slower ...
OVERHEAD_BUDGET = 0.05
#: ... provided the absolute slowdown also exceeds this floor (seconds);
#: below it the "overhead" is indistinguishable from timer noise.
ABSOLUTE_FLOOR_S = 2e-4

#: Dispatch-overhead workload: a sleep-task sweep on the file-queue
#: backend with the whole monitored stack on (metrics + span collection
#: + event bus with heartbeats) vs the same sweep dark.
DISPATCH_TASKS = 24
DISPATCH_WORKERS = 2
DISPATCH_SLEEP = 0.005
#: Dispatch wall-clock is dominated by queue/lease file churn and worker
#: polling, which jitter far beyond the kernel floor; the entry carries
#: its own absolute floor so only a real regression can fail ``--check``.
DISPATCH_FLOOR_S = 0.15


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _workloads():
    """Named thunks over the instrumented kernels, pre-warmed."""
    s, r = paper_random_network(N, rng=0)
    inst = SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)
    patterns = np.random.default_rng(1).random((BATCH, N)) < 0.4
    mc_patterns = np.random.default_rng(2).random((MC_SLOTS, N)) < 0.4

    kernel = Theorem1Kernel(inst, BETA)
    kernel.conditional_batch(patterns)  # build the cached tensors once

    def theorem1():
        for _ in range(INNER_CALLS["theorem1"]):
            kernel.conditional_batch(patterns)

    def monte_carlo():
        for _ in range(INNER_CALLS["mc"]):
            simulate_sinr_patterns(inst, mc_patterns, rng=np.random.default_rng(3))

    return {
        f"theorem1_conditional_batch_{BATCH}x{N}": theorem1,
        f"mc_simulate_sinr_patterns_{MC_SLOTS}x{N}": monte_carlo,
    }


def measure_overhead(repeats: int = 7) -> dict:
    """Time each workload with telemetry off and on; return the mapping."""
    results: dict[str, dict] = {}
    telemetry = Telemetry(metrics=MetricsRegistry())
    for name, fn in _workloads().items():
        off = _best_of(fn, repeats)
        with obs_scope(telemetry):
            on = _best_of(fn, repeats)
        overhead = on / off - 1.0
        results[name] = {
            "off_s": off,
            "on_s": on,
            "overhead": overhead,
        }
        print(f"  {name:42s} off {off:9.3e}s  on {on:9.3e}s  ({overhead:+7.2%})")
    results.update(measure_dispatch_overhead(repeats))
    return results


def measure_dispatch_overhead(repeats: int = 7) -> dict:
    """Time one sweep on the dispatch executor, dark vs fully monitored.

    The "on" measurement runs the complete live-observability stack a
    ``repro run --executor dispatch --monitor --trace --metrics``
    invocation would: a metrics registry, a tracer (so workers buffer
    task spans and the dispatcher stitches them), and an event bus under
    the runs root (task lifecycle, leases, heartbeats from dispatcher
    and workers).  One warm backend serves both measurements so worker
    spawn/import cost cancels out.
    """
    import tempfile

    from repro.engine.backends import DispatchBackend
    from repro.engine.backends.dispatch import sleep_echo_task
    from repro.engine.executor import make_tasks, map_tasks
    from repro.obs import EventBus, TraceWriter

    tasks = make_tasks(
        [{"v": i, "sleep": DISPATCH_SLEEP} for i in range(DISPATCH_TASKS)],
        root_seed=0,
    )
    reps = max(2, repeats // 2)
    with tempfile.TemporaryDirectory() as root:
        backend = DispatchBackend(
            root, local_workers=DISPATCH_WORKERS, lease_timeout=10.0, poll=0.005
        )
        try:
            map_tasks(sleep_echo_task, tasks[:DISPATCH_WORKERS],
                      executor=backend, stage="bench-warm")
            off = _best_of(
                lambda: map_tasks(sleep_echo_task, tasks, executor=backend,
                                  stage="bench-off"),
                reps,
            )
            telemetry = Telemetry(
                tracer=TraceWriter(Path(root) / "trace.jsonl"),
                metrics=MetricsRegistry(),
                events=EventBus(Path(root) / "events", "bench-run"),
            )
            with obs_scope(telemetry):
                on = _best_of(
                    lambda: map_tasks(sleep_echo_task, tasks, executor=backend,
                                      stage="bench-on"),
                    reps,
                )
        finally:
            backend.close()
    name = f"dispatch_sweep_{DISPATCH_TASKS}tasks_{DISPATCH_WORKERS}workers"
    entry = {
        "off_s": off,
        "on_s": on,
        "overhead": on / off - 1.0,
        "floor_s": DISPATCH_FLOOR_S,
    }
    print(
        f"  {name:42s} off {off:9.3e}s  on {on:9.3e}s  "
        f"({entry['overhead']:+7.2%})"
    )
    return {name: entry}


def check_overhead(results: dict) -> "list[str]":
    """Budget violations in ``results`` (empty list = within budget).

    Each entry may carry its own absolute-slowdown ``floor_s`` (the
    dispatch sweep does — file-queue wall clock jitters well beyond the
    kernel noise floor); entries without one use the kernel default.
    """
    failures = []
    for name, entry in results.items():
        slow = entry["on_s"] - entry["off_s"]
        if entry["overhead"] > OVERHEAD_BUDGET and slow > entry.get(
            "floor_s", ABSOLUTE_FLOOR_S
        ):
            failures.append(
                f"{name}: telemetry overhead {entry['overhead']:+.2%} "
                f"(+{slow:.3e}s) exceeds the {OVERHEAD_BUDGET:.0%} budget"
            )
    return failures


def write_baseline(results: dict) -> None:
    """Record the measured overheads as ``BENCH_obs.json``."""
    doc = {
        "config": {
            "n": N,
            "batch": BATCH,
            "mc_slots": MC_SLOTS,
            "beta": BETA,
            "overhead_budget": OVERHEAD_BUDGET,
            "dispatch_tasks": DISPATCH_TASKS,
            "dispatch_workers": DISPATCH_WORKERS,
        },
        "kernels": results,
    }
    BASELINE_PATH.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {BASELINE_PATH}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="fewer timing repeats"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when telemetry overhead exceeds the budget instead of "
        "rewriting BENCH_obs.json",
    )
    args = parser.parse_args(argv)

    repeats = 3 if args.quick else 7
    print(f"timing telemetry overhead (n={N}, batch={BATCH}, mc_slots={MC_SLOTS}) ...")
    results = measure_overhead(repeats)

    if args.check:
        failures = check_overhead(results)
        if failures:
            for line in failures:
                print("TELEMETRY OVERHEAD:", line, file=sys.stderr)
            return 1
        print(f"telemetry overhead check passed (budget {OVERHEAD_BUDGET:.0%})")
        return 0

    write_baseline(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
