"""E13 — density sweep: where Rayleigh overtakes non-fading.

Paper reference: Section 7's interference explanation of the Figure-1
crossover.  Expected shape: the crossover probability moves to smaller
q as density rises (and disappears beyond q = 1 for sparse layouts);
peak capacity falls with density.
"""

from repro.experiments import run_density_sweep

from conftest import paper_scale


def test_density_sweep(benchmark, record_result):
    networks = 10 if paper_scale() else 5
    result = benchmark.pedantic(
        run_density_sweep, kwargs={"num_networks": networks}, rounds=1, iterations=1
    )
    record_result(result)
