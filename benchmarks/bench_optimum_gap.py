"""E11 — the measured Rayleigh/non-fading optimum gap vs log* n.

Paper reference: Theorem 2 (upper bound O(log* n)) and the Section-8
open question whether the true factor is constant.  Expected shape: the
measured ratio stays below a small constant at every size — on these
interference-dominated workloads it is below 1 — supporting the
constant-factor conjecture.
"""

from repro.experiments import run_optimum_gap

from conftest import paper_scale


def test_optimum_gap(benchmark, record_result):
    sizes = (20, 40, 80, 160) if paper_scale() else (20, 40, 80)
    networks = 5 if paper_scale() else 3
    result = benchmark.pedantic(
        run_optimum_gap,
        kwargs={"sizes": sizes, "networks_per_size": networks},
        rounds=1,
        iterations=1,
    )
    record_result(result)
