#!/usr/bin/env python
"""Chaos soak harness — sustained randomized faults vs. byte-identity.

Runs a multi-stage workload under a seeded :class:`RandomSchedule`
(probabilistic raise / hang / worker-lost / exit faults per task, plus
ENOSPC injection into journal checkpoint writes) on every execution
backend, with dispatch workers joining as chaos kills their peers —
and asserts the one invariant the whole engine is built around: the
final aggregate bytes are identical to a clean serial run, at every
``--jobs`` / worker count.

.. code-block:: console

    python benchmarks/soak.py --quick              # CI budget (~60 s)
    python benchmarks/soak.py --seed 7 --out d/    # files for byte cmp
    python benchmarks/soak.py --jobs 8 --dispatch-workers 5

With ``--out DIR`` each phase writes its aggregate to
``DIR/<phase>.json`` so CI can ``cmp`` them against ``serial.json``
byte for byte.  Exit status is non-zero on any mismatch.

Every schedule fault is once-only and the workload runs under
``on_error="retry"``, so every injected fault is recoverable by design;
task randomness rides on spawned task seeds, so recovery re-derives
identical numbers.  The harness therefore proves the *machinery*
(retry, pool rebuild, lease re-issue, worker bundles, degradation
ladder) — the math needs no luck.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.engine import chaos
from repro.engine.backends import DispatchBackend
from repro.engine.backends.dispatch import seeded_norm_task
from repro.engine.executor import make_tasks, map_tasks
from repro.engine.faults import ExecutionPolicy, RetryPolicy, execution_scope
from repro.engine.journal import RunJournal

STAGES = ("soak-alpha", "soak-beta")


def _workload(tasks_per_stage: int, n: int) -> "dict[str, list]":
    """The sweep of each stage: payloads plus per-task spawned seeds."""
    return {
        stage: make_tasks(
            [{"n": n} for _ in range(tasks_per_stage)],
            root_seed=20120625 + s,
            name=stage,
        )
        for s, stage in enumerate(STAGES)
    }


def _aggregate(tasks_per_stage: int, n: int, jobs: int, policy, executor) -> str:
    """Run every stage and serialize the ordered results — the bytes
    under test."""
    out = {}
    with execution_scope(policy):
        for stage, tasks in _workload(tasks_per_stage, n).items():
            out[stage] = map_tasks(
                seeded_norm_task, tasks, jobs=jobs, stage=stage,
                executor=executor,
            )
    return json.dumps(out, sort_keys=True)


def _policy(journal=None) -> ExecutionPolicy:
    return ExecutionPolicy(
        on_error="retry",
        retry=RetryPolicy(max_attempts=5, base_delay=0.01, max_delay=0.1),
        journal=journal,
        quarantine_after=5,
    )


def _schedule(seed: int, quick: bool) -> chaos.RandomSchedule:
    scale = 0.5 if quick else 1.0
    return chaos.RandomSchedule(
        seed=seed,
        p_raise=0.10 * scale,
        p_hang=0.06 * scale,
        p_worker_lost=0.08 * scale,
        p_exit=0.06 * scale,
        p_enospc=0.20,
        hang_seconds=0.3 if quick else 1.0,
    )


class WorkerFleet:
    """Dispatch workers that keep joining as chaos kills their peers."""

    def __init__(self, root: Path, size: int):
        self.root = root
        self.size = size
        self.procs: "list[subprocess.Popen]" = []
        self.spawned = 0
        self.deaths = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._tend, daemon=True)

    def _spawn(self) -> subprocess.Popen:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        env.pop(chaos.CHAOS_ENV, None)  # plans ship via the queue bundle
        self.spawned += 1
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker", str(self.root),
                "--name", f"soak-{self.spawned}", "--poll", "0.02",
                "--max-idle", "120",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def _tend(self) -> None:
        while not self._stop.wait(0.2):
            alive = []
            for proc in self.procs:
                if proc.poll() is None:
                    alive.append(proc)
                else:
                    self.deaths += 1
            while len(alive) < self.size:
                alive.append(self._spawn())  # a fresh worker joins
            self.procs = alive

    def __enter__(self) -> "WorkerFleet":
        self.procs = [self._spawn() for _ in range(self.size)]
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5)
        for proc in self.procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()


def _chaos_phase(name: str, seed: int, quick: bool, work_dir: Path):
    """Install a fresh seeded plan (new marker dir per phase, so each
    phase suffers the full schedule) and a fresh journal."""
    state_dir = work_dir / f"chaos-{name}"
    plan = chaos.ChaosPlan(
        state_dir=str(state_dir), schedule=_schedule(seed, quick)
    )
    chaos.install(plan)
    journal = RunJournal.create(work_dir / "runs", f"soak-{name}", {"phase": name})
    return journal


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI budget: fewer tasks, gentler hangs (~60 s)")
    parser.add_argument("--seed", type=int, default=20120625,
                        help="chaos schedule seed (default 20120625)")
    parser.add_argument("--tasks", type=int, default=None,
                        help="tasks per stage (default 16 quick / 48 full)")
    parser.add_argument("--jobs", type=int, nargs="*", default=None,
                        help="pool worker counts to soak (default 1 4)")
    parser.add_argument("--dispatch-workers", type=int, nargs="*", default=None,
                        help="dispatch fleet sizes to soak (default 1 3)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write each phase's aggregate bytes to DIR")
    args = parser.parse_args(argv)

    tasks_per_stage = args.tasks or (16 if args.quick else 48)
    n = 64 if args.quick else 256
    jobs_list = args.jobs if args.jobs else [1, 4]
    fleet_sizes = (
        args.dispatch_workers if args.dispatch_workers else [1, 3]
    )
    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    work_dir = Path(tempfile.mkdtemp(prefix="repro-soak-"))
    failures = 0
    try:
        chaos.uninstall()
        t0 = time.monotonic()
        reference = _aggregate(tasks_per_stage, n, 1, _policy(), "serial")
        print(f"serial clean reference: {time.monotonic() - t0:.1f}s, "
              f"{len(reference)} bytes")
        phases = {"serial": reference}

        for jobs in jobs_list:
            name = f"pool-j{jobs}"
            journal = _chaos_phase(name, args.seed, args.quick, work_dir)
            t0 = time.monotonic()
            got = _aggregate(tasks_per_stage, n, jobs, _policy(journal), "pool")
            chaos.uninstall()
            phases[name] = got
            ok = got == reference
            failures += not ok
            print(f"{name}: {'OK' if ok else 'BYTE MISMATCH'} "
                  f"({time.monotonic() - t0:.1f}s, "
                  f"{journal.degraded_writes} degraded write(s))")

        for size in fleet_sizes:
            name = f"dispatch-w{size}"
            journal = _chaos_phase(name, args.seed, args.quick, work_dir)
            backend = DispatchBackend(
                work_dir / f"queue-{name}", lease_timeout=1.5, poll=0.02
            )
            t0 = time.monotonic()
            with WorkerFleet(work_dir / f"queue-{name}", size) as fleet:
                try:
                    got = _aggregate(
                        tasks_per_stage, n, 1, _policy(journal), backend
                    )
                finally:
                    backend.close()
                    chaos.uninstall()
            phases[name] = got
            ok = got == reference
            failures += not ok
            print(f"{name}: {'OK' if ok else 'BYTE MISMATCH'} "
                  f"({time.monotonic() - t0:.1f}s, {fleet.spawned} worker(s) "
                  f"spawned, {fleet.deaths} died, "
                  f"{journal.degraded_writes} degraded write(s))")

        if out_dir is not None:
            for name, text in phases.items():
                (out_dir / f"{name}.json").write_text(text, encoding="utf-8")
            print(f"aggregates written to {out_dir}")
    finally:
        chaos.uninstall()
        shutil.rmtree(work_dir, ignore_errors=True)

    if failures:
        print(f"SOAK FAILED: {failures} phase(s) diverged from serial bytes",
              file=sys.stderr)
        return 1
    print("soak passed: every phase byte-identical to clean serial")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
