"""Reference optima for capacity maximization.

Maximum feasible subset under SINR constraints is NP-hard (Goussevskaia
et al.), so the benchmarks need two reference points:

* :func:`optimal_capacity_bruteforce` — exact branch & bound.  Feasibility
  is downward closed (removing links only lowers interference), which
  makes the search a maximum-independent-set-style B&B with a
  cardinality bound; practical up to ``n ≈ 30`` on the paper's instances.
* :func:`local_search_capacity` — a multi-restart GRASP-style estimator
  for paper-scale instances (``n = 100``): randomized greedy construction
  followed by (1-out, 1-in)/(2-out, 1-in) improvement passes.  This is
  the estimate behind the "49.75 successful transmissions" statistic
  (E3); the paper does not state how its optimum was computed, so we
  report the estimator *and* the exact value on sizes where B&B is
  feasible to show the estimator's gap is negligible.
"""

from __future__ import annotations

import numpy as np

from repro.core.affectance import affectance_matrix
from repro.core.sinr import SINRInstance
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["optimal_capacity_bruteforce", "local_search_capacity"]

_EPS = 1e-12


def _prepare(instance: SINRInstance, beta: float) -> tuple[np.ndarray, np.ndarray]:
    """Unclamped affectance and the mask of individually viable links.

    Columns of non-viable (noise-blocked) links hold ``+inf``; those links
    are never candidates, so their columns are zeroed to keep the
    incremental incoming-affectance arithmetic finite.
    """
    a = affectance_matrix(instance, beta, clamped=False)
    viable = instance.signal > beta * instance.noise
    if not viable.all():
        a[:, ~viable] = 0.0
    return a, viable


def _feasible_with(incoming: np.ndarray, members: np.ndarray, a: np.ndarray, k: int) -> bool:
    """Would adding link ``k`` keep the set (members mask) feasible?"""
    if incoming[k] > 1.0 + _EPS:
        return False
    if members.any() and np.any(incoming[members] + a[k, members] > 1.0 + _EPS):
        return False
    return True


def optimal_capacity_bruteforce(
    instance: SINRInstance, beta: float, *, weights=None, max_n: int = 32
) -> np.ndarray:
    """Exact maximum feasible subset by branch & bound.

    Parameters
    ----------
    instance, beta:
        The non-fading instance and threshold.
    weights:
        Optional non-negative link weights; maximizes total weight instead
        of cardinality.
    max_n:
        Guard rail: refuse instances larger than this (the search is
        exponential in the worst case).

    Returns
    -------
    Sorted indices of an optimal feasible set.
    """
    check_positive(beta, "beta")
    n = instance.n
    if n > max_n:
        raise ValueError(
            f"branch & bound limited to n <= {max_n} links (got {n}); "
            "use local_search_capacity for larger instances"
        )
    a, viable = _prepare(instance, beta)
    w = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
    if w.shape != (n,) or np.any(w < 0):
        raise ValueError("weights must be a non-negative vector of length n")

    # Order candidates by decreasing weight (ties: lower total outgoing
    # affectance first) so good solutions are found early and the bound
    # prunes hard.
    out_aff = np.where(np.isfinite(a), a, 1.0).sum(axis=1)
    order = np.lexsort((out_aff, -w))
    order = order[viable[order]]
    # Suffix weight sums for the optimistic bound.
    suffix = np.zeros(order.size + 1)
    suffix[:-1] = np.cumsum(w[order][::-1])[::-1]

    best_set: list[int] = []
    best_value = -1.0
    incoming = np.zeros(n, dtype=np.float64)
    members = np.zeros(n, dtype=bool)
    current: list[int] = []

    def recurse(pos: int, value: float) -> None:
        nonlocal best_set, best_value, incoming
        if value > best_value + _EPS:
            best_value = value
            best_set = current.copy()
        if pos >= order.size or value + suffix[pos] <= best_value + _EPS:
            return
        k = int(order[pos])
        if _feasible_with(incoming, members, a, k):
            # Branch 1: include k.
            current.append(k)
            members[k] = True
            incoming += a[k, :]
            recurse(pos + 1, value + w[k])
            incoming -= a[k, :]
            members[k] = False
            current.pop()
        # Branch 2: exclude k.
        recurse(pos + 1, value)

    recurse(0, 0.0)
    return np.array(sorted(best_set), dtype=np.intp)


def _best_response_refine(
    a: np.ndarray,
    viable: np.ndarray,
    members: np.ndarray,
    rng: np.random.Generator,
    *,
    max_rounds: int = 60,
) -> np.ndarray:
    """Best-response refinement of a transmit set (in place on a copy).

    Round-robin over links: link ``i`` joins iff it would meet its SINR
    constraint against the *current* senders (incoming unclamped
    affectance ≤ 1), and leaves otherwise.  A fixed point is a feasible
    set that is maximal in a strong sense (every outsider would fail).
    Unlike insertion-only greedy, links can *drop out* and unlock better
    configurations — empirically this closes most of the gap between
    greedy and the true optimum on the paper's workloads (it is exactly
    best-response dynamics of the Section-6 game restricted to the
    non-fading model).

    Returns the refined membership mask; falls back to the input if the
    dynamics fail to converge within ``max_rounds`` (possible in theory,
    never observed on these instances).
    """
    n = a.shape[0]
    mask = members.copy()
    for _ in range(max_rounds):
        changed = False
        incoming = mask.astype(np.float64) @ a  # Σ_{j in set} a(j, i)
        for i in rng.permutation(n):
            i = int(i)
            if not viable[i]:
                continue
            # a's diagonal is zero, so incoming[i] never counts i itself.
            want = incoming[i] <= 1.0 + _EPS
            if want != mask[i]:
                if want:
                    incoming += a[i, :]
                else:
                    incoming -= a[i, :]
                mask[i] = want
                changed = True
        if not changed:
            return mask
    return members


def _greedy_in_order(
    a: np.ndarray, viable: np.ndarray, order: np.ndarray
) -> tuple[list[int], np.ndarray]:
    """Maximal feasible set built in the given candidate order."""
    n = a.shape[0]
    incoming = np.zeros(n, dtype=np.float64)
    members = np.zeros(n, dtype=bool)
    chosen: list[int] = []
    for k in order:
        k = int(k)
        if not viable[k]:
            continue
        if _feasible_with(incoming, members, a, k):
            chosen.append(k)
            members[k] = True
            incoming += a[k, :]
    return chosen, incoming


def local_search_capacity(
    instance: SINRInstance,
    beta: float,
    rng=None,
    *,
    restarts: int = 10,
    improvement_rounds: int = 4,
) -> np.ndarray:
    """Multi-restart local-search estimate of the maximum feasible subset.

    Each restart builds a maximal feasible set in a random order, then
    repeatedly attempts improving exchanges: for every excluded link,
    admit it after evicting at most one conflicting member when the swap
    strictly grows the set via later re-completion.  The best set across
    restarts is returned.

    This is an *estimator*: it lower-bounds the optimum (the output is
    always feasible) and on instances small enough for
    :func:`optimal_capacity_bruteforce` it matches the exact optimum in
    our test suite's instances; the E3 bench reports both.
    """
    check_positive(beta, "beta")
    if restarts <= 0:
        raise ValueError(f"restarts must be positive, got {restarts}")
    gen = as_generator(rng)
    n = instance.n
    a, viable = _prepare(instance, beta)

    # Restart 0 is deterministic short-links-first (the [8]-style order,
    # usually the strongest constructive heuristic); later restarts are
    # random orders for diversification.
    signal_order = np.argsort(-instance.signal, kind="stable")
    best: list[int] = []
    for restart in range(restarts):
        order = signal_order if restart == 0 else gen.permutation(n)
        chosen, incoming = _greedy_in_order(a, viable, order)
        members = np.zeros(n, dtype=bool)
        members[chosen] = True
        # Best-response refinement: lets links drop out and re-enter,
        # escaping the insertion-only local optimum of the greedy pass.
        refined = _best_response_refine(a, viable, members, gen)
        if refined.sum() >= members.sum():
            members = refined
            chosen = np.flatnonzero(members).tolist()
            incoming = members.astype(np.float64) @ a
        for _ in range(improvement_rounds):
            improved = False
            outside = [k for k in range(n) if viable[k] and not members[k]]
            gen.shuffle(outside)
            for k in outside:
                if members[k]:  # re-inserted earlier in this same pass
                    continue
                if _feasible_with(incoming, members, a, k):
                    # Pure insertion (set was not maximal after an evict).
                    chosen.append(k)
                    members[k] = True
                    incoming += a[k, :]
                    improved = True
                    continue
                # Try evicting one member to make room for k, then re-fill
                # greedily; accept only strict growth.
                blockers = [
                    j
                    for j in chosen
                    if a[j, k] > _EPS or incoming[j] + a[k, j] > 1.0 + _EPS
                ]
                if not blockers or len(blockers) > 3:
                    continue
                j = int(gen.choice(blockers))
                trial_members = members.copy()
                trial_members[j] = False
                trial_incoming = incoming - a[j, :]
                if not _feasible_with(trial_incoming, trial_members, a, k):
                    continue
                trial_members[k] = True
                trial_incoming = trial_incoming + a[k, :]
                trial = [x for x in chosen if x != j] + [k]
                # Greedy completion.
                for m in range(n):
                    if viable[m] and not trial_members[m] and _feasible_with(
                        trial_incoming, trial_members, a, m
                    ):
                        trial.append(m)
                        trial_members[m] = True
                        trial_incoming += a[m, :]
                if len(trial) > len(chosen):
                    chosen = trial
                    members = trial_members
                    incoming = trial_incoming
                    improved = True
            if not improved:
                break
        if len(chosen) > len(best):
            best = chosen
    return np.array(sorted(best), dtype=np.intp)
