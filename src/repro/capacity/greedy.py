"""Affectance-greedy capacity maximization (style of [8] and [7]).

The single-slot algorithms of Goussevskaia–Wattenhofer–Halldórsson–Welzl
[8] (uniform powers) and Halldórsson–Mitra [7] (oblivious powers in
general metrics) share one skeleton: process links from short to long and
admit a link whenever the admitted set stays "comfortably" feasible.  We
express comfort through affectance: a candidate is admitted iff afterwards
every admitted link's incoming affectance is at most ``margin``.

* ``margin = 1`` admits greedily up to exact feasibility — the output is
  a maximal feasible set (good raw capacity, the variant used by the
  figure-level benches).
* ``margin = 1/2`` reproduces the slack the published analyses need for
  their constant approximation factor, and is the right setting when the
  output set must tolerate perturbation (e.g. before the Rayleigh
  transfer, or as ``OPT''``-style robust sets).

The power assignment enters only through ``instance`` — build the
instance with :class:`~repro.core.power.UniformPower` for [8] or
:class:`~repro.core.power.SquareRootPower` for [7].

Complexity: ``O(n²)`` — each admission updates the incoming-affectance
vector with one row of the affectance matrix.
"""

from __future__ import annotations

import numpy as np

from repro.core.affectance import affectance_matrix
from repro.core.sinr import SINRInstance
from repro.utils.validation import check_positive

__all__ = ["greedy_capacity"]


def _resolve_order(instance: SINRInstance, order, rng=None) -> np.ndarray:
    n = instance.n
    if isinstance(order, str):
        if order == "signal":
            # Strong own-signal first == short links first for oblivious
            # powers with tau < 1; well-defined for matrix instances too.
            return np.argsort(-instance.signal, kind="stable")
        if order == "random":
            if rng is None:
                raise ValueError("order='random' requires an rng")
            return rng.permutation(n)
        raise ValueError(f"unknown order {order!r}")
    idx = np.asarray(order, dtype=np.intp)
    if sorted(idx.tolist()) != list(range(n)):
        raise ValueError("explicit order must be a permutation of all links")
    return idx


def greedy_capacity(
    instance: SINRInstance,
    beta: float,
    *,
    margin: float = 1.0,
    order="signal",
    weights=None,
    rng=None,
) -> np.ndarray:
    """Greedy single-slot capacity maximization.

    Parameters
    ----------
    instance:
        Mean signals and noise (power assignment already applied).
    beta:
        SINR threshold.
    margin:
        Admission budget on incoming affectance, in ``(0, 1]``.  The
        admitted set is feasible for every value; smaller values leave
        robustness slack (see module docstring).
    order:
        ``"signal"`` (default — strongest own signal first, the
        short-links-first rule of [8]/[7]), ``"random"``, or an explicit
        permutation.
    weights:
        Optional non-negative link weights; when given, links are
        processed by decreasing ``weight`` with the base order breaking
        ties, which turns the algorithm into its weighted variant.
    rng:
        Only used for ``order="random"``.

    Returns
    -------
    Sorted integer indices of the admitted (feasible) set.  Links that
    cannot reach ``β`` even alone are never admitted.
    """
    check_positive(beta, "beta")
    if not 0.0 < margin <= 1.0:
        raise ValueError(f"margin must lie in (0, 1], got {margin}")
    n = instance.n
    a = affectance_matrix(instance, beta, clamped=False)
    base_order = _resolve_order(instance, order, rng)
    if weights is not None:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (n,) or np.any(w < 0):
            raise ValueError("weights must be a non-negative vector of length n")
        rank = np.empty(n, dtype=np.float64)
        rank[base_order] = np.arange(n)
        base_order = np.lexsort((rank, -w))

    admitted: list[int] = []
    incoming = np.zeros(n, dtype=np.float64)  # Σ_{j admitted} a(j, i), all i
    admitted_mask = np.zeros(n, dtype=bool)
    eps = 1e-12
    for i in base_order:
        i = int(i)
        # A link blocked by noise alone (S̄(i,i) <= βν) can never succeed;
        # its incoming affectances are +inf, so reject it outright.
        if instance.signal[i] <= beta * instance.noise:
            continue
        # Candidate must fit under the budget itself...
        if not np.isfinite(incoming[i]) or incoming[i] > margin + eps:
            continue
        # ... and must not push any admitted link over budget.
        if admitted and np.any(incoming[admitted_mask] + a[i, admitted_mask] > margin + eps):
            continue
        admitted.append(i)
        admitted_mask[i] = True
        incoming += a[i, :]
    return np.array(sorted(admitted), dtype=np.intp)
