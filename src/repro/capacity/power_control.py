"""Joint scheduling and power control (style of Kesselheim [6]).

Kesselheim's SODA'11 algorithm achieves a constant-factor approximation
for capacity maximization when the algorithm may choose transmission
powers.  Its two ingredients are implemented faithfully:

1. **Length-ordered selection with a bidirectional interference budget.**
   Links are processed from short to long; candidate ``i`` is admitted
   iff the already-selected (shorter) links ``j`` satisfy

   .. math::

       \\sum_{j \\in S} \\Big( \\frac{d_j^{\\alpha}}{d(s_j, r_i)^{\\alpha}}
           + \\frac{d_j^{\\alpha}}{d(s_i, r_j)^{\\alpha}} \\Big)
           \\;\\le\\; \\delta ,

   i.e. the interference the candidate would exchange with the selected
   set — measured in units of the shorter links' signal at their own
   length — stays below a budget ``δ``.

2. **Exact power computation.**  The admitted set is handed to the
   feasibility solver (:func:`repro.core.feasibility.min_feasible_powers`),
   which returns component-wise minimal powers when the set is feasible.
   For small enough ``δ`` the selected set is always feasible; because our
   ``δ`` is a tunable knob rather than the (large) constant of the
   analysis, a repair loop evicts the most-loaded link until the solver
   succeeds — the output therefore *always* comes with certified powers.

The output powers are wrapped in :class:`~repro.core.power.CustomPower`
so downstream code (including the Rayleigh transfer, which keeps powers
unchanged per Lemma 2) treats them like any other assignment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.feasibility import min_feasible_powers
from repro.core.network import Network
from repro.core.power import CustomPower
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["PowerControlResult", "power_control_capacity"]


@dataclass(frozen=True)
class PowerControlResult:
    """Outcome of the power-control algorithm.

    Attributes
    ----------
    selected:
        Sorted indices of the scheduled links.
    powers:
        Power per selected link (aligned with ``selected``); together they
        satisfy every SINR constraint at the requested ``beta``.
    """

    selected: np.ndarray
    powers: np.ndarray

    def power_assignment(self, n: int) -> CustomPower:
        """Full-network power vector (unselected links get a tiny idle
        power so the assignment stays strictly positive as required)."""
        full = np.full(n, 1e-12)
        full[self.selected] = self.powers
        return CustomPower(full)


def _selection_pass(
    network: Network, beta: float, alpha: float, delta: float
) -> list[int]:
    D = network.cross_distances
    lengths = network.lengths
    order = np.argsort(lengths, kind="stable")
    selected: list[int] = []
    for i in order:
        i = int(i)
        if not selected:
            selected.append(i)
            continue
        js = np.array(selected)
        dj_alpha = lengths[js] ** alpha
        # Shorter links' relative interference at the candidate's receiver
        # plus the candidate's at theirs, both normalised by d_j^α.
        incoming = dj_alpha / D[js, i] ** alpha
        outgoing = dj_alpha / D[i, js] ** alpha
        if float((incoming + outgoing).sum()) <= delta:
            selected.append(i)
    return selected


def power_control_capacity(
    network: Network,
    beta: float,
    alpha: float,
    noise: float = 0.0,
    *,
    delta: float = 0.5,
    slack: float = 1.0 + 1e-9,
) -> PowerControlResult:
    """Schedule links *and* choose their powers (constant-factor style [6]).

    Parameters
    ----------
    network:
        The link set (geometric or matrix-built).
    beta, alpha, noise:
        SINR threshold, path-loss exponent, ambient noise.
    delta:
        Selection budget of the length-ordered pass; smaller values select
        fewer, safer links.  The default 0.5 keeps the repair loop idle on
        all benchmark families while retaining near-greedy capacity.
    slack:
        Multiplier on the minimal feasible powers (strictness margin for
        floating-point SINR checks downstream).

    Returns
    -------
    :class:`PowerControlResult` with certified feasible powers.
    """
    check_positive(beta, "beta")
    check_positive(alpha, "alpha")
    check_nonnegative(noise, "noise")
    check_positive(delta, "delta")
    selected = _selection_pass(network, beta, alpha, delta)
    # Repair: evict the link with the largest exchanged interference until
    # the exact feasibility system admits a solution.
    while selected:
        powers = min_feasible_powers(
            network, np.array(selected), beta, alpha, noise, slack=slack
        )
        if powers is not None:
            idx = np.array(sorted(selected), dtype=np.intp)
            # Re-order powers to match the sorted index order.
            perm = np.argsort(np.array(selected))
            return PowerControlResult(selected=idx, powers=powers[perm])
        D = network.cross_distances
        lengths = network.lengths
        js = np.array(selected)
        dj_alpha = lengths[js] ** alpha
        load = np.zeros(len(selected))
        for pos, i in enumerate(selected):
            others = js[js != i]
            if others.size:
                d_other = lengths[others] ** alpha
                load[pos] = float(
                    (d_other / D[others, i] ** alpha).sum()
                    + (dj_alpha[pos] / D[i, others] ** alpha).sum()
                )
        selected.pop(int(np.argmax(load)))
    return PowerControlResult(
        selected=np.empty(0, dtype=np.intp), powers=np.empty(0, dtype=np.float64)
    )
