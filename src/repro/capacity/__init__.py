"""Capacity-maximization algorithms for the non-fading model.

These are the published algorithms the paper's reductions transfer into
the Rayleigh model (Section 4):

* :mod:`~repro.capacity.greedy` — the affectance-greedy single-slot
  algorithm in the style of Goussevskaia et al. [8] (uniform powers) and
  Halldórsson–Mitra [7] (oblivious, e.g. square-root, powers): the power
  assignment enters only through the instance's gain matrix.
* :mod:`~repro.capacity.power_control` — joint scheduling & power control
  in the style of Kesselheim [6]: length-ordered selection with a
  bidirectional interference budget, powers from the exact feasibility
  linear system.
* :mod:`~repro.capacity.flexible_rates` — capacity maximization with
  non-binary utilities via geometric rate levels, in the style of
  Kesselheim [22].
* :mod:`~repro.capacity.optimum` — the benchmark's reference optima:
  exact branch & bound for small ``n`` and a multi-restart local-search
  estimator for the paper-scale instances (maximum feasible subset is
  NP-hard).
"""

from repro.capacity.flexible_rates import flexible_rate_capacity
from repro.capacity.greedy import greedy_capacity
from repro.capacity.optimum import (
    local_search_capacity,
    optimal_capacity_bruteforce,
)
from repro.capacity.power_control import power_control_capacity

__all__ = [
    "flexible_rate_capacity",
    "greedy_capacity",
    "local_search_capacity",
    "optimal_capacity_bruteforce",
    "power_control_capacity",
]
