"""Capacity maximization with flexible data rates (style of Kesselheim [22]).

For non-binary valid utility functions (Section 2) the objective is
``max Σ_i u_i(γ_i^nf)`` — links trade off how *much* SINR they get, not
just whether they clear one threshold.  Kesselheim's ESA'12 algorithm
achieves ``O(log n)`` for this problem by discretising rates into
geometric levels and solving a threshold sub-problem per level.

Implementation (documented simplification of the level machinery):

1. Build geometric candidate thresholds ``β_k`` spanning the utility-
   relevant SINR range ``[β_min, β_max]`` — from the smallest SINR that
   yields non-negligible utility up to the best interference-free SINR
   any link can reach.
2. For each level, run the weighted affectance greedy with weights
   ``w_i = u_i(β_k)`` (each scheduled link is guaranteed at least
   ``u_i(β_k)``).
3. Return the level whose schedule has the largest *actual* achieved
   utility ``Σ u_i(γ_i^nf)`` (the achieved SINRs can only exceed the
   level's threshold, and utilities are non-decreasing in the valid
   range, so evaluating the true SINR never loses value).

This preserves the algorithm's structure — geometric levels, one
threshold problem each, best level wins — which is what the Rayleigh
transfer (Lemma 2) operates on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.capacity.greedy import greedy_capacity
from repro.core.sinr import SINRInstance
from repro.utility.base import UtilityProfile
from repro.utils.validation import check_positive

__all__ = ["FlexibleRateResult", "flexible_rate_capacity"]


@dataclass(frozen=True)
class FlexibleRateResult:
    """Outcome of the flexible-rate algorithm.

    Attributes
    ----------
    selected:
        Sorted indices of the scheduled links.
    level:
        The winning threshold ``β_k``.
    utility:
        Achieved non-fading total utility ``Σ_{i ∈ selected} u_i(γ_i^nf)``.
    levels_tried:
        All candidate thresholds examined.
    """

    selected: np.ndarray
    level: float
    utility: float
    levels_tried: tuple[float, ...]


def _candidate_levels(
    instance: SINRInstance, profile: UtilityProfile, num_levels: int
) -> np.ndarray:
    """Geometric thresholds covering the utility-relevant SINR range."""
    # Upper end: best possible SINR of any link (alone against noise),
    # capped to avoid infinite levels in the zero-noise limit.
    if instance.noise > 0.0:
        top = float(np.max(instance.signal) / instance.noise)
    else:
        top = 1e6
    top = min(top, 1e9)
    # Lower end: where utilities start mattering — the largest declared
    # concavity threshold, or a small fraction of the top for all-range
    # utilities like Shannon.
    floor = float(np.max(profile.concave_from()))
    bottom = floor if floor > 0.0 else max(top * 1e-6, 1e-6)
    bottom = min(bottom, top / 2.0)
    return np.geomspace(bottom, top, num_levels)


def flexible_rate_capacity(
    instance: SINRInstance,
    profile: UtilityProfile,
    *,
    num_levels: int = 16,
    margin: float = 1.0,
) -> FlexibleRateResult:
    """Utility-based capacity maximization via geometric rate levels.

    Parameters
    ----------
    instance:
        Mean signals and noise.
    profile:
        Valid utility functions (Definition 1), e.g.
        :class:`~repro.utility.ShannonUtility`.
    num_levels:
        Number of geometric thresholds (``O(log)`` of the dynamic range
        suffices; 16 covers six decades at ratio ~2.4).
    margin:
        Affectance budget handed to the per-level greedy.

    Returns
    -------
    :class:`FlexibleRateResult`; the schedule of the best level.
    """
    if profile.n != instance.n:
        raise ValueError("utility profile and instance cover different link counts")
    if num_levels <= 0:
        raise ValueError(f"num_levels must be positive, got {num_levels}")
    check_positive(margin, "margin")

    best = FlexibleRateResult(
        selected=np.empty(0, dtype=np.intp),
        level=float("nan"),
        utility=0.0,
        levels_tried=(),
    )
    levels = _candidate_levels(instance, profile, num_levels)
    for beta_k in levels:
        # Guaranteed utility at this level steers the weighted greedy.
        level_utility = profile.evaluate(np.full(instance.n, beta_k))
        if not np.any(level_utility > 0.0):
            continue
        selected = greedy_capacity(
            instance, float(beta_k), margin=margin, weights=level_utility
        )
        if selected.size == 0:
            continue
        mask = np.zeros(instance.n, dtype=bool)
        mask[selected] = True
        sinr = instance.sinr(mask)
        achieved = float(profile.evaluate(sinr)[mask].sum())
        if achieved > best.utility:
            best = FlexibleRateResult(
                selected=selected,
                level=float(beta_k),
                utility=achieved,
                levels_tried=(),
            )
    return FlexibleRateResult(
        selected=best.selected,
        level=best.level,
        utility=best.utility,
        levels_tried=tuple(float(b) for b in levels),
    )
