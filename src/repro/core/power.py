"""Transmission-power assignments.

The paper's reduction is oblivious to how powers are chosen — Lemma 2
explicitly "does not modify transmission powers" — so powers are a
first-class, pluggable concept.  The families implemented here are the
ones its transferred algorithms need:

* :class:`UniformPower` — every sender uses the same power (algorithms of
  Goussevskaia et al. [8], Dinitz [11]; Figure 1's ``p = 2``).
* :class:`SquareRootPower` — ``p_i ∝ sqrt(d_i^α)``, the "square-root" /
  mean power assignment of Fanghänel et al. [3] and Halldórsson [4];
  Figure 1 uses ``p_i = 2·sqrt(d_i^2.2)``.
* :class:`LinearPower` — ``p_i ∝ d_i^α``, which equalises received signal
  strengths.
* :class:`LengthScaledPower` — the general family ``p_i = scale · d_i^{τα}``
  containing all of the above (``τ = 0, 1/2, 1``).
* :class:`CustomPower` — an explicit vector, e.g. powers computed by the
  power-control algorithm [6].
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.validation import check_positive

__all__ = [
    "PowerAssignment",
    "UniformPower",
    "LengthScaledPower",
    "SquareRootPower",
    "LinearPower",
    "CustomPower",
]


class PowerAssignment(abc.ABC):
    """Strategy mapping link lengths to transmission powers.

    Subclasses must implement :meth:`powers` and provide a stable
    :attr:`cache_key` so networks can cache gain matrices per assignment.
    """

    @abc.abstractmethod
    def powers(self, lengths: np.ndarray, alpha: float) -> np.ndarray:
        """Power vector for links with the given lengths under path-loss
        exponent ``alpha``.  Must return a positive float64 array of the
        same length."""

    @property
    @abc.abstractmethod
    def cache_key(self) -> tuple:
        """Hashable identity of this assignment (used for gain caching)."""

    @property
    def is_oblivious(self) -> bool:
        """Whether each link's power depends only on its own length.

        All built-in assignments except :class:`CustomPower` are oblivious
        in the sense of Fanghänel et al. [3].
        """
        return True

    def __eq__(self, other) -> bool:
        return isinstance(other, PowerAssignment) and self.cache_key == other.cache_key

    def __hash__(self) -> int:
        return hash(self.cache_key)


class LengthScaledPower(PowerAssignment):
    """``p_i = scale · d_i^(τ·α)`` — the oblivious power family.

    ``τ = 0`` is uniform, ``τ = 1/2`` square-root ("mean"), ``τ = 1``
    linear.  ``scale`` is the paper's constant factor (2 in Figure 1).
    """

    def __init__(self, tau: float, scale: float = 1.0):
        if not np.isfinite(tau) or tau < 0.0:
            raise ValueError(f"tau must be finite and non-negative, got {tau}")
        self.tau = float(tau)
        self.scale = check_positive(scale, "scale")

    def powers(self, lengths: np.ndarray, alpha: float) -> np.ndarray:
        lengths = np.asarray(lengths, dtype=np.float64)
        if self.tau == 0.0:
            return np.full(lengths.shape, self.scale)
        return self.scale * lengths ** (self.tau * alpha)

    @property
    def cache_key(self) -> tuple:
        return ("length-scaled", self.tau, self.scale)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(tau={self.tau}, scale={self.scale})"


class UniformPower(LengthScaledPower):
    """All senders transmit at the same power ``p`` (Figure 1: ``p = 2``)."""

    def __init__(self, power: float = 1.0):
        super().__init__(tau=0.0, scale=power)

    @property
    def power(self) -> float:
        return self.scale

    def __repr__(self) -> str:
        return f"UniformPower({self.scale})"


class SquareRootPower(LengthScaledPower):
    """``p_i = scale · sqrt(d_i^α)`` (Figure 1: ``scale = 2``)."""

    def __init__(self, scale: float = 1.0):
        super().__init__(tau=0.5, scale=scale)

    def __repr__(self) -> str:
        return f"SquareRootPower(scale={self.scale})"


class LinearPower(LengthScaledPower):
    """``p_i = scale · d_i^α`` — every receiver sees the same own-signal power."""

    def __init__(self, scale: float = 1.0):
        super().__init__(tau=1.0, scale=scale)

    def __repr__(self) -> str:
        return f"LinearPower(scale={self.scale})"


class CustomPower(PowerAssignment):
    """An explicit per-link power vector (e.g. output of power control [6])."""

    def __init__(self, powers):
        arr = np.asarray(powers, dtype=np.float64).copy()
        if arr.ndim != 1:
            raise ValueError(f"powers must be one-dimensional, got shape {arr.shape}")
        if arr.size == 0 or np.any(arr <= 0.0) or not np.all(np.isfinite(arr)):
            raise ValueError("powers must be a non-empty vector of positive finite values")
        arr.setflags(write=False)
        self._powers = arr

    def powers(self, lengths: np.ndarray, alpha: float) -> np.ndarray:
        lengths = np.asarray(lengths)
        if lengths.shape[0] != self._powers.shape[0]:
            raise ValueError(
                f"power vector has length {self._powers.shape[0]}, network has "
                f"{lengths.shape[0]} links"
            )
        return self._powers

    @property
    def vector(self) -> np.ndarray:
        """The stored (read-only) power vector."""
        return self._powers

    @property
    def is_oblivious(self) -> bool:
        return False

    @property
    def cache_key(self) -> tuple:
        return ("custom", self._powers.tobytes())

    def __repr__(self) -> str:
        return f"CustomPower(n={self._powers.shape[0]})"
