"""Non-fading SINR computation (the deterministic model of Section 2).

The mean received signal strength of sender ``j`` at receiver ``i`` is

.. math::

    \\bar S(j, i) = p_j / d(s_j, r_i)^\\alpha ,

and under a transmit pattern ``X ⊆ [n]`` the non-fading SINR of link
``i ∈ X`` is

.. math::

    \\gamma_i^{nf} = \\frac{\\bar S(i,i)}{\\sum_{j \\in X, j \\ne i} \\bar S(j,i) + \\nu}.

Everything in this module is vectorized over links and over *batches* of
transmit patterns: a batch of ``B`` patterns costs one ``(B, n) @ (n, n)``
matrix product, which is what makes the paper's Monte-Carlo sweeps (40
networks x 25 transmit seeds x many probabilities) cheap.

:class:`SINRInstance` is the object most of the library passes around: the
mean-signal matrix ``S̄`` plus the ambient noise ``ν``.  The Rayleigh
model (:mod:`repro.fading`) reuses the same instance — the fading draws
are exponentials with these means.
"""

from __future__ import annotations

import numpy as np

from repro import backend as _backend
from repro.core.network import Network
from repro.core.power import PowerAssignment
from repro.utils.validation import check_nonnegative, check_positive, check_square_matrix

__all__ = [
    "mean_signal_matrix",
    "sinr_nonfading",
    "sinr_nonfading_batch",
    "successful_links",
    "success_count",
    "SINRInstance",
]


def mean_signal_matrix(network: Network, power: PowerAssignment, alpha: float) -> np.ndarray:
    """Mean signal strengths ``S̄[j, i] = p_j / d(s_j, r_i)^α``.

    Row index is the *sender*, column index the *receiver*, matching the
    paper's subscript order ``S̄_{j,i}``.
    """
    check_positive(alpha, "alpha")
    p = np.asarray(power.powers(network.lengths, alpha), dtype=np.float64)
    if p.shape != (network.n,) or np.any(p <= 0) or not np.all(np.isfinite(p)):
        raise ValueError("power assignment returned an invalid power vector")
    return p[:, None] / network.cross_distances**alpha


def _as_active_bool(active, n: int) -> np.ndarray:
    """Coerce a transmit pattern to a boolean mask of length ``n``.

    Policy: boolean arrays are masks; integer arrays are *index lists*
    (``[0, 1]`` means links 0 and 1 transmit, not a 0/1 mask — pass a
    boolean array for masks).  Empty inputs mean "nobody transmits".
    """
    arr = np.asarray(active)
    if arr.size == 0:
        return np.zeros(n, dtype=bool)
    if arr.dtype == np.bool_:
        if arr.shape != (n,):
            raise ValueError(f"active mask must have shape ({n},), got {arr.shape}")
        return arr
    if arr.dtype.kind in "iu" and arr.ndim == 1:
        if arr.min() < 0 or arr.max() >= n:
            raise IndexError("active index list out of range")
        mask = np.zeros(n, dtype=bool)
        mask[arr] = True
        return mask
    raise TypeError(
        "active pattern must be a boolean mask or an integer index list, "
        f"got dtype {arr.dtype} with shape {arr.shape}"
    )


def sinr_nonfading(gains: np.ndarray, active, noise: float, *, gains_op=None) -> np.ndarray:
    """Non-fading SINR of every link under one transmit pattern.

    Parameters
    ----------
    gains:
        Mean-signal matrix ``S̄[j, i]`` of shape ``(n, n)``.
    active:
        Boolean mask of transmitting links, or an integer index list.
    noise:
        Ambient noise ``ν >= 0``.
    gains_op:
        Optional pre-built gain operator over ``gains`` (built with
        ``keep_diagonal=True``); :class:`SINRInstance` passes its cached
        one.  When omitted, the ambient backend wraps ``gains`` — a
        no-copy view under the default config.

    Returns
    -------
    ndarray of shape ``(n,)``
        ``γ_i^nf`` for active links; exactly ``0`` for silent links.  With
        ``ν = 0`` and no interferers the SINR is ``+inf`` (an isolated
        transmission always succeeds), matching the model's limit.
    """
    gains = np.asarray(gains, dtype=np.float64)
    n = gains.shape[0]
    mask = _as_active_bool(active, n)
    diag = np.diagonal(gains)
    if gains_op is None:
        gains_op = _backend.active().gain_operator(gains, keep_diagonal=True)
    # Σ_{j active} S̄(j, i), includes own signal
    total = gains_op.matvec(mask.astype(gains_op.dtype))
    denom = total - mask * diag + float(noise)
    out = np.zeros(n, dtype=np.float64)
    with np.errstate(divide="ignore"):
        np.divide(diag, denom, out=out, where=mask & (denom > 0.0))
    out[mask & (denom <= 0.0)] = np.inf
    return out


def sinr_nonfading_batch(
    gains: np.ndarray, active: np.ndarray, noise: float, *, gains_op=None
) -> np.ndarray:
    """Non-fading SINR for a batch of transmit patterns.

    ``active`` has shape ``(B, n)`` (boolean); the result has the same
    shape.  One matrix product evaluates all ``B`` patterns — routed
    through the ambient array backend (or the caller's ``gains_op``), so
    ``--topk`` swaps in the sparse representation transparently.
    """
    gains = np.asarray(gains, dtype=np.float64)
    act = np.asarray(active, dtype=bool)
    if act.ndim != 2 or act.shape[1] != gains.shape[0]:
        raise ValueError(f"active batch must be (B, {gains.shape[0]}), got {act.shape}")
    diag = np.diagonal(gains)
    if gains_op is None:
        gains_op = _backend.active().gain_operator(gains, keep_diagonal=True)
    total = gains_op.matmul(act.astype(gains_op.dtype))
    denom = total - act * diag + float(noise)
    out = np.zeros(act.shape, dtype=np.float64)
    with np.errstate(divide="ignore"):
        np.divide(
            np.broadcast_to(diag, act.shape), denom, out=out, where=act & (denom > 0.0)
        )
    out[act & (denom <= 0.0)] = np.inf
    return out


def successful_links(gains: np.ndarray, active, noise: float, beta: float) -> np.ndarray:
    """Boolean mask of links transmitting with ``γ^nf >= β``."""
    check_positive(beta, "beta")
    return sinr_nonfading(gains, active, noise) >= beta


def success_count(gains: np.ndarray, active, noise: float, beta: float) -> int:
    """Number of successful transmissions under one pattern."""
    return int(successful_links(gains, active, noise, beta).sum())


class SINRInstance:
    """A scheduling instance: mean signals ``S̄`` plus ambient noise ``ν``.

    This is the common input of the non-fading engine, the Rayleigh engine,
    the scheduling algorithms, and the learning dynamics.  Instances are
    immutable; the only internal mutability is a cache of derived gain
    operators keyed by the active backend configuration, so sharing an
    instance across backend switches is safe.
    """

    __slots__ = ("_gains", "_noise", "_backend_ops")

    def __init__(self, gains, noise: float = 0.0):
        g = check_square_matrix(gains, name="gains").copy()
        if np.any(g < 0.0) or not np.all(np.isfinite(g)):
            raise ValueError("gains must be finite and non-negative")
        if np.any(np.diagonal(g) <= 0.0):
            raise ValueError("own-signal gains S̄(i, i) must be strictly positive")
        g.setflags(write=False)
        self._gains = g
        self._noise = check_nonnegative(noise, "noise")
        self._backend_ops: "dict[tuple, object]" = {}

    @classmethod
    def from_network(
        cls,
        network: Network,
        power: PowerAssignment,
        alpha: float,
        noise: float = 0.0,
    ) -> "SINRInstance":
        """Build the instance for a geometric/matrix network and power choice."""
        return cls(mean_signal_matrix(network, power, alpha), noise)

    # -- accessors ---------------------------------------------------------

    @property
    def gains(self) -> np.ndarray:
        """Read-only mean-signal matrix ``S̄[j, i]``."""
        return self._gains

    @property
    def noise(self) -> float:
        """Ambient noise ``ν``."""
        return self._noise

    @property
    def n(self) -> int:
        return self._gains.shape[0]

    def __len__(self) -> int:
        return self.n

    @property
    def signal(self) -> np.ndarray:
        """Own-signal strengths ``S̄(i, i)`` (the matrix diagonal)."""
        return np.diagonal(self._gains)

    @property
    def max_noise_free_sinr(self) -> np.ndarray:
        """``S̄(i,i)/ν`` per link — the best SINR achievable against noise
        alone (``+inf`` when ``ν = 0``).  Definition 1's validity threshold
        and Theorem 2's case split are stated relative to this quantity."""
        with np.errstate(divide="ignore"):
            return np.where(
                self._noise > 0.0, self.signal / max(self._noise, 1e-300), np.inf
            )

    # -- backend operators ---------------------------------------------------

    def gains_operator(self, *, keep_diagonal: bool = True):
        """Gain operator over ``S̄`` for the *active* backend config.

        Cached per ``(config, keep_diagonal)`` so repeated batch calls
        under one policy reuse the representation (in particular the
        one-time top-k selection), while a config switch transparently
        builds — and thereafter reuses — the right operator.
        """
        be = _backend.active()
        key = (be.config, keep_diagonal)
        op = self._backend_ops.get(key)
        if op is None:
            op = be.gain_operator(self._gains, keep_diagonal=keep_diagonal)
            self._backend_ops[key] = op
        return op

    def topk_gains(self, k: int, *, keep_diagonal: bool = True):
        """Sparse top-k-interferer representation of ``S̄`` (uncached).

        A direct builder for callers that want the sparse form
        irrespective of the ambient config — e.g. the scaling benchmark
        comparing dense vs sparse on one instance.
        """
        from repro.backend import TopKGains

        return TopKGains.build(self._gains, k, keep_diagonal=keep_diagonal)

    # -- SINR / success -----------------------------------------------------

    def sinr(self, active) -> np.ndarray:
        """Non-fading SINR ``γ^nf`` of every link under a transmit pattern."""
        return sinr_nonfading(
            self._gains, active, self._noise, gains_op=self.gains_operator()
        )

    def sinr_batch(self, active: np.ndarray) -> np.ndarray:
        """Batched non-fading SINR over patterns of shape ``(B, n)``."""
        return sinr_nonfading_batch(
            self._gains, active, self._noise, gains_op=self.gains_operator()
        )

    def successes(self, active, beta: float) -> np.ndarray:
        """Mask of links succeeding (transmitting with ``γ^nf >= β``)."""
        check_positive(beta, "beta")
        return self.sinr(active) >= beta

    def success_count(self, active, beta: float) -> int:
        """Number of successful transmissions under one pattern."""
        return int(self.successes(active, beta).sum())

    def is_feasible(self, subset, beta: float) -> bool:
        """Whether *all* links in ``subset`` succeed simultaneously
        (the "feasible set" notion of Section 6)."""
        mask = _as_active_bool(np.asarray(subset), self.n)
        if not mask.any():
            return True
        return bool(np.all(self.successes(mask, beta)[mask]))

    # -- derived instances ---------------------------------------------------

    def subinstance(self, indices) -> "SINRInstance":
        """Instance restricted to the given links (for recursive schedulers)."""
        idx = np.asarray(indices, dtype=np.intp)
        if idx.ndim != 1 or idx.size == 0:
            raise ValueError("indices must be a non-empty 1-D sequence")
        return SINRInstance(self._gains[np.ix_(idx, idx)], self._noise)

    def with_noise(self, noise: float) -> "SINRInstance":
        """Same gains, different ambient noise."""
        return SINRInstance(self._gains, noise)

    def __repr__(self) -> str:
        return f"SINRInstance(n={self.n}, noise={self._noise:g})"
