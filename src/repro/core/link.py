"""A single communication request (sender–receiver pair)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Link"]


@dataclass(frozen=True)
class Link:
    """One communication request ``(s_i, r_i)``.

    Links are views into a :class:`repro.core.network.Network`; they exist
    for inspection and pretty-printing, not for bulk computation (which is
    done on the network's arrays).

    Attributes
    ----------
    index:
        Position of the link in its network.
    sender, receiver:
        Coordinates (``None`` for networks built from raw matrices).
    length:
        Sender–receiver distance ``d(s_i, r_i)``.
    """

    index: int
    sender: "np.ndarray | None"
    receiver: "np.ndarray | None"
    length: float

    def __str__(self) -> str:
        if self.sender is None or self.receiver is None:
            return f"Link({self.index}, length={self.length:.4g})"
        s = ", ".join(f"{c:.4g}" for c in self.sender)
        r = ", ".join(f"{c:.4g}" for c in self.receiver)
        return f"Link({self.index}, s=({s}), r=({r}), length={self.length:.4g})"
