"""Existence and computation of feasible transmission powers.

Substrate for power control (Kesselheim [6], Andrews–Dinitz [5]): given a
set of links, do powers ``p > 0`` exist such that every link meets
``γ^nf ≥ β`` simultaneously — and if so, which powers?

Classical characterisation (Foschini–Miljanic / Zander): with unit-power
gains ``g(j, i) = 1 / d(s_j, r_i)^α``, the constraints are

.. math::

    p_i\\, g(i,i) \\;\\ge\\; \\beta \\Big( \\sum_{j \\ne i} p_j\\, g(j,i)
        + \\nu \\Big)
    \\quad\\Longleftrightarrow\\quad p \\;\\ge\\; C p + u ,

with ``C[i, j] = β g(j, i) / g(i, i)`` (zero diagonal) and
``u_i = β ν / g(i, i)``.  A positive solution exists iff the spectral
radius ``ρ(C) < 1``; the component-wise *minimal* feasible powers are then
``p* = (I - C)^{-1} u`` (for ``ν = 0`` any positive Perron-like vector
``(I - C)^{-1} 1`` works, and the constraint set is scale-invariant).
"""

from __future__ import annotations

import numpy as np

from repro.core.network import Network
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "power_feasibility_margin",
    "is_power_feasible",
    "min_feasible_powers",
]


def _relative_gain_matrix(
    network: Network, subset: np.ndarray, beta: float, alpha: float
) -> np.ndarray:
    """``C[i, j] = β g(j, i) / g(i, i)`` restricted to ``subset``.

    Row ``i`` is the constrained receiver, column ``j`` the interfering
    sender; note the transpose relative to the ``S̄[j, i]`` convention.
    """
    D = network.cross_distances[np.ix_(subset, subset)]
    lengths = np.diagonal(D)
    # g(j, i) / g(i, i) = (d_i / d(s_j, r_i))^α; C rows indexed by receiver.
    C = beta * (lengths[:, None] / D.T) ** alpha
    np.fill_diagonal(C, 0.0)
    return C


def _normalize_subset(network: Network, subset) -> np.ndarray:
    idx = np.asarray(subset)
    if idx.dtype == np.bool_:
        idx = np.flatnonzero(idx)
    idx = idx.astype(np.intp)
    if idx.ndim != 1:
        raise ValueError("subset must be one-dimensional")
    if idx.size and (idx.min() < 0 or idx.max() >= network.n):
        raise IndexError("subset index out of range")
    return idx


def power_feasibility_margin(
    network: Network, subset, beta: float, alpha: float
) -> float:
    """``1 - ρ(C)`` for the subset's relative-gain matrix.

    Positive ⇔ some power assignment makes all links in ``subset`` succeed
    simultaneously (strictly, for ``ν > 0``); larger margins mean the set
    tolerates more noise and needs less extreme powers.  Returns 1.0 for
    empty or singleton subsets.
    """
    check_positive(beta, "beta")
    check_positive(alpha, "alpha")
    idx = _normalize_subset(network, subset)
    if idx.size <= 1:
        return 1.0
    C = _relative_gain_matrix(network, idx, beta, alpha)
    # C is non-negative; its spectral radius is real (Perron–Frobenius).
    rho = float(np.max(np.abs(np.linalg.eigvals(C))))
    return 1.0 - rho


def is_power_feasible(network: Network, subset, beta: float, alpha: float) -> bool:
    """Whether *some* positive powers let all of ``subset`` succeed at once."""
    return power_feasibility_margin(network, subset, beta, alpha) > 0.0


def min_feasible_powers(
    network: Network,
    subset,
    beta: float,
    alpha: float,
    noise: float = 0.0,
    *,
    slack: float = 1.0,
) -> "np.ndarray | None":
    """Component-wise minimal powers making every link of ``subset`` reach
    ``γ^nf ≥ β``, or ``None`` when no powers exist.

    Parameters
    ----------
    network, subset, beta, alpha, noise:
        The instance; ``subset`` as indices or boolean mask.
    slack:
        Multiply the minimal solution by this factor (``> 1`` gives strict
        inequality everywhere, useful before feeding the powers into
        floating-point SINR checks).

    Returns
    -------
    ndarray of positive powers aligned with ``subset`` order, or ``None``.

    Notes
    -----
    For ``ν = 0`` the minimal solution of ``p ≥ C p`` is the zero vector;
    we return the strictly positive scale-free solution ``(I - C)^{-1} 1``
    instead (any positive multiple is equally feasible).
    """
    check_positive(beta, "beta")
    check_positive(alpha, "alpha")
    check_nonnegative(noise, "noise")
    if slack < 1.0:
        raise ValueError(f"slack must be >= 1, got {slack}")
    idx = _normalize_subset(network, subset)
    if idx.size == 0:
        return np.empty(0, dtype=np.float64)
    lengths = np.diagonal(network.cross_distances)[idx]
    if idx.size == 1:
        # A lone link only fights the noise: p / d^α ≥ βν.
        p = beta * noise * lengths**alpha
        base = np.maximum(p, 1.0)  # positive even when ν = 0
        return slack * base
    C = _relative_gain_matrix(network, idx, beta, alpha)
    rho = float(np.max(np.abs(np.linalg.eigvals(C))))
    if rho >= 1.0:
        return None
    u = beta * noise * lengths**alpha  # βν / g(i,i) = βν d_i^α
    rhs = u if noise > 0.0 else np.ones(idx.size, dtype=np.float64)
    p = np.linalg.solve(np.eye(idx.size) - C, rhs)
    if np.any(p <= 0.0) or not np.all(np.isfinite(p)):  # numerically degenerate
        return None
    return slack * p
