"""The network of communication requests and its cached distance data.

A :class:`Network` bundles the ``n`` links of Section 2 and exposes the
cross-distance matrix ``D[j, i] = d(s_j, r_i)`` that every gain
computation is built on.  Networks are immutable; the (possibly large)
distance matrix is computed lazily once and reused by all power
assignments, following the guide's "views, not copies / compute once"
discipline.

Two construction paths:

* geometric — coordinate arrays plus a :class:`~repro.geometry.metric.Metric`
  (the simulation setting of Section 7);
* abstract — an explicit cross-distance matrix (the theory of Sections
  3–5 needs only the values ``S̄(j, i)``, so arbitrary-metric and even
  non-metric instances are first-class).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.link import Link
from repro.geometry.metric import EuclideanMetric, Metric
from repro.utils.validation import check_square_matrix

__all__ = ["Network"]


class Network:
    """An immutable set of ``n`` sender–receiver pairs.

    Parameters
    ----------
    senders, receivers:
        Coordinate arrays of shape ``(n, dim)``.
    metric:
        Metric used for all distances; default Euclidean.
    min_distance:
        Distances are clamped below by this value before any gain
        computation, so coincident nodes cannot produce infinite gains.
        The default is far below any realistic node separation.
    """

    __slots__ = (
        "_senders",
        "_receivers",
        "_metric",
        "_min_distance",
        "_cross",
        "_lengths",
    )

    def __init__(
        self,
        senders,
        receivers,
        *,
        metric: "Metric | None" = None,
        min_distance: float = 1e-9,
    ):
        # Copy before freezing: np.asarray may alias the caller's array,
        # and setflags(write=False) on an alias would surprisingly freeze
        # the caller's data too.
        senders = np.array(senders, dtype=np.float64, copy=True)
        receivers = np.array(receivers, dtype=np.float64, copy=True)
        if senders.ndim != 2 or receivers.ndim != 2:
            raise ValueError("senders/receivers must be (n, dim) arrays")
        if senders.shape != receivers.shape:
            raise ValueError(
                f"senders shape {senders.shape} != receivers shape {receivers.shape}"
            )
        if senders.shape[0] == 0:
            raise ValueError("a network needs at least one link")
        if min_distance <= 0.0:
            raise ValueError("min_distance must be positive")
        self._senders = senders
        self._senders.setflags(write=False)
        self._receivers = receivers
        self._receivers.setflags(write=False)
        self._metric = metric if metric is not None else EuclideanMetric()
        self._min_distance = float(min_distance)
        self._cross: "np.ndarray | None" = None
        self._lengths: "np.ndarray | None" = None

    # -- alternate constructors -------------------------------------------------

    @classmethod
    def from_distance_matrix(
        cls, cross_distances, *, min_distance: float = 1e-9
    ) -> "Network":
        """Build a non-geometric network from ``D[j, i] = d(s_j, r_i)``.

        The diagonal ``D[i, i]`` supplies the link lengths.  No metric
        axioms are assumed — the Rayleigh/non-fading reduction results hold
        for arbitrary non-negative mean signal strengths.
        """
        cross = check_square_matrix(cross_distances, name="cross_distances")
        if np.any(cross < 0.0) or not np.all(np.isfinite(cross)):
            raise ValueError("cross_distances must be finite and non-negative")
        net = cls.__new__(cls)
        net._senders = None
        net._receivers = None
        net._metric = None
        net._min_distance = float(min_distance)
        clamped = np.maximum(cross, min_distance)
        clamped.setflags(write=False)
        net._cross = clamped
        net._lengths = None
        return net

    # -- basic accessors ----------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of links."""
        if self._cross is not None:
            return self._cross.shape[0]
        return self._senders.shape[0]

    def __len__(self) -> int:
        return self.n

    @property
    def is_geometric(self) -> bool:
        """Whether coordinates are available (False for matrix-built networks)."""
        return self._senders is not None

    @property
    def senders(self) -> np.ndarray:
        if self._senders is None:
            raise AttributeError("network was built from a distance matrix; no coordinates")
        return self._senders

    @property
    def receivers(self) -> np.ndarray:
        if self._receivers is None:
            raise AttributeError("network was built from a distance matrix; no coordinates")
        return self._receivers

    @property
    def metric(self) -> Metric:
        if self._metric is None:
            raise AttributeError("network was built from a distance matrix; no metric")
        return self._metric

    # -- distances ----------------------------------------------------------------

    @property
    def cross_distances(self) -> np.ndarray:
        """Matrix ``D[j, i] = d(s_j, r_i)`` (clamped at ``min_distance``).

        Computed on first access and cached; the returned array is
        read-only and shared, never copied.
        """
        if self._cross is None:
            cross = self._metric.pairwise(self._senders, self._receivers)
            np.maximum(cross, self._min_distance, out=cross)
            cross.setflags(write=False)
            self._cross = cross
        return self._cross

    @property
    def lengths(self) -> np.ndarray:
        """Link lengths ``d_i = d(s_i, r_i)`` (the diagonal of the cross matrix)."""
        if self._lengths is None:
            lengths = np.ascontiguousarray(np.diagonal(self.cross_distances))
            lengths.setflags(write=False)
            self._lengths = lengths
        return self._lengths

    @property
    def length_ratio(self) -> float:
        """``Δ`` — ratio of the longest to the shortest link length."""
        lengths = self.lengths
        return float(lengths.max() / lengths.min())

    # -- link views ----------------------------------------------------------------

    def link(self, i: int) -> Link:
        """Inspection view of link ``i``."""
        if not 0 <= i < self.n:
            raise IndexError(f"link index {i} out of range for n={self.n}")
        if self.is_geometric:
            return Link(
                index=i,
                sender=self._senders[i],
                receiver=self._receivers[i],
                length=float(self.lengths[i]),
            )
        return Link(index=i, sender=None, receiver=None, length=float(self.lengths[i]))

    @property
    def links(self) -> list[Link]:
        """All links as :class:`~repro.core.link.Link` views."""
        return [self.link(i) for i in range(self.n)]

    # -- derived networks -----------------------------------------------------------

    def subnetwork(self, indices: Sequence[int]) -> "Network":
        """Network restricted to the given links (preserving their order).

        Used by latency schedulers, which recurse on the still-unserved
        links.
        """
        idx = np.asarray(indices, dtype=np.intp)
        if idx.ndim != 1 or idx.size == 0:
            raise ValueError("indices must be a non-empty 1-D sequence")
        if idx.min() < 0 or idx.max() >= self.n:
            raise IndexError("subnetwork index out of range")
        if len(set(idx.tolist())) != idx.size:
            raise ValueError("subnetwork indices must be distinct")
        if self.is_geometric:
            return Network(
                self._senders[idx],
                self._receivers[idx],
                metric=self._metric,
                min_distance=self._min_distance,
            )
        return Network.from_distance_matrix(
            self.cross_distances[np.ix_(idx, idx)], min_distance=self._min_distance
        )

    def __repr__(self) -> str:
        kind = "geometric" if self.is_geometric else "matrix"
        return f"Network(n={self.n}, {kind})"
