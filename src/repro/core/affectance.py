"""Affectance — the additive reformulation of SINR constraints.

Halldórsson–Wattenhofer [25] observed that the SINR constraint of link
``i`` can be rewritten additively.  For general mean signals, the
*affectance* of link ``j`` on link ``i`` at threshold ``β`` is

.. math::

    a(j, i) = \\min\\left\\{1,\\;
        \\frac{\\beta\\,\\bar S(j,i)}{\\bar S(i,i) - \\beta\\nu}\\right\\},
    \\qquad a(i, i) = 0,

which for uniform powers and geometric gains reduces exactly to the
expression in the proof of Lemma 6 of the paper.  Link ``i`` satisfies its
SINR constraint within a transmitting set ``X`` iff
``Σ_{j∈X} a(j, i) ≤ 1`` (with unclamped values; the clamp at 1 never flips
the predicate because any clamped single term already certifies
violation).

This module supplies the affectance matrix, feasibility predicates, the
Lemma-7 robust-subset construction ``L' = {u ∈ L : Σ_{v∈L} a(u, v) ≤ 2}``,
and the (approximate) maximum average affectance used to tune ALOHA-style
contention resolution [9].
"""

from __future__ import annotations

import numpy as np

from repro.core.sinr import SINRInstance
from repro.utils.validation import check_positive

__all__ = [
    "affectance_matrix",
    "total_affectance",
    "is_feasible_set",
    "robust_subset",
    "max_average_affectance",
]

#: Affectance assigned to pairs (j, i) where link i cannot reach β even in
#: silence (S̄(i,i) <= βν).  Any positive interferer then "fully affects" i.
_BLOCKED = 1.0


def affectance_matrix(
    instance: SINRInstance, beta: float, *, clamped: bool = True
) -> np.ndarray:
    """Affectance ``a[j, i]`` of sender ``j`` on link ``i`` at threshold ``β``.

    Parameters
    ----------
    instance:
        Mean signals and noise.
    beta:
        SINR threshold.
    clamped:
        Clamp entries at 1 (the paper's ``min{1, ·}``).  Unclamped values
        make ``Σ_j a(j,i) ≤ 1`` *exactly* equivalent to the SINR constraint
        and are what :func:`is_feasible_set` uses.

    Returns
    -------
    ndarray ``(n, n)`` with zero diagonal.  For links that cannot reach
    ``β`` against noise alone, every incoming affectance is set to 1
    (clamped) or ``+inf`` (unclamped): such links are infeasible in any
    company.
    """
    check_positive(beta, "beta")
    signal = instance.signal
    margin = signal - beta * instance.noise  # S̄(i,i) - βν, per receiver i
    a = np.empty((instance.n, instance.n), dtype=np.float64)
    ok = margin > 0.0
    with np.errstate(divide="ignore", invalid="ignore"):
        np.divide(beta * instance.gains, margin[None, :], out=a)
    if not ok.all():
        a[:, ~ok] = _BLOCKED if clamped else np.inf
    if clamped:
        np.minimum(a, 1.0, out=a)
    np.fill_diagonal(a, 0.0)
    return a


def total_affectance(affectance: np.ndarray, active) -> np.ndarray:
    """Incoming affectance ``a(i) = Σ_{j active} a(j, i)`` for every link.

    ``active`` is a boolean mask or index list over links; the sum runs
    over the active senders (the diagonal is zero, so a link's own
    transmission does not count).
    """
    A = np.asarray(affectance, dtype=np.float64)
    mask = np.asarray(active)
    if mask.dtype != np.bool_:
        m = np.zeros(A.shape[0], dtype=bool)
        m[mask] = True
        mask = m
    return mask.astype(np.float64) @ A


def is_feasible_set(instance: SINRInstance, subset, beta: float) -> bool:
    """Whether all links of ``subset`` can transmit simultaneously with
    ``γ^nf ≥ β`` — the affectance formulation, numerically identical to
    :meth:`repro.core.sinr.SINRInstance.is_feasible`."""
    idx = np.asarray(subset)
    if idx.size == 0:
        return True
    if idx.dtype != np.bool_:
        mask = np.zeros(instance.n, dtype=bool)
        mask[idx.astype(np.intp)] = True
    else:
        mask = idx
    if not mask.any():
        return True
    a = affectance_matrix(instance, beta, clamped=False)
    incoming = total_affectance(a, mask)
    return bool(np.all(incoming[mask] <= 1.0 + 1e-12))


def robust_subset(affectance: np.ndarray, subset, *, bound: float = 2.0) -> np.ndarray:
    """Lemma 7 (Ásgeirsson–Mitra [24, Lemma 8]) construction.

    Given a feasible set ``L``, return
    ``L' = {u ∈ L : Σ_{v ∈ L} a(u, v) ≤ bound}`` — the links whose
    *outgoing* affectance within ``L`` is small.  For a feasible ``L`` and
    ``bound = 2`` the lemma guarantees ``|L'| ≥ |L| / 2``.

    Parameters
    ----------
    affectance:
        Clamped affectance matrix ``a[j, i]``.
    subset:
        Index array (or boolean mask) of the links of ``L``.

    Returns
    -------
    Integer index array of ``L'`` (subset of ``L``, original order).
    """
    A = np.asarray(affectance, dtype=np.float64)
    idx = np.asarray(subset)
    if idx.dtype == np.bool_:
        idx = np.flatnonzero(idx)
    if idx.size == 0:
        return idx.astype(np.intp)
    out_aff = A[np.ix_(idx, idx)].sum(axis=1)  # Σ_{v∈L} a(u, v) per u
    return idx[out_aff <= bound + 1e-12].astype(np.intp)


def max_average_affectance(affectance: np.ndarray, subset=None) -> float:
    """Approximate maximum average affectance
    ``ā = max_{L' ⊆ L} (1/|L'|) Σ_{i∈L'} Σ_{j∈L'} a(j, i)``.

    This is the contention measure that the distributed latency protocol of
    Kesselheim–Vöcking [9] tunes its transmission probability against.
    Exact maximisation over subsets equals a densest-subgraph problem; we
    use the classical greedy peeling (repeatedly delete the link of
    minimum degree), which 2-approximates the optimum — sufficient for
    setting protocol constants, and we document the approximation at the
    call sites.

    Returns 0 for singleton or empty subsets.
    """
    A = np.asarray(affectance, dtype=np.float64)
    n = A.shape[0]
    if subset is None:
        idx = np.arange(n)
    else:
        idx = np.asarray(subset)
        if idx.dtype == np.bool_:
            idx = np.flatnonzero(idx)
    if idx.size <= 1:
        return 0.0
    # Symmetrised weight: link u's "degree" counts affectance in both
    # directions, since removing u removes both rows and columns.
    sub = A[np.ix_(idx, idx)]
    m = sub.shape[0]
    alive = np.ones(m, dtype=bool)
    deg = sub.sum(axis=0) + sub.sum(axis=1)  # in + out within subset
    total = float(sub.sum())
    best = total / m
    order_count = m
    for _ in range(m - 1):
        # Remove the minimum-degree link.
        masked = np.where(alive, deg, np.inf)
        u = int(np.argmin(masked))
        alive[u] = False
        order_count -= 1
        total -= float(sub[u, alive].sum() + sub[alive, u].sum() + 0.0)
        deg -= sub[u, :] + sub[:, u]
        if order_count > 0:
            best = max(best, total / order_count)
    return best
