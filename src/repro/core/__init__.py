"""Core non-fading SINR substrate.

This package implements the deterministic model of Section 2:

* :class:`~repro.core.network.Network` — links in a metric space (or given
  directly by distance/gain matrices) with cached cross-distances.
* :mod:`~repro.core.power` — power assignments: uniform, length-scaled
  (square-root / linear), and explicit vectors.
* :class:`~repro.core.sinr.SINRInstance` and the vectorized kernels in
  :mod:`~repro.core.sinr` — mean signal strengths ``S̄(j,i)``, non-fading
  SINR ``γ^nf``, and success sets.
* :mod:`~repro.core.affectance` — the affectance reformulation ``a(j,i)``
  of the SINR constraint (Halldórsson–Wattenhofer [25]) used by the greedy
  algorithms and the regret-learning analysis of Section 6.
* :mod:`~repro.core.feasibility` — existence and computation of feasible
  transmission powers for a set of links (substrate for power control [6]).
"""

from repro.core.affectance import (
    affectance_matrix,
    is_feasible_set,
    max_average_affectance,
    robust_subset,
    total_affectance,
)
from repro.core.feasibility import (
    is_power_feasible,
    min_feasible_powers,
    power_feasibility_margin,
)
from repro.core.link import Link
from repro.core.network import Network
from repro.core.power import (
    CustomPower,
    LengthScaledPower,
    LinearPower,
    PowerAssignment,
    SquareRootPower,
    UniformPower,
)
from repro.core.sinr import (
    SINRInstance,
    sinr_nonfading,
    sinr_nonfading_batch,
    success_count,
    successful_links,
)

__all__ = [
    "CustomPower",
    "LengthScaledPower",
    "LinearPower",
    "Link",
    "Network",
    "PowerAssignment",
    "SINRInstance",
    "SquareRootPower",
    "UniformPower",
    "affectance_matrix",
    "is_feasible_set",
    "is_power_feasible",
    "max_average_affectance",
    "min_feasible_powers",
    "power_feasibility_margin",
    "robust_subset",
    "sinr_nonfading",
    "sinr_nonfading_batch",
    "success_count",
    "successful_links",
    "total_affectance",
]
