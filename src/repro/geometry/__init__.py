"""Geometric substrate: metric spaces and network-topology generators.

The paper's simulations place receivers uniformly at random on a
1000x1000 plane and place each sender at a uniform random angle and
distance from its receiver (:func:`repro.geometry.placement.paper_random_network`).
The theory, however, holds for arbitrary gain matrices; the
:class:`~repro.geometry.metric.Metric` abstraction lets networks live in
any p-norm space, and :class:`repro.core.network.Network` additionally
accepts raw distance or gain matrices for non-geometric instances.
"""

from repro.geometry.metric import EuclideanMetric, Metric, PNormMetric, TorusMetric
from repro.geometry.placement import (
    cluster_network,
    grid_network,
    line_network,
    nested_pairs_network,
    paper_random_network,
    poisson_network,
)

__all__ = [
    "EuclideanMetric",
    "Metric",
    "PNormMetric",
    "TorusMetric",
    "cluster_network",
    "grid_network",
    "line_network",
    "nested_pairs_network",
    "paper_random_network",
    "poisson_network",
]
