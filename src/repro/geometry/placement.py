"""Network-topology generators.

:func:`paper_random_network` is the generator described verbatim in
Section 7 of the paper: receivers uniform on a square plane, each sender
at a uniform random angle and uniform random distance from its receiver.
The other generators provide the structured topologies used by the
extended benchmark suite (grids and Poisson fields as in Liu–Haenggi [18],
exponentially nested link pairs as the classic hard instance of
Moscibroda–Wattenhofer [2], and clustered hot-spot layouts).

Every generator returns ``(senders, receivers)`` as float64 arrays of
shape ``(n, 2)``; build a :class:`repro.core.network.Network` from them.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "paper_random_network",
    "grid_network",
    "poisson_network",
    "cluster_network",
    "line_network",
    "nested_pairs_network",
]

Points = tuple[np.ndarray, np.ndarray]


def _sender_offsets(n: int, min_length: float, max_length: float, rng) -> np.ndarray:
    """Uniform-angle, uniform-radius offsets, exactly as in Section 7.

    Note the paper draws the *distance* uniformly from the interval (not
    uniformly by area), which biases senders toward their receiver; we
    replicate that choice.
    """
    angles = rng.uniform(0.0, 2.0 * math.pi, size=n)
    radii = rng.uniform(min_length, max_length, size=n)
    return np.column_stack((radii * np.cos(angles), radii * np.sin(angles)))


def paper_random_network(
    n: int,
    *,
    area: float = 1000.0,
    min_length: float = 20.0,
    max_length: float = 40.0,
    rng=None,
) -> Points:
    """Random network of Section 7: receivers uniform on ``[0, area]^2``,
    senders at uniform angle / uniform distance in ``[min_length, max_length]``.

    Figure 1 uses ``n=100, area=1000, min_length=20, max_length=40``;
    Figure 2 uses ``n=200, min_length=0, max_length=100``.

    Parameters
    ----------
    n:
        Number of links.
    area:
        Side length of the deployment square.
    min_length, max_length:
        Bounds of the uniform sender–receiver distance.
    rng:
        Seed or :class:`numpy.random.Generator`.

    Returns
    -------
    (senders, receivers):
        Two ``(n, 2)`` arrays.  Senders may fall outside the square (the
        paper does not clip them; neither do we).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    check_positive(area, "area")
    check_nonnegative(min_length, "min_length")
    if max_length < min_length:
        raise ValueError(f"max_length {max_length} < min_length {min_length}")
    gen = as_generator(rng)
    receivers = gen.uniform(0.0, area, size=(n, 2))
    senders = receivers + _sender_offsets(n, min_length, max_length, gen)
    return senders, receivers


def grid_network(
    rows: int,
    cols: int,
    *,
    spacing: float = 100.0,
    link_length: float = 25.0,
    rng=None,
) -> Points:
    """Receivers on a regular ``rows x cols`` grid; senders at fixed distance
    ``link_length`` in a random direction (regular topology of [18])."""
    if rows <= 0 or cols <= 0:
        raise ValueError("grid dimensions must be positive")
    check_positive(spacing, "spacing")
    check_nonnegative(link_length, "link_length")
    gen = as_generator(rng)
    ys, xs = np.mgrid[0:rows, 0:cols]
    receivers = np.column_stack((xs.ravel() * spacing, ys.ravel() * spacing)).astype(np.float64)
    n = rows * cols
    senders = receivers + _sender_offsets(n, link_length, link_length, gen)
    return senders, receivers


def poisson_network(
    intensity: float,
    *,
    area: float = 1000.0,
    min_length: float = 20.0,
    max_length: float = 40.0,
    rng=None,
) -> Points:
    """Poisson point process of receivers with intensity per unit area
    (random topology of [18]); sender placement as in the paper.

    The realised number of links is Poisson-distributed; at least one link
    is always returned so downstream code never sees an empty network.
    """
    check_positive(intensity, "intensity")
    gen = as_generator(rng)
    n = max(1, int(gen.poisson(intensity * area * area)))
    return paper_random_network(
        n, area=area, min_length=min_length, max_length=max_length, rng=gen
    )


def cluster_network(
    n_clusters: int,
    links_per_cluster: int,
    *,
    area: float = 1000.0,
    cluster_radius: float = 60.0,
    min_length: float = 20.0,
    max_length: float = 40.0,
    rng=None,
) -> Points:
    """Hot-spot topology: receivers gathered in Gaussian clusters.

    High intra-cluster interference makes these instances much harder for
    capacity maximization than the uniform layout; used by the ablation
    benches.
    """
    if n_clusters <= 0 or links_per_cluster <= 0:
        raise ValueError("cluster counts must be positive")
    gen = as_generator(rng)
    centers = gen.uniform(0.0, area, size=(n_clusters, 2))
    receivers = np.repeat(centers, links_per_cluster, axis=0) + gen.normal(
        0.0, cluster_radius, size=(n_clusters * links_per_cluster, 2)
    )
    senders = receivers + _sender_offsets(
        n_clusters * links_per_cluster, min_length, max_length, gen
    )
    return senders, receivers


def line_network(
    n: int,
    *,
    spacing: float = 100.0,
    link_length: float = 25.0,
) -> Points:
    """Deterministic co-linear links: receiver ``i`` at ``(i * spacing, 0)``,
    sender directly to its right.  Handy for hand-checkable tests."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    check_positive(spacing, "spacing")
    check_nonnegative(link_length, "link_length")
    xs = np.arange(n, dtype=np.float64) * spacing
    receivers = np.column_stack((xs, np.zeros(n)))
    senders = np.column_stack((xs + link_length, np.zeros(n)))
    return senders, receivers


def nested_pairs_network(
    n: int,
    *,
    base_length: float = 1.0,
    growth: float = 2.0,
) -> Points:
    """Exponentially nested link pairs — the classic instance family showing
    uniform power is weak (Moscibroda–Wattenhofer [2]).

    Link ``i`` has length ``base_length * growth**i`` and all links share a
    common midpoint region, so short links are buried in the interference
    of long ones unless powers are chosen non-uniformly.  ``Δ`` (max/min
    length ratio) is ``growth**(n-1)``, exercising the ``O(log Δ)`` regime.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    check_positive(base_length, "base_length")
    if growth <= 1.0:
        raise ValueError(f"growth must exceed 1, got {growth}")
    lengths = base_length * growth ** np.arange(n, dtype=np.float64)
    # Receiver at -len/2, sender at +len/2 on the x-axis, jittered slightly
    # on y so no two nodes coincide.
    y = np.arange(n, dtype=np.float64) * (base_length * 1e-3)
    receivers = np.column_stack((-lengths / 2.0, y))
    senders = np.column_stack((lengths / 2.0, y))
    return senders, receivers
