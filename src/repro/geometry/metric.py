"""Metric-space abstraction for node coordinates.

Networks carry a :class:`Metric` that turns sender/receiver coordinate
arrays into the cross-distance matrix ``D[j, i] = d(s_j, r_i)`` that all
gain computations are built on.  The default is the Euclidean plane used
by the paper's simulations; :class:`PNormMetric` covers the "general
metrics" setting of Halldórsson–Mitra [7] for the oblivious-power
algorithm.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Metric", "EuclideanMetric", "PNormMetric", "TorusMetric"]


class Metric(abc.ABC):
    """A metric on points given as rows of coordinate arrays."""

    @abc.abstractmethod
    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Cross-distance matrix ``D[j, i] = d(a_j, b_i)``.

        Parameters
        ----------
        a, b:
            Arrays of shape ``(m, dim)`` and ``(n, dim)``.

        Returns
        -------
        ndarray of shape ``(m, n)``.
        """

    def distance(self, p: np.ndarray, q: np.ndarray) -> float:
        """Distance between two single points."""
        p = np.atleast_2d(np.asarray(p, dtype=np.float64))
        q = np.atleast_2d(np.asarray(q, dtype=np.float64))
        return float(self.pairwise(p, q)[0, 0])

    def lengths(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Row-wise distances ``d(a_i, b_i)`` for equal-shaped point arrays."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.shape != b.shape:
            raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
        return self._rowwise(a, b)

    @abc.abstractmethod
    def _rowwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Row-wise distance kernel; inputs are validated float arrays."""


class PNormMetric(Metric):
    """The ``ℓ_p`` metric on ``R^dim`` for ``p >= 1`` (or ``inf``).

    ``p = 2`` is Euclidean; ``p = 1`` Manhattan; ``p = inf`` Chebyshev.
    All are genuine metrics, hence valid substrates for the algorithms that
    assume fading metrics.
    """

    def __init__(self, p: float = 2.0):
        if not (p >= 1.0):  # also rejects NaN
            raise ValueError(f"p-norm requires p >= 1, got {p}")
        self.p = float(p)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(p={self.p})"

    def _diffs(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        # (m, 1, dim) - (1, n, dim) -> (m, n, dim); small dim keeps this cheap.
        return a[:, None, :] - b[None, :, :]

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.atleast_2d(np.asarray(a, dtype=np.float64))
        b = np.atleast_2d(np.asarray(b, dtype=np.float64))
        if a.shape[1] != b.shape[1]:
            raise ValueError(f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}")
        d = np.abs(self._diffs(a, b))
        if np.isinf(self.p):
            return d.max(axis=-1)
        if self.p == 2.0:
            return np.sqrt(np.einsum("ijk,ijk->ij", d, d))
        if self.p == 1.0:
            return d.sum(axis=-1)
        return (d**self.p).sum(axis=-1) ** (1.0 / self.p)

    def _rowwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        d = np.abs(a - b)
        if np.isinf(self.p):
            return d.max(axis=-1)
        if self.p == 2.0:
            return np.sqrt(np.einsum("ij,ij->i", d, d))
        if self.p == 1.0:
            return d.sum(axis=-1)
        return (d**self.p).sum(axis=-1) ** (1.0 / self.p)


class EuclideanMetric(PNormMetric):
    """Euclidean metric — the paper's simulation setting."""

    def __init__(self) -> None:
        super().__init__(p=2.0)

    def __repr__(self) -> str:
        return "EuclideanMetric()"


class TorusMetric(PNormMetric):
    """The ``ℓ_p`` metric on a flat torus ``[0, size)^dim``.

    Wrap-around distances remove the boundary effects of a finite plane:
    every receiver sees statistically identical interference, which makes
    density studies (e.g. the E13 crossover sweep) cleaner.  Points are
    reduced modulo ``size`` before differencing; each coordinate
    difference is the shorter way around.
    """

    def __init__(self, size: float, p: float = 2.0):
        super().__init__(p=p)
        if not np.isfinite(size) or size <= 0.0:
            raise ValueError(f"torus size must be positive and finite, got {size}")
        self.size = float(size)

    def __repr__(self) -> str:
        return f"TorusMetric(size={self.size}, p={self.p})"

    def _wrap(self, d: np.ndarray) -> np.ndarray:
        d = np.abs(np.mod(d, self.size))
        return np.minimum(d, self.size - d)

    def _diffs(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._wrap(a[:, None, :] - b[None, :, :])

    def _rowwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        d = self._wrap(a - b)
        if np.isinf(self.p):
            return d.max(axis=-1)
        if self.p == 2.0:
            return np.sqrt(np.einsum("ij,ij->i", d, d))
        if self.p == 1.0:
            return d.sum(axis=-1)
        return (d**self.p).sum(axis=-1) ** (1.0 / self.p)
