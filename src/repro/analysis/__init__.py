"""Analysis tools built on top of the core models.

* :mod:`~repro.analysis.rayleigh_optimum` — numerical maximization of the
  expected Rayleigh capacity over transmission-probability vectors
  (the quantity Theorem 2 bounds against the non-fading optimum).
* :mod:`~repro.analysis.model_gap` — the measured Rayleigh/non-fading
  optimum ratio, the paper's open question ("the ``O(log* n)`` factor …
  might be reduced to a constant, which we were not able to prove").
* :mod:`~repro.analysis.lower_bounds` — latency lower bounds (capacity
  and conflict-clique arguments) used to report honest approximation
  ratios for the schedulers.
"""

from repro.analysis.graphs import (
    affectance_digraph,
    conflict_graph,
    graph_model_gap,
)
from repro.analysis.lower_bounds import (
    capacity_latency_lower_bound,
    conflict_clique_lower_bound,
    latency_lower_bound,
)
from repro.analysis.model_gap import measured_optimum_gap
from repro.analysis.rayleigh_optimum import (
    expected_capacity,
    expected_capacity_gradient,
    optimize_transmission_probabilities,
)

__all__ = [
    "affectance_digraph",
    "capacity_latency_lower_bound",
    "conflict_graph",
    "graph_model_gap",
    "conflict_clique_lower_bound",
    "expected_capacity",
    "expected_capacity_gradient",
    "latency_lower_bound",
    "measured_optimum_gap",
    "optimize_transmission_probabilities",
]
