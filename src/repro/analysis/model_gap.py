"""The measured Rayleigh/non-fading optimum gap (the paper's open question).

Theorem 2 proves ``OPT^R ≤ O(log* n) · OPT^nf`` and Section 8 conjectures
the true factor is a constant ("the ``O(log* n)``-factor in Theorem 2
might be reduced to a constant, which we were not able to prove").  This
module measures the gap empirically:

* ``OPT^nf`` — the non-fading optimum (local-search estimate; exact B&B
  on small instances),
* ``OPT^R`` — the Rayleigh optimum over product distributions
  (multi-start gradient ascent + vertex rounding, warm-started with the
  non-fading solution, so the reported ratio is a ratio of certified
  lower bounds of the same flavour).

The E13 bench sweeps ``n`` and reports the ratio against ``log* n``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.rayleigh_optimum import optimize_transmission_probabilities
from repro.capacity.optimum import local_search_capacity, optimal_capacity_bruteforce
from repro.core.sinr import SINRInstance
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["OptimumGap", "measured_optimum_gap"]


@dataclass(frozen=True)
class OptimumGap:
    """Measured two-model optimum comparison for one instance.

    Attributes
    ----------
    nonfading_value:
        Size of the (estimated) maximum non-fading feasible set.
    rayleigh_value:
        Best expected Rayleigh capacity found over transmit-probability
        vectors.
    ratio:
        ``rayleigh_value / nonfading_value``.  Theorem 2:
        ``≤ O(log* n)``; the open conjecture: bounded by a constant.
    rayleigh_q:
        The optimizing probability vector (a 0/1 vertex).
    """

    nonfading_value: int
    rayleigh_value: float
    rayleigh_q: np.ndarray

    @property
    def ratio(self) -> float:
        if self.nonfading_value == 0:
            return float("nan")
        return self.rayleigh_value / self.nonfading_value


def measured_optimum_gap(
    instance: SINRInstance,
    beta: float,
    rng=None,
    *,
    restarts: int = 6,
    exact: bool = False,
) -> OptimumGap:
    """Estimate both optima on one instance and return their ratio.

    Parameters
    ----------
    instance, beta:
        The instance and threshold.
    rng:
        Randomness for both searches.
    restarts:
        Restart budget shared by the two searches.
    exact:
        Use exact branch & bound for the non-fading side (instances up to
        ~30 links).
    """
    check_positive(beta, "beta")
    gen = as_generator(rng)
    if exact:
        nf_set = optimal_capacity_bruteforce(instance, beta)
    else:
        nf_set = local_search_capacity(instance, beta, gen, restarts=restarts)
    warm = np.zeros(instance.n)
    warm[nf_set] = 1.0
    result = optimize_transmission_probabilities(
        instance, beta, gen, restarts=restarts, seeds=[warm, np.ones(instance.n)]
    )
    return OptimumGap(
        nonfading_value=int(nf_set.size),
        rayleigh_value=result.value,
        rayleigh_q=result.q,
    )
