"""Graph views of SINR instances (networkx interop).

Graph-based interference models predate SINR models (the paper's
introduction contrasts the two); these exports let users inspect the
graph shadow of an SINR instance with standard graph tooling:

* :func:`conflict_graph` — undirected graph with an edge wherever two
  links cannot share a slot (either one fails next to the other); its
  cliques lower-bound latency, its independent sets are *candidate*
  (not sufficient!) schedules — quantifying exactly what graph models
  miss.
* :func:`affectance_digraph` — weighted digraph of the affectance
  matrix above a threshold; the standard object for contention
  analysis.
* :func:`graph_model_gap` — how wrong the graph abstraction is on an
  instance: the fraction of conflict-graph-independent sets (sampled)
  that are *not* SINR-feasible, i.e. interference that only the additive
  SINR constraint sees.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.core.affectance import affectance_matrix
from repro.core.sinr import SINRInstance
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["conflict_graph", "affectance_digraph", "graph_model_gap"]


def conflict_graph(instance: SINRInstance, beta: float) -> "nx.Graph":
    """Pairwise-conflict graph: edge (i, j) iff i and j cannot both
    succeed when only the two of them transmit."""
    check_positive(beta, "beta")
    n = instance.n
    gains = instance.gains
    signal = instance.signal
    nu = instance.noise
    fail = signal[None, :] < beta * (gains + nu)  # [j, i]: i fails next to j
    np.fill_diagonal(fail, False)
    conflict = fail | fail.T
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(zip(*np.nonzero(np.triu(conflict, k=1))))
    return g


def affectance_digraph(
    instance: SINRInstance, beta: float, *, threshold: float = 0.0
) -> "nx.DiGraph":
    """Weighted digraph of affectances ``a(j, i) > threshold``.

    Edge ``j -> i`` carries weight ``a(j, i)`` (clamped form); useful for
    contention analysis with standard graph algorithms (strongly
    connected interference clusters, weighted degrees, ...).
    """
    check_positive(beta, "beta")
    if threshold < 0.0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    a = affectance_matrix(instance, beta, clamped=True)
    g = nx.DiGraph()
    g.add_nodes_from(range(instance.n))
    js, is_ = np.nonzero(a > threshold)
    g.add_weighted_edges_from(
        (int(j), int(i), float(a[j, i])) for j, i in zip(js, is_)
    )
    return g


def graph_model_gap(
    instance: SINRInstance,
    beta: float,
    rng=None,
    *,
    num_samples: int = 200,
) -> float:
    """Fraction of sampled conflict-graph-independent sets that are *not*
    SINR-feasible.

    Graph interference models treat pairwise compatibility as sufficient;
    the SINR model adds up interference from many weak neighbours.  This
    statistic measures how often that sum flips the verdict on an
    instance — 0 means the graph abstraction happens to be exact, large
    values mean the SINR machinery is earning its keep (the motivation
    the paper's introduction sketches).

    Independent sets are sampled by randomized greedy over the conflict
    graph.
    """
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    gen = as_generator(rng)
    g = conflict_graph(instance, beta)
    n = instance.n
    adjacency = {v: set(g.neighbors(v)) for v in range(n)}
    viable = instance.signal > beta * instance.noise
    violations = 0
    effective = 0
    for _ in range(num_samples):
        order = gen.permutation(n)
        chosen: list[int] = []
        blocked: set[int] = set()
        for v in order:
            v = int(v)
            if not viable[v] or v in blocked:
                continue
            chosen.append(v)
            blocked |= adjacency[v]
        if len(chosen) <= 1:
            continue
        effective += 1
        if not instance.is_feasible(np.array(chosen), beta):
            violations += 1
    if effective == 0:
        return 0.0
    return violations / effective
