"""Latency lower bounds.

Reporting a scheduler's latency means little without a lower bound on
the optimum.  Two classic arguments are implemented:

* **capacity bound** — any schedule needs at least
  ``ceil(n / C*)`` slots, where ``C*`` is (an upper estimate of) the
  maximum number of links any single slot can serve.  We upper-bound
  ``C*`` by the best set found by local search plus an optional additive
  slack for the estimation error (on small instances the exact B&B value
  can be used).
* **conflict-clique bound** — links that are pairwise infeasible (no two
  can succeed in the same slot) must occupy distinct slots, so any clique
  in the pairwise-conflict graph lower-bounds the latency.  A greedy
  clique heuristic is used (maximum clique is NP-hard; any clique is a
  valid bound).

``latency_lower_bound`` returns the max of both.
"""

from __future__ import annotations

import numpy as np

from repro.capacity.optimum import local_search_capacity, optimal_capacity_bruteforce
from repro.core.sinr import SINRInstance
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = [
    "capacity_latency_lower_bound",
    "conflict_clique_lower_bound",
    "latency_lower_bound",
]


def capacity_latency_lower_bound(
    instance: SINRInstance,
    beta: float,
    rng=None,
    *,
    restarts: int = 8,
    exact: bool = False,
) -> int:
    """``ceil(n / C*)`` with ``C*`` the single-slot capacity.

    With the local-search *estimate* of ``C*`` the bound is heuristic
    (an underestimate of ``C*`` would overstate the bound); pass
    ``exact=True`` on small instances for a certified value.
    """
    check_positive(beta, "beta")
    if exact:
        cap = optimal_capacity_bruteforce(instance, beta).size
    else:
        cap = local_search_capacity(
            instance, beta, as_generator(rng), restarts=restarts
        ).size
    if cap == 0:
        return instance.n  # nothing can ever be scheduled together
    return int(np.ceil(instance.n / cap))


def _pairwise_conflict(instance: SINRInstance, beta: float) -> np.ndarray:
    """Boolean matrix: ``True`` where links i and j cannot share a slot."""
    n = instance.n
    gains = instance.gains
    signal = instance.signal
    nu = instance.noise
    # i fails next to j iff S̄ii < β (S̄ji + ν); vectorized over all pairs.
    fail_i = signal[None, :] < beta * (gains + nu)  # [j, i]: i fails with j on
    np.fill_diagonal(fail_i, False)
    conflict = fail_i | fail_i.T
    return conflict


def conflict_clique_lower_bound(instance: SINRInstance, beta: float) -> int:
    """Size of a greedily-built clique of pairwise-conflicting links.

    Every member of such a clique needs its own slot, so the clique size
    lower-bounds any schedule's length.  Greedy: order links by conflict
    degree and insert when compatible with all current members.  Links
    blocked by noise alone conflict with everything (they can never be
    served), so they are excluded — a schedule for the viable links is
    what the bound speaks about.
    """
    check_positive(beta, "beta")
    viable = instance.signal > beta * instance.noise
    conflict = _pairwise_conflict(instance, beta)
    degree = conflict.sum(axis=1)
    clique: list[int] = []
    for k in np.argsort(-degree):
        k = int(k)
        if not viable[k]:
            continue
        if all(conflict[k, m] for m in clique):
            clique.append(k)
    return max(1, len(clique))


def latency_lower_bound(
    instance: SINRInstance,
    beta: float,
    rng=None,
    *,
    restarts: int = 8,
) -> int:
    """Best available latency lower bound (max of both arguments)."""
    return max(
        capacity_latency_lower_bound(instance, beta, rng, restarts=restarts),
        conflict_clique_lower_bound(instance, beta),
    )
