"""Numerical maximization of the expected Rayleigh capacity.

The Rayleigh-fading optimum for binary utilities is

.. math::

    \\mathrm{OPT}^R = \\max_{q \\in [0,1]^n} F(q), \\qquad
    F(q) = \\sum_i q_i\\, C_i(q),

where ``C_i(q)`` is the conditional Theorem-1 success probability.  This
is the quantity Theorem 2 compares against the non-fading optimum.
``F`` is smooth with a closed-form gradient:

.. math::

    C_i(q) = e^{-\\beta\\nu/\\bar S_{ii}}\\prod_{j \\ne i}(1 - q_j w_{ji}),
    \\qquad w_{ji} = \\frac{\\beta \\bar S_{ji}}{\\beta \\bar S_{ji} +
    \\bar S_{ii}},

.. math::

    \\frac{\\partial F}{\\partial q_k} = C_k(q)
        \\;-\\; \\sum_{i \\ne k} q_i C_i(q)\\,
        \\frac{w_{ki}}{1 - q_k w_{ki}} .

``F`` is multilinear in ``q`` (affine in each coordinate), so its maximum
over the box is attained at a vertex — i.e. at a *deterministic* transmit
set — but it is not concave, so we run multi-start projected gradient
ascent and, exploiting per-coordinate affinity, a final coordinate
rounding pass that can only improve the value.  The output is therefore
a certified *lower* bound on ``OPT^R`` that empirically matches the best
vertex found by combinatorial search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sinr import SINRInstance
from repro.fading.success import success_probability, success_probability_conditional
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive, check_probability_vector

__all__ = [
    "expected_capacity",
    "expected_capacity_gradient",
    "optimize_transmission_probabilities",
    "RayleighOptimumResult",
]


def expected_capacity(instance: SINRInstance, q, beta: float) -> float:
    """``F(q) = Σ_i q_i C_i(q)`` — exact expected number of successes."""
    check_positive(beta, "beta")
    return float(success_probability(instance, q, beta).sum())


def _weights(instance: SINRInstance, beta: float) -> np.ndarray:
    """``w[j, i] = β S̄(j,i) / (β S̄(j,i) + S̄(i,i))`` with zero diagonal."""
    t = beta * instance.gains
    w = t / (t + instance.signal[None, :])
    np.fill_diagonal(w, 0.0)
    return w


def expected_capacity_gradient(instance: SINRInstance, q, beta: float) -> np.ndarray:
    """Closed-form gradient ``∇F(q)`` (see module docstring).

    ``O(n²)`` per call; validated against finite differences in the test
    suite.
    """
    check_positive(beta, "beta")
    qv = check_probability_vector(q, instance.n)
    w = _weights(instance, beta)
    cond = success_probability_conditional(instance, qv, beta)  # C_i(q)
    # ratio[k, i] = w[k, i] / (1 - q_k w[k, i]); the diagonal is zero.
    ratio = w / (1.0 - qv[:, None] * w)
    penalty = ratio @ (qv * cond)  # Σ_i q_i C_i w_ki/(1 - q_k w_ki)
    return cond - penalty


def _coordinate_round(instance: SINRInstance, q: np.ndarray, beta: float) -> np.ndarray:
    """Round coordinates to {0, 1} greedily.

    ``F`` is affine in each ``q_k``, so pushing ``q_k`` to whichever
    endpoint has the larger value never decreases ``F``.  One sweep per
    coordinate, evaluated exactly.
    """
    q = q.copy()
    for k in np.argsort(-q):  # most-committed coordinates first
        base = q.copy()
        base[k] = 0.0
        f0 = expected_capacity(instance, base, beta)
        base[k] = 1.0
        f1 = expected_capacity(instance, base, beta)
        q[k] = 1.0 if f1 >= f0 else 0.0
    return q


@dataclass(frozen=True)
class RayleighOptimumResult:
    """Outcome of the numerical Rayleigh-optimum search.

    Attributes
    ----------
    q:
        The best transmission-probability vector found (0/1 after
        rounding).
    value:
        ``F(q)`` — a certified lower bound on the Rayleigh optimum.
    restarts_used:
        Number of ascent restarts run.
    """

    q: np.ndarray
    value: float
    restarts_used: int


def optimize_transmission_probabilities(
    instance: SINRInstance,
    beta: float,
    rng=None,
    *,
    restarts: int = 6,
    iterations: int = 150,
    step: float = 0.15,
    seeds: "list[np.ndarray] | None" = None,
) -> RayleighOptimumResult:
    """Multi-start projected gradient ascent on ``F`` with final rounding.

    Parameters
    ----------
    instance, beta:
        The Rayleigh instance and threshold.
    rng:
        Randomness for restart initialisation.
    restarts:
        Number of random initial points (in addition to ``seeds``).
    iterations, step:
        Ascent iterations and step size (diminishing as ``step/sqrt(t)``).
    seeds:
        Optional warm starts, e.g. the indicator of a good non-fading
        feasible set — always worth supplying, since the non-fading
        optimum is a lower bound on the Rayleigh optimum up to ``1/e``.

    Returns
    -------
    :class:`RayleighOptimumResult`
    """
    check_positive(beta, "beta")
    if restarts < 0 or iterations <= 0:
        raise ValueError("restarts must be >= 0 and iterations positive")
    gen = as_generator(rng)
    n = instance.n
    starts: list[np.ndarray] = [np.asarray(s, dtype=np.float64) for s in (seeds or [])]
    starts.append(np.full(n, 0.5))
    for _ in range(restarts):
        starts.append(gen.random(n))

    best_q = np.zeros(n)
    best_value = 0.0
    for q0 in starts:
        q = np.clip(q0, 0.0, 1.0)
        for t in range(1, iterations + 1):
            grad = expected_capacity_gradient(instance, q, beta)
            q = np.clip(q + (step / np.sqrt(t)) * grad, 0.0, 1.0)
        q = _coordinate_round(instance, q, beta)
        value = expected_capacity(instance, q, beta)
        if value > best_value:
            best_value, best_q = value, q
    return RayleighOptimumResult(q=best_q, value=best_value, restarts_used=len(starts))
