"""Persistence: save and load networks and SINR instances.

Benchmark instances should be shareable and archivable; this module
serialises :class:`~repro.core.network.Network` and
:class:`~repro.core.sinr.SINRInstance` objects to a single JSON document
(human-inspectable, version-tagged) and back, with exact float
round-tripping.

JSON is used rather than ``.npz`` so instance files diff cleanly in
version control and survive without NumPy version coupling; the arrays
in play are small (≤ a few hundred links).

Two on-disk array encodings exist:

* **version 1** — one hexadecimal float string per value
  (``float.hex``).  Verbose but grep-able; still read transparently.
* **version 2** (current writer) — the raw little-endian ``float64``
  buffer, base64-encoded.  Exact round trip, ~4× smaller than v1, still
  a single JSON document.

Writers emit version 2; readers accept both.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path

import numpy as np

from repro.core.network import Network
from repro.core.sinr import SINRInstance
from repro.utils.atomic import atomic_write_text

__all__ = [
    "save_network",
    "load_network",
    "save_instance",
    "load_instance",
    "network_to_dict",
    "network_from_dict",
    "instance_to_dict",
    "instance_from_dict",
]

_FORMAT_VERSION = 2

#: Versions the readers understand (1 = hex-float lists, 2 = base64 buffers).
_READABLE_VERSIONS = (1, 2)


def _encode_array(arr: np.ndarray) -> dict:
    """Exact, text-safe encoding: shape plus the base64 float64 buffer
    (little-endian, C order)."""
    a = np.ascontiguousarray(arr, dtype="<f8")
    return {
        "shape": list(a.shape),
        "b64": base64.b64encode(a.tobytes()).decode("ascii"),
    }


def _decode_array(obj: dict) -> np.ndarray:
    """Inverse of :func:`_encode_array`; also accepts the version-1
    hex-float encoding (``{"shape": ..., "hex": [...]}``)."""
    if "b64" in obj:
        raw = base64.b64decode(obj["b64"])
        values = np.frombuffer(raw, dtype="<f8").astype(np.float64)
    elif "hex" in obj:
        values = np.array([float.fromhex(h) for h in obj["hex"]], dtype=np.float64)
    else:
        raise ValueError("array document has neither 'b64' nor 'hex' payload")
    expected = int(np.prod(obj["shape"])) if obj["shape"] else 1
    if values.size != expected:
        raise ValueError(
            f"array payload holds {values.size} values, shape {obj['shape']} "
            f"needs {expected}"
        )
    return values.reshape(obj["shape"])


def _check_version(doc: dict, what: str) -> None:
    version = doc.get("version")
    if version not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported {what} format version {version!r}; "
            f"readable versions: {_READABLE_VERSIONS}"
        )


def network_to_dict(network: Network) -> dict:
    """JSON-ready dict for a network (geometric or matrix-built)."""
    doc: dict = {"format": "repro-network", "version": _FORMAT_VERSION}
    if network.is_geometric:
        doc["kind"] = "geometric"
        doc["senders"] = _encode_array(network.senders)
        doc["receivers"] = _encode_array(network.receivers)
        metric = network.metric
        doc["metric_p"] = float(getattr(metric, "p", 2.0))
    else:
        doc["kind"] = "matrix"
        doc["cross_distances"] = _encode_array(network.cross_distances)
    return doc


def network_from_dict(doc: dict) -> Network:
    """Inverse of :func:`network_to_dict` (reads format versions 1 and 2)."""
    if doc.get("format") != "repro-network":
        raise ValueError("not a repro network document")
    _check_version(doc, "network")
    if doc["kind"] == "geometric":
        from repro.geometry.metric import PNormMetric

        return Network(
            _decode_array(doc["senders"]),
            _decode_array(doc["receivers"]),
            metric=PNormMetric(doc.get("metric_p", 2.0)),
        )
    if doc["kind"] == "matrix":
        return Network.from_distance_matrix(_decode_array(doc["cross_distances"]))
    raise ValueError(f"unknown network kind {doc['kind']!r}")


def instance_to_dict(instance: SINRInstance) -> dict:
    """JSON-ready dict for an instance (gains + noise)."""
    return {
        "format": "repro-instance",
        "version": _FORMAT_VERSION,
        "gains": _encode_array(instance.gains),
        "noise": float(instance.noise),
    }


def instance_from_dict(doc: dict) -> SINRInstance:
    """Inverse of :func:`instance_to_dict` (reads format versions 1 and 2)."""
    if doc.get("format") != "repro-instance":
        raise ValueError("not a repro instance document")
    _check_version(doc, "instance")
    return SINRInstance(_decode_array(doc["gains"]), noise=doc["noise"])


def save_network(network: Network, path) -> None:
    """Write a network to ``path`` as JSON (atomic: temp + rename, so a
    crash mid-write never leaves a truncated instance file)."""
    atomic_write_text(Path(path), json.dumps(network_to_dict(network)))


def load_network(path) -> Network:
    """Read a network written by :func:`save_network`."""
    return network_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def save_instance(instance: SINRInstance, path) -> None:
    """Write an instance to ``path`` as JSON (atomic, like
    :func:`save_network`)."""
    atomic_write_text(Path(path), json.dumps(instance_to_dict(instance)))


def load_instance(path) -> SINRInstance:
    """Read an instance written by :func:`save_instance`."""
    return instance_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
