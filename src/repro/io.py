"""Persistence: save and load networks and SINR instances.

Benchmark instances should be shareable and archivable; this module
serialises :class:`~repro.core.network.Network` and
:class:`~repro.core.sinr.SINRInstance` objects to a single JSON document
(human-inspectable, version-tagged) and back, with exact float
round-tripping via hexadecimal float encoding of the arrays.

JSON is used rather than ``.npz`` so instance files diff cleanly in
version control and survive without NumPy version coupling; the arrays
in play are small (≤ a few hundred links).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.network import Network
from repro.core.sinr import SINRInstance

__all__ = [
    "save_network",
    "load_network",
    "save_instance",
    "load_instance",
    "network_to_dict",
    "network_from_dict",
    "instance_to_dict",
    "instance_from_dict",
]

_FORMAT_VERSION = 1


def _encode_array(arr: np.ndarray) -> dict:
    """Exact, text-safe encoding: shape plus hex-float values."""
    a = np.asarray(arr, dtype=np.float64)
    return {"shape": list(a.shape), "hex": [v.hex() for v in a.ravel().tolist()]}


def _decode_array(obj: dict) -> np.ndarray:
    values = np.array([float.fromhex(h) for h in obj["hex"]], dtype=np.float64)
    return values.reshape(obj["shape"])


def network_to_dict(network: Network) -> dict:
    """JSON-ready dict for a network (geometric or matrix-built)."""
    doc: dict = {"format": "repro-network", "version": _FORMAT_VERSION}
    if network.is_geometric:
        doc["kind"] = "geometric"
        doc["senders"] = _encode_array(network.senders)
        doc["receivers"] = _encode_array(network.receivers)
        metric = network.metric
        doc["metric_p"] = float(getattr(metric, "p", 2.0))
    else:
        doc["kind"] = "matrix"
        doc["cross_distances"] = _encode_array(network.cross_distances)
    return doc


def network_from_dict(doc: dict) -> Network:
    """Inverse of :func:`network_to_dict`."""
    if doc.get("format") != "repro-network":
        raise ValueError("not a repro network document")
    if doc.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported network format version {doc.get('version')}")
    if doc["kind"] == "geometric":
        from repro.geometry.metric import PNormMetric

        return Network(
            _decode_array(doc["senders"]),
            _decode_array(doc["receivers"]),
            metric=PNormMetric(doc.get("metric_p", 2.0)),
        )
    if doc["kind"] == "matrix":
        return Network.from_distance_matrix(_decode_array(doc["cross_distances"]))
    raise ValueError(f"unknown network kind {doc['kind']!r}")


def instance_to_dict(instance: SINRInstance) -> dict:
    """JSON-ready dict for an instance (gains + noise)."""
    return {
        "format": "repro-instance",
        "version": _FORMAT_VERSION,
        "gains": _encode_array(instance.gains),
        "noise": float(instance.noise),
    }


def instance_from_dict(doc: dict) -> SINRInstance:
    """Inverse of :func:`instance_to_dict`."""
    if doc.get("format") != "repro-instance":
        raise ValueError("not a repro instance document")
    if doc.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported instance format version {doc.get('version')}")
    return SINRInstance(_decode_array(doc["gains"]), noise=doc["noise"])


def save_network(network: Network, path) -> None:
    """Write a network to ``path`` as JSON."""
    Path(path).write_text(json.dumps(network_to_dict(network)), encoding="utf-8")


def load_network(path) -> Network:
    """Read a network written by :func:`save_network`."""
    return network_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def save_instance(instance: SINRInstance, path) -> None:
    """Write an instance to ``path`` as JSON."""
    Path(path).write_text(json.dumps(instance_to_dict(instance)), encoding="utf-8")


def load_instance(path) -> SINRInstance:
    """Read an instance written by :func:`save_instance`."""
    return instance_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
