"""Shannon-capacity utilities ``u(γ) = log(1 + γ)``.

The paper's third example: utility proportional to the Shannon rate of
the link.  ``log(1 + γ)`` is non-decreasing and concave on all of
``[0, ∞)``, so the profile is valid for *every* instance (``concave_from``
is 0 and any ``c > 1`` works).  This family exercises the non-binary
branch of Lemma 2 / Theorem 2, where success is a matter of degree rather
than a threshold event.
"""

from __future__ import annotations

import numpy as np

from repro.utility.base import UtilityProfile
from repro.utils.validation import check_positive

__all__ = ["ShannonUtility"]


class ShannonUtility(UtilityProfile):
    """``u_i(γ) = scale · log(1 + min(γ, cap))`` for every link.

    Parameters
    ----------
    n:
        Number of links.
    scale:
        Common rate multiplier (bandwidth), default 1.
    cap:
        Optional modulation cap on the usable SINR.  Real radios cannot
        exploit unbounded SINR; a finite cap also keeps Monte-Carlo
        estimates finite in the zero-noise limit, where an isolated
        Rayleigh link has infinite SINR with positive probability.
        Capping preserves Definition-1 validity (the capped function is
        still non-decreasing and concave on ``[0, ∞)`` — minimum of two
        concave non-decreasing functions).
    """

    def __init__(self, n: int, *, scale: float = 1.0, cap: "float | None" = None):
        super().__init__(n)
        self.scale = check_positive(scale, "scale")
        if cap is not None:
            cap = check_positive(cap, "cap")
        self.cap = cap

    def evaluate(self, sinr: np.ndarray) -> np.ndarray:
        x = np.asarray(sinr, dtype=np.float64)
        if self.cap is not None:
            x = np.minimum(x, self.cap)
        return self.scale * np.log1p(x)

    def concave_from(self) -> np.ndarray:
        return np.zeros(self.n)

    def __repr__(self) -> str:
        return f"ShannonUtility(n={self.n}, scale={self.scale}, cap={self.cap})"
