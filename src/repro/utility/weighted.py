"""Link-weighted threshold utilities.

``u_i(γ) = w_i`` for ``γ ≥ β`` and 0 otherwise — the paper's second
example family.  Weighted capacity maximization arises when links carry
traffic of different value (or when a scheduler randomises over classes);
the Rayleigh/non-fading reduction applies verbatim because each ``u_i``
is constant, hence concave, above ``β``.
"""

from __future__ import annotations

import numpy as np

from repro.utility.base import UtilityProfile
from repro.utils.validation import check_positive

__all__ = ["WeightedUtility"]


class WeightedUtility(UtilityProfile):
    """Per-link weights on threshold successes.

    Parameters
    ----------
    weights:
        Non-negative weight ``w_i`` per link; total utility of a slot is
        ``Σ_{i successful} w_i``.
    beta:
        Global SINR threshold.
    """

    def __init__(self, weights, beta: float):
        w = np.asarray(weights, dtype=np.float64).copy()
        if w.ndim != 1:
            raise ValueError(f"weights must be one-dimensional, got shape {w.shape}")
        if np.any(w < 0.0) or not np.all(np.isfinite(w)):
            raise ValueError("weights must be finite and non-negative")
        super().__init__(w.shape[0])
        w.setflags(write=False)
        self.weights = w
        self.beta = check_positive(beta, "beta")

    def evaluate(self, sinr: np.ndarray) -> np.ndarray:
        sinr = np.asarray(sinr, dtype=np.float64)
        return np.where(sinr >= self.beta, self.weights, 0.0)

    def concave_from(self) -> np.ndarray:
        return np.full(self.n, self.beta)

    def __repr__(self) -> str:
        return f"WeightedUtility(n={self.n}, beta={self.beta})"
