"""Base class for utility profiles and the Definition-1 validity test.

A *utility profile* assigns one utility function ``u_i`` to every link and
evaluates them in bulk on arrays of SINR values (vectorized over links and
Monte-Carlo/slot axes).  Subclasses declare, per link, the point
``concave_from(i)`` after which ``u_i`` is non-decreasing and concave;
Definition-1 validity for a concrete instance then reduces to the
existence of ``c_i > 1`` with ``S̄(i,i)/(c_i ν) ≥ concave_from(i)``.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.sinr import SINRInstance

__all__ = ["UtilityProfile", "validity_constant"]


class UtilityProfile(abc.ABC):
    """Per-link utility functions ``u_1, ..., u_n`` evaluated in bulk."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError(f"profile needs at least one link, got n={n}")
        self._n = int(n)

    @property
    def n(self) -> int:
        """Number of links the profile covers."""
        return self._n

    @abc.abstractmethod
    def evaluate(self, sinr: np.ndarray) -> np.ndarray:
        """Utilities for SINR values.

        ``sinr`` has shape ``(..., n)``; the result has the same shape with
        entry ``[..., i] = u_i(sinr[..., i])``.  Implementations must be
        pure and vectorized.
        """

    def __call__(self, sinr: np.ndarray) -> np.ndarray:
        return self.evaluate(np.asarray(sinr, dtype=np.float64))

    @abc.abstractmethod
    def concave_from(self) -> np.ndarray:
        """Per-link points ``x_i ≥ 0`` such that ``u_i`` is non-decreasing
        and concave on ``[x_i, ∞)`` (shape ``(n,)``)."""

    def total(self, sinr: np.ndarray, active=None) -> np.ndarray:
        """Sum of utilities over links, counting only active links.

        ``active`` is an optional boolean mask broadcastable against
        ``sinr``; silent links contribute 0 (only transmission attempts
        earn utility)."""
        vals = self.evaluate(np.asarray(sinr, dtype=np.float64))
        if active is not None:
            vals = np.where(np.asarray(active, dtype=bool), vals, 0.0)
        return vals.sum(axis=-1)

    def is_valid_for(self, instance: SINRInstance) -> bool:
        """Definition-1 validity for a concrete instance (see
        :func:`validity_constant`)."""
        return validity_constant(self, instance) is not None


def validity_constant(
    profile: UtilityProfile, instance: SINRInstance, *, cap: float = 1e12
) -> "np.ndarray | None":
    """The per-link Definition-1 constants ``c_i``, or ``None`` if invalid.

    Definition 1 requires, for each link, some ``c_i > 1`` with ``u_i``
    non-decreasing and concave on ``[S̄(i,i)/(c_i ν), ∞)``.  Given the
    profile's declared ``concave_from`` points ``x_i``, such a constant
    exists iff ``S̄(i,i)/ν > x_i`` (strictly, so that ``c_i > 1`` fits), or
    ``ν = 0``, or ``x_i = 0``.  We return the *largest* admissible
    ``c_i = S̄(i,i) / (ν x_i)`` (capped for the degenerate cases); larger
    constants mean more noise headroom, and Theorem 2's proof assumes
    ``c_i ≥ 3``.
    """
    if profile.n != instance.n:
        raise ValueError(
            f"profile covers {profile.n} links but instance has {instance.n}"
        )
    x = np.asarray(profile.concave_from(), dtype=np.float64)
    if x.shape != (instance.n,):
        raise ValueError("concave_from() must return one point per link")
    nu = instance.noise
    if nu == 0.0:
        return np.full(instance.n, cap)
    c = np.where(x > 0.0, instance.signal / (nu * np.maximum(x, 1e-300)), cap)
    c = np.minimum(c, cap)
    if np.any(c <= 1.0):
        return None
    return c
