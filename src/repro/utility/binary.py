"""Binary threshold utilities — the standard capacity objective.

``u_i(γ) = 1`` iff ``γ ≥ β`` for a global threshold ``β``; the total
utility is the number of successful transmissions.  This recovers the
capacity-maximization problem of [8], [7], [6] and is the setting of the
regret-learning results in Section 6 and of both of the paper's figures.
"""

from __future__ import annotations

import numpy as np

from repro.utility.base import UtilityProfile
from repro.utils.validation import check_positive

__all__ = ["BinaryUtility"]


class BinaryUtility(UtilityProfile):
    """Step utility at global threshold ``β``.

    Validity (Definition 1): the step function is non-decreasing
    everywhere and constant — hence concave — on ``[β, ∞)``, so the
    profile is valid for an instance iff ``β < S̄(i,i)/ν`` for every link,
    i.e. every link could beat the noise alone with margin.
    """

    def __init__(self, n: int, beta: float):
        super().__init__(n)
        self.beta = check_positive(beta, "beta")

    def evaluate(self, sinr: np.ndarray) -> np.ndarray:
        return (np.asarray(sinr, dtype=np.float64) >= self.beta).astype(np.float64)

    def concave_from(self) -> np.ndarray:
        return np.full(self.n, self.beta)

    def __repr__(self) -> str:
        return f"BinaryUtility(n={self.n}, beta={self.beta})"
