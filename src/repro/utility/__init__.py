"""Utility functions on achieved SINR (Definition 1 of the paper).

Capacity maximization in the paper is utility-based: link ``i`` obtains
``u_i(γ_i)`` from achieving SINR ``γ_i``, and the objective is the
(expected) sum of utilities.  Definition 1 restricts attention to *valid*
utility functions — non-negative, and non-decreasing & concave on
``[S̄(i,i)/(c_i ν), ∞)`` for some constant ``c_i > 1`` — which rules out
the degenerate huge-noise regime where the Rayleigh model is "infinitely
better".

The three families the paper names are implemented:

* :class:`~repro.utility.binary.BinaryUtility` — the classic threshold
  objective (count links with ``γ ≥ β``),
* :class:`~repro.utility.weighted.WeightedUtility` — per-link weights on
  threshold successes,
* :class:`~repro.utility.shannon.ShannonUtility` — ``log(1 + γ)``,
  total Shannon capacity.
"""

from repro.utility.base import UtilityProfile, validity_constant
from repro.utility.binary import BinaryUtility
from repro.utility.shannon import ShannonUtility
from repro.utility.weighted import WeightedUtility

__all__ = [
    "BinaryUtility",
    "ShannonUtility",
    "UtilityProfile",
    "WeightedUtility",
    "validity_constant",
]
