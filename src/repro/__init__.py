"""repro — Scheduling in Wireless Networks with Rayleigh-Fading Interference.

A complete, executable reproduction of Dams, Hoefer & Kesselheim
(SPAA 2012): the non-fading SINR and Rayleigh-fading interference
models, the closed-form success probabilities and their bounds
(Theorem 1 / Lemma 1), the black-box model transfer (Lemma 2), the
``O(log* n)`` simulation of the Rayleigh optimum (Theorem 2 /
Algorithm 1), capacity-maximization and latency-minimization algorithms
for the non-fading model together with their Rayleigh transfers, the
regret-learning dynamics of Section 6, and the Section-7 simulation
harness (Figures 1–2).

Quickstart
----------
>>> import numpy as np
>>> from repro import (Network, UniformPower, SINRInstance,
...                    paper_random_network, greedy_capacity,
...                    success_probability)
>>> senders, receivers = paper_random_network(50, rng=0)
>>> net = Network(senders, receivers)
>>> inst = SINRInstance.from_network(net, UniformPower(2.0), alpha=2.2,
...                                  noise=4e-7)
>>> chosen = greedy_capacity(inst, beta=2.5)        # non-fading schedule
>>> q = np.zeros(50); q[chosen] = 1.0
>>> expected = success_probability(inst, q, 2.5)    # Rayleigh, Theorem 1
>>> bool(expected[chosen].sum() >= len(chosen) / np.e)  # Lemma 2
True
"""

from repro.analysis import (
    affectance_digraph,
    conflict_graph,
    expected_capacity,
    expected_capacity_gradient,
    graph_model_gap,
    latency_lower_bound,
    measured_optimum_gap,
    optimize_transmission_probabilities,
)
from repro.capacity import (
    flexible_rate_capacity,
    greedy_capacity,
    local_search_capacity,
    optimal_capacity_bruteforce,
    power_control_capacity,
)
from repro.channel import (
    BlockFadingChannel,
    Channel,
    MonteCarloChannel,
    NonFadingChannel,
    RayleighChannel,
    make_channel,
    parse_channel_spec,
)
from repro.core import (
    CustomPower,
    LengthScaledPower,
    LinearPower,
    Link,
    Network,
    PowerAssignment,
    SINRInstance,
    SquareRootPower,
    UniformPower,
    affectance_matrix,
    is_feasible_set,
    min_feasible_powers,
)
from repro.fading import (
    FadingModel,
    NakagamiFading,
    NoFading,
    RayleighFading,
    RicianFading,
    estimate_expected_utility,
    estimate_success_probability,
    expected_successes_exact,
    sample_fading_gains,
    simulate_sinr,
    expected_successes_with_model,
    simulate_slot,
    simulate_slots,
    simulate_slots_bernoulli,
    simulate_slots_with_model,
    success_probability,
    success_probability_conditional,
    success_probability_lower,
    success_probability_upper,
)
from repro.geometry import (
    EuclideanMetric,
    Metric,
    PNormMetric,
    TorusMetric,
    cluster_network,
    grid_network,
    line_network,
    nested_pairs_network,
    paper_random_network,
    poisson_network,
)
from repro.latency import (
    MultiHopRequest,
    Schedule,
    aloha_latency,
    decay_latency,
    multihop_latency,
    multihop_lower_bound,
    repeated_max_latency,
    validate_schedule,
)
from repro.io import load_instance, load_network, save_instance, save_network
from repro.learning import (
    CapacityGame,
    Exp3Learner,
    GameResult,
    RWMLearner,
    RWMLearnerBank,
    best_response_dynamics,
    is_equilibrium,
    price_of_anarchy_sample,
)
from repro.transform import (
    lemma2_lower_bound,
    rayleigh_expected_binary,
    simulate_rayleigh_optimum,
    simulation_schedule,
    transfer_capacity_algorithm,
    transformed_step_success_probability,
)
from repro.utility import (
    BinaryUtility,
    ShannonUtility,
    UtilityProfile,
    WeightedUtility,
)
from repro.utils import RngFactory, log_star

__version__ = "1.0.0"

__all__ = [
    "BinaryUtility",
    "BlockFadingChannel",
    "CapacityGame",
    "Channel",
    "CustomPower",
    "EuclideanMetric",
    "Exp3Learner",
    "FadingModel",
    "GameResult",
    "LengthScaledPower",
    "LinearPower",
    "Link",
    "Metric",
    "MonteCarloChannel",
    "MultiHopRequest",
    "NakagamiFading",
    "Network",
    "NoFading",
    "NonFadingChannel",
    "PNormMetric",
    "PowerAssignment",
    "RWMLearner",
    "RWMLearnerBank",
    "RayleighChannel",
    "RayleighFading",
    "RicianFading",
    "RngFactory",
    "SINRInstance",
    "Schedule",
    "ShannonUtility",
    "SquareRootPower",
    "TorusMetric",
    "UniformPower",
    "UtilityProfile",
    "WeightedUtility",
    "affectance_digraph",
    "affectance_matrix",
    "aloha_latency",
    "best_response_dynamics",
    "cluster_network",
    "conflict_graph",
    "decay_latency",
    "estimate_expected_utility",
    "estimate_success_probability",
    "expected_capacity",
    "expected_capacity_gradient",
    "expected_successes_exact",
    "expected_successes_with_model",
    "flexible_rate_capacity",
    "graph_model_gap",
    "greedy_capacity",
    "grid_network",
    "is_equilibrium",
    "is_feasible_set",
    "latency_lower_bound",
    "lemma2_lower_bound",
    "line_network",
    "load_instance",
    "load_network",
    "local_search_capacity",
    "log_star",
    "make_channel",
    "measured_optimum_gap",
    "min_feasible_powers",
    "multihop_latency",
    "multihop_lower_bound",
    "nested_pairs_network",
    "optimal_capacity_bruteforce",
    "optimize_transmission_probabilities",
    "paper_random_network",
    "parse_channel_spec",
    "poisson_network",
    "power_control_capacity",
    "price_of_anarchy_sample",
    "rayleigh_expected_binary",
    "repeated_max_latency",
    "sample_fading_gains",
    "save_instance",
    "save_network",
    "simulate_rayleigh_optimum",
    "simulate_sinr",
    "simulate_slot",
    "simulate_slots",
    "simulate_slots_bernoulli",
    "simulate_slots_with_model",
    "simulation_schedule",
    "success_probability",
    "success_probability_conditional",
    "success_probability_lower",
    "success_probability_upper",
    "transfer_capacity_algorithm",
    "transformed_step_success_probability",
    "validate_schedule",
]
