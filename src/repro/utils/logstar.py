"""Iterated logarithm and the paper's iterated-exponential stage sequence.

Theorem 2 of the paper simulates one Rayleigh-fading slot with
``O(log* n)`` non-fading slots.  The simulation (Algorithm 1) is staged:
stage ``k`` uses transmission probabilities ``q_i / (4 * b_k)`` where the
sequence ``(b_k)`` is defined by

.. math::

    b_0 = 1/4, \\qquad b_{k+1} = \\exp(b_k / 2),

and stages run while ``b_k < n``.  Because ``(b_k)`` is an iterated
exponential, the number of stages is ``O(log* n)``.

This module provides the sequence, the stage count, and a conventional
``log*`` implementation used by the experiment harness when reporting
measured factors against the theory.
"""

from __future__ import annotations

import math

__all__ = ["log_star", "b_sequence", "num_simulation_stages"]

#: Base-2 iterated logarithm fixed point; values at or below this count as 0.
_LOG_STAR_FIXPOINT = 1.0


def log_star(x: float, base: float = 2.0) -> int:
    """Iterated logarithm ``log* x``: how many times ``log`` must be applied
    before the value drops to at most 1.

    Parameters
    ----------
    x:
        Argument; any real number.  Values ``<= 1`` have ``log* x = 0``.
    base:
        Logarithm base, default 2.  Must be ``> 1``.

    Returns
    -------
    int
        The number of applications of ``log_base`` needed to reach a value
        at most 1.

    Examples
    --------
    >>> log_star(1)
    0
    >>> log_star(2)
    1
    >>> log_star(4)
    2
    >>> log_star(16)
    3
    >>> log_star(65536)
    4
    """
    if base <= 1.0:
        raise ValueError(f"log* base must exceed 1, got {base}")
    count = 0
    value = float(x)
    while value > _LOG_STAR_FIXPOINT:
        value = math.log(value, base)
        count += 1
        if count > 64:  # unreachable for any finite float, defensive only
            raise OverflowError("log_star failed to converge")
    return count


def b_sequence(n: int, *, b0: float = 0.25, max_stages: int = 256) -> list[float]:
    """The stage sequence ``b_0, b_1, ...`` of Algorithm 1, truncated at ``n``.

    Returns all values ``b_k`` with ``b_k < n`` (the stages the simulation
    actually executes).  ``b_0 = 1/4`` and ``b_{k+1} = exp(b_k / 2)`` as in
    the proof of Theorem 2.

    Parameters
    ----------
    n:
        Number of links; stages stop once ``b_k >= n``.
    b0:
        First element of the sequence (paper value ``1/4``).
    max_stages:
        Safety bound on the sequence length.

    Returns
    -------
    list of float
        ``[b_0, b_1, ...]`` with every element strictly below ``n``.
        Empty when ``n <= b0``.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    seq: list[float] = []
    b = float(b0)
    while b < n:
        seq.append(b)
        b = math.exp(b / 2.0)
        if len(seq) >= max_stages:
            raise OverflowError(
                f"b_sequence exceeded {max_stages} stages; n={n} is implausibly large"
            )
    return seq


def num_simulation_stages(n: int, *, b0: float = 0.25) -> int:
    """Number of stages Algorithm 1 runs for ``n`` links (``Θ(log* n)``)."""
    return len(b_sequence(n, b0=b0))
