"""Plain-text rendering of experiment tables and figure series.

The paper's figures are line plots; since the benchmark harness is
terminal-based, each figure is reported as the numeric series behind the
plot (one row per x-value, one column per curve) plus an optional ASCII
sparkline so shapes are visible at a glance.  Tables use fixed-width
columns so ``bench_output.txt`` diffs cleanly between runs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "sparkline"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _fmt_cell(value, width: int, precision: int) -> str:
    if isinstance(value, str):
        return value.rjust(width)
    if isinstance(value, (bool, np.bool_)):
        return str(bool(value)).rjust(width)
    if isinstance(value, (int, np.integer)):
        return f"{int(value):d}".rjust(width)
    if value is None:
        return "-".rjust(width)
    return f"{float(value):.{precision}f}".rjust(width)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: "str | None" = None,
    precision: int = 4,
    min_width: int = 8,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width text table.

    Column widths adapt to the longest rendered cell in each column.
    Numeric cells are printed with ``precision`` decimals; ``None`` renders
    as ``-``.
    """
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")
    widths = [max(min_width, len(h)) for h in headers]
    rendered = [[_fmt_cell(cell, 0, precision).strip() for cell in row] for row in rows]
    for row in rendered:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Eight-level unicode sparkline of ``values`` (constant series → mid level)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return ""
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-300:
        return _SPARK_CHARS[3] * arr.size
    idx = np.clip(((arr - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)).round(), 0, 7)
    return "".join(_SPARK_CHARS[int(i)] for i in idx)


def format_series(
    x_label: str,
    x_values: Sequence[float],
    curves: Mapping[str, Sequence[float]],
    *,
    title: "str | None" = None,
    precision: int = 4,
    with_sparklines: bool = True,
) -> str:
    """Render a figure as its numeric series, one column per curve.

    Parameters
    ----------
    x_label, x_values:
        The shared x axis.
    curves:
        Mapping of curve name to y-values (each the same length as
        ``x_values``).
    with_sparklines:
        Append a per-curve sparkline footer showing the curve shape.
    """
    for name, ys in curves.items():
        if len(ys) != len(x_values):
            raise ValueError(f"curve {name!r} has {len(ys)} points, expected {len(x_values)}")
    headers = [x_label, *curves.keys()]
    rows = [
        [x, *(curves[name][i] for name in curves)]
        for i, x in enumerate(x_values)
    ]
    out = format_table(headers, rows, title=title, precision=precision)
    if with_sparklines and len(x_values) > 1:
        pad = max(len(name) for name in curves)
        shape_lines = ["", "shape:"]
        for name, ys in curves.items():
            shape_lines.append(f"  {name.ljust(pad)}  {sparkline(ys)}")
        out += "\n" + "\n".join(shape_lines)
    return out
