"""Shared low-level utilities.

This subpackage holds the small, dependency-free helpers used across the
library: the iterated logarithm and the paper's iterated-exponential sequence
(:mod:`repro.utils.logstar`), reproducible random-stream management
(:mod:`repro.utils.rng`), summary statistics (:mod:`repro.utils.stats`),
plain-text table/series rendering for the benchmark harness
(:mod:`repro.utils.tables`), and argument validation
(:mod:`repro.utils.validation`).
"""

from repro.utils.logstar import b_sequence, log_star, num_simulation_stages
from repro.utils.rng import RngFactory, as_generator, spawn_generators
from repro.utils.stats import Summary, mean_confidence_interval, summarize
from repro.utils.tables import format_series, format_table
from repro.utils.validation import (
    check_probability,
    check_probability_vector,
    check_positive,
    check_nonnegative,
    check_square_matrix,
)

__all__ = [
    "RngFactory",
    "Summary",
    "as_generator",
    "b_sequence",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "check_probability_vector",
    "check_square_matrix",
    "format_series",
    "format_table",
    "log_star",
    "mean_confidence_interval",
    "num_simulation_stages",
    "spawn_generators",
    "summarize",
]
