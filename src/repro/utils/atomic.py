"""Atomic file writes — temp file in the target directory + ``os.replace``.

Every on-disk artifact of a run (instance files, journal records,
``summary.json``) is written through these helpers so an interrupted
process never leaves a truncated or half-written file behind: readers
see either the previous complete content or the new complete content,
never a prefix.  ``os.replace`` is atomic on POSIX and Windows provided
source and destination live on the same filesystem, which writing the
temporary alongside the target guarantees.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_text"]


def atomic_write_bytes(path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (write-then-rename)."""
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (write-then-rename)."""
    atomic_write_bytes(path, text.encode(encoding))
