"""Atomic file writes — temp file in the target directory + ``os.replace``.

Every on-disk artifact of a run (instance files, journal records,
``summary.json``) is written through these helpers so an interrupted
process never leaves a truncated or half-written file behind: readers
see either the previous complete content or the new complete content,
never a prefix.  ``os.replace`` is atomic on POSIX and Windows provided
source and destination live on the same filesystem, which writing the
temporary alongside the target guarantees.

:func:`exhaustion_kind` is the shared classifier for the *resource
exhaustion* family of ``OSError`` — full disk, quota, read-only
filesystem — which callers that can degrade (journal checkpoints,
telemetry, lease heartbeats) treat as "warn and carry on" rather than
as fatal: the computation is still correct, it is merely no longer
being checkpointed.
"""

from __future__ import annotations

import errno
import os
import tempfile
from pathlib import Path

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "exhaustion_kind",
]

#: ``errno`` values that mean the filesystem ran out of a resource (or
#: became read-only) rather than the write being wrong: these are the
#: failures a best-effort writer degrades on instead of crashing.
_EXHAUSTION_ERRNOS = {
    errno.ENOSPC: "no-space",
    errno.EDQUOT: "quota-exceeded",
    errno.EROFS: "read-only-filesystem",
    errno.EMFILE: "fd-exhausted",
    errno.ENFILE: "fd-exhausted",
    errno.ENOMEM: "no-memory",
}


def exhaustion_kind(exc: BaseException) -> "str | None":
    """Classify ``exc`` as resource exhaustion, or ``None``.

    Returns a short kind string (``"no-space"``, ``"quota-exceeded"``,
    ``"read-only-filesystem"``, ``"fd-exhausted"``, ``"no-memory"``)
    when the exception is an :class:`OSError` of the exhaustion family —
    the failures where retrying the same write cannot help but the run
    itself can continue un-checkpointed.
    """
    if not isinstance(exc, OSError):
        return None
    return _EXHAUSTION_ERRNOS.get(exc.errno)


def atomic_write_bytes(path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (write-then-rename)."""
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (write-then-rename)."""
    atomic_write_bytes(path, text.encode(encoding))
