"""Summary statistics for Monte-Carlo experiment results.

The benchmark harness reports every measured quantity as a mean with a
normal-approximation confidence interval; these helpers implement that in
one place so all tables are consistent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Summary", "summarize", "mean_confidence_interval"]

# Two-sided z-values for common confidence levels; avoids a scipy dependency
# in this low-level module.
_Z_VALUES = {0.90: 1.6448536269514722, 0.95: 1.959963984540054, 0.99: 2.5758293035489004}


@dataclass(frozen=True)
class Summary:
    """Mean, spread, and extent of a sample.

    Attributes
    ----------
    mean, std:
        Sample mean and (ddof=1) standard deviation; ``std`` is 0 for
        singleton samples.
    ci_half_width:
        Half width of the normal-approximation confidence interval on the
        mean at the level passed to :func:`summarize`.
    n:
        Sample size.
    minimum, maximum:
        Sample extrema.
    """

    mean: float
    std: float
    ci_half_width: float
    n: int
    minimum: float
    maximum: float

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci_half_width

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci_half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} ± {self.ci_half_width:.2g} (n={self.n})"


def _z_for(confidence: float) -> float:
    try:
        return _Z_VALUES[confidence]
    except KeyError:
        raise ValueError(
            f"confidence must be one of {sorted(_Z_VALUES)}, got {confidence}"
        ) from None


def summarize(samples, confidence: float = 0.95) -> Summary:
    """Summarize a 1-D sample as a :class:`Summary`.

    Parameters
    ----------
    samples:
        Non-empty 1-D array-like of finite numbers.
    confidence:
        Confidence level for the interval on the mean (0.90, 0.95, or 0.99).
    """
    arr = np.asarray(samples, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    if not np.all(np.isfinite(arr)):
        raise ValueError("sample contains non-finite values")
    n = int(arr.size)
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if n > 1 else 0.0
    half = _z_for(confidence) * std / np.sqrt(n) if n > 1 else 0.0
    return Summary(
        mean=mean,
        std=std,
        ci_half_width=float(half),
        n=n,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def mean_confidence_interval(samples, confidence: float = 0.95) -> tuple[float, float, float]:
    """Return ``(mean, low, high)`` of the confidence interval on the mean."""
    s = summarize(samples, confidence=confidence)
    return s.mean, s.ci_low, s.ci_high
