"""Argument-validation helpers.

Centralised checks keep error messages uniform across the library and keep
hot numerical code free of repeated inline validation logic (callers
validate once at the public boundary, inner kernels trust their inputs).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_probability",
    "check_probability_vector",
    "check_positive",
    "check_nonnegative",
    "check_square_matrix",
]


def check_probability(value: float, name: str = "probability") -> float:
    """Validate a scalar probability in ``[0, 1]`` and return it as float."""
    v = float(value)
    if not 0.0 <= v <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return v


def check_probability_vector(values, n: "int | None" = None, name: str = "q") -> np.ndarray:
    """Validate a vector of probabilities, optionally of fixed length ``n``.

    Returns a float64 array (a copy only if conversion is needed).
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if n is not None and arr.shape[0] != n:
        raise ValueError(f"{name} must have length {n}, got {arr.shape[0]}")
    if arr.size and (np.min(arr) < 0.0 or np.max(arr) > 1.0):
        raise ValueError(f"all entries of {name} must lie in [0, 1]")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr


def check_positive(value: float, name: str = "value") -> float:
    """Validate a strictly positive finite scalar and return it as float."""
    v = float(value)
    if not np.isfinite(v) or v <= 0.0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return v


def check_nonnegative(value: float, name: str = "value") -> float:
    """Validate a non-negative finite scalar and return it as float."""
    v = float(value)
    if not np.isfinite(v) or v < 0.0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return v


def check_square_matrix(matrix, n: "int | None" = None, name: str = "matrix") -> np.ndarray:
    """Validate a square 2-D float matrix, optionally of fixed size ``n``."""
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be square, got shape {arr.shape}")
    if n is not None and arr.shape[0] != n:
        raise ValueError(f"{name} must be {n}x{n}, got {arr.shape[0]}x{arr.shape[1]}")
    return arr
