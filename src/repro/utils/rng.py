"""Reproducible random-number-stream management.

All stochastic code in the library takes a :class:`numpy.random.Generator`
(or anything convertible via :func:`as_generator`).  Experiments that need
many independent streams — e.g. Figure 1 uses 40 networks x 25 transmit
seeds x 10 fading seeds — spawn child generators from a single
:class:`numpy.random.SeedSequence` so that every run is exactly
reproducible from one integer seed and streams never collide.

There is deliberately **no** module-level default generator: hidden global
state makes Monte-Carlo experiments unrepeatable.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["as_generator", "spawn_generators", "RngFactory"]

RngLike = "int | None | np.random.Generator | np.random.SeedSequence"


def as_generator(rng: "int | None | np.random.Generator | np.random.SeedSequence") -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed,
    a :class:`~numpy.random.SeedSequence`, or ``None`` (fresh OS entropy).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot interpret {type(rng).__name__} as a random generator")


def spawn_generators(
    seed: "int | np.random.SeedSequence", n: int
) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from one seed.

    Uses :meth:`numpy.random.SeedSequence.spawn`, the supported mechanism for
    creating parallel streams (each child gets a distinct spawn key, so the
    streams are independent regardless of how many draws each consumes).
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


class RngFactory:
    """Hierarchical, named random-stream factory for experiments.

    A factory wraps one root :class:`~numpy.random.SeedSequence`.  Calling
    :meth:`stream` with the same name always yields a generator seeded
    identically, while different names yield independent streams.  This lets
    experiment drivers express "fading seed 7 of network 3" as
    ``factory.stream("network", 3, "fading", 7)`` and get bit-identical
    randomness across runs and across process counts.

    Examples
    --------
    >>> f = RngFactory(1234)
    >>> a = f.stream("net", 0).random()
    >>> b = RngFactory(1234).stream("net", 0).random()
    >>> a == b
    True
    >>> a != f.stream("net", 1).random()
    True
    """

    def __init__(self, seed: "int | np.random.SeedSequence" = 0):
        self._root = (
            seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        )

    @property
    def root_entropy(self) -> "int | Sequence[int]":
        """Entropy of the root seed sequence (for provenance logging)."""
        return self._root.entropy

    def _key_to_ints(self, key: Iterable["int | str"]) -> list[int]:
        out: list[int] = []
        for part in key:
            if isinstance(part, str):
                # Stable 64-bit hash of the name (Python's hash() is salted
                # per-process, so fold bytes explicitly instead).
                h = 1469598103934665603  # FNV-1a offset basis
                for byte in part.encode("utf-8"):
                    h = ((h ^ byte) * 1099511628211) % (1 << 64)
                out.append(h)
            elif isinstance(part, (bool, np.bool_)):
                out.append(int(part))
            elif isinstance(part, (int, np.integer)):
                out.append(int(part) % (1 << 64))
            elif isinstance(part, (float, np.floating)):
                # Stable across runs: the IEEE-754 bit pattern.
                out.append(int(np.float64(part).view(np.uint64)))
            else:
                raise TypeError(
                    f"stream key parts must be str, int, or float, got {type(part).__name__}"
                )
        return out

    def seed_sequence(self, *key: "int | str") -> np.random.SeedSequence:
        """Deterministic child :class:`~numpy.random.SeedSequence` for ``key``."""
        return np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=tuple(self._key_to_ints(key))
        )

    def stream(self, *key: "int | str") -> np.random.Generator:
        """Deterministic, independent generator identified by ``key``."""
        return np.random.default_rng(self.seed_sequence(*key))

    def streams(self, count: int, *key: "int | str") -> list[np.random.Generator]:
        """``count`` sibling streams ``key + (0,) ... key + (count-1,)``."""
        return [self.stream(*key, i) for i in range(count)]
