"""Latency by repeated single-slot capacity maximization.

The first class of latency algorithms Section 4 transfers: run a
capacity-maximization algorithm on the unserved links, schedule the
returned set for one slot, remove whoever was served, recurse.  With a
``c``-approximate capacity algorithm this is an ``O(c · log n)``
approximation to the minimum schedule length [8].

Service is evaluated through a :class:`~repro.channel.base.Channel` on
the *full* instance with global transmit masks (silent links contribute
no interference, so this matches per-subinstance evaluation exactly):

* deterministic channels — the schedule and its length are
  deterministic; this is the baseline the paper compares against.
* stochastic channels (Rayleigh, Nakagami, Rician, block) — each
  scheduled slot is realised under fading, so a link may need several
  slots; exactly the "repeated application" transfer of Section 4
  (capacity per slot drops by at most the constant of Lemma 2, hence
  expected latency grows by a constant factor).

Channel randomness flows through the slot-loop engine's per-slot field
buffer (:class:`~repro.latency.slotloop.SlotFieldBuffer`): fields are
pre-drawn positionally in blocks — they never depend on the transmit
masks — and each slot's data-dependent mask is evaluated against its
own row, so results are identical for every ``slot_block``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.capacity.greedy import greedy_capacity
from repro.channel.base import Channel
from repro.channel.spec import make_channel
from repro.core.sinr import SINRInstance
from repro.latency.schedule import Schedule
from repro.latency.slotloop import SlotFieldBuffer, run_fixed_pattern
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["RepeatedMaxResult", "repeated_max_latency"]


@dataclass(frozen=True)
class RepeatedMaxResult:
    """Outcome of the repeated-maximization scheduler.

    Attributes
    ----------
    schedule:
        The slots actually executed, in global link indices.
    latency:
        Number of slots until every link was served (== ``schedule.length``).
    served_at:
        Per-link slot index at which the link was first served.
    """

    schedule: Schedule
    latency: int
    served_at: np.ndarray


def repeated_max_latency(
    instance: SINRInstance,
    beta: float,
    *,
    model: str = "nonfading",
    channel: "Channel | str | None" = None,
    algorithm: "Callable[[SINRInstance, float], np.ndarray] | None" = None,
    rng=None,
    max_slots: "int | None" = None,
    slot_block: "int | None" = None,
) -> RepeatedMaxResult:
    """Serve every link via repeated single-slot maximization.

    Parameters
    ----------
    instance, beta:
        The instance and SINR threshold.  Every link must be individually
        viable (``S̄(i,i) > βν``), otherwise no finite schedule exists and
        a ``ValueError`` is raised.
    model:
        Channel spec string (``"nonfading"``, ``"rayleigh"``,
        ``"nakagami:m=2"``, ...); ignored when ``channel`` is given.
    channel:
        Explicit :class:`~repro.channel.base.Channel` built on
        ``instance`` (takes precedence over ``model``).
    algorithm:
        Single-slot capacity algorithm ``(sub_instance, beta) -> indices``;
        defaults to the affectance greedy.
    rng:
        Fading randomness (stochastic channels only).
    max_slots:
        Safety cap; defaults to ``50 n`` for stochastic channels, ``2 n``
        for deterministic ones (both far above anything the algorithms
        need).
    slot_block:
        Speculative block cap of the fixed-pattern engine path
        (``None`` → the process default); results are identical for
        every value.  Between two services the unserved set — and hence
        the (deterministic) capacity algorithm's choice — cannot change,
        so the chosen set is re-planned only after a service and the
        repeated slots in between are evaluated in blocks.

    Returns
    -------
    :class:`RepeatedMaxResult`
    """
    check_positive(beta, "beta")
    ch = make_channel(channel if channel is not None else model, instance, beta)
    if np.any(instance.signal <= beta * instance.noise):
        raise ValueError(
            "some links cannot reach beta against noise alone; "
            "no finite non-fading schedule exists"
        )
    alg = algorithm if algorithm is not None else (
        lambda sub, b: greedy_capacity(sub, b, margin=1.0)
    )
    gen = as_generator(rng)
    n = instance.n
    cap = max_slots if max_slots is not None else (2 * n if ch.is_deterministic else 50 * n)

    remaining = np.arange(n)
    served_at = np.full(n, -1, dtype=np.int64)
    slots: list[np.ndarray] = []
    fields = SlotFieldBuffer(ch, gen)
    while remaining.size:
        if len(slots) >= cap:
            raise RuntimeError(
                f"scheduler exceeded {cap} slots with {remaining.size} links left; "
                "instance is pathological or the capacity algorithm returned empty sets"
            )
        sub = instance.subinstance(remaining)
        local = np.asarray(alg(sub, beta), dtype=np.intp)
        if local.size == 0:
            # The capacity algorithm refused everything; fall back to the
            # single individually-viable link with the strongest signal so
            # progress is guaranteed.
            local = np.array([int(np.argmax(sub.signal))], dtype=np.intp)
        chosen = remaining[local]
        mask = np.zeros(n, dtype=bool)
        mask[chosen] = True
        if ch.is_deterministic:
            # One slot decides everything: the outcome is the same every
            # slot, so speculation buys nothing and an infeasible set
            # must be caught immediately.
            ok = fields.apply(len(slots), mask[None])[0] & mask
            used = 1
        else:
            used, ok = run_fixed_pattern(
                fields, len(slots), mask, max_rows=cap - len(slots), slot_block=slot_block
            )
        sorted_chosen = np.sort(chosen)
        slots.extend([sorted_chosen] * used)
        fields.release(len(slots))
        served = np.flatnonzero(ok)
        served_at[served] = len(slots) - 1
        if ch.is_deterministic and served.size == 0:
            # A feasible-set algorithm always serves its whole set; an
            # empty service here means the supplied algorithm returned an
            # infeasible set — schedule its strongest link alone next.
            strongest = chosen[int(np.argmax(instance.signal[chosen]))]
            slots.append(np.array([strongest], dtype=np.intp))
            served_at[strongest] = len(slots) - 1
            served = np.array([strongest])
        keep = ~np.isin(remaining, served)
        remaining = remaining[keep]
    schedule = Schedule(slots=tuple(slots), n=n)
    return RepeatedMaxResult(schedule=schedule, latency=schedule.length, served_at=served_at)
