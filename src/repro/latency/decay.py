"""The decay protocol — probability-sweeping contention resolution.

A second fully distributed latency protocol, in the spirit of the
classical DECAY broadcast algorithm and the probability classes inside
Kesselheim–Vöcking [9]: time is divided into *sweeps* of
``ceil(log2 n) + 1`` slots, and in slot ``j`` of a sweep every unserved
link transmits with probability ``2^{-j}``.  Whatever the current
contention ``c`` is, some slot of each sweep uses a probability within a
factor 2 of ``1/c``, which is enough for a constant per-sweep success
rate among the links dominating the contention — no link needs to know
``c`` or the affectance structure, unlike the tuned single-probability
protocol in :mod:`repro.latency.aloha`.

Service is evaluated through a :class:`~repro.channel.base.Channel`;
under any stochastic channel each slot is executed ``repeats``-fold per
the Section-4 transformation.  Execution runs on the shared slot-loop
engine (:func:`repro.latency.slotloop.run_contention`) with the sweep
expressed as a per-step probability function — results are identical
for every speculative block size.
"""

from __future__ import annotations

import math

import numpy as np

from repro.channel.base import Channel
from repro.channel.spec import make_channel
from repro.core.sinr import SINRInstance
from repro.latency.aloha import AlohaResult
from repro.latency.schedule import Schedule
from repro.latency.slotloop import run_contention
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["decay_latency"]


def decay_latency(
    instance: SINRInstance,
    beta: float,
    rng=None,
    *,
    model: str = "nonfading",
    channel: "Channel | str | None" = None,
    repeats: int = 4,
    max_sweeps: "int | None" = None,
    slot_block: "int | None" = None,
) -> AlohaResult:
    """Serve every link with the probability-sweeping decay protocol.

    Parameters
    ----------
    instance, beta:
        The instance and threshold; every link must be individually
        viable.
    rng:
        Protocol (and, under fading, channel) randomness.
    model:
        Channel spec string; ignored when ``channel`` is given.
    channel:
        Explicit :class:`~repro.channel.base.Channel` built on
        ``instance`` (takes precedence over ``model``).
    repeats:
        Physical executions per protocol slot under stochastic channels.
    max_sweeps:
        Safety cap (default ``50 · n``).
    slot_block:
        Speculative block size of the slot-loop engine (``None`` → the
        process default); results are identical for every value.

    Returns
    -------
    :class:`repro.latency.aloha.AlohaResult` — ``q_used`` reports the
    smallest probability of the sweep.
    """
    check_positive(beta, "beta")
    ch = make_channel(channel if channel is not None else model, instance, beta)
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    if np.any(instance.signal <= beta * instance.noise):
        raise ValueError("some links cannot reach beta against noise alone")
    gen = as_generator(rng)
    n = instance.n
    sweep_length = max(1, int(math.ceil(math.log2(max(n, 2)))) + 1)
    cap = max_sweeps if max_sweeps is not None else 50 * n
    executions = 1 if ch.is_deterministic else repeats

    result = run_contention(
        ch,
        lambda step, sl=sweep_length: 2.0 ** (-((step % sl) + 1)),
        gen,
        executions=executions,
        max_steps=cap * sweep_length,
        slot_block=slot_block,
    )
    if not result.finished:
        raise RuntimeError(f"decay protocol exceeded {cap} sweeps")
    schedule = Schedule(slots=tuple(result.slots), n=n)
    return AlohaResult(
        schedule=schedule,
        latency=schedule.length,
        protocol_steps=len(result.slots) // executions,
        served_at=result.served_at,
        q_used=2.0**(-sweep_length),
    )
