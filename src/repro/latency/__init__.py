"""Latency minimization — serve every request at least once, fast.

Section 4 of the paper transfers two classes of latency algorithms to
Rayleigh fading:

* **Repeated single-slot maximization** (:mod:`~repro.latency.repeated_max`)
  — schedule a capacity-maximizing set, remove the served links, recurse
  (the ``O(log n)``-approximation skeleton of [8]).  Under fading, served
  links are the ones whose *drawn* SINR cleared ``β``.
* **ALOHA-style contention resolution** (:mod:`~repro.latency.aloha`)
  — every unserved link transmits with a small probability tuned to the
  contention measure (Kesselheim–Vöcking [9]); under fading each step is
  executed 4 times per the Section-4 transformation.

:mod:`~repro.latency.multihop` composes single-hop schedules along paths
(requests relayed over intermediate nodes), as in [6], [9], [10];
:mod:`~repro.latency.schedule` holds the schedule data type and its
validity checks.

All schedulers execute on the shared slot-loop engine
(:mod:`~repro.latency.slotloop`): per-slot randomness is pre-drawn
positionally in speculative blocks and settled in place, so results are
identical for every ``slot_block`` — the block size is purely a
throughput knob (process default via :func:`set_default_slot_block`).
"""

from repro.latency.aloha import aloha_latency
from repro.latency.decay import decay_latency
from repro.latency.multihop import (
    MultiHopRequest,
    multihop_latency,
    multihop_lower_bound,
)
from repro.latency.repeated_max import repeated_max_latency
from repro.latency.schedule import Schedule, replay_schedule, validate_schedule
from repro.latency.slotloop import (
    ContentionResult,
    SlotFieldBuffer,
    get_default_slot_block,
    iter_slot_blocks,
    resolve_slot_block,
    run_contention,
    run_fixed_pattern,
    set_default_slot_block,
)

__all__ = [
    "ContentionResult",
    "MultiHopRequest",
    "Schedule",
    "SlotFieldBuffer",
    "aloha_latency",
    "decay_latency",
    "get_default_slot_block",
    "iter_slot_blocks",
    "multihop_latency",
    "multihop_lower_bound",
    "repeated_max_latency",
    "replay_schedule",
    "resolve_slot_block",
    "run_contention",
    "run_fixed_pattern",
    "set_default_slot_block",
    "validate_schedule",
]
