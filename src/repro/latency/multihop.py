"""Multi-hop scheduling: requests relayed over intermediate nodes.

Section 4 notes the single-hop transformations generalize directly to
multi-hop scheduling [6], [9], [10]: a multi-hop schedule is a
concatenation of single-hop schedules, and transforming each one keeps
the constant factors.

A :class:`MultiHopRequest` is a path of nodes; each consecutive pair is
one hop (a single-hop link).  :func:`multihop_latency` schedules all
requests hop-by-hop with a *moving-frontier* strategy: in every round the
head hop of every unfinished request enters a single-hop latency problem,
solved by any of the single-hop schedulers; finished hops advance their
request's frontier.  The returned latency is the makespan (slots until
every request's last hop is served).

Between two frontier advances the instance — and hence the chosen
transmit set — cannot change, so those repeated slots form a *frontier
epoch* evaluated in blocks on the slot-loop engine's fixed-pattern path
(:func:`repro.latency.slotloop.run_fixed_pattern`): per-slot channel
fields are pre-drawn positionally and the epoch is truncated at the
first slot serving any hop.  Results are identical for every
``slot_block``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.capacity.greedy import greedy_capacity
from repro.channel.spec import make_channel
from repro.core.network import Network
from repro.core.power import PowerAssignment, UniformPower
from repro.core.sinr import SINRInstance
from repro.latency.slotloop import SlotFieldBuffer, run_fixed_pattern
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = [
    "MultiHopRequest",
    "MultiHopResult",
    "multihop_latency",
    "multihop_lower_bound",
]


@dataclass(frozen=True)
class MultiHopRequest:
    """A communication request routed along a node path.

    Attributes
    ----------
    path:
        Array of node coordinates, shape ``(k+1, dim)`` for ``k`` hops;
        hop ``h`` is the link ``path[h] -> path[h+1]``.
    """

    path: np.ndarray

    def __post_init__(self):
        arr = np.asarray(self.path, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[0] < 2:
            raise ValueError("a request path needs at least two nodes (one hop)")
        object.__setattr__(self, "path", arr)

    @property
    def num_hops(self) -> int:
        return self.path.shape[0] - 1

    def hop(self, h: int) -> tuple[np.ndarray, np.ndarray]:
        """Sender/receiver coordinates of hop ``h``."""
        if not 0 <= h < self.num_hops:
            raise IndexError(f"hop {h} out of range for {self.num_hops}-hop request")
        return self.path[h], self.path[h + 1]


@dataclass(frozen=True)
class MultiHopResult:
    """Outcome of multi-hop scheduling.

    Attributes
    ----------
    makespan:
        Slots until every request was fully delivered.
    finish_times:
        Per-request completion slot.
    hops_total:
        Total number of hops over all requests (a trivial lower bound on
        total transmissions).
    """

    makespan: int
    finish_times: np.ndarray
    hops_total: int


def multihop_lower_bound(requests: Sequence[MultiHopRequest]) -> int:
    """Trivial makespan lower bounds for multi-hop scheduling.

    Two facts hold for *any* schedule and any interference model:
    (a) a request of ``k`` hops needs at least ``k`` slots (its hops are
    sequential); (b) at most ``total hops`` single-hop transmissions fit
    into ``total hops`` slots only if every slot serves one, so with a
    per-slot service cap of ``n`` requests, ``ceil(hops_total / n)``
    slots are needed.  The dilation bound (a) dominates on long chains,
    the congestion-style bound (b) on wide workloads — the classic
    ``Ω(dilation + congestion)`` pair in its model-free form.
    """
    if not requests:
        raise ValueError("need at least one request")
    dilation = max(r.num_hops for r in requests)
    hops_total = sum(r.num_hops for r in requests)
    congestion = int(np.ceil(hops_total / len(requests)))
    return max(dilation, congestion)


def multihop_latency(
    requests: Sequence[MultiHopRequest],
    *,
    beta: float,
    alpha: float,
    noise: float = 0.0,
    power: "PowerAssignment | None" = None,
    model: str = "nonfading",
    channel: "str | None" = None,
    rng=None,
    max_slots: "int | None" = None,
    slot_block: "int | None" = None,
) -> MultiHopResult:
    """Schedule all requests hop-by-hop with a moving frontier.

    In each slot the head hops of all unfinished requests form a
    single-hop instance; a capacity-maximizing feasible subset of them
    transmits.  Under a stochastic channel, service within the slot is
    random (exact Theorem-1 probabilities for ``"rayleigh"``, sampled
    for other families).

    Parameters
    ----------
    requests:
        The multi-hop requests.
    beta, alpha, noise:
        SINR threshold, path-loss exponent, ambient noise.
    power:
        Power assignment for relay transmissions (default uniform 1).
    model, channel, rng:
        Like the single-hop schedulers — except ``channel`` must be a
        *spec string*: the frontier instance changes when a hop is
        served, so a fresh channel is built per frontier epoch
        (block-fading coherence carries within an epoch, not across
        frontier advances).
    max_slots:
        Safety cap (default ``50 · total hops``).
    slot_block:
        Speculative block cap of the fixed-pattern engine path
        (``None`` → the process default); results are identical for
        every value.

    Returns
    -------
    :class:`MultiHopResult`
    """
    check_positive(beta, "beta")
    check_positive(alpha, "alpha")
    spec = channel if channel is not None else model
    if not isinstance(spec, str):
        raise TypeError(
            "multihop_latency accepts channel *spec strings* only; the "
            "instance changes every slot so a bound Channel cannot be reused"
        )
    if not requests:
        raise ValueError("need at least one request")
    gen = as_generator(rng)
    pw = power if power is not None else UniformPower(1.0)

    progress = np.zeros(len(requests), dtype=np.int64)  # next hop per request
    finish = np.full(len(requests), -1, dtype=np.int64)
    hops_total = sum(r.num_hops for r in requests)
    cap = max_slots if max_slots is not None else 50 * hops_total
    slot = 0
    while np.any(finish < 0):
        if slot >= cap:
            raise RuntimeError(f"multi-hop scheduler exceeded {cap} slots")
        active_requests = [k for k in range(len(requests)) if finish[k] < 0]
        senders = np.array([requests[k].hop(int(progress[k]))[0] for k in active_requests])
        receivers = np.array([requests[k].hop(int(progress[k]))[1] for k in active_requests])
        net = Network(senders, receivers)
        inst = SINRInstance.from_network(net, pw, alpha, noise)
        chosen = greedy_capacity(inst, beta, margin=1.0)
        if chosen.size == 0:
            chosen = np.array([int(np.argmax(inst.signal))], dtype=np.intp)
        mask = np.zeros(inst.n, dtype=bool)
        mask[chosen] = True
        ch = make_channel(spec, inst, beta)
        fields = SlotFieldBuffer(ch, gen)
        if ch.is_deterministic:
            ok = fields.apply(0, mask[None])[0] & mask
            used = 1
        else:
            used, ok = run_fixed_pattern(
                fields, 0, mask, max_rows=cap - slot, slot_block=slot_block
            )
        slot += used
        for local, k in enumerate(active_requests):
            if ok[local]:
                progress[k] += 1
                if progress[k] == requests[k].num_hops:
                    finish[k] = slot
    return MultiHopResult(
        makespan=slot, finish_times=finish, hops_total=hops_total
    )
