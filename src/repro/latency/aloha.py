"""ALOHA-style distributed contention resolution (style of [9], [21]).

Every unserved link transmits independently with a small probability
``q``; successful links fall silent; the rest keep trying.  With ``q``
tuned to the inverse of the contention measure (maximum average
affectance), Kesselheim–Vöcking show the schedule finishes within an
``O(log n)`` factor of optimal latency with high probability.

Service is evaluated through a :class:`~repro.channel.base.Channel`:
under a deterministic channel each protocol step is one physical slot;
under any stochastic channel (Rayleigh, Nakagami, Rician, block fading)
each protocol step is executed ``repeats=4`` times per the Section-4
transformation — for exact Rayleigh the transformed per-step success
dominates the non-fading one whenever ``q ≤ 1/2`` (Lemma 3).  The
legacy ``model="nonfading"/"rayleigh"`` strings are channel-spec
aliases.

The transmission probability can be a number, ``"auto"`` (tuned from the
peeling approximation of the maximum average affectance — documented
2-approximation), or ``"adaptive"`` (restart-doubling: a standard guess-
and-double wrapper that needs no global knowledge, mirroring the
distributed flavour of [9]).

Execution runs on the shared slot-loop engine
(:func:`repro.latency.slotloop.run_contention`): slots are speculated in
blocks, evaluated against pre-drawn per-slot channel fields, and
invalid speculation is settled in place — the trajectory is identical
for every block size, so ``slot_block`` is purely a throughput knob.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.base import Channel
from repro.channel.spec import make_channel
from repro.core.affectance import affectance_matrix, max_average_affectance
from repro.core.sinr import SINRInstance
from repro.latency.schedule import Schedule
from repro.latency.slotloop import run_contention
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["AlohaResult", "aloha_latency"]


@dataclass(frozen=True)
class AlohaResult:
    """Outcome of the contention-resolution protocol.

    Attributes
    ----------
    schedule:
        Executed slots (under a stochastic channel each transformed
        protocol step contributes its ``repeats`` physical slots).
    latency:
        Number of physical slots until all links were served.
    protocol_steps:
        Number of protocol steps (== latency for deterministic channels;
        latency / ``repeats`` under the transformation).
    served_at:
        Physical slot at which each link was first served.
    q_used:
        The transmission probability of the final (successful) phase.
    """

    schedule: Schedule
    latency: int
    protocol_steps: int
    served_at: np.ndarray
    q_used: float


def _auto_probability(instance: SINRInstance, beta: float) -> float:
    """Contention-tuned probability ``min(1/2, 1/(2ā))`` with ``ā`` the
    (peeling-approximate) maximum average affectance."""
    a = affectance_matrix(instance, beta, clamped=True)
    abar = max_average_affectance(a)
    if abar <= 1.0:
        return 0.5
    return min(0.5, 1.0 / (2.0 * abar))


def aloha_latency(
    instance: SINRInstance,
    beta: float,
    rng=None,
    *,
    q="auto",
    model: str = "nonfading",
    channel: "Channel | str | None" = None,
    repeats: int = 4,
    max_steps_factor: int = 200,
    slot_block: "int | None" = None,
) -> AlohaResult:
    """Run contention resolution until every link has been served.

    Parameters
    ----------
    instance, beta:
        The instance and threshold; all links must be individually viable.
    q:
        Fixed transmission probability in ``(0, 1/2]``, ``"auto"``
        (contention-tuned), or ``"adaptive"`` (halve-and-restart from
        1/2 whenever a phase fails to finish within its step budget —
        the guess-and-double pattern in its latency form).
    model:
        Channel spec string (``"nonfading"``, ``"rayleigh"``,
        ``"nakagami:m=2"``, ...); ignored when ``channel`` is given.
    channel:
        Explicit :class:`~repro.channel.base.Channel` built on
        ``instance`` (takes precedence over ``model``).  Stochastic
        channels get the ``repeats``-fold Section-4 transformation.
    repeats:
        Executions per protocol step under fading (paper constant 4).
    max_steps_factor:
        Per-phase step budget is ``max_steps_factor · n / q`` protocol
        steps (generous; only pathological probabilities exhaust it).
    slot_block:
        Speculative block size of the slot-loop engine (``None`` → the
        process default, :func:`repro.latency.slotloop.get_default_slot_block`).
        Any value yields identical results; it only trades throughput
        against wasted speculation.

    Returns
    -------
    :class:`AlohaResult`
    """
    check_positive(beta, "beta")
    ch = make_channel(channel if channel is not None else model, instance, beta)
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    if np.any(instance.signal <= beta * instance.noise):
        raise ValueError("some links cannot reach beta against noise alone")
    gen = as_generator(rng)

    if q == "adaptive":
        candidates = [0.5 / 2**k for k in range(12)]
    elif q == "auto":
        candidates = [_auto_probability(instance, beta)]
    else:
        qf = float(q)
        if not 0.0 < qf <= 0.5:
            raise ValueError(f"q must lie in (0, 1/2], got {q}")
        candidates = [qf]

    all_slots: list[np.ndarray] = []
    for q_phase in candidates:
        budget = int(max_steps_factor * instance.n / q_phase)
        executions = 1 if ch.is_deterministic else repeats
        ch.reset()
        result = run_contention(
            ch,
            lambda step, qp=q_phase: qp,
            gen,
            executions=executions,
            max_steps=budget,
            slot_block=slot_block,
        )
        offset = len(all_slots)
        all_slots.extend(result.slots)
        if result.finished:
            schedule = Schedule(slots=tuple(all_slots), n=instance.n)
            return AlohaResult(
                schedule=schedule,
                latency=schedule.length,
                protocol_steps=(
                    schedule.length if ch.is_deterministic else schedule.length // repeats
                ),
                served_at=result.served_at + offset,
                q_used=q_phase,
            )
        # Failed phase still occupied air time; its slots stay in the
        # tally, and the next (halved) probability gets a fresh attempt
        # with every link back in contention.
    raise RuntimeError(
        "contention resolution failed to finish within its step budget at "
        "every candidate probability; the instance is pathological"
    )
