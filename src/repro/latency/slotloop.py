"""The batched slot-loop engine — speculative block execution of protocols.

Every latency protocol in this library is, at heart, the same loop: draw
a transmit pattern for the current slot from the protocol's randomness,
realize the channel, update the served set, repeat.  Executed one slot
at a time that loop pays an interpreter round trip plus a full kernel
call per slot; this module executes it in **speculative blocks of B
slots** instead:

1. **Positional randomness.**  The engine spawns two child streams from
   the caller's generator — one for transmit coin flips, one for the
   channel's exogenous randomness ("fields") — and assigns every
   physical slot ``t`` its own field *by position*: slot ``t`` always
   reads rows ``t`` of both streams, no matter how slots are grouped
   into blocks.  Uniform/exponential/gamma generators fill arrays
   element-sequentially, and the model-specific overrides of
   :meth:`~repro.channel.base.Channel.slot_fields` preserve that order,
   so the per-slot draw schedule is **identical for every block size**
   — ``B = 1`` *is* the sequential reference, byte for byte.
2. **Speculative evaluation.**  A block of ``m`` slots is evaluated
   under the optimistic assumption that the served set does not change
   inside the block: patterns ``(U_t < q_t) & unserved`` for all ``m``
   rows at once, then one batched channel evaluation against the cached
   fields.
3. **Longest-valid-prefix commit.**  A slot's speculation is invalid
   exactly when some link that succeeded *earlier in the block* still
   transmits in it.  With ``first_hit[i]`` the first row where link
   ``i`` succeeded, row ``r`` is valid iff no transmitting link has
   ``first_hit < r`` — a single vectorized ``argmax`` test.  The valid
   prefix is committed; evaluation resumes from the first invalidated
   slot with the corrected served set **against the same cached
   fields** (common random numbers — the fields are independent of the
   protocol state, so re-evaluation stays distribution- and
   schedule-exact).
4. **Block-fading alignment.**  :class:`~repro.channel.block.
   BlockFadingChannel` draws its fields through ``_advance_chunks``, so
   coherence-block boundaries fall exactly where the slot-by-slot loop
   would redraw; the cached chunks are sliced per speculation window.

The RNG-schedule contract this engine defines (and the equivalence
suite pins): *every physical slot owns one field draw, even when its
transmit set is empty.*  The pre-engine loops skipped the channel call
on empty slots; under the positional contract the field is drawn and
simply never read, which is what makes outcomes independent of how
state updates land.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import metrics as _metrics
from repro.utils.rng import as_generator

__all__ = [
    "DEFAULT_SLOT_BLOCK",
    "ContentionResult",
    "SlotFieldBuffer",
    "get_default_slot_block",
    "iter_slot_blocks",
    "resolve_replay_block",
    "resolve_slot_block",
    "run_contention",
    "run_fixed_pattern",
    "set_default_slot_block",
]

#: Default speculative block size.  Large enough to amortize interpreter
#: and kernel-launch overhead, small enough that a mid-block state
#: change wastes little work (the engine additionally adapts its
#: speculation window inside this cap).
DEFAULT_SLOT_BLOCK = 64

#: Replay paths (recorded schedules, transform samplers) have no state
#: feedback, so bigger blocks are a pure win; they default to at least
#: this many slots per chunk.
_REPLAY_FLOOR = 512

_default_block = DEFAULT_SLOT_BLOCK

#: Cost cap for one speculation window, in predicted transmitting
#: pairs (Σ over admitted slots of the squared expected active count —
#: the scaling of the kernel's ragged entry gather).  Bounds both the
#: wasted work when a window is invalidated deep inside and the peak
#: gather size under protocols that sweep the access probability high.
_WINDOW_PAIR_BUDGET = 1 << 21

_EMPTY_SLOT = np.empty(0, dtype=np.intp)
_EMPTY_SLOT.setflags(write=False)


def get_default_slot_block() -> int:
    """The process-wide default speculative block size ``B``."""
    return _default_block


def set_default_slot_block(block: int) -> int:
    """Set the process-wide default ``B`` (the CLI ``--slot-block`` knob).

    Returns the previous value so callers can restore it.
    """
    global _default_block
    previous = _default_block
    _default_block = _check_block(block)
    return previous


def _check_block(block) -> int:
    b = int(block)
    if b < 1:
        raise ValueError(f"slot block must be >= 1, got {block}")
    return b


def resolve_slot_block(slot_block: "int | None") -> int:
    """``None`` means the process default; explicit values are checked."""
    if slot_block is None:
        return _default_block
    return _check_block(slot_block)


def resolve_replay_block(slot_block: "int | None") -> int:
    """Block size for state-free replay paths: an explicit value wins;
    the default is floored at ``512`` (replay has no speculation cost,
    so small blocks only add per-chunk overhead)."""
    if slot_block is None:
        return max(_REPLAY_FLOOR, _default_block)
    return _check_block(slot_block)


def iter_slot_blocks(total: int, slot_block: "int | None" = None):
    """Yield ``(lo, hi)`` chunk bounds covering ``range(total)``."""
    block = resolve_slot_block(slot_block)
    lo = 0
    while lo < total:
        hi = min(total, lo + block)
        yield lo, hi
        lo = hi


class SlotFieldBuffer:
    """Positional cache of a channel's per-slot fields.

    Fields are drawn strictly in slot order from one dedicated stream
    (so the draw schedule never depends on block grouping) and cached in
    windows; :meth:`apply` evaluates a pattern batch against the cached
    rows, re-usably — the prefix-commit loop re-applies corrected
    patterns to the *same* fields.  :meth:`release` drops windows wholly
    below the committed frontier to bound memory.
    """

    def __init__(self, channel, rng):
        self._channel = channel
        self._gen = as_generator(rng)
        self._windows: "list[tuple[int, int, object]]" = []  # (start, stop, fields)
        self._drawn = 0

    def ensure(self, upto: int) -> None:
        """Draw fields for every slot below ``upto`` not yet drawn."""
        if upto > self._drawn:
            fields = self._channel.slot_fields(upto - self._drawn, self._gen)
            self._windows.append((self._drawn, upto, fields))
            self._drawn = upto

    def apply(self, start: int, patterns: np.ndarray) -> np.ndarray:
        """Success masks of ``patterns`` at slots ``start, start+1, ...``."""
        pats = np.ascontiguousarray(patterns)
        m = pats.shape[0]
        self.ensure(start + m)
        out = np.zeros(pats.shape, dtype=bool)
        for ws, we, fields in self._windows:
            lo = max(ws, start)
            hi = min(we, start + m)
            if lo >= hi:
                continue
            out[lo - start : hi - start] = self._channel.apply_slot_fields(
                fields, pats[lo - start : hi - start], offset=lo - ws
            )
        return out

    def release(self, below: int) -> None:
        """Forget windows that end at or before slot ``below``."""
        self._windows = [w for w in self._windows if w[1] > below]


class _TransmitBuffer:
    """Positional cache of per-slot transmit uniforms (one row per slot)."""

    def __init__(self, n: int, rng):
        self._n = n
        self._gen = as_generator(rng)
        self._start = 0
        self._rows = np.empty((0, n), dtype=np.float64)

    def rows(self, start: int, m: int) -> np.ndarray:
        need = start + m - (self._start + self._rows.shape[0])
        if need > 0:
            fresh = self._gen.random((need, self._n))
            self._rows = np.concatenate([self._rows, fresh], axis=0)
        lo = start - self._start
        return self._rows[lo : lo + m]

    def release(self, below: int) -> None:
        drop = below - self._start
        if drop > 0:
            self._rows = self._rows[drop:]
            self._start = below


def _index_runs(idx: np.ndarray):
    """Yield ``(start, stop)`` bounds of consecutive runs in a sorted
    index array — lets the settle loop re-apply scattered changed rows
    through the contiguous-span :meth:`SlotFieldBuffer.apply` API."""
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [idx.size - 1]))
    for s, e in zip(starts, ends):
        yield int(idx[s]), int(idx[e]) + 1


@dataclass(frozen=True)
class ContentionResult:
    """Outcome of :func:`run_contention`.

    ``slots`` lists the executed transmit sets (padded with empty slots
    to the protocol-step boundary, as the sequential loops do);
    ``served_at`` holds the physical slot of each link's first service
    (``-1`` if never served); ``finished`` is False when the step budget
    ran out first.
    """

    finished: bool
    slots: "list[np.ndarray]"
    served_at: np.ndarray


def _q_rows(q_of_step, start, m, executions, n):
    """Per-row probability matrix for slots ``start .. start+m-1``.

    ``q_of_step(step)`` may return a scalar or an ``(n,)`` vector; rows
    sharing a protocol step share one evaluation.
    """
    probe = np.asarray(q_of_step(start // executions), dtype=np.float64)
    width = n if probe.ndim == 1 else 1
    out = np.empty((m, width), dtype=np.float64)
    cur_step = start // executions
    cur_q = probe
    for r in range(m):
        step = (start + r) // executions
        if step != cur_step:
            cur_step = step
            cur_q = np.asarray(q_of_step(step), dtype=np.float64)
        out[r] = cur_q
    return out


def run_contention(
    channel,
    q_of_step,
    rng=None,
    *,
    executions: int = 1,
    max_steps: int,
    slot_block: "int | None" = None,
) -> ContentionResult:
    """Run a contention protocol (every unserved link transmits with a
    per-step probability) to completion or budget exhaustion.

    Parameters
    ----------
    channel:
        The :class:`~repro.channel.base.Channel` serving transmissions.
    q_of_step:
        ``step -> probability`` (scalar or per-link vector); the
        protocol step of physical slot ``t`` is ``t // executions``.
    rng:
        Parent stream; the engine spawns the transmit and field streams
        from it (one ``spawn(2)``, independent of the block size).
    executions:
        Physical slots per protocol step (the Section-4 ``repeats``
        under stochastic channels; 1 for deterministic ones).
    max_steps:
        Protocol-step budget; the run executes at most
        ``max_steps * executions`` physical slots.
    slot_block:
        Speculative block cap ``B`` (``None`` → process default).
        **Results are identical for every value** — the engine's RNG
        schedule is positional; ``B`` only trades throughput against
        wasted speculation.
    """
    if executions < 1:
        raise ValueError(f"executions must be >= 1, got {executions}")
    if max_steps < 0:
        raise ValueError(f"max_steps must be >= 0, got {max_steps}")
    gen = as_generator(rng)
    tx_stream, field_stream = gen.spawn(2)
    n = channel.n
    cap = resolve_slot_block(slot_block)
    max_slots = max_steps * executions

    unserved = np.ones(n, dtype=bool)
    served_at = np.full(n, -1, dtype=np.int64)
    slots: "list[np.ndarray]" = []
    txbuf = _TransmitBuffer(n, tx_stream)
    fields = SlotFieldBuffer(channel, field_stream)
    row_index = np.arange(cap)[:, None]

    t = 0
    window = min(cap, max(executions, min(8, cap)))
    while unserved.any() and t < max_slots:
        m = min(window, max_slots - t)
        q = _q_rows(q_of_step, t, m, executions, n)
        if m > 1:
            # Cost-bounded admission: expected per-slot evaluation work
            # scales with the square of the active count (the kernel's
            # ragged gather touches a² entries per slot), so admit rows
            # only while the predicted total stays inside the budget.
            # A protocol sweeping q up to 1/2 (decay) would otherwise
            # fill a block with enormously expensive slots.  Window
            # sizing never affects results — only throughput.
            act = q @ unserved if q.shape[1] == n else q[:, 0] * unserved.sum()
            # Dense slots are screened at ~K lookups per transmitting
            # entry (kernel top-K bound) instead of the full a² gather,
            # so their admission price grows linearly past the cutoff.
            cost = np.minimum(act * act, act * 64.0)
            cum = np.cumsum(cost)
            admitted = int(np.searchsorted(cum, _WINDOW_PAIR_BUDGET) + 1)
            # Cost-cliff cut: never append rows an order of magnitude
            # more expensive than the window's mean so far.  A protocol
            # that sweeps its access probability back up (decay) restarts
            # its expensive phase there; deferring those rows to the next
            # window means they are evaluated with an already-settled
            # served set instead of being speculatively re-evaluated
            # after every service in the cheap phase before them.
            jumps = np.flatnonzero(
                cost[1:] > 16.0 * (cum[:-1] / np.arange(1, m)) + 32.0
            )
            if jumps.size:
                admitted = min(admitted, int(jumps[0]) + 1)
            if admitted < m:
                m = admitted
                q = q[:m]
        uniforms = txbuf.rows(t, m)
        pats = (uniforms < q) & unserved
        pats0 = pats.copy()
        ok = fields.apply(t, pats) & pats
        _metrics.add("slotloop.slots_speculated", m)

        # Settle the window in place.  The sequential trajectory is the
        # unique fixed point where every link transmits per protocol up
        # to and including its first-service row and is silent after —
        # so iterate: derive the desired patterns from the current
        # first-service beliefs, re-evaluate only the rows whose
        # patterns changed (against the same cached fields — common
        # random numbers), repeat until stable.  For every channel whose
        # field evaluation is monotone in the transmit set (removing an
        # interferer never revokes a success — all in-tree channels),
        # services only move earlier, the desired sets shrink
        # monotonically, and this settles in a handful of passes.  A
        # strict mode guards the general case: silencing only services
        # that lie before the first invalid row provably advances that
        # frontier every pass, terminating within m passes.
        passes = 0
        reapplied = 0
        strict = False
        while True:
            has = ok.any(axis=0)
            first_hit = np.where(has, ok.argmax(axis=0), m)
            if strict:
                later_tx = pats & (row_index[:m] > first_hit[None, :])
                invalid_rows = later_tx.any(axis=1)
                if not invalid_rows.any():
                    break
                v = int(invalid_rows.argmax())
                frontier = np.where(has & (first_hit < v), first_hit, m)
                desired = pats0 & (row_index[:m] <= frontier[None, :])
            else:
                desired = pats0 & (row_index[:m] <= first_hit[None, :])
            diff_rows = np.flatnonzero((desired != pats).any(axis=1))
            if diff_rows.size == 0:
                break
            passes += 1
            strict = strict or passes > m
            reapplied += diff_rows.size
            for a, b in _index_runs(diff_rows):
                pats[a:b] = desired[a:b]
                ok[a:b] = fields.apply(t + a, pats[a:b]) & pats[a:b]
        _metrics.add("slotloop.settle_passes", passes)
        _metrics.add("slotloop.settle_rows", reapplied)

        newly = has
        if not (unserved & ~newly).any():
            # Everyone served inside the window: stop at the slot of the
            # last first-service (later rows would have had empty
            # transmit sets anyway).
            commit = int(first_hit[newly].max()) + 1
        else:
            commit = m

        commit_rows, commit_cols = np.nonzero(pats[:commit])
        slots.extend(
            np.split(commit_cols, np.searchsorted(commit_rows, np.arange(1, commit)))
        )
        served_at[newly] = t + first_hit[newly]
        unserved &= ~newly
        t += commit
        _metrics.add("slotloop.slots_committed", commit)
        _metrics.add("slotloop.blocks")

        txbuf.release(t)
        fields.release(t)
        # Adapt the speculation window: grow while windows settle
        # cleanly, shrink when settling re-evaluated more rows than the
        # window committed (speculation is wasting work).
        if reapplied == 0:
            window = min(cap, window * 2)
        elif reapplied > m:
            window = max(1, window // 2)

    finished = not unserved.any()
    if finished:
        # The sequential loops finish a protocol step before stopping:
        # the remaining executions of the final step run with empty
        # transmit sets.  Pad to the step boundary so latency stays a
        # multiple of ``executions``.
        slots.extend([_EMPTY_SLOT] * ((-len(slots)) % executions))
    return ContentionResult(finished=finished, slots=slots, served_at=served_at)


def run_fixed_pattern(
    fields: SlotFieldBuffer,
    start: int,
    mask: np.ndarray,
    *,
    max_rows: int,
    slot_block: "int | None" = None,
) -> "tuple[int, np.ndarray]":
    """Repeat one transmit ``mask`` from slot ``start`` until some
    transmitting link succeeds, or ``max_rows`` slots pass.

    The fixed-pattern analogue of the speculative prefix: schedulers
    that re-plan only after a success (repeated maximization, multi-hop
    frontiers) repeat the same set slot after slot, so whole blocks can
    be evaluated at once and truncated at the first row with any
    success.  Returns ``(rows_used, ok)`` where ``ok`` is the success
    mask of the last evaluated slot — all-False when the budget ran out
    without a success.

    The speculation window starts at one slot and doubles up to the
    block cap, so high-success channels never over-draw fields.
    """
    cap = resolve_slot_block(slot_block)
    n = mask.size
    used = 0
    window = 1
    while used < max_rows:
        m = min(window, max_rows - used)
        pats = np.broadcast_to(mask, (m, n))
        ok = fields.apply(start + used, pats) & mask
        _metrics.add("slotloop.slots_speculated", m)
        hit_rows = ok.any(axis=1)
        if hit_rows.any():
            r = int(hit_rows.argmax())
            _metrics.add("slotloop.slots_committed", r + 1)
            return used + r + 1, ok[r]
        used += m
        _metrics.add("slotloop.slots_committed", m)
        window = min(cap, window * 2)
    return used, np.zeros(n, dtype=bool)
