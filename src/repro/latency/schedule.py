"""Schedules: ordered slot assignments of links.

A schedule is a sequence of slots, each slot a set of links transmitting
simultaneously.  In the non-fading model a schedule *serves* a link when
the link clears ``β`` in its slot deterministically; under Rayleigh
fading service is stochastic and latency is a random variable — the
schedulers in this package then report realised latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.sinr import SINRInstance
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["Schedule", "replay_schedule", "validate_schedule"]


@dataclass(frozen=True)
class Schedule:
    """An ordered list of transmission slots.

    Attributes
    ----------
    slots:
        Tuple of integer index arrays; slot ``t`` lists the links
        transmitting in slot ``t``.
    n:
        Number of links in the underlying instance.
    """

    slots: tuple[np.ndarray, ...]
    n: int
    meta: dict = field(default_factory=dict, compare=False)

    @classmethod
    def from_lists(cls, slots: Iterable[Sequence[int]], n: int) -> "Schedule":
        arrays = tuple(np.asarray(sorted(s), dtype=np.intp) for s in slots)
        for arr in arrays:
            if arr.size and (arr.min() < 0 or arr.max() >= n):
                raise IndexError("slot contains an out-of-range link index")
            if len(set(arr.tolist())) != arr.size:
                raise ValueError("slot contains duplicate links")
        return cls(slots=arrays, n=int(n))

    @property
    def length(self) -> int:
        """Number of slots (the latency objective)."""
        return len(self.slots)

    def __len__(self) -> int:
        return self.length

    @property
    def covered(self) -> np.ndarray:
        """Mask of links appearing in at least one slot."""
        mask = np.zeros(self.n, dtype=bool)
        for slot in self.slots:
            mask[slot] = True
        return mask

    def covers_all(self) -> bool:
        """Whether every link is scheduled at least once."""
        return bool(self.covered.all())

    def _flattened(self) -> "tuple[np.ndarray, np.ndarray]":
        """``(links, slot_ids)`` concatenation of all slots, cached.

        One vectorized pass replaces per-slot Python membership tests;
        safe to cache because the dataclass is frozen.
        """
        cached = self.meta.get("_flat")
        if cached is None:
            if self.slots:
                links = np.concatenate(self.slots)
                slot_ids = np.repeat(
                    np.arange(len(self.slots), dtype=np.intp),
                    [s.size for s in self.slots],
                )
            else:
                links = np.empty(0, dtype=np.intp)
                slot_ids = np.empty(0, dtype=np.intp)
            cached = (links, slot_ids)
            self.meta["_flat"] = cached
        return cached

    def slot_of(self, link: int) -> "int | None":
        """First slot index containing ``link`` (``None`` if never)."""
        links, slot_ids = self._flattened()
        hits = slot_ids[links == link]
        return int(hits.min()) if hits.size else None

    def first_slots(self, links=None) -> np.ndarray:
        """First slot index per link, ``-1`` for never-scheduled links.

        Vectorized over all requested ``links`` (default: every link) —
        one ``np.minimum.at`` scatter instead of per-link scans.
        """
        flat, slot_ids = self._flattened()
        first = np.full(self.n, self.length, dtype=np.intp)
        np.minimum.at(first, flat, slot_ids)
        first[first == self.length] = -1
        if links is None:
            return first
        return first[np.asarray(links, dtype=np.intp)]


def validate_schedule(
    instance: SINRInstance, schedule: Schedule, beta: float, *, require_all: bool = True
) -> bool:
    """Check non-fading validity: every scheduled link clears ``β`` in its
    slot, and (optionally) every link is served at least once.

    A link scheduled in several slots must succeed in at least one of
    them.  Returns ``True``/``False`` rather than raising, so callers can
    use this as a predicate in tests and repair loops.
    """
    check_positive(beta, "beta")
    if schedule.n != instance.n:
        raise ValueError("schedule and instance cover different link counts")
    n = instance.n
    served = np.zeros(n, dtype=bool)
    # One batched (chunk, n) @ (n, n) SINR product instead of a Python
    # loop over slots; chunked to bound the pattern matrix's memory.
    chunk = 4096
    slots = schedule.slots
    for start in range(0, len(slots), chunk):
        block = slots[start : start + chunk]
        patterns = np.zeros((len(block), n), dtype=bool)
        for t, slot in enumerate(block):
            patterns[t, slot] = True
        sinr = instance.sinr_batch(patterns)
        served |= ((sinr >= beta) & patterns).any(axis=0)
    if require_all:
        return bool(served.all())
    scheduled = schedule.covered
    return bool(served[scheduled].all())


def replay_schedule(
    channel, schedule: Schedule, rng=None, *, chunk: int = 4096
) -> "tuple[np.ndarray, np.ndarray]":
    """Replay a fixed schedule under a channel, batched slot-wise.

    Evaluates every slot of ``schedule`` through the channel's
    :meth:`~repro.channel.base.Channel.realize_batch` kernel — one
    vectorized ``(chunk, n)`` evaluation per memory-bounded chunk instead
    of a per-slot Python loop — and reports which links were served and
    when.  Stateful channels (block fading) advance their clock by one
    slot per schedule slot, exactly as a slot-by-slot replay would.

    Returns
    -------
    ``(served, served_at)`` — boolean service mask and the per-link index
    of the first successful slot (``-1`` for never-served links).
    """
    if schedule.n != channel.n:
        raise ValueError("schedule and channel cover different link counts")
    n = channel.n
    gen = as_generator(rng)
    served_at = np.full(n, -1, dtype=np.int64)
    slots = schedule.slots
    for start in range(0, len(slots), chunk):
        block = slots[start : start + chunk]
        patterns = np.zeros((len(block), n), dtype=bool)
        for t, slot in enumerate(block):
            patterns[t, slot] = True
        hits = channel.realize_batch(patterns, gen) & patterns
        fresh = hits.any(axis=0) & (served_at < 0)
        if fresh.any():
            served_at[fresh] = start + hits[:, fresh].argmax(axis=0)
    return served_at >= 0, served_at
