"""Schedules: ordered slot assignments of links.

A schedule is a sequence of slots, each slot a set of links transmitting
simultaneously.  In the non-fading model a schedule *serves* a link when
the link clears ``β`` in its slot deterministically; under Rayleigh
fading service is stochastic and latency is a random variable — the
schedulers in this package then report realised latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.sinr import SINRInstance
from repro.utils.validation import check_positive

__all__ = ["Schedule", "validate_schedule"]


@dataclass(frozen=True)
class Schedule:
    """An ordered list of transmission slots.

    Attributes
    ----------
    slots:
        Tuple of integer index arrays; slot ``t`` lists the links
        transmitting in slot ``t``.
    n:
        Number of links in the underlying instance.
    """

    slots: tuple[np.ndarray, ...]
    n: int
    meta: dict = field(default_factory=dict, compare=False)

    @classmethod
    def from_lists(cls, slots: Iterable[Sequence[int]], n: int) -> "Schedule":
        arrays = tuple(np.asarray(sorted(s), dtype=np.intp) for s in slots)
        for arr in arrays:
            if arr.size and (arr.min() < 0 or arr.max() >= n):
                raise IndexError("slot contains an out-of-range link index")
            if len(set(arr.tolist())) != arr.size:
                raise ValueError("slot contains duplicate links")
        return cls(slots=arrays, n=int(n))

    @property
    def length(self) -> int:
        """Number of slots (the latency objective)."""
        return len(self.slots)

    def __len__(self) -> int:
        return self.length

    @property
    def covered(self) -> np.ndarray:
        """Mask of links appearing in at least one slot."""
        mask = np.zeros(self.n, dtype=bool)
        for slot in self.slots:
            mask[slot] = True
        return mask

    def covers_all(self) -> bool:
        """Whether every link is scheduled at least once."""
        return bool(self.covered.all())

    def slot_of(self, link: int) -> "int | None":
        """First slot index containing ``link`` (``None`` if never)."""
        for t, slot in enumerate(self.slots):
            if link in slot:
                return t
        return None


def validate_schedule(
    instance: SINRInstance, schedule: Schedule, beta: float, *, require_all: bool = True
) -> bool:
    """Check non-fading validity: every scheduled link clears ``β`` in its
    slot, and (optionally) every link is served at least once.

    A link scheduled in several slots must succeed in at least one of
    them.  Returns ``True``/``False`` rather than raising, so callers can
    use this as a predicate in tests and repair loops.
    """
    check_positive(beta, "beta")
    if schedule.n != instance.n:
        raise ValueError("schedule and instance cover different link counts")
    served = np.zeros(instance.n, dtype=bool)
    for slot in schedule.slots:
        if slot.size == 0:
            continue
        served |= instance.successes(slot, beta)
    if require_all:
        return bool(served.all())
    scheduled = schedule.covered
    return bool(served[scheduled].all())
