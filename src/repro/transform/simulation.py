"""Theorem 2 / Algorithm 1 — simulating the Rayleigh optimum in the
non-fading model with ``O(log* n)`` slots.

Given transmission probabilities ``q_1..q_n`` (e.g. an optimal Rayleigh
strategy), Algorithm 1 replaces the single stochastic Rayleigh slot by a
staged sequence of non-fading slots:

    for each stage ``k`` with ``b_k < n``      (``b_0 = 1/4``,
                                                ``b_{k+1} = exp(b_k/2)``)
        repeat 19 times:
            every sender transmits independently w.p. ``q_i / (4 b_k)``

Lemma 3 then shows that for every link and every threshold
``β ≤ S̄(i,i)/(2ν)``, the probability the link succeeds in *some*
simulation slot is at least its single-slot Rayleigh success probability
``Q_i(q, β)``.  Since the number of stages is ``O(log* n)``, the Rayleigh
optimum exceeds the non-fading optimum by at most that factor.

:func:`simulation_schedule` builds the stage plan;
:func:`simulate_rayleigh_optimum` executes it on the non-fading engine
and reports the per-link any-slot success indicators and best achieved
SINRs, which the E6 bench compares against the exact Rayleigh
probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.spec import make_channel
from repro.core.sinr import SINRInstance
from repro.latency.slotloop import iter_slot_blocks, resolve_replay_block
from repro.utils.logstar import b_sequence
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive, check_probability_vector

__all__ = ["SimulationOutcome", "simulation_schedule", "simulate_rayleigh_optimum"]

#: Independent repetitions per stage (constant from the proof of Lemma 3).
PAPER_REPEATS_PER_STAGE = 19

#: Probability damping denominator (the ``4`` in ``q_i / (4 b_k)``).
PAPER_DAMPING = 4.0


def simulation_schedule(
    q,
    n: "int | None" = None,
    *,
    repeats: int = PAPER_REPEATS_PER_STAGE,
    damping: float = PAPER_DAMPING,
) -> list[tuple[float, np.ndarray, int]]:
    """The stage plan of Algorithm 1.

    Parameters
    ----------
    q:
        Rayleigh transmission probabilities (length ``n``).
    n:
        Number of links (defaults to ``len(q)``); the stage sequence stops
        once ``b_k >= n``.
    repeats:
        Independent repetitions per stage (paper constant 19).
    damping:
        Probability damping denominator (paper constant 4); exposed for
        the E12 ablation of Algorithm 1's constants.

    Returns
    -------
    list of ``(b_k, stage_probabilities, repeats)`` triples, where
    ``stage_probabilities = q / (damping · b_k)`` clipped into ``[0, 1]``.
    """
    qv = check_probability_vector(q, name="q")
    count = qv.shape[0] if n is None else int(n)
    if count <= 0:
        raise ValueError(f"n must be positive, got {count}")
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    if damping <= 0:
        raise ValueError(f"damping must be positive, got {damping}")
    plan: list[tuple[float, np.ndarray, int]] = []
    for b_k in b_sequence(count):
        stage_q = np.clip(qv / (damping * b_k), 0.0, 1.0)
        plan.append((b_k, stage_q, repeats))
    return plan


@dataclass(frozen=True)
class SimulationOutcome:
    """Result of executing the Algorithm-1 schedule once.

    Attributes
    ----------
    success:
        Per-link indicator of clearing ``β`` in at least one slot.
    best_sinr:
        Per-link maximum SINR over all slots (``max_t γ_i^t``; 0 if the
        link never transmitted, and identically 0 under channels that do
        not expose sampled SINRs, e.g. the Bernoulli Rayleigh path).
    num_slots:
        Total slots executed (``stages × repeats``).
    num_stages:
        Number of ``b_k`` stages (``Θ(log* n)``).
    per_slot_success_counts:
        Successful transmissions in each slot (diagnostics for E6).
    """

    success: np.ndarray
    best_sinr: np.ndarray
    num_slots: int
    num_stages: int
    per_slot_success_counts: np.ndarray


def simulate_rayleigh_optimum(
    instance: SINRInstance,
    q,
    beta: float,
    rng=None,
    *,
    repeats: int = PAPER_REPEATS_PER_STAGE,
    damping: float = PAPER_DAMPING,
    channel: "str | None" = None,
    slot_block: "int | None" = None,
) -> SimulationOutcome:
    """Execute Algorithm 1, by default on the non-fading engine.

    Each slot draws an independent transmit pattern with the stage's
    damped probabilities and evaluates SINRs; a link "succeeds" when it
    clears ``β`` in at least one slot (the coupling Lemma 3 analyses).

    All slots of a stage are evaluated as one batched SINR product.
    ``repeats`` and ``damping`` default to the paper's constants (19, 4)
    and exist for the E12 ablation.  ``channel`` (a spec string) replays
    the same staged schedule under another interference model — e.g.
    ``"nakagami:m=2"`` asks how Algorithm 1's coupling fares when the
    real channel is not the one Lemma 3 assumes; the default ``None``
    is the paper's deterministic engine.

    ``slot_block`` bounds the rows evaluated per vectorized pass (the
    engine's replay block, default floored at 512) — patterns are drawn
    element-sequentially, so any chunking yields identical outcomes.
    """
    check_positive(beta, "beta")
    qv = check_probability_vector(q, instance.n)
    gen = as_generator(rng)
    ch = None if channel is None else make_channel(channel, instance, beta)
    plan = simulation_schedule(qv, instance.n, repeats=repeats, damping=damping)
    n = instance.n
    success = np.zeros(n, dtype=bool)
    best_sinr = np.zeros(n, dtype=np.float64)
    slot_counts: list[int] = []
    block = resolve_replay_block(slot_block)
    for _b_k, stage_q, reps in plan:
        for lo, hi in iter_slot_blocks(reps, block):
            patterns = gen.random((hi - lo, n)) < stage_q
            sinr = instance.sinr_batch(patterns) if ch is None else ch.sinr_batch(patterns, gen)
            if sinr is not None:
                finite_best = np.where(np.isinf(sinr), np.finfo(np.float64).max, sinr)
                best_sinr = np.maximum(best_sinr, finite_best.max(axis=0))
                hits = sinr >= beta
            else:
                hits = ch.realize_batch(patterns, gen)
            success |= hits.any(axis=0)
            slot_counts.extend(hits.sum(axis=1).tolist())
    return SimulationOutcome(
        success=success,
        best_sinr=best_sinr,
        num_slots=len(slot_counts),
        num_stages=len(plan),
        per_slot_success_counts=np.asarray(slot_counts, dtype=np.int64),
    )
