"""Lemma 2 — black-box transfer of non-fading solutions to Rayleigh fading.

Take any solution of the non-fading capacity problem (a set ``S`` of
transmitting links, powers untouched) and replay it under Rayleigh
fading.  Lemma 2 guarantees

.. math::

    \\mathbf{E}\\Big[\\sum_i u_i(\\gamma_i^R)\\Big]
    \\;\\ge\\; \\frac{1}{e} \\sum_i u_i(\\gamma_i^{nf}),

because each link ``i ∈ S`` reaches its own non-fading SINR
``γ_i^nf`` under fading with probability
``Q_i(1_S, γ_i^nf) ≥ 1/e`` (Lemma 1's lower bound with exponent exactly
``β·(ν + interference)/S̄ii = 1`` at ``β = γ_i^nf``).

This module provides the exact Rayleigh value for binary utilities, the
Lemma-2 certified lower bound for arbitrary utilities, and a convenience
wrapper that runs a capacity algorithm and reports both sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.channel.rayleigh import RayleighChannel
from repro.channel.spec import make_channel
from repro.core.sinr import SINRInstance
from repro.fading.montecarlo import estimate_expected_utility
from repro.fading.success import success_probability
from repro.utility.base import UtilityProfile
from repro.utils.validation import check_positive

__all__ = [
    "rayleigh_expected_binary",
    "lemma2_lower_bound",
    "TransferReport",
    "transfer_capacity_algorithm",
]


def _subset_mask(instance: SINRInstance, subset) -> np.ndarray:
    idx = np.asarray(subset)
    if idx.dtype == np.bool_:
        if idx.shape != (instance.n,):
            raise ValueError("boolean subset mask has wrong length")
        return idx
    mask = np.zeros(instance.n, dtype=bool)
    mask[idx] = True
    return mask


def rayleigh_expected_binary(instance: SINRInstance, subset, beta: float) -> float:
    """Exact expected number of successes when replaying ``subset`` under
    Rayleigh fading (binary utilities at threshold ``β``).

    Pure Theorem 1 + linearity: ``Σ_{i∈S} Q_i(1_S, β)`` — no sampling.
    Equivalent to ``RayleighChannel(instance, beta).expected_successes``,
    which is how it is computed.
    """
    mask = _subset_mask(instance, subset)
    return RayleighChannel(instance, beta).expected_successes(mask)


def lemma2_lower_bound(
    instance: SINRInstance, subset, profile: UtilityProfile
) -> tuple[float, float]:
    """Both sides of Lemma 2 for an arbitrary utility profile.

    Returns ``(nonfading_value, certified_rayleigh_lower_bound)`` where the
    bound is ``Σ_{i∈S} u_i(γ_i^nf) · Q_i(1_S, γ_i^nf)`` — each link's
    non-fading utility discounted by the exact probability of reaching its
    non-fading SINR under fading.  The lemma guarantees
    ``bound ≥ nonfading_value / e`` (and the true Rayleigh expectation is
    at least ``bound``, since ``u_i`` is non-decreasing at ``γ_i^nf`` for
    valid profiles).
    """
    mask = _subset_mask(instance, subset)
    if not mask.any():
        return 0.0, 0.0
    sinr = instance.sinr(mask)
    utilities = np.where(mask, profile.evaluate(sinr), 0.0)
    nonfading_value = float(utilities.sum())
    # Q_i at per-link threshold γ_i^nf; silent/infinite-SINR links need care:
    # a link with γ^nf = inf (zero noise, no interferers) reaches any finite
    # SINR with probability... its Rayleigh SINR is +inf a.s. as well, so its
    # utility transfers fully.
    q = mask.astype(np.float64)
    finite = mask & np.isfinite(sinr) & (sinr > 0.0)
    probs = np.zeros(instance.n)
    if finite.any():
        beta_vec = np.where(finite, sinr, 1.0)  # placeholder on non-finite
        probs_all = success_probability(instance, q, beta_vec)
        probs[finite] = probs_all[finite]
    probs[mask & ~finite & np.isinf(sinr)] = 1.0
    bound = float((utilities * probs)[mask].sum())
    return nonfading_value, bound


@dataclass(frozen=True)
class TransferReport:
    """Measured two-model comparison of one algorithmic solution.

    Attributes
    ----------
    subset:
        The transmitting set produced by the non-fading algorithm.
    nonfading_value:
        ``Σ_{i∈S} u_i(γ_i^nf)`` — deterministic.
    rayleigh_value:
        Expected utility of replaying the set under the evaluation
        channel — Rayleigh unless ``transfer_capacity_algorithm`` was
        given another ``channel`` (exact where the channel admits a
        closed form, Monte-Carlo otherwise).
    certified_bound:
        The Lemma-2 certified lower bound on ``rayleigh_value``.
    ratio:
        ``rayleigh_value / nonfading_value`` (``nan`` when the non-fading
        value is 0).  Lemma 2 promises ``ratio ≥ 1/e`` up to estimation
        noise.
    """

    subset: np.ndarray
    nonfading_value: float
    rayleigh_value: float
    certified_bound: float

    @property
    def ratio(self) -> float:
        if self.nonfading_value == 0.0:
            return float("nan")
        return self.rayleigh_value / self.nonfading_value


def transfer_capacity_algorithm(
    instance: SINRInstance,
    profile: UtilityProfile,
    algorithm: Callable[[SINRInstance], np.ndarray],
    *,
    rng=None,
    num_samples: int = 2000,
    beta: "float | None" = None,
    channel: "str | None" = None,
) -> TransferReport:
    """Run a non-fading capacity algorithm and evaluate it in both models.

    Parameters
    ----------
    instance, profile:
        The instance and (valid) utility profile.
    algorithm:
        Callable producing the transmitting subset from the instance —
        e.g. ``lambda inst: greedy_capacity(inst, beta)``.
    rng, num_samples:
        Monte-Carlo settings where no closed form exists (exact paths
        ignore them).
    beta:
        Threshold for the exact binary path; inferred from
        ``profile.beta`` when present.
    channel:
        Channel spec string for the faded side of the comparison
        (default Rayleigh — the Lemma-2 setting).  With e.g.
        ``"nakagami:m=2"`` the report measures how the same non-fading
        solution replays under another family; the Lemma-2 certificate
        still refers to Rayleigh.  Threshold-type profiles use the
        channel's (exact or estimated) success probabilities; general
        profiles need a channel that exposes sampled SINRs
        (``sinr_batch``).

    Returns
    -------
    :class:`TransferReport`.
    """
    from repro.utility.binary import BinaryUtility
    from repro.utility.weighted import WeightedUtility

    subset = np.asarray(algorithm(instance), dtype=np.intp)
    nonfading_value, certified = lemma2_lower_bound(instance, subset, profile)
    threshold = beta if beta is not None else getattr(profile, "beta", None)
    # Threshold-type profiles admit the exact Theorem-1 evaluation;
    # anything else falls back to Monte Carlo.
    is_binary_like = threshold is not None and isinstance(
        profile, (BinaryUtility, WeightedUtility)
    )
    mask = _subset_mask(instance, subset)
    ch = (
        None
        if channel is None
        else make_channel(
            channel, instance, float(threshold) if threshold is not None else 1.0
        )
    )
    if is_binary_like:
        q = mask.astype(np.float64)
        if ch is None:
            probs = success_probability(instance, q, float(threshold))
        else:
            probs = ch.success_probability(q, rng)
        weights = getattr(profile, "weights", None)
        if weights is None:
            rayleigh_value = float(probs[mask].sum())
        else:
            rayleigh_value = float((probs * weights)[mask].sum())
    elif ch is None:
        rayleigh_value, _ = estimate_expected_utility(
            instance,
            profile.evaluate,
            mask.astype(np.float64),
            rng,
            num_samples=num_samples,
        )
    else:
        patterns = np.broadcast_to(mask, (num_samples, instance.n))
        sinr = ch.sinr_batch(np.ascontiguousarray(patterns), rng)
        if sinr is None:
            raise NotImplementedError(
                f"channel {ch.name!r} exposes no sampled SINRs; general "
                "utility profiles need sinr_batch support"
            )
        rayleigh_value = float(
            np.where(mask, profile.evaluate(sinr), 0.0).sum(axis=1).mean()
        )
    return TransferReport(
        subset=subset,
        nonfading_value=nonfading_value,
        rayleigh_value=rayleigh_value,
        certified_bound=certified,
    )
