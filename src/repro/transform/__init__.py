"""Reductions between the non-fading and Rayleigh-fading models.

The paper's central results, made executable:

* :mod:`~repro.transform.blackbox` — Lemma 2: replay any non-fading
  solution in the Rayleigh model (same senders, same powers) and keep at
  least a ``1/e`` fraction of its utility in expectation.
* :mod:`~repro.transform.aloha_transform` — the Section-4 transformation
  of ALOHA-style randomized protocols: run each randomized step 4 times
  so the per-step Rayleigh success probability dominates the non-fading
  one (for transmit probabilities ≤ 1/2).
* :mod:`~repro.transform.simulation` — Theorem 2 / Algorithm 1: simulate
  one Rayleigh slot with ``O(log* n)`` non-fading slots using the
  iterated-exponential stage sequence, showing the Rayleigh optimum is at
  most an ``O(log* n)`` factor ahead.
"""

from repro.transform.aloha_transform import (
    estimate_step_success_nonfading,
    transformed_step_success_probability,
    transformed_step_simulate,
)
from repro.transform.blackbox import (
    TransferReport,
    lemma2_lower_bound,
    rayleigh_expected_binary,
    transfer_capacity_algorithm,
)
from repro.transform.simulation import (
    SimulationOutcome,
    simulation_schedule,
    simulate_rayleigh_optimum,
)

__all__ = [
    "SimulationOutcome",
    "TransferReport",
    "estimate_step_success_nonfading",
    "lemma2_lower_bound",
    "rayleigh_expected_binary",
    "simulate_rayleigh_optimum",
    "simulation_schedule",
    "transfer_capacity_algorithm",
    "transformed_step_simulate",
    "transformed_step_success_probability",
]
