"""Section 4's transformation of ALOHA-style randomized protocols.

ALOHA-style latency protocols take repeated randomized steps: in each
step every still-active link transmits independently with a (small)
probability ``q_i ≤ 1/2``.  To run such a protocol under Rayleigh fading,
the paper executes each randomized step **4 times** independently.  If a
step reaches threshold ``β`` with probability ``p`` in the non-fading
model, Lemma 1 gives per-execution Rayleigh success ≥ ``p/e``, so the
probability at least one of 4 executions succeeds is

.. math::

    1 - (1 - p/e)^4 \\;\\ge\\; p \\qquad (p \\le 1/2),

i.e. the transformed protocol is *at least as fast per step* as the
non-fading original — every high-probability latency bound carries over
with a constant-factor slowdown of 4.

This module exposes the per-step quantities (exact where possible,
Monte-Carlo otherwise) used by the E10 check and by the latency
schedulers in :mod:`repro.latency.aloha`.
"""

from __future__ import annotations

import numpy as np

from repro.core.sinr import SINRInstance
from repro.fading.success import success_probability
from repro.latency.slotloop import iter_slot_blocks, resolve_replay_block
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive, check_probability_vector

__all__ = [
    "transformed_step_success_probability",
    "transformed_step_simulate",
    "estimate_step_success_nonfading",
]


def transformed_step_success_probability(
    instance: SINRInstance, q, beta: float, *, repeats: int = 4
) -> np.ndarray:
    """Exact per-link success probability of one transformed step.

    Each of the ``repeats`` executions redraws both the transmit pattern
    (Bernoulli ``q``) and the fading, so per-link successes across
    executions are i.i.d. with the Theorem-1 probability ``Q_i(q, β)``;
    the step succeeds for link ``i`` if any execution does:

    ``1 - (1 - Q_i)^repeats``.
    """
    check_positive(beta, "beta")
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    q_single = success_probability(instance, q, beta)
    return 1.0 - (1.0 - q_single) ** repeats


def transformed_step_simulate(
    instance: SINRInstance, q, beta: float, rng=None, *, repeats: int = 4
) -> np.ndarray:
    """Simulate one transformed step; returns the per-link success mask.

    Uses the Bernoulli fast path (success events are independent across
    links given the pattern, and patterns are redrawn per execution, so
    the unconditional per-execution success of link ``i`` is exactly
    ``Q_i`` independent of other links' outcomes *across* executions; the
    within-execution joint distribution is irrelevant for the any-of-k
    event per link because executions are independent).
    """
    gen = as_generator(rng)
    p = transformed_step_success_probability(instance, q, beta, repeats=repeats)
    return gen.random(instance.n) < p


def estimate_step_success_nonfading(
    instance: SINRInstance,
    q,
    beta: float,
    rng=None,
    *,
    num_samples: int = 2000,
    slot_block: "int | None" = None,
) -> np.ndarray:
    """Monte-Carlo estimate of the *non-fading* per-step success
    probability ``p_i = Pr_X[i ∈ X and γ_i^nf(X) ≥ β]`` under random
    pattern ``X ~ Bernoulli(q)``.

    Unlike the Rayleigh side there is no closed form (the probability is
    a sum over exponentially many patterns), so the E10 comparison
    estimates it by batched pattern sampling — one ``(B, n) @ (n, n)``
    product per batch.  ``slot_block`` bounds the rows per batch (the
    engine's replay block, default floored at 512); estimates are
    identical for any value because patterns draw element-sequentially.
    """
    check_positive(beta, "beta")
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    gen = as_generator(rng)
    qv = check_probability_vector(q, instance.n)
    counts = np.zeros(instance.n, dtype=np.int64)
    for lo, hi in iter_slot_blocks(num_samples, resolve_replay_block(slot_block)):
        patterns = gen.random((hi - lo, instance.n)) < qv
        sinr = instance.sinr_batch(patterns)
        counts += (sinr >= beta).sum(axis=0)
    return counts / num_samples
