"""A family of stochastic fading models beyond Rayleigh.

Section 8 of the paper hopes its techniques "can also be applied
accordingly to interference models capturing further realistic
properties".  This module makes that executable: a small fading-model
abstraction with the three classic generalisations, all normalised so
the *mean* received power equals the non-fading value ``S̄(j, i)``:

* :class:`RayleighFading` — power ``~ Exp(mean)`` (the paper's model;
  rich scattering, no line of sight).
* :class:`NakagamiFading` — power ``~ Gamma(m, mean/m)``.  ``m = 1`` *is*
  Rayleigh; ``m → ∞`` concentrates at the mean, i.e. the **non-fading
  model is the Nakagami limit** — the family interpolates between the
  paper's two worlds, which the E14 bench exploits.
* :class:`RicianFading` — power of a line-of-sight component plus
  scattered Gaussian field, ``K`` the LoS-to-scatter power ratio.
  ``K = 0`` is Rayleigh; ``K → ∞`` approaches non-fading.
* :class:`NoFading` — the deterministic model as a degenerate member.

Only Rayleigh has the closed-form Theorem-1 success probability; the
other families are evaluated by Monte Carlo
(:func:`simulate_slots_with_model`, and
:func:`expected_successes_with_model` for the replay experiments).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.sinr import SINRInstance, _as_active_bool
from repro.fading.rayleigh import _sinr_from_draws
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = [
    "FadingModel",
    "RayleighFading",
    "NakagamiFading",
    "RicianFading",
    "NoFading",
    "draw_unit_multipliers",
    "simulate_sinr_patterns_with_model",
    "simulate_slots_with_model",
    "sinr_from_unit_multipliers",
    "expected_successes_with_model",
]


class FadingModel(abc.ABC):
    """Distribution of instantaneous power gains around their means."""

    #: Whether :meth:`sample` consumes randomness element-sequentially —
    #: i.e. drawing ``size=a`` then ``size=b`` rows yields the same rows
    #: as one ``size=a+b`` draw.  True for the exponential/gamma/constant
    #: families (numpy fills those element by element); False for models
    #: that draw whole auxiliary arrays per call (Rician draws the full
    #: real field before the imaginary one).  The slot-loop engine uses
    #: this to keep per-slot draws grouping-invariant.
    elementwise_draws: bool = True

    @abc.abstractmethod
    def sample(
        self, means: np.ndarray, rng: np.random.Generator, size: "int | None" = None
    ) -> np.ndarray:
        """Draw instantaneous gains with the given means.

        ``means`` is any non-negative array; the result has shape
        ``means.shape`` (``size=None``) or ``(size, *means.shape)``.
        Zero means must yield zero draws.  ``E[draw] = mean`` exactly.
        """

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short display name."""

    def __repr__(self) -> str:
        return self.name


class RayleighFading(FadingModel):
    """Exponentially distributed power — the paper's model."""

    def sample(self, means, rng, size=None):
        shape = means.shape if size is None else (int(size), *means.shape)
        return rng.exponential(1.0, size=shape) * means

    @property
    def name(self) -> str:
        return "rayleigh"


class NakagamiFading(FadingModel):
    """Gamma-distributed power: ``Gamma(shape=m, scale=mean/m)``.

    ``m`` is the Nakagami shape parameter (``m >= 0.5`` physically);
    variance is ``mean² / m``, so larger ``m`` means milder fading.
    """

    def __init__(self, m: float):
        self.m = check_positive(m, "m")
        if self.m < 0.5:
            raise ValueError(f"Nakagami m must be >= 0.5, got {m}")

    def sample(self, means, rng, size=None):
        shape = means.shape if size is None else (int(size), *means.shape)
        return rng.gamma(self.m, 1.0 / self.m, size=shape) * means

    @property
    def name(self) -> str:
        return f"nakagami(m={self.m:g})"


class RicianFading(FadingModel):
    """Line-of-sight plus scattered field; ``K`` = LoS/scatter power ratio.

    The complex channel is ``h = sqrt(K/(K+1)) + CN(0, 1/(K+1))`` with
    ``E|h|² = 1``; the power gain is ``mean · |h|²``.  ``K = 0`` recovers
    Rayleigh exactly.
    """

    # sample() draws the whole real field, then the whole imaginary one,
    # so splitting a multi-slot draw changes which variates land where.
    elementwise_draws = False

    def __init__(self, k_factor: float):
        if not np.isfinite(k_factor) or k_factor < 0.0:
            raise ValueError(f"Rician K must be finite and >= 0, got {k_factor}")
        self.k_factor = float(k_factor)

    def sample(self, means, rng, size=None):
        shape = means.shape if size is None else (int(size), *means.shape)
        k = self.k_factor
        sigma = np.sqrt(1.0 / (2.0 * (k + 1.0)))
        los = np.sqrt(k / (k + 1.0))
        re = los + rng.normal(0.0, sigma, size=shape)
        im = rng.normal(0.0, sigma, size=shape)
        return (re * re + im * im) * means

    @property
    def name(self) -> str:
        return f"rician(K={self.k_factor:g})"


class NoFading(FadingModel):
    """Degenerate model: gains equal their means (the non-fading world)."""

    def sample(self, means, rng, size=None):
        if size is None:
            return means.copy()
        return np.broadcast_to(means, (int(size), *means.shape)).copy()

    @property
    def name(self) -> str:
        return "nonfading"


def draw_unit_multipliers(
    model: FadingModel, n: int, rng, num_slots: int
) -> np.ndarray:
    """``(num_slots, n)`` unit-mean fading multipliers, drawn so the
    result is identical under any grouping of slots into calls.

    Elementwise models draw the whole block in one ``sample`` call;
    models whose multi-slot draws are not grouping-invariant
    (``elementwise_draws = False``) draw one slot at a time — slower,
    but the positional RNG contract of the slot-loop engine holds for
    every fading family.
    """
    gen = as_generator(rng)
    unit = np.ones(n, dtype=np.float64)
    if num_slots <= 0:
        return np.zeros((0, n), dtype=np.float64)
    if model.elementwise_draws:
        return model.sample(unit, gen, size=num_slots)
    return np.concatenate(
        [model.sample(unit, gen, size=1) for _ in range(num_slots)], axis=0
    )


def sinr_from_unit_multipliers(
    instance: SINRInstance,
    patterns: np.ndarray,
    draws: np.ndarray,
    *,
    counterfactual: bool = False,
) -> np.ndarray:
    """Deterministic SINR evaluation of a pattern chunk against given
    unit-mean multipliers ``F_j`` per (slot, sender).

    The evaluation half of the common-random-numbers kernel: callers
    that cache draws (the slot-loop engine's field buffers) re-evaluate
    corrected patterns against the same multipliers through this
    function, and :func:`simulate_sinr_patterns_with_model` is its
    draw-then-evaluate composition.
    """
    chunk = np.asarray(patterns)
    t, n = chunk.shape
    gains_op = instance.gains_operator(keep_diagonal=True)
    own = instance.signal
    act = chunk.astype(np.float64)
    # includes j = i when i is active
    total = gains_op.matmul((act * draws).astype(gains_op.dtype, copy=False))
    signal = own * draws
    denom = total - act * signal + instance.noise
    where = np.ones_like(chunk) if counterfactual else chunk
    sinr = np.zeros((t, n), dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        np.divide(signal, denom, out=sinr, where=where & (denom > 0.0))
    sinr[where & (denom <= 0.0)] = np.inf
    return sinr


def simulate_sinr_patterns_with_model(
    instance: SINRInstance,
    patterns: np.ndarray,
    model: FadingModel,
    rng=None,
    *,
    counterfactual: bool = False,
) -> np.ndarray:
    """One fading SINR slot per transmit pattern, batched, for any model.

    The generic analogue of
    :func:`repro.fading.rayleigh.simulate_sinr_patterns`, with the same
    common-random-numbers scheme: each slot draws one unit-mean fading
    multiplier ``F_j`` per sender and sets ``S(j, i) = S̄(j, i) · F_j``.
    At a fixed receiver the own-signal multiplier never enters its own
    interference sum, so the per-(slot, link) marginal SINR law is
    exactly the model's; only the within-slot dependence across links
    changes, which leaves every per-link frequency estimator unbiased.

    With ``counterfactual=True`` the returned entry for *every* link
    ``i`` (active or not) is the SINR it would see *had it sent* while
    the pattern's other senders transmit — the quantity the capacity
    game's counterfactual rewards are built on.  Otherwise silent links
    read 0, as in the Rayleigh kernel.
    """
    pats = np.asarray(patterns)
    if pats.dtype != np.bool_:
        raise TypeError(f"patterns must be boolean, got dtype {pats.dtype}")
    if pats.ndim != 2 or pats.shape[1] != instance.n:
        raise ValueError(f"patterns must have shape (T, {instance.n}), got {pats.shape}")
    num_slots, n = pats.shape
    out = np.zeros((num_slots, n), dtype=np.float64)
    if num_slots == 0:
        return out
    gen = as_generator(rng)
    # Same CRN kernel as the Rayleigh fast path: the product includes the
    # own-signal term, so the operator keeps the exact diagonal in top-k
    # mode; the default config wraps `instance.gains` byte-identically.
    unit = np.ones(n, dtype=np.float64)
    block = max(1, 12_000_000 // max(1, n))
    done = 0
    while done < num_slots:
        t = min(block, num_slots - done)
        draws = model.sample(unit, gen, size=t)  # F_j per (slot, sender)
        out[done : done + t] = sinr_from_unit_multipliers(
            instance, pats[done : done + t], draws, counterfactual=counterfactual
        )
        done += t
    return out


def simulate_slots_with_model(
    instance: SINRInstance,
    active,
    beta: float,
    model: FadingModel,
    rng=None,
    *,
    num_slots: int = 1,
) -> np.ndarray:
    """Success masks over ``num_slots`` independent slots under ``model``.

    The generic analogue of
    :func:`repro.fading.rayleigh.simulate_slots` for arbitrary fading
    families (no Bernoulli fast path — Theorem 1 is Rayleigh-specific).
    """
    check_positive(beta, "beta")
    if num_slots <= 0:
        raise ValueError(f"num_slots must be positive, got {num_slots}")
    mask = _as_active_bool(active, instance.n)
    out = np.zeros((num_slots, instance.n), dtype=bool)
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return out
    gen = as_generator(rng)
    sub = instance.subinstance(idx)
    all_active = np.ones(idx.size, dtype=bool)
    # Chunk long runs so the (T, k, k) draw tensor stays ~100 MB.
    block = max(1, 12_000_000 // max(1, idx.size * idx.size))
    done = 0
    while done < num_slots:
        t = min(block, num_slots - done)
        draws = model.sample(sub.gains, gen, size=t)
        sinr = _sinr_from_draws(draws, all_active, instance.noise)
        out[done : done + t, idx] = sinr >= beta
        done += t
    return out


def expected_successes_with_model(
    instance: SINRInstance,
    subset,
    beta: float,
    model: FadingModel,
    rng=None,
    *,
    num_slots: int = 2000,
) -> float:
    """Monte-Carlo estimate of the expected number of successes when the
    links of ``subset`` transmit simultaneously under ``model``.

    The generic analogue of
    :func:`repro.transform.blackbox.rayleigh_expected_binary`; used by
    the E14 fading-family study.
    """
    hits = simulate_slots_with_model(
        instance, subset, beta, model, rng, num_slots=num_slots
    )
    return float(hits.sum(axis=1).mean())
