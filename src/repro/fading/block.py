"""Block fading — temporally correlated channel draws.

The paper assumes fading is independent across time slots (Section 2),
and the Section-4 ALOHA transformation leans on that assumption: the 4
repeated executions of a protocol step help precisely because each gets
a *fresh* channel.  Real channels decorrelate over a coherence time; in
the standard block-fading abstraction the gains stay constant for ``L``
consecutive slots and are redrawn independently between blocks.

:class:`BlockFadingChannel` simulates this regime for any
:class:`~repro.fading.models.FadingModel`.  ``L = 1`` recovers the
paper's i.i.d. assumption exactly; the E15 ablation measures how the
4-repeat transformation degrades as ``L`` grows (repeats inside one
coherence block see the same channel, so they stop helping).
"""

from __future__ import annotations

import numpy as np

from repro.core.sinr import SINRInstance, _as_active_bool
from repro.fading.models import FadingModel, RayleighFading
from repro.fading.rayleigh import _sinr_from_draws
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["BlockFadingChannel"]


class BlockFadingChannel:
    """Stateful channel: draws persist for ``block_length`` slots.

    Parameters
    ----------
    instance:
        Mean signals and noise.
    block_length:
        Coherence time ``L`` in slots; ``1`` = the paper's i.i.d. model.
    model:
        Fading family (default Rayleigh).
    rng:
        Seed or generator.

    Notes
    -----
    The channel is *global state*: consecutive calls to :meth:`step`
    advance time, and the draw matrix refreshes every ``L`` steps.  The
    transmit pattern may change within a block — only the channel is
    frozen, as in the standard block-fading abstraction.
    """

    def __init__(
        self,
        instance: SINRInstance,
        block_length: int,
        *,
        model: "FadingModel | None" = None,
        rng=None,
    ):
        if block_length <= 0:
            raise ValueError(f"block_length must be positive, got {block_length}")
        self.instance = instance
        self.block_length = int(block_length)
        self.model = model if model is not None else RayleighFading()
        self._rng = as_generator(rng)
        self._t = 0
        self._draws: "np.ndarray | None" = None

    @property
    def time(self) -> int:
        """Number of slots simulated so far."""
        return self._t

    def _current_draws(self) -> np.ndarray:
        if self._draws is None or self._t % self.block_length == 0:
            self._draws = self.model.sample(self.instance.gains, self._rng)
        return self._draws

    def step(self, active, beta: float) -> np.ndarray:
        """Advance one slot; return the success mask for this slot.

        The channel realisation is shared by all slots of the current
        coherence block; interference is evaluated against the slot's
        transmit pattern.
        """
        check_positive(beta, "beta")
        mask = _as_active_bool(active, self.instance.n)
        draws = self._current_draws()
        self._t += 1
        if not mask.any():
            return np.zeros(self.instance.n, dtype=bool)
        sinr = _sinr_from_draws(draws[None, :, :], mask, self.instance.noise)[0]
        return sinr >= beta

    def run(self, active, beta: float, num_slots: int) -> np.ndarray:
        """Simulate ``num_slots`` consecutive slots with a fixed pattern.

        Chunked by coherence block: within a block the channel (and here
        also the pattern) is frozen, so each block needs one draw and one
        SINR evaluation, broadcast over its slots.  Redraws happen exactly
        where the slot-by-slot :meth:`step` loop would redraw, from the
        same generator, so the output is bit-identical to stepping.

        Returns the ``(num_slots, n)`` success-mask array.
        """
        check_positive(beta, "beta")
        if num_slots <= 0:
            raise ValueError(f"num_slots must be positive, got {num_slots}")
        mask = _as_active_bool(active, self.instance.n)
        out = np.zeros((num_slots, self.instance.n), dtype=bool)
        done = 0
        while done < num_slots:
            draws = self._current_draws()
            left_in_block = self.block_length - (self._t % self.block_length)
            take = min(left_in_block, num_slots - done)
            self._t += take
            if mask.any():
                sinr = _sinr_from_draws(draws[None, :, :], mask, self.instance.noise)[0]
                out[done : done + take] = sinr >= beta
            done += take
        return out

    def transformed_step(self, q, beta: float, *, repeats: int = 4) -> np.ndarray:
        """One Section-4 transformed protocol step under this channel.

        Each of the ``repeats`` executions redraws the transmit pattern
        (protocol randomness is always fresh) but the channel refreshes
        only at block boundaries — the regime the E15 ablation studies.
        Returns the per-link any-execution success mask.
        """
        if repeats <= 0:
            raise ValueError(f"repeats must be positive, got {repeats}")
        qv = np.asarray(q, dtype=np.float64)
        success = np.zeros(self.instance.n, dtype=bool)
        for _ in range(repeats):
            pattern = self._rng.random(self.instance.n) < qv
            success |= self.step(pattern, beta)
        return success
