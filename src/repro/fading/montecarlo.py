"""Monte-Carlo estimators for the Rayleigh-fading model.

These estimators serve two roles: validating the closed forms (Theorem 1,
Lemma 1) against brute-force sampling, and evaluating quantities that have
no closed form — chiefly the expected *non-binary* utility
``E[Σ u_i(γ_i^R)]`` for Shannon-type utility functions.

Sampling is fully batched: each chunk draws the ``(T, n)`` transmit
patterns and the ``(T, n, n)`` exponential gain tensor at once and
evaluates every slot's SINR against its own pattern in a single
vectorized pass (:func:`repro.fading.rayleigh.simulate_sinr_patterns`).
Chunk sizes are bounded so memory stays constant regardless of
``num_samples``.

Backend routing: the matrix products inside each chunk go through the
array-backend shim transitively (the Rayleigh kernel pulls the
instance's cached gain operator), so ``--dtype float32`` and ``--topk``
apply here without any code in this module touching the backend.  Chunk
sizes deliberately do **not** scale with the compute dtype: each outer
chunk interleaves pattern draws with fading draws, so changing the
chunk boundary would reassign RNG variates and move the estimate by far
more than the dtype's documented tolerance.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.sinr import SINRInstance
from repro.fading.rayleigh import _BLOCK_ELEMENTS, simulate_sinr_patterns
from repro.fading.success import success_probability
from repro.obs import metrics as _metrics
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability_vector

__all__ = [
    "estimate_success_probability",
    "estimate_expected_utility",
    "expected_successes_exact",
]


def expected_successes_exact(instance: SINRInstance, q, beta) -> float:
    """Exact expected number of successful transmissions ``Σ_i Q_i(q, β)``.

    For binary utilities this *is* the expected capacity — no sampling
    needed thanks to Theorem 1 and linearity of expectation.
    """
    return float(success_probability(instance, q, beta).sum())


def _sample_chunk_size(n: int) -> int:
    """Patterns per vectorized chunk: the gain tensor of one chunk stays
    within the fading module's block budget."""
    return max(1, _BLOCK_ELEMENTS // max(1, n * n))


def estimate_success_probability(
    instance: SINRInstance,
    q,
    beta: float,
    rng=None,
    *,
    num_samples: int = 1000,
) -> np.ndarray:
    """Brute-force estimate of ``Q_i(q, β)`` by explicit simulation.

    Each sample draws a transmit pattern (independent Bernoulli ``q_j``
    per sender) and a fresh fading realisation, then counts threshold
    successes.  Used by the test suite and the E4 bench to validate
    Theorem 1; production code should call
    :func:`repro.fading.success.success_probability` instead.

    Returns the per-link success frequency, shape ``(n,)``.
    """
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    _metrics.add("mc.samples", num_samples)
    gen = as_generator(rng)
    qv = check_probability_vector(q, instance.n)
    counts = np.zeros(instance.n, dtype=np.int64)
    block = _sample_chunk_size(instance.n)
    done = 0
    while done < num_samples:
        t = min(block, num_samples - done)
        patterns = gen.random((t, instance.n)) < qv
        sinr = simulate_sinr_patterns(instance, patterns, gen)
        counts += ((sinr >= beta) & patterns).sum(axis=0)
        done += t
    return counts / num_samples


def estimate_expected_utility(
    instance: SINRInstance,
    utility: Callable[[np.ndarray], np.ndarray],
    q,
    rng=None,
    *,
    num_samples: int = 1000,
) -> tuple[float, np.ndarray]:
    """Estimate ``E[Σ_i u_i(γ_i^R)]`` under transmission probabilities ``q``.

    Parameters
    ----------
    instance:
        Mean signals and noise.
    utility:
        Vectorized map from an SINR array of shape ``(T, n)`` to utilities
        of the same shape (e.g.
        :meth:`repro.utility.UtilityProfile.evaluate`).  Silent links have
        SINR 0; the utility of a silent link is counted as 0 regardless of
        ``utility``'s value at 0, matching the convention that only
        transmission attempts generate utility.
    q:
        Per-link transmission probabilities.
    num_samples:
        Number of independent (pattern, fading) samples.

    Returns
    -------
    (total, per_link):
        Estimated expected total utility, and the per-link breakdown.
    """
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    _metrics.add("mc.samples", num_samples)
    gen = as_generator(rng)
    qv = check_probability_vector(q, instance.n)
    per_link = np.zeros(instance.n, dtype=np.float64)
    block = _sample_chunk_size(instance.n)
    done = 0
    while done < num_samples:
        t = min(block, num_samples - done)
        patterns = gen.random((t, instance.n)) < qv
        sinr = simulate_sinr_patterns(instance, patterns, gen)
        vals = np.asarray(utility(sinr))
        per_link += np.where(patterns, vals, 0.0).sum(axis=0)
        done += t
    per_link /= num_samples
    return float(per_link.sum()), per_link
