"""Slot-level simulation of the Rayleigh-fading channel.

Two equivalent simulation paths are provided:

* **Explicit sampling** (:func:`simulate_slot`, :func:`simulate_slots`,
  :func:`simulate_sinr`): draw the full matrix of exponential signal
  strengths ``S(j,i) ~ Exp(mean S̄(j,i))`` and threshold the resulting
  SINRs.  This is the physics-faithful path and the only one that yields
  actual SINR *values* (needed for Shannon-type utilities).

* **Bernoulli fast path** (:func:`simulate_slots_bernoulli`): given the
  transmit pattern, the success events of distinct receivers depend on
  disjoint columns of the independent draw matrix, so they are mutually
  independent with the exact per-link probabilities of Theorem 1.
  Sampling independent Bernoullis is therefore *distribution-identical*
  to explicit sampling, at a fraction of the cost.  (The equivalence is
  verified by a statistical test in ``tests/fading``.)

All functions draw from a caller-supplied generator; nothing uses global
random state.
"""

from __future__ import annotations

import numpy as np

from repro.core.sinr import SINRInstance
from repro.fading.success import success_probability_conditional
from repro.obs import metrics as _metrics
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = [
    "sample_fading_gains",
    "simulate_sinr",
    "simulate_sinr_patterns",
    "simulate_slot",
    "simulate_slots",
    "simulate_slots_bernoulli",
]

#: Cap on the elements of one vectorized sampling block; bigger requests are
#: chunked so memory stays bounded (~120 MB of float64 per block).
_BLOCK_ELEMENTS = 16_000_000


def sample_fading_gains(instance: SINRInstance, rng=None, size: "int | None" = None) -> np.ndarray:
    """Draw instantaneous signal strengths ``S(j,i) ~ Exp(mean = S̄(j,i))``.

    Parameters
    ----------
    instance:
        Mean signals; zero means yield identically-zero draws.
    rng:
        Seed or generator.
    size:
        ``None`` for one slot (shape ``(n, n)``) or a slot count ``T``
        (shape ``(T, n, n)``).

    Notes
    -----
    Draws are independent across ordered pairs and across slots, matching
    the model assumption in Section 2.
    """
    gen = as_generator(rng)
    shape = instance.gains.shape if size is None else (int(size), *instance.gains.shape)
    # Exponential with per-entry scale: scale · Exp(1).  A zero scale gives
    # a zero draw, which is the correct degenerate channel.
    return gen.exponential(1.0, size=shape) * instance.gains


def _sinr_from_draws(draws: np.ndarray, active: np.ndarray, noise: float) -> np.ndarray:
    """SINR per link from drawn gain matrices.

    ``draws`` is ``(..., n, n)`` with ``draws[..., j, i]`` the strength of
    sender ``j`` at receiver ``i``; ``active`` is a boolean mask, either a
    single ``(n,)`` pattern shared by every draw or pattern-varying with
    any shape broadcastable against the draws' leading axes (e.g.
    ``(T, n)`` masks for ``(T, n, n)`` draws).
    """
    act = np.asarray(active, dtype=bool)
    diag = np.diagonal(draws, axis1=-2, axis2=-1)  # own signals, (..., n)
    total = np.einsum("...ji,...j->...i", draws, act.astype(np.float64))
    denom = total - act * diag + noise
    out = np.zeros(denom.shape, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        np.divide(diag, denom, out=out, where=act & (denom > 0.0))
    out[np.broadcast_to(act, denom.shape) & (denom <= 0.0)] = np.inf
    return out


def _as_mask(active, n: int) -> np.ndarray:
    arr = np.asarray(active)
    if arr.dtype != np.bool_:
        mask = np.zeros(n, dtype=bool)
        mask[arr] = True
        return mask
    if arr.shape != (n,):
        raise ValueError(f"active mask must have shape ({n},), got {arr.shape}")
    return arr


def simulate_sinr(
    instance: SINRInstance, active, rng=None, *, num_slots: int = 1
) -> np.ndarray:
    """Sample the fading SINR ``γ_i^R`` of every link over ``num_slots`` slots.

    Returns shape ``(num_slots, n)``; silent links read 0.  Only the
    sub-matrix of active senders/receivers is drawn, so cost scales with
    the active set, and long runs are chunked to bound memory.
    """
    if num_slots <= 0:
        raise ValueError(f"num_slots must be positive, got {num_slots}")
    n = instance.n
    mask = _as_mask(active, n)
    idx = np.flatnonzero(mask)
    out = np.zeros((num_slots, n), dtype=np.float64)
    if idx.size == 0:
        return out
    gen = as_generator(rng)
    sub = instance.subinstance(idx)
    all_active = np.ones(idx.size, dtype=bool)
    block = max(1, _BLOCK_ELEMENTS // (idx.size * idx.size))
    done = 0
    while done < num_slots:
        t = min(block, num_slots - done)
        draws = sample_fading_gains(sub, gen, size=t)
        out[done : done + t, idx] = _sinr_from_draws(draws, all_active, instance.noise)
        done += t
    return out


def simulate_sinr_patterns(
    instance: SINRInstance, patterns: np.ndarray, rng=None
) -> np.ndarray:
    """Sample one fading SINR slot per transmit pattern, fully batched.

    ``patterns`` is a boolean ``(T, n)`` array — one independent transmit
    pattern per slot (unlike :func:`simulate_sinr`, which holds a single
    pattern fixed across slots).  This is the Monte-Carlo hot path: there
    is no per-pattern Python loop, and the whole batch reduces to one
    ``(T, n)`` exponential draw plus one ``(T, n) @ (n, n)`` product per
    memory-bounded chunk.

    Sampling scheme (common random numbers across receivers): each slot
    draws **one** ``Exp(1)`` variate ``E_j`` per sender and sets
    ``S(j, i) = S̄(j, i) · E_j`` for every receiver ``i``.  At any fixed
    receiver, its own signal uses ``E_i`` — which never appears in its own
    interference sum — and the interference terms use ``{E_j, j ≠ i}``,
    mutually independent of it.  The per-(slot, link) joint law of
    (signal, interference), and hence the marginal SINR distribution of
    every link, is therefore *exactly* the model's; what changes is only
    the within-slot dependence **across** links (they share sender
    draws).  Per-link success frequencies and expected utilities — the
    quantities every Monte-Carlo estimator built on this kernel returns —
    are unbiased with exactly the per-link variance of fully independent
    draws, by linearity of expectation.  Consumers that need the joint
    within-slot law across links should use :func:`simulate_sinr` or
    :func:`sample_fading_gains` instead.

    Returns shape ``(T, n)``; links silent in a pattern read 0 in its row.
    """
    pats = np.asarray(patterns)
    if pats.dtype != np.bool_:
        raise TypeError(f"patterns must be boolean, got dtype {pats.dtype}")
    if pats.ndim != 2 or pats.shape[1] != instance.n:
        raise ValueError(
            f"patterns must have shape (T, {instance.n}), got {pats.shape}"
        )
    num_slots, n = pats.shape
    out = np.zeros((num_slots, n), dtype=np.float64)
    if num_slots == 0:
        return out
    _metrics.add("mc.draw_slots", num_slots)
    gen = as_generator(rng)
    # keep_diagonal=True: the product below includes the own-signal term
    # (j = i) and subtracts it back out, so the top-k form must carry the
    # exact diagonal.  Under the default config this wraps `instance.gains`
    # itself and the product is byte-identical to `x @ gains`.
    gains_op = instance.gains_operator(keep_diagonal=True)
    own = instance.signal  # S̄(i,i), shape (n,)
    block = max(1, _BLOCK_ELEMENTS // max(1, n))
    done = 0
    while done < num_slots:
        t = min(block, num_slots - done)
        chunk = pats[done : done + t]
        act = chunk.astype(np.float64)
        draws = gen.standard_exponential((t, n))  # E_j per (slot, sender)
        # total[t, i] = Σ_j act_j · S̄(j, i) · E_j  — includes j = i.
        total = gains_op.matmul((act * draws).astype(gains_op.dtype, copy=False))
        signal = own * draws
        denom = total - act * signal + instance.noise
        sinr = np.zeros((t, n), dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            np.divide(signal, denom, out=sinr, where=chunk & (denom > 0.0))
        sinr[chunk & (denom <= 0.0)] = np.inf
        out[done : done + t] = sinr
        done += t
    return out


def simulate_slot(instance: SINRInstance, active, beta: float, rng=None) -> np.ndarray:
    """Simulate one Rayleigh slot by explicit sampling.

    Returns the boolean success mask: link ``i`` transmits (per ``active``)
    and its drawn SINR reaches ``β``.
    """
    check_positive(beta, "beta")
    return simulate_sinr(instance, active, rng, num_slots=1)[0] >= beta


def simulate_slots(
    instance: SINRInstance, active, beta: float, rng=None, *, num_slots: int = 1
) -> np.ndarray:
    """Explicitly-sampled success masks over many slots, shape ``(T, n)``.

    Fading is independent across slots (the model's assumption); the
    transmit pattern is held fixed.
    """
    check_positive(beta, "beta")
    return simulate_sinr(instance, active, rng, num_slots=num_slots) >= beta


def simulate_slots_bernoulli(
    instance: SINRInstance, active, beta, rng=None, *, num_slots: int = 1
) -> np.ndarray:
    """Distribution-identical fast path: sample per-link success as
    independent Bernoullis with the exact Theorem-1 probabilities.

    Valid because, conditioned on the transmit pattern, receiver ``i``'s
    success depends only on column ``i`` of the independent draw matrix —
    columns are disjoint, hence successes are mutually independent.

    Accepts scalar or per-link ``beta``.  Returns ``(num_slots, n)``.
    """
    if num_slots <= 0:
        raise ValueError(f"num_slots must be positive, got {num_slots}")
    n = instance.n
    mask = _as_mask(active, n)
    gen = as_generator(rng)
    q = mask.astype(np.float64)
    p = np.where(mask, success_probability_conditional(instance, q, beta), 0.0)
    return gen.random((num_slots, n)) < p
