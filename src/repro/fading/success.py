"""Theorem 1 — exact success probabilities under Rayleigh fading.

With each sender ``j`` transmitting independently with probability
``q_j``, the probability that receiver ``i`` decodes its signal at SINR at
least ``β`` is (Theorem 1, following Liu–Haenggi [18]):

.. math::

    Q_i(q, \\beta) = q_i \\, \\exp\\!\\Big(-\\frac{\\beta\\nu}{\\bar S(i,i)}\\Big)
        \\prod_{j \\ne i}
        \\Big( 1 - \\frac{\\beta q_j}{\\beta + \\bar S(i,i)/\\bar S(j,i)} \\Big).

The per-factor form we evaluate is the algebraically identical

.. math::

    1 - q_j \\frac{\\beta \\bar S(j,i)}{\\beta \\bar S(j,i) + \\bar S(i,i)},

which stays well-defined when ``S̄(j, i) = 0`` (the factor is then 1 —
a silent channel never hurts).

``β`` may be a per-link vector: Lemma 2 evaluates each link at its own
achieved non-fading SINR ``γ_i^nf``.
"""

from __future__ import annotations

import numpy as np

from repro import backend as _backend
from repro.core.sinr import SINRInstance
from repro.engine import chaos, guards
from repro.obs import metrics as _metrics
from repro.utils.validation import check_probability_vector

__all__ = [
    "Theorem1Kernel",
    "success_probability",
    "success_probability_conditional",
    "success_probability_conditional_batch",
]


# Interferers per receiver kept in the screening tables: enough that the
# retained log factors already drive the bound to e^{-large} on dense
# slots, small enough that a screen costs far less than an exact entry.
_SCREEN_TOPK = 16


def _beta_vector(beta, n: int) -> np.ndarray:
    arr = np.asarray(beta, dtype=np.float64)
    if arr.ndim == 0:
        arr = np.full(n, float(arr))
    if arr.shape != (n,):
        raise ValueError(f"beta must be scalar or length-{n}, got shape {arr.shape}")
    if np.any(arr <= 0.0) or not np.all(np.isfinite(arr)):
        raise ValueError("beta values must be positive and finite")
    return arr


class Theorem1Kernel:
    """Cached Theorem-1 tensors for one ``(instance, β)`` pair.

    Every Theorem-1 evaluation needs the same ``O(n²)`` derived tensors:
    the interference weights ``w[j, i] = β_i S̄(j,i) / (β_i S̄(j,i) + S̄(i,i))``
    (fractional-``q`` product form), their logs
    ``log_factors[j, i] = log(S̄(i,i)) − log(β_i S̄(j,i) + S̄(i,i))``
    (binary-pattern sum form), and the noise exponent ``β_i ν / S̄(i,i)``.
    :class:`~repro.core.sinr.SINRInstance` is immutable and ``β`` is fixed
    at construction, so these are built lazily once and never invalidated —
    a round-level consumer (the capacity game, the regret analysis) pays
    one matvec per call instead of rebuilding three ``O(n²)`` temporaries.

    Both evaluation paths are *bit-compatible* with the module-level
    functions: :meth:`conditional` reproduces
    :func:`success_probability_conditional` exactly, and
    :meth:`conditional_batch` reproduces
    :func:`success_probability_conditional_batch` exactly (those functions
    delegate here).
    """

    __slots__ = (
        "instance",
        "beta",
        "_signal",
        "_noise_exponent",
        "_noise_term",
        "_weights",
        "_log_factors",
        "_ops",
        "_screen_cache",
        "_hit_ema",
    )

    def __init__(self, instance: SINRInstance, beta):
        self.instance = instance
        self.beta = _beta_vector(beta, instance.n)
        self._signal = np.ascontiguousarray(instance.signal)
        self._noise_exponent = self.beta * instance.noise / self._signal
        self._noise_term = np.exp(-self._noise_exponent)
        self._weights: "np.ndarray | None" = None
        self._log_factors: "np.ndarray | None" = None
        self._ops: "dict[tuple, object]" = {}
        self._screen_cache: "tuple[np.ndarray, np.ndarray] | None" = None
        self._hit_ema = 0.5

    @property
    def n(self) -> int:
        return self.instance.n

    @property
    def noise_term(self) -> np.ndarray:
        """``exp(−β_i ν / S̄(i,i))`` — the Theorem-1 noise factor."""
        return self._noise_term

    @property
    def weights(self) -> np.ndarray:
        """``w[j, i] = t / (t + S̄(i,i))`` with ``t = β_i S̄(j,i)``; diag 0."""
        if self._weights is None:
            _metrics.add("theorem1.cache_misses")
            t = self.beta[None, :] * self.instance.gains
            w = t / (t + self._signal[None, :])
            np.fill_diagonal(w, 0.0)
            w.setflags(write=False)
            self._weights = w
        else:
            _metrics.add("theorem1.cache_hits")
        return self._weights

    @property
    def log_factors(self) -> np.ndarray:
        """``log(S̄(i,i)) − log(β_i S̄(j,i) + S̄(i,i))`` per (j, i); diag 0."""
        if self._log_factors is None:
            _metrics.add("theorem1.cache_misses")
            t = self.beta[None, :] * self.instance.gains
            lf = np.log(self._signal[None, :]) - np.log(t + self._signal[None, :])
            np.fill_diagonal(lf, 0.0)
            lf.setflags(write=False)
            self._log_factors = lf
        else:
            _metrics.add("theorem1.cache_hits")
        return self._log_factors

    def _operator(self, which: str):
        """Backend operator over a cached tensor, keyed by active config.

        ``which`` names the tensor: ``"log_factors"`` (binary/batch sum
        form) or ``"weights"`` (fractional product form).  Both have a
        zero diagonal, so the top-k form never needs the diagonal row.
        Under the default config the operator wraps the cached float64
        array itself, keeping the products byte-identical.
        """
        be = _backend.active()
        key = (be.config, which)
        op = self._ops.get(key)
        if op is None:
            matrix = self.log_factors if which == "log_factors" else self.weights
            op = be.gain_operator(matrix, keep_diagonal=False)
            self._ops[key] = op
        return op

    def _guard(self, out: np.ndarray, site: str) -> np.ndarray:
        """Chaos hook + numerical guard on a probability output.

        The chaos call is a no-op unless a fault plan targets the site;
        the guard is a no-op at strictness ``"off"``.  Violations report
        the offending link indices and the kernel's ``(β, ν)`` so a
        poisoned configuration is diagnosable instead of silently
        contaminating downstream aggregates.
        """
        out = chaos.corrupt(site, out)
        return guards.check_probabilities(
            out,
            site,
            beta_min=float(self.beta.min()),
            beta_max=float(self.beta.max()),
            noise=float(self.instance.noise),
        )

    def conditional(self, q: np.ndarray) -> np.ndarray:
        """Conditional success probabilities for fractional ``q`` (the
        product form); ``q`` must be a validated ``(n,)`` float vector.

        In top-k mode the product runs over the stored interferers only
        (every dropped factor is treated as exactly 1 — a weak sender
        never hurts), which is the product-form analogue of the sparse
        matmul in the binary paths.
        """
        _metrics.add("theorem1.conditional_calls")
        op = self._operator("weights")
        qv = np.asarray(q, dtype=op.dtype)
        if op.is_sparse:
            _metrics.add("backend.sparse_matmuls")
            prod = np.prod(1.0 - qv[op.indices] * op.values, axis=0)
        else:
            factors = 1.0 - qv[:, None] * op.matrix
            prod = np.prod(factors, axis=0)
        out = self._noise_term * prod
        if op.dtype != np.float64:
            out = np.minimum(out, 1.0)
        return self._guard(out, "theorem1.conditional")

    def _binary_log_p(self, pats: np.ndarray) -> np.ndarray:
        """``patterns @ log_factors − βν/S̄ii`` through the backend shim.

        The exact sum is non-positive (every log factor is ≤ 0), but
        float32 round-off can push it a hair above 0, so non-float64
        modes clip at 0 to keep ``exp`` inside the probability guard's
        tolerance.  The default path takes no clip and stays
        byte-identical.
        """
        op = self._operator("log_factors")
        log_p = op.matmul(pats.astype(op.dtype)) - self._noise_exponent
        if op.dtype != np.float64:
            log_p = np.minimum(log_p, 0.0)
        return log_p

    def conditional_binary(self, mask: np.ndarray) -> np.ndarray:
        """Conditional success probabilities for one 0/1 pattern — a single
        ``(n,) @ (n, n)`` product against the cached log factors."""
        _metrics.add("theorem1.binary_calls")
        return self._guard(
            np.exp(self._binary_log_p(np.asarray(mask))),
            "theorem1.conditional_binary",
        )

    def conditional_batch(self, patterns: np.ndarray) -> np.ndarray:
        """Conditional success probabilities for a ``(B, n)`` batch of 0/1
        patterns — one ``(B, n) @ (n, n)`` product."""
        pats = np.asarray(patterns)
        if pats.ndim != 2 or pats.shape[1] != self.n:
            raise ValueError(f"patterns must be (B, {self.n}), got {pats.shape}")
        _metrics.add("theorem1.batch_calls")
        _metrics.add("theorem1.batch_patterns", pats.shape[0])
        return self._guard(
            np.exp(self._binary_log_p(pats)), "theorem1.conditional_batch"
        )

    @property
    def supports_entry_gather(self) -> bool:
        """Whether the exact entry-level paths (:meth:`conditional_at`,
        :meth:`screen_bound`) apply under the active backend config —
        they read the raw float64 ``log_factors``, so top-k / reduced
        dtype configs must route through :meth:`conditional_batch`."""
        op = self._operator("log_factors")
        return not op.is_sparse and op.dtype == np.float64

    @property
    def screen_cutoff(self) -> int:
        """Active-count above which :meth:`screen_bound` screening is
        cheaper than evaluating every entry exactly.

        A screen costs ``K`` lookups against an exact cost of ``a``, and
        pays only when the bound rejects most entries — i.e. when entry
        success probabilities run low.  The observed hit rate of recent
        exact evaluations (:meth:`note_hit_rate`) picks between an
        aggressive cutoff near ``K`` (low-success contention, where the
        bound rejects nearly everything) and a conservative ``3K`` (a
        well-tuned protocol whose entries succeed often, making screens
        pure overhead).  Cutoff choice only moves work between the
        screened and exact paths — outcomes are identical either way —
        so this adaptivity cannot affect results or their block-size
        invariance."""
        return _SCREEN_TOPK if self._hit_ema < 0.25 else 3 * _SCREEN_TOPK

    def note_hit_rate(self, evaluated: int, hits: int) -> None:
        """Feed back the success rate of exactly evaluated entries; an
        exponential moving average steers :attr:`screen_cutoff`."""
        if evaluated > 0:
            self._hit_ema = 0.8 * self._hit_ema + 0.2 * (hits / evaluated)

    def _screen_tables(self) -> "tuple[np.ndarray, np.ndarray]":
        """Per-receiver top-``K`` strongest interferers (most negative
        log factors), as ``(K, n)`` index and value tables."""
        tables = self._screen_cache
        if tables is None:
            k = min(_SCREEN_TOPK, self.n)
            # Partition along contiguous rows of the transpose — roughly
            # twice as fast as a strided axis-0 partition at this size.
            lt = np.ascontiguousarray(self.log_factors.T)
            part = np.argpartition(lt, k - 1, axis=1)[:, :k]
            vals = np.take_along_axis(lt, part, axis=1)
            tables = (part.T, vals.T)
            self._screen_cache = tables
        return tables

    def screen_bound(
        self, patterns: np.ndarray, rows: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """Cheap upper bound on the conditional success probability at
        the given transmitting entries.

        Every log factor is ≤ 0, so dropping all interferers except the
        receiver's ``K`` strongest *transmitting* ones can only raise the
        probability: ``p(r, i) ≤ exp(Σ_{j ∈ topK(i) ∩ A_r} L[j, i] −
        βν/S̄ii)``.  The bound costs ``K`` table lookups per entry —
        independent of the active count — which makes it the fast path
        for dense slots (a protocol sweeping ``q`` toward 1/2), where
        hundreds of interferers drive ``p`` to ``e^{-100}``-scale and
        almost every entry can be rejected against its uniform draw
        without the exact ``a²`` evaluation.  A ``1e-9`` log-space
        inflation swallows the (≤ K + 1)-term float rounding, so
        ``u ≥ bound`` implies ``u ≥ p`` for the *exactly computed* ``p``
        too: screening can never flip an outcome, only skip work.
        """
        idx, vals = self._screen_tables()
        present = patterns[rows[None, :], idx[:, cols]]
        s = np.einsum("ke,ke->e", vals[:, cols], present)
        _metrics.add("theorem1.screened_entries", rows.size)
        return np.exp(s - self._noise_exponent[cols] + 1e-9)

    def conditional_at(
        self,
        patterns: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        *,
        actives: "tuple[np.ndarray, np.ndarray, np.ndarray] | None" = None,
    ) -> np.ndarray:
        """Exact conditional success probabilities at selected
        transmitting entries of a 0/1 batch.

        For binary patterns, silent links contribute exactly 0 to the
        log-probability sum, so entry ``(r, i)`` needs only
        ``Σ_{j ∈ A_r} log_factors[j, i]`` over the row's own active set
        ``A_r`` — a ragged gather of ``a_r`` elements per requested
        entry, independent of ``n`` and of which other rows or entries
        share the call.  Each entry sums its row's active set in
        ascending index order (via ``add.reduceat``), so values are
        identical however slots are grouped: the determinism clause
        behind the slot-loop engine's block-size-invariance guarantee.

        ``actives`` optionally passes the precomputed
        ``(np.nonzero(patterns) + (row counts,))`` triple when the
        caller already holds it, sparing a second scan of the batch.
        """
        pats = np.asarray(patterns)
        if pats.ndim != 2 or pats.shape[1] != self.n:
            raise ValueError(f"patterns must be (B, {self.n}), got {pats.shape}")
        if rows.size == 0:
            return np.empty(0, dtype=np.float64)
        _metrics.add("theorem1.entry_calls")
        if actives is not None:
            frows, fcols, fcounts = actives
        else:
            frows, fcols = np.nonzero(pats)
            fcounts = np.bincount(frows, minlength=pats.shape[0])
        frow_start = np.zeros(fcounts.size, dtype=np.intp)
        np.cumsum(fcounts[:-1], out=frow_start[1:])
        # Pair space: requested entry e owns a block of a_e = |A_row(e)|
        # consecutive positions, one per interferer j ∈ A_row(e)
        # (ascending).
        a_e = fcounts[rows]
        starts = np.zeros(rows.size, dtype=np.intp)
        np.cumsum(a_e[:-1], out=starts[1:])
        total = int(starts[-1] + a_e[-1])
        intra = np.arange(total, dtype=np.intp) - np.repeat(starts, a_e)
        j_flat = fcols[np.repeat(frow_start[rows], a_e) + intra]
        i_flat = np.repeat(cols, a_e)
        vals = self.log_factors[j_flat, i_flat]
        _metrics.add("theorem1.entry_gathered", vals.size)
        sums = np.add.reduceat(vals, starts)
        p = np.exp(sums - self._noise_exponent[cols])
        return self._guard(p, "theorem1.conditional_at")


def success_probability_conditional(
    instance: SINRInstance, q, beta
) -> np.ndarray:
    """``Q_i / q_i`` — success probability of link ``i`` *given* it
    transmits, while every other sender ``j`` transmits w.p. ``q_j``.

    This is the quantity the regret-learning rewards of Section 6 are
    built on (a link that transmits succeeds with exactly this
    probability, independently across links).

    Parameters
    ----------
    instance:
        Mean signals ``S̄`` and noise ``ν``.
    q:
        Transmission probabilities, shape ``(n,)``.  ``q_i`` itself is
        ignored for link ``i`` (the conditional does not depend on it).
    beta:
        SINR threshold, scalar or per-link vector.

    Returns
    -------
    ndarray ``(n,)`` of probabilities in ``[0, 1]``.
    """
    qv = check_probability_vector(q, instance.n)
    return Theorem1Kernel(instance, beta).conditional(qv)


def success_probability_conditional_batch(
    instance: SINRInstance, patterns: np.ndarray, beta
) -> np.ndarray:
    """Conditional success probabilities for a batch of *binary* transmit
    patterns, shape ``(B, n)``.

    For 0/1 transmit indicators, Theorem 1's product becomes a sum of
    per-interferer log factors, so a whole batch reduces to one
    ``(B, n) @ (n, n)`` product:

    ``log P_i = Σ_{j active, j≠i} log(S̄ii / (S̄ii + β S̄ji)) − βν/S̄ii``.

    The entry for link ``i`` is its success probability *given it
    transmits* while the pattern's other senders transmit; whether the
    pattern includes ``i`` itself is irrelevant (diagonal factor is 0).
    """
    return Theorem1Kernel(instance, beta).conditional_batch(patterns)


def success_probability(instance: SINRInstance, q, beta) -> np.ndarray:
    """Theorem 1: exact probability ``Q_i(q_1..q_n, β)`` for every link.

    Returns ``q_i`` times the conditional success probability — i.e. the
    unconditional probability that link ``i`` transmits *and* reaches SINR
    ``β_i`` under Rayleigh fading.
    """
    qv = check_probability_vector(q, instance.n)
    return qv * success_probability_conditional(instance, qv, beta)
