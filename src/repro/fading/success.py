"""Theorem 1 — exact success probabilities under Rayleigh fading.

With each sender ``j`` transmitting independently with probability
``q_j``, the probability that receiver ``i`` decodes its signal at SINR at
least ``β`` is (Theorem 1, following Liu–Haenggi [18]):

.. math::

    Q_i(q, \\beta) = q_i \\, \\exp\\!\\Big(-\\frac{\\beta\\nu}{\\bar S(i,i)}\\Big)
        \\prod_{j \\ne i}
        \\Big( 1 - \\frac{\\beta q_j}{\\beta + \\bar S(i,i)/\\bar S(j,i)} \\Big).

The per-factor form we evaluate is the algebraically identical

.. math::

    1 - q_j \\frac{\\beta \\bar S(j,i)}{\\beta \\bar S(j,i) + \\bar S(i,i)},

which stays well-defined when ``S̄(j, i) = 0`` (the factor is then 1 —
a silent channel never hurts).

``β`` may be a per-link vector: Lemma 2 evaluates each link at its own
achieved non-fading SINR ``γ_i^nf``.
"""

from __future__ import annotations

import numpy as np

from repro.core.sinr import SINRInstance
from repro.utils.validation import check_probability_vector

__all__ = [
    "success_probability",
    "success_probability_conditional",
    "success_probability_conditional_batch",
]


def _beta_vector(beta, n: int) -> np.ndarray:
    arr = np.asarray(beta, dtype=np.float64)
    if arr.ndim == 0:
        arr = np.full(n, float(arr))
    if arr.shape != (n,):
        raise ValueError(f"beta must be scalar or length-{n}, got shape {arr.shape}")
    if np.any(arr <= 0.0) or not np.all(np.isfinite(arr)):
        raise ValueError("beta values must be positive and finite")
    return arr


def success_probability_conditional(
    instance: SINRInstance, q, beta
) -> np.ndarray:
    """``Q_i / q_i`` — success probability of link ``i`` *given* it
    transmits, while every other sender ``j`` transmits w.p. ``q_j``.

    This is the quantity the regret-learning rewards of Section 6 are
    built on (a link that transmits succeeds with exactly this
    probability, independently across links).

    Parameters
    ----------
    instance:
        Mean signals ``S̄`` and noise ``ν``.
    q:
        Transmission probabilities, shape ``(n,)``.  ``q_i`` itself is
        ignored for link ``i`` (the conditional does not depend on it).
    beta:
        SINR threshold, scalar or per-link vector.

    Returns
    -------
    ndarray ``(n,)`` of probabilities in ``[0, 1]``.
    """
    n = instance.n
    qv = check_probability_vector(q, n)
    bv = _beta_vector(beta, n)
    signal = instance.signal  # S̄(i,i)
    # t[j, i] = β_i · S̄(j, i)
    t = bv[None, :] * instance.gains
    factors = 1.0 - qv[:, None] * (t / (t + signal[None, :]))
    np.fill_diagonal(factors, 1.0)
    # Product over senders j for each receiver i; all factors lie in (0, 1].
    prod = np.prod(factors, axis=0)
    noise_term = np.exp(-bv * instance.noise / signal)
    return noise_term * prod


def success_probability_conditional_batch(
    instance: SINRInstance, patterns: np.ndarray, beta
) -> np.ndarray:
    """Conditional success probabilities for a batch of *binary* transmit
    patterns, shape ``(B, n)``.

    For 0/1 transmit indicators, Theorem 1's product becomes a sum of
    per-interferer log factors, so a whole batch reduces to one
    ``(B, n) @ (n, n)`` product:

    ``log P_i = Σ_{j active, j≠i} log(S̄ii / (S̄ii + β S̄ji)) − βν/S̄ii``.

    The entry for link ``i`` is its success probability *given it
    transmits* while the pattern's other senders transmit; whether the
    pattern includes ``i`` itself is irrelevant (diagonal factor is 0).
    """
    n = instance.n
    pats = np.asarray(patterns)
    if pats.ndim != 2 or pats.shape[1] != n:
        raise ValueError(f"patterns must be (B, {n}), got {pats.shape}")
    bv = _beta_vector(beta, n)
    signal = instance.signal
    t = bv[None, :] * instance.gains
    log_factors = np.log(signal[None, :]) - np.log(t + signal[None, :])
    np.fill_diagonal(log_factors, 0.0)
    log_p = pats.astype(np.float64) @ log_factors - bv * instance.noise / signal
    return np.exp(log_p)


def success_probability(instance: SINRInstance, q, beta) -> np.ndarray:
    """Theorem 1: exact probability ``Q_i(q_1..q_n, β)`` for every link.

    Returns ``q_i`` times the conditional success probability — i.e. the
    unconditional probability that link ``i`` transmits *and* reaches SINR
    ``β_i`` under Rayleigh fading.
    """
    qv = check_probability_vector(q, instance.n)
    return qv * success_probability_conditional(instance, qv, beta)
