"""Lemma 1 — exponential bounds on the Rayleigh success probability.

The closed form of Theorem 1 is exact but awkward to compare against the
non-fading model; Lemma 1 sandwiches it between two exponentials:

.. math::

    q_i \\exp\\!\\Big(-\\frac{\\beta}{\\bar S(i,i)}
        \\big(\\nu + \\sum_{j\\ne i} \\bar S(j,i)\\, q_j\\big)\\Big)
    \\;\\le\\; Q_i(q, \\beta) \\;\\le\\;
    q_i \\exp\\!\\Big(-\\frac{\\beta\\nu}{\\bar S(i,i)}
        - \\sum_{j\\ne i} \\min\\Big\\{\\tfrac12,
            \\frac{\\beta \\bar S(j,i)}{2 \\bar S(i,i)}\\Big\\} q_j\\Big).

The lower bound drives Lemma 2 (replaying a non-fading solution keeps a
``1/e`` fraction of utility: a set feasible at SINR ``β`` has
``(β/S̄ii)(ν + Σ S̄ji) ≤ 1``); the upper bound drives Theorem 2's
simulation argument.  Both rest on Observation 1, two elementary
exponential inequalities exposed here for the property-based tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.sinr import SINRInstance
from repro.fading.success import _beta_vector
from repro.utils.validation import check_probability_vector

__all__ = [
    "observation1_first",
    "observation1_second",
    "success_probability_lower",
    "success_probability_upper",
]


def observation1_first(x, q) -> tuple[np.ndarray, np.ndarray]:
    """Observation 1, first inequality: for all real ``x`` and ``q ∈ [0,1]``,
    ``exp(-xq) ≤ 1 - q / (1/x + 1)``.

    Returns ``(lhs, rhs)`` so tests can assert ``lhs <= rhs`` elementwise.
    """
    x = np.asarray(x, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    lhs = np.exp(-x * q)
    with np.errstate(divide="ignore", over="ignore"):
        rhs = 1.0 - q / (1.0 / x + 1.0)
    return lhs, rhs


def observation1_second(x, q) -> tuple[np.ndarray, np.ndarray]:
    """Observation 1, second inequality: for ``x ∈ (0, 1]``, ``q ∈ [0,1]``,
    ``1 - q / (1/x + 1) ≤ exp(-xq/2)``.

    Returns ``(lhs, rhs)`` so tests can assert ``lhs <= rhs`` elementwise.
    """
    x = np.asarray(x, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    lhs = 1.0 - q / (1.0 / x + 1.0)
    rhs = np.exp(-0.5 * x * q)
    return lhs, rhs


def success_probability_lower(instance: SINRInstance, q, beta) -> np.ndarray:
    """Lemma 1 lower bound on ``Q_i(q, β)`` for every link.

    Equals ``q_i · exp(-β_i / S̄(i,i) · (ν + Σ_{j≠i} S̄(j,i) q_j))``; note
    the exponent is ``β_i / γ̃_i`` where ``γ̃_i`` is the non-fading SINR
    against the *expected* interference — hence ≥ ``q_i / e`` whenever the
    set is non-fading feasible at ``β``.
    """
    n = instance.n
    qv = check_probability_vector(q, n)
    bv = _beta_vector(beta, n)
    signal = instance.signal
    expected_interference = qv @ instance.gains - qv * signal  # Σ_{j≠i} S̄(j,i) q_j
    exponent = bv / signal * (instance.noise + expected_interference)
    return qv * np.exp(-exponent)


def success_probability_upper(instance: SINRInstance, q, beta) -> np.ndarray:
    """Lemma 1 upper bound on ``Q_i(q, β)`` for every link.

    Equals ``q_i · exp(-β_i ν / S̄(i,i) - Σ_{j≠i} min{1/2, β_i S̄(j,i) /
    (2 S̄(i,i))} q_j)``.  The capped sum is ``A_i / 2`` in the notation of
    the proof of Theorem 2.
    """
    n = instance.n
    qv = check_probability_vector(q, n)
    bv = _beta_vector(beta, n)
    signal = instance.signal
    capped = np.minimum(0.5, bv[None, :] * instance.gains / (2.0 * signal[None, :]))
    np.fill_diagonal(capped, 0.0)
    interference_term = qv @ capped  # Σ_{j≠i} min{1/2, βS̄ji/(2S̄ii)} q_j
    return qv * np.exp(-bv * instance.noise / signal - interference_term)
