"""The Rayleigh-fading model (Sections 2–3 of the paper).

Received signal strengths are independent exponential random variables
``S(j, i) ~ Exp(mean = S̄(j, i))``, redrawn every slot.  The package
provides:

* :mod:`~repro.fading.rayleigh` — physics-faithful slot simulation by
  explicit exponential sampling, plus the exact-probability fast path
  (success events of distinct receivers depend on disjoint columns of the
  draw matrix, hence are conditionally independent given the transmit
  pattern — so Bernoulli sampling from Theorem 1 is *exactly* equivalent).
* :mod:`~repro.fading.success` — Theorem 1's closed-form success
  probability ``Q_i(q_1..q_n, β)``.
* :mod:`~repro.fading.bounds` — Lemma 1's lower/upper exponential bounds
  and the Observation 1 inequalities they rest on.
* :mod:`~repro.fading.montecarlo` — estimators of success probabilities
  and expected utilities for validation and for non-binary utilities.
"""

from repro.fading.bounds import (
    observation1_first,
    observation1_second,
    success_probability_lower,
    success_probability_upper,
)
from repro.fading.block import BlockFadingChannel
from repro.fading.models import (
    FadingModel,
    NakagamiFading,
    NoFading,
    RayleighFading,
    RicianFading,
    expected_successes_with_model,
    simulate_slots_with_model,
)
from repro.fading.montecarlo import (
    estimate_expected_utility,
    estimate_success_probability,
    expected_successes_exact,
)
from repro.fading.rayleigh import (
    sample_fading_gains,
    simulate_sinr,
    simulate_sinr_patterns,
    simulate_slot,
    simulate_slots,
    simulate_slots_bernoulli,
)
from repro.fading.success import (
    success_probability,
    success_probability_conditional,
)

__all__ = [
    "BlockFadingChannel",
    "FadingModel",
    "NakagamiFading",
    "NoFading",
    "RayleighFading",
    "RicianFading",
    "estimate_expected_utility",
    "estimate_success_probability",
    "expected_successes_exact",
    "expected_successes_with_model",
    "simulate_slots_with_model",
    "observation1_first",
    "observation1_second",
    "sample_fading_gains",
    "simulate_sinr",
    "simulate_sinr_patterns",
    "simulate_slot",
    "simulate_slots",
    "simulate_slots_bernoulli",
    "success_probability",
    "success_probability_conditional",
    "success_probability_lower",
    "success_probability_upper",
]
