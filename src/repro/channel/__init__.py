"""One interference-model abstraction for the whole library.

The paper's program is moving scheduling algorithms *between*
interference models — non-fading SINR ↔ Rayleigh (Lemma 2, Theorem 2)
and onward to "further realistic" models (Section 8).  This package is
the single place that answers "does a transmission succeed":

* :class:`~repro.channel.base.Channel` — the protocol: per-slot
  sampling (:meth:`realize`), batched ``(B, n)`` pattern evaluation
  (:meth:`realize_batch`), the game's counterfactual outcomes
  (:meth:`counterfactual`), and exact or estimated success
  probabilities.
* :class:`~repro.channel.nonfading.NonFadingChannel` — the
  deterministic model of Section 2.
* :class:`~repro.channel.rayleigh.RayleighChannel` — the Theorem-1
  closed form plus distribution-exact Bernoulli sampling.
* :class:`~repro.channel.montecarlo.MonteCarloChannel` — any
  :class:`~repro.fading.models.FadingModel` (Nakagami-m, Rician-K) by
  explicit sampling on the batched CRN kernels.
* :class:`~repro.channel.block.BlockFadingChannel` — temporally
  coherent draws over a block length.
* :func:`~repro.channel.spec.make_channel` — CLI-friendly spec strings
  (``"rayleigh"``, ``"nakagami:m=2"``, ``"block:coherence=5"``).

The game (:mod:`repro.learning.game`), the latency schedulers
(:mod:`repro.latency`), the model transfers (:mod:`repro.transform`),
and the experiment drivers all evaluate service through a channel; the
``model="nonfading"/"rayleigh"`` strings those layers used to branch on
survive as spec aliases.
"""

from repro.channel.base import Channel
from repro.channel.block import BlockFadingChannel
from repro.channel.montecarlo import MonteCarloChannel
from repro.channel.nonfading import NonFadingChannel
from repro.channel.rayleigh import RayleighChannel
from repro.channel.spec import (
    CHANNEL_KINDS,
    make_channel,
    make_fading_model,
    parse_channel_spec,
)

__all__ = [
    "CHANNEL_KINDS",
    "Channel",
    "BlockFadingChannel",
    "MonteCarloChannel",
    "NonFadingChannel",
    "RayleighChannel",
    "make_channel",
    "make_fading_model",
    "parse_channel_spec",
]
