"""Block-fading channel: coherent gains over a coherence time ``L``.

The temporally-correlated member of the channel family, wrapping the
block-fading regime of :mod:`repro.fading.block`: instantaneous gains
stay constant for ``L`` consecutive slots and are redrawn independently
between blocks.  ``L = 1`` recovers the i.i.d. assumption of Section 2
exactly; the E15 ablation prices what the Section-4 transformation
loses as ``L`` grows.

This is the one *stateful* channel: consecutive :meth:`realize` calls
advance time, and the current block's draw matrix persists between
calls — that temporal correlation is the physics being modelled, not
hidden randomness.  Fresh draws still come only from the generator the
caller passes in, so runs remain reproducible, and :meth:`reset`
restarts time for a new trial.
"""

from __future__ import annotations

import numpy as np

from repro.channel.base import Channel
from repro.core.sinr import SINRInstance
from repro.fading.models import FadingModel, RayleighFading
from repro.fading.rayleigh import _sinr_from_draws
from repro.obs import metrics as _metrics
from repro.utils.rng import as_generator

__all__ = ["BlockFadingChannel"]


class BlockFadingChannel(Channel):
    """Channel whose realisation is frozen for ``block_length`` slots.

    Parameters
    ----------
    instance, beta:
        Mean signals, noise, threshold.
    block_length:
        Coherence time ``L`` in slots; ``1`` is the paper's i.i.d. model.
    model:
        Fading family of the per-block draws (default Rayleigh).
    """

    def __init__(
        self,
        instance: SINRInstance,
        beta: float,
        *,
        block_length: int = 1,
        model: "FadingModel | None" = None,
    ):
        super().__init__(instance, beta)
        if block_length <= 0:
            raise ValueError(f"block_length must be positive, got {block_length}")
        self.block_length = int(block_length)
        self.model = model if model is not None else RayleighFading()
        self._t = 0
        self._draws: "np.ndarray | None" = None

    @property
    def name(self) -> str:
        return f"block(L={self.block_length}, {self.model.name})"

    @property
    def time(self) -> int:
        """Number of slots realized since construction / :meth:`reset`."""
        return self._t

    def reset(self) -> None:
        self._t = 0
        self._draws = None

    def _step_draws(self, rng) -> np.ndarray:
        """Advance one slot, redrawing at block boundaries only."""
        if self._draws is None or self._t % self.block_length == 0:
            _metrics.add("channel.block_redraws")
            self._draws = self.model.sample(self.instance.gains, as_generator(rng))
        self._t += 1
        return self._draws

    def _advance_chunks(self, num_slots: int, rng):
        """Yield ``(start, stop, draws)`` coherence-block chunks covering
        ``num_slots`` consecutive slots, advancing the channel clock.

        Redraws happen exactly where the slot-by-slot loop would redraw
        (at clock multiples of ``block_length``), from the same generator,
        so chunked and looped execution consume identical randomness.
        """
        gen = as_generator(rng)
        done = 0
        while done < num_slots:
            if self._draws is None or self._t % self.block_length == 0:
                _metrics.add("channel.block_redraws")
                self._draws = self.model.sample(self.instance.gains, gen)
            left_in_block = self.block_length - (self._t % self.block_length)
            take = min(left_in_block, num_slots - done)
            self._t += take
            yield done, done + take, self._draws
            done += take

    def realize(self, active, rng=None) -> np.ndarray:
        mask = self._mask(active)
        draws = self._step_draws(rng)
        if not mask.any():
            return np.zeros(self.n, dtype=bool)
        sinr = _sinr_from_draws(draws[None, :, :], mask, self.instance.noise)[0]
        return sinr >= self.beta

    def realize_batch(self, patterns: np.ndarray, rng=None) -> np.ndarray:
        """Coherence-block-chunked batch: slots sharing a block are
        evaluated against their common draw matrix in one vectorized
        pass, with redraws (and hence randomness consumption) exactly
        where the slot-by-slot loop would place them."""
        pats = self._patterns(patterns)
        _metrics.add("channel.realize_slots", pats.shape[0])
        out = np.zeros(pats.shape, dtype=bool)
        for start, stop, draws in self._advance_chunks(pats.shape[0], rng):
            chunk = pats[start:stop]
            sinr = self._chunk_sinr(draws, chunk)
            out[start:stop] = sinr >= self.beta
        return out

    def _chunk_sinr(self, draws: np.ndarray, chunk: np.ndarray) -> np.ndarray:
        """SINRs of a pattern chunk against one coherence block's draws.

        Dense float64 operators take the exact einsum kernel verbatim —
        the default config stays byte-identical.  Sparse/float32 modes
        gather the block's draw values onto the top-k selection built
        from the *mean* gains (the draws themselves stay dense, so
        randomness consumption is backend-independent).
        """
        op = self.instance.gains_operator(keep_diagonal=True)
        if not op.is_sparse and op.dtype == np.float64:
            return _sinr_from_draws(draws, chunk, self.instance.noise)
        signal = np.diagonal(draws)
        total = op.gather_matmul(chunk.astype(op.dtype), draws)
        denom = total - chunk * signal + self.instance.noise
        out = np.zeros(denom.shape, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            np.divide(
                np.broadcast_to(signal, denom.shape),
                denom,
                out=out,
                where=chunk & (denom > 0.0),
            )
        out[chunk & (denom <= 0.0)] = np.inf
        return out

    def slot_fields(self, num_slots: int, rng=None):
        """Coherence-block chunks for the next ``num_slots`` slots.

        Fields are the ``(start, stop, draws)`` chunks of
        :meth:`_advance_chunks`: the channel clock advances as fields
        are *drawn* (strictly in slot order), so chunk boundaries — and
        hence redraw positions — land exactly where the slot-by-slot
        loop would put them, for any speculation window.
        """
        if num_slots <= 0:
            return []
        return list(self._advance_chunks(num_slots, rng))

    def apply_slot_fields(self, fields, patterns, offset: int = 0) -> np.ndarray:
        pats = self._patterns(patterns)
        out = np.zeros(pats.shape, dtype=bool)
        for start, stop, draws in fields:
            lo = max(start, offset)
            hi = min(stop, offset + pats.shape[0])
            if lo >= hi:
                continue
            chunk = pats[lo - offset : hi - offset]
            out[lo - offset : hi - offset] = self._chunk_sinr(draws, chunk) >= self.beta
        return out

    def counterfactual(self, active, rng=None) -> np.ndarray:
        mask = self._mask(active)
        draws = self._step_draws(rng)
        return self._counterfactual_against(draws, mask[None, :])[0]

    def counterfactual_batch(self, patterns: np.ndarray, rng=None) -> np.ndarray:
        """Coherence-block-chunked had-I-sent masks for ``(B, n)``
        patterns; the clock advances by ``B`` slots."""
        pats = self._patterns(patterns)
        _metrics.add("channel.counterfactual_slots", pats.shape[0])
        out = np.zeros(pats.shape, dtype=bool)
        for start, stop, draws in self._advance_chunks(pats.shape[0], rng):
            out[start:stop] = self._counterfactual_against(draws, pats[start:stop])
        return out

    def _counterfactual_against(
        self, draws: np.ndarray, patterns: np.ndarray
    ) -> np.ndarray:
        """Had-I-sent masks for a chunk of patterns sharing one draw.

        The product routes through the instance's gain operator: a dense
        float64 operator computes ``patterns @ draws`` byte-identically;
        the top-k form gathers this block's draw values onto the sparse
        selection built from the mean gains.
        """
        op = self.instance.gains_operator(keep_diagonal=True)
        signal = np.diagonal(draws)
        total = op.gather_matmul(patterns.astype(op.dtype), draws)
        denom = total - patterns * signal + self.instance.noise
        with np.errstate(divide="ignore", invalid="ignore"):
            sinr = np.where(denom > 0.0, signal / np.maximum(denom, 1e-300), np.inf)
        return sinr >= self.beta

    def transformed_step(self, q, rng=None, *, repeats: int = 4) -> np.ndarray:
        """One Section-4 transformed protocol step under this channel.

        Each of the ``repeats`` executions redraws the transmit pattern
        (protocol randomness is always fresh) but the channel refreshes
        only at block boundaries — the regime E15 studies.  Returns the
        per-link any-execution success mask.
        """
        if repeats <= 0:
            raise ValueError(f"repeats must be positive, got {repeats}")
        gen = as_generator(rng)
        qv = np.asarray(q, dtype=np.float64)
        success = np.zeros(self.n, dtype=bool)
        for _ in range(repeats):
            pattern = gen.random(self.n) < qv
            success |= self.realize(pattern, gen)
        return success

    def expected_successes(self, subset, rng=None) -> float:
        """Single-slot expectation by Monte Carlo (coherence is temporal
        and does not change the one-slot marginal law).  Stateless: does
        not advance the channel's clock."""
        mask = self._mask(np.asarray(subset))
        if not mask.any():
            return 0.0
        gen = as_generator(rng)
        trials = 400
        total = 0
        for _ in range(trials):
            draws = self.model.sample(self.instance.gains, gen)
            sinr = _sinr_from_draws(draws[None, :, :], mask, self.instance.noise)[0]
            total += int((sinr >= self.beta).sum())
        return total / trials

    def subchannel(self, indices) -> "Channel":
        raise NotImplementedError(
            "a block-fading channel carries temporal state tied to the full "
            "gain matrix; build a fresh channel on the sub-instance instead"
        )
