"""Channel spec strings — ``"rayleigh"``, ``"nakagami:m=2"``, ``"block:coherence=5"``.

One compact, CLI-friendly grammar for naming an interference model:

.. code-block:: text

    nonfading                       deterministic SINR test
    rayleigh                        exact Theorem-1 channel (fast path)
    rayleigh-mc[:slots=4000]        Rayleigh by explicit sampling (validation)
    nakagami:m=2[,slots=4000]       Nakagami-m family, Monte Carlo
    rician:k=4[,slots=4000]         Rician-K family, Monte Carlo
    block:coherence=5[,family=nakagami,m=2]
                                    block fading, coherent over L slots

The grammar is ``name[:key=value[,key=value...]]``.  ``slots`` sets the
sample count of the Monte-Carlo probability estimators; ``family``
selects the per-block fading family of the block channel (default
rayleigh).  Experiment drivers and the CLI's ``--channel`` flag pass
these strings through :func:`make_channel`; the legacy ``model=``
strings ``"nonfading"``/``"rayleigh"`` are valid specs, which is what
keeps every pre-channel call site working unchanged.
"""

from __future__ import annotations

from repro.channel.base import Channel
from repro.channel.block import BlockFadingChannel
from repro.channel.montecarlo import MonteCarloChannel
from repro.channel.nonfading import NonFadingChannel
from repro.channel.rayleigh import RayleighChannel
from repro.core.sinr import SINRInstance
from repro.fading.models import (
    FadingModel,
    NakagamiFading,
    NoFading,
    RayleighFading,
    RicianFading,
)

__all__ = [
    "CHANNEL_KINDS",
    "FADING_FAMILIES",
    "make_channel",
    "make_fading_model",
    "parse_channel_spec",
]

#: Recognised spec heads, for error messages and the CLI help text.
CHANNEL_KINDS = ("nonfading", "rayleigh", "rayleigh-mc", "nakagami", "rician", "block")

#: Fading families a ``block:...,family=...`` parameter may name.
FADING_FAMILIES = ("rayleigh", "nakagami", "rician", "nonfading")


def parse_channel_spec(spec: str) -> "tuple[str, dict[str, str]]":
    """Split ``"name:k1=v1,k2=v2"`` into ``(name, {k1: v1, k2: v2})``."""
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(f"channel spec must be a non-empty string, got {spec!r}")
    head, _, tail = spec.strip().partition(":")
    name = head.strip().lower()
    params: "dict[str, str]" = {}
    if tail:
        for part in tail.split(","):
            key, eq, value = part.partition("=")
            if not eq or not key.strip() or not value.strip():
                raise ValueError(
                    f"bad channel parameter {part!r} in {spec!r}; expected key=value"
                )
            params[key.strip().lower()] = value.strip()
    return name, params


def _pop_float(params: "dict[str, str]", *names: str) -> "float | None":
    for key in names:
        if key in params:
            raw = params.pop(key)
            try:
                return float(raw)
            except ValueError:
                raise ValueError(
                    f"channel parameter {key}={raw!r} must be a number"
                ) from None
    return None


def _pop_int(params: "dict[str, str]", *names: str) -> "int | None":
    for key in names:
        if key in params:
            raw = params.pop(key)
            try:
                value = float(raw)
            except ValueError:
                value = None
            if value is None or value != int(value):
                raise ValueError(
                    f"channel parameter {key}={raw!r} must be an integer"
                )
            return int(value)
    return None


def _reject_leftovers(name: str, params: "dict[str, str]") -> None:
    if params:
        raise ValueError(
            f"unknown parameter(s) {sorted(params)} for channel {name!r}"
        )


def make_fading_model(name: str, params: "dict[str, str]") -> FadingModel:
    """Build the :class:`~repro.fading.models.FadingModel` a spec names.

    Mutates ``params`` by popping the keys it consumes, so callers can
    reject leftovers afterwards.
    """
    if name in ("rayleigh", "rayleigh-mc"):
        return RayleighFading()
    if name == "nakagami":
        m = _pop_float(params, "m")
        if m is None:
            raise ValueError("nakagami channel needs an m parameter, e.g. nakagami:m=2")
        return NakagamiFading(m)
    if name == "rician":
        k = _pop_float(params, "k", "k_factor")
        if k is None:
            raise ValueError("rician channel needs a k parameter, e.g. rician:k=4")
        return RicianFading(k)
    if name == "nonfading":
        return NoFading()
    raise ValueError(
        f"unknown fading family {name!r}; choose from {FADING_FAMILIES}"
    )


def make_channel(
    spec: "str | Channel", instance: SINRInstance, beta: float
) -> Channel:
    """Resolve a channel spec (or pass through an existing channel).

    An already-built :class:`Channel` is returned unchanged provided it
    was built on the same instance; strings go through the grammar
    above.
    """
    if isinstance(spec, Channel):
        if spec.instance is not instance and spec.n != instance.n:
            raise ValueError(
                "channel was built for a different instance "
                f"(n={spec.n}, expected n={instance.n})"
            )
        return spec
    name, params = parse_channel_spec(spec)
    if name == "nonfading":
        _reject_leftovers(name, params)
        return NonFadingChannel(instance, beta)
    if name == "rayleigh":
        _reject_leftovers(name, params)
        return RayleighChannel(instance, beta)
    if name in ("rayleigh-mc", "nakagami", "rician"):
        slots = _pop_int(params, "slots", "mc_slots")
        model = make_fading_model(name, params)
        _reject_leftovers(name, params)
        kwargs = {} if slots is None else {"mc_slots": slots}
        return MonteCarloChannel(instance, beta, model, **kwargs)
    if name == "block":
        length = _pop_int(params, "coherence", "l", "block_length")
        if length is None:
            raise ValueError(
                "block channel needs a coherence length, e.g. block:coherence=5"
            )
        family = params.pop("family", "rayleigh")
        model = make_fading_model(family, params)
        _reject_leftovers(name, params)
        return BlockFadingChannel(instance, beta, block_length=length, model=model)
    raise ValueError(f"unknown channel {name!r}; choose from {CHANNEL_KINDS}")
