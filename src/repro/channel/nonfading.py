"""The deterministic (non-fading) SINR channel of Section 2."""

from __future__ import annotations

import numpy as np

from repro import backend as _backend
from repro.channel.base import Channel
from repro.core.sinr import SINRInstance
from repro.obs import metrics as _metrics
from repro.utils.validation import check_probability_vector

__all__ = ["NonFadingChannel"]


class NonFadingChannel(Channel):
    """Success is the deterministic test ``γ^nf ≥ β``; no randomness.

    The degenerate member of the channel family: :meth:`realize`
    consumes no randomness, probabilities are 0/1 indicators, and the
    batched path is PR 1's single ``(B, n) @ (n, n)`` product.

    The counterfactual paths run against a cached ``β·S̄`` tensor
    (instances are frozen, so it never invalidates): "had ``i`` sent"
    reduces to the interference-margin test
    ``Σ_{j active, j≠i} β S̄(j,i) ≤ S̄(i,i) − βν``, algebraically the
    SINR threshold test without the per-call division — one matvec
    (or one matmul for a batch) and one comparison per evaluation.
    """

    is_deterministic = True
    has_exact_probabilities = True

    @property
    def name(self) -> str:
        return "nonfading"

    @property
    def _beta_gains(self) -> np.ndarray:
        """Cached ``β·S̄(j,i)`` with a zeroed diagonal (own signal never
        interferes with its own reception)."""
        bg = getattr(self, "_beta_gains_cache", None)
        if bg is None:
            bg = self.beta * self.instance.gains
            np.fill_diagonal(bg, 0.0)
            bg.setflags(write=False)
            self._beta_gains_cache = bg
        return bg

    def _bg_op(self):
        """Backend operator over the cached ``β·S̄`` tensor, keyed by the
        active config (``keep_diagonal=False`` — the diagonal is zero).
        Under the default config this wraps the cached float64 array and
        the margin test is byte-identical to ``pats @ β·S̄``."""
        ops = getattr(self, "_bg_ops_cache", None)
        if ops is None:
            ops = self._bg_ops_cache = {}
        be = _backend.active()
        op = ops.get(be.config)
        if op is None:
            op = be.gain_operator(self._beta_gains, keep_diagonal=False)
            ops[be.config] = op
        return op

    @property
    def _margin(self) -> np.ndarray:
        """Cached interference budget ``S̄(i,i) − βν`` per link."""
        m = getattr(self, "_margin_cache", None)
        if m is None:
            m = np.ascontiguousarray(self.instance.signal) - self.beta * self.instance.noise
            m.setflags(write=False)
            self._margin_cache = m
        return m

    def realize(self, active, rng=None) -> np.ndarray:
        return self.instance.successes(self._mask(active), self.beta)

    def realize_batch(self, patterns: np.ndarray, rng=None) -> np.ndarray:
        pats = self._patterns(patterns)
        _metrics.add("channel.realize_slots", pats.shape[0])
        _metrics.add("channel.sinr_evaluations", pats.size)
        return (self.instance.sinr_batch(pats) >= self.beta) & pats

    def slot_fields(self, num_slots: int, rng=None):
        """Deterministic channel: no exogenous randomness, no fields."""
        return None

    def apply_slot_fields(self, fields, patterns, offset: int = 0) -> np.ndarray:
        return self.realize_batch(patterns)

    def counterfactual(self, active, rng=None) -> np.ndarray:
        """Deterministic had-I-sent test against the realized senders.

        Reception of ``i`` depends only on the *others*: interference at
        ``r_i`` from the active senders ``j ≠ i`` (whether ``i`` itself
        sent is irrelevant to its own counterfactual).
        """
        a = self._mask(active)
        op = self._bg_op()
        return op.matvec(a.astype(op.dtype)) <= self._margin

    def counterfactual_batch(self, patterns: np.ndarray, rng=None) -> np.ndarray:
        """Batched had-I-sent test: one ``(B, n) @ (n, n)`` product
        against the cached ``β·S̄`` tensor, no randomness consumed."""
        pats = self._patterns(patterns)
        _metrics.add("channel.counterfactual_slots", pats.shape[0])
        op = self._bg_op()
        return op.matmul(pats.astype(op.dtype)) <= self._margin

    def sinr_batch(self, patterns: np.ndarray, rng=None) -> np.ndarray:
        return self.instance.sinr_batch(self._patterns(patterns))

    def success_probability(self, q, rng=None) -> np.ndarray:
        """Exact only for binary patterns (the deterministic replay case);
        fractional ``q`` has no per-link closed form in this model."""
        qv = check_probability_vector(q, self.n)
        if not np.all((qv == 0.0) | (qv == 1.0)):
            raise NotImplementedError(
                "non-fading success probabilities are closed-form only for "
                "binary transmit patterns; sample realize_batch for fractional q"
            )
        mask = qv.astype(bool)
        return self.realize(mask).astype(np.float64)

    def conditional_success_probability(self, q, rng=None) -> np.ndarray:
        qv = check_probability_vector(q, self.n)
        if not np.all((qv == 0.0) | (qv == 1.0)):
            raise NotImplementedError(
                "non-fading conditional probabilities are closed-form only "
                "for binary transmit patterns"
            )
        return self.counterfactual(qv.astype(bool)).astype(np.float64)
