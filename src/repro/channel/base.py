"""The ``Channel`` abstraction — one answer to "does a transmission succeed?".

The paper's whole program is moving algorithms between interference
models (Lemma 2, Theorem 2, Section 8's "further realistic" models), so
the question *how a transmission succeeds* must not be re-decided inside
every consumer.  A :class:`Channel` binds an
:class:`~repro.core.sinr.SINRInstance` to a SINR threshold ``β`` and one
interference model, and exposes the three operations every consumer in
the library needs:

* **Per-slot sampling** — :meth:`Channel.realize` draws one slot's
  success mask for a transmit pattern, :meth:`Channel.realize_batch`
  evaluates a ``(B, n)`` batch of patterns in one vectorized pass.
* **Counterfactual evaluation** — :meth:`Channel.counterfactual`
  answers "had link ``i`` sent, would it have been received?" for every
  link simultaneously, the quantity the Section-6 capacity game feeds
  its learners; :meth:`Channel.counterfactual_batch` answers it for a
  ``(B, n)`` batch of patterns in one vectorized kernel (the post-hoc
  regret analysis evaluates whole recorded games this way).
* **Probabilities** — :meth:`Channel.success_probability` and
  :meth:`Channel.conditional_success_probability` return the exact
  per-link success probabilities where a closed form exists (Theorem 1
  for Rayleigh, the degenerate 0/1 law for non-fading) and fall back to
  Monte-Carlo estimation otherwise (pass ``rng``).

Channels hold **no hidden random state**: every sampling method draws
only from the caller-supplied generator, which is what preserves the
engine's byte-identical ``--jobs`` determinism.  The one exception is
deliberate and documented — :class:`~repro.channel.block.BlockFadingChannel`
keeps the *current coherence block's* draws between calls (that is the
physics being modelled), but refreshes them only from the passed-in
generator.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.sinr import SINRInstance, _as_active_bool
from repro.engine import guards
from repro.obs import metrics as _metrics
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["Channel"]


class Channel(abc.ABC):
    """An interference model bound to an instance and a threshold ``β``.

    Subclasses implement :meth:`realize` and :meth:`counterfactual` (and
    usually override :meth:`realize_batch` with a vectorized path); the
    probability interface raises :class:`NotImplementedError` unless the
    model admits a closed form or the subclass provides an estimator.
    """

    #: Whether success is a deterministic function of the transmit
    #: pattern (no randomness consumed by :meth:`realize`).
    is_deterministic: bool = False

    #: Whether :meth:`success_probability` is exact (closed form) rather
    #: than a Monte-Carlo estimate.
    has_exact_probabilities: bool = False

    def __init__(self, instance: SINRInstance, beta: float):
        if not isinstance(instance, SINRInstance):
            raise TypeError(f"instance must be an SINRInstance, got {type(instance).__name__}")
        self.instance = instance
        self.beta = check_positive(beta, "beta")

    # -- identity ----------------------------------------------------------

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short display name (also the spec-string round trip)."""

    @property
    def n(self) -> int:
        return self.instance.n

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n}, beta={self.beta:g})"

    # -- helpers for subclasses -------------------------------------------

    def _mask(self, active) -> np.ndarray:
        return _as_active_bool(active, self.n)

    def _patterns(self, patterns) -> np.ndarray:
        """Validate a ``(B, n)`` pattern batch.

        Boolean arrays pass through untouched.  Integer arrays whose
        entries are all 0/1 are coerced to bool — recorded schedules
        often arrive as 0/1 int matrices, and rejecting them outright
        proved a recurring paper cut.  Anything else (floats, ints
        outside {0, 1}) is still an error, now saying what to pass.
        """
        pats = np.asarray(patterns)
        if pats.dtype != np.bool_:
            if pats.dtype.kind in "iu":
                if pats.size and not np.isin(pats, (0, 1)).all():
                    raise TypeError(
                        "integer pattern arrays must contain only 0/1 "
                        "transmit indicators; got values outside {0, 1}"
                    )
                pats = pats.astype(bool)
            else:
                raise TypeError(
                    "patterns must be a boolean mask array (or a 0/1 "
                    f"integer array), got dtype {pats.dtype}"
                )
        if pats.ndim != 2 or pats.shape[1] != self.n:
            raise ValueError(f"patterns must have shape (B, {self.n}), got {pats.shape}")
        return pats

    # -- sampling ----------------------------------------------------------

    @abc.abstractmethod
    def realize(self, active, rng=None) -> np.ndarray:
        """One slot: the boolean success mask under transmit pattern
        ``active`` (success = transmitted *and* cleared ``β``).

        ``active`` is a boolean mask or an integer index list; ``rng`` is
        consumed only by stochastic channels.
        """

    def realize_batch(self, patterns: np.ndarray, rng=None) -> np.ndarray:
        """Success masks for a ``(B, n)`` batch of independent slots.

        The default prefers the channel's vectorized SINR kernel: when
        :meth:`sinr_batch` exposes sampled (or deterministic) SINRs, the
        whole batch is one thresholded kernel call.  Channels without a
        batched SINR path fall back to looping :meth:`realize` over a
        **single child stream spawned from the caller's generator** —
        one ``spawn`` up front, then the slots consume it in row order
        (slot 0 first).  The spawn keeps the caller's generator advanced
        by exactly one spawn regardless of the batch size, so loop and
        vector consumers of the same parent stream stay seed-reproducible
        against each other.  Vectorized channels override this with a
        fused batched kernel.
        """
        pats = self._patterns(patterns)
        _metrics.add("channel.realize_slots", pats.shape[0])
        sinr = self.sinr_batch(pats, rng)
        if sinr is not None:
            # +inf SINR is legitimate (no interference, zero noise); NaN
            # means a poisoned sample and must not be thresholded silently.
            _metrics.add("channel.sinr_evaluations", sinr.size)
            guards.check_finite(
                sinr, f"{self.name}.realize_batch.sinr", allow_inf=True, beta=self.beta
            )
            return (sinr >= self.beta) & pats
        stream = as_generator(rng).spawn(1)[0]
        out = np.zeros(pats.shape, dtype=bool)
        for t in range(pats.shape[0]):
            out[t] = self.realize(pats[t], stream)
        return out

    # -- positional slot fields (the batched slot-loop engine) -------------

    def slot_fields(self, num_slots: int, rng=None):
        """Draw the channel's exogenous randomness for the next
        ``num_slots`` slots, *by position* and pattern-independently.

        The slot-loop engine (:mod:`repro.latency.slotloop`) pre-draws
        fields for a speculative block and evaluates (possibly
        corrected) transmit patterns against them via
        :meth:`apply_slot_fields`.  Two contract clauses make block
        execution schedule-exact:

        * slot ``t``'s field depends only on ``t`` (never on the
          pattern), so a slot invalidated by a served-set change can be
          re-evaluated against the *same* field;
        * fields are drawn strictly in slot order and the draw stream
          advances identically under any grouping of slots into calls,
          so every block size consumes the same randomness.

        The generic fallback spawns one child seed per slot (seed-
        sequence spawning is sequential, hence grouping-invariant) and
        :meth:`apply_slot_fields` replays :meth:`realize` under it;
        vectorized channels override both with array-valued fields.
        """
        if num_slots <= 0:
            return []
        return as_generator(rng).spawn(num_slots)

    def apply_slot_fields(self, fields, patterns, offset: int = 0) -> np.ndarray:
        """Success masks of ``patterns`` against cached ``fields``.

        Row ``t`` of ``patterns`` is evaluated under field
        ``fields[offset + t]``; the call must be repeatable (same
        fields + same patterns → same masks).
        """
        pats = self._patterns(patterns)
        out = np.zeros(pats.shape, dtype=bool)
        for t in range(pats.shape[0]):
            child = np.random.default_rng(fields[offset + t].bit_generator.seed_seq)
            out[t] = self.realize(pats[t], child)
        return out

    @abc.abstractmethod
    def counterfactual(self, active, rng=None) -> np.ndarray:
        """Success-if-sent indicator for *every* link given the others.

        Entry ``i`` answers: had link ``i`` transmitted this slot while
        the senders of ``active`` other than ``i`` transmit, would it
        have been received?  For links in ``active`` this coincides with
        the realized outcome; for silent links it is the counterfactual
        the capacity game's full-information losses require.
        """

    def counterfactual_batch(self, patterns: np.ndarray, rng=None) -> np.ndarray:
        """Success-if-sent masks for a ``(B, n)`` batch of patterns.

        Row ``t`` answers :meth:`counterfactual` for ``patterns[t]`` — the
        quantity the Section-6 regret analysis needs for a whole recorded
        game at once.  The default loops over :meth:`counterfactual` with
        the caller's generator consumed in row order; every library
        member overrides it with a single batched kernel.
        """
        pats = self._patterns(patterns)
        _metrics.add("channel.counterfactual_slots", pats.shape[0])
        gen = as_generator(rng)
        out = np.zeros(pats.shape, dtype=bool)
        for t in range(pats.shape[0]):
            out[t] = self.counterfactual(pats[t], gen)
        return out

    def sinr_batch(self, patterns: np.ndarray, rng=None) -> "np.ndarray | None":
        """Sampled (or deterministic) SINR values per pattern, if the
        channel exposes them; ``None`` for success-only channels (e.g.
        the Bernoulli Rayleigh fast path, which never materialises SINRs).
        """
        return None

    # -- probabilities -----------------------------------------------------

    def success_probability(self, q, rng=None) -> np.ndarray:
        """Per-link probability of transmitting *and* clearing ``β`` when
        every sender ``j`` transmits independently with probability
        ``q_j``.

        Exact where the model admits a closed form
        (``has_exact_probabilities``); Monte-Carlo channels estimate it
        and therefore require ``rng``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no success-probability form; "
            "use a Monte-Carlo channel's estimator or sample realize()"
        )

    def conditional_success_probability(self, q, rng=None) -> np.ndarray:
        """Per-link probability of clearing ``β`` *given* the link sends,
        while the other senders transmit with probabilities ``q``."""
        raise NotImplementedError(
            f"{type(self).__name__} has no conditional-probability form"
        )

    def expected_successes(self, subset, rng=None) -> float:
        """Expected number of successes when exactly the links of
        ``subset`` transmit — the replay quantity of Lemma 2 / E14.

        Default: sum of :meth:`success_probability` at the 0/1 pattern.
        """
        mask = self._mask(np.asarray(subset))
        if not mask.any():
            return 0.0
        probs = self.success_probability(mask.astype(np.float64), rng)
        return float(probs[mask].sum())

    # -- derived channels --------------------------------------------------

    def subchannel(self, indices) -> "Channel":
        """Channel restricted to the given links (recursive schedulers).

        Stateful channels (block fading) may refuse; the schedulers in
        :mod:`repro.latency` therefore evaluate service on the *full*
        instance with global masks and never need this mid-run.
        """
        return type(self)(self.instance.subinstance(indices), self.beta)

    def reset(self) -> None:
        """Forget any temporal state (coherence blocks); no-op here."""
