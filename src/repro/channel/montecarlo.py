"""Monte-Carlo channel: any :class:`~repro.fading.models.FadingModel`.

Section 8 hopes the paper's techniques carry to "interference models
capturing further realistic properties"; this channel makes every such
family (Nakagami-m, Rician-K, or anything satisfying the
:class:`~repro.fading.models.FadingModel` contract) runnable behind the
same interface as the exact Rayleigh channel.  No closed form exists
for these families, so:

* per-slot realisation draws instantaneous gains explicitly
  (physics-faithful, exact joint law across links);
* batched pattern evaluation uses the common-random-numbers kernel of
  :func:`repro.fading.models.simulate_sinr_patterns_with_model`
  (exact per-link marginals, one ``(B, n) @ (n, n)`` product per chunk);
* probability queries are Monte-Carlo estimates (``rng`` required,
  sample count set by ``mc_slots``).
"""

from __future__ import annotations

import numpy as np

from repro.channel.base import Channel
from repro.core.sinr import SINRInstance
from repro.engine import guards
from repro.fading.models import (
    FadingModel,
    draw_unit_multipliers,
    simulate_sinr_patterns_with_model,
    simulate_slots_with_model,
    sinr_from_unit_multipliers,
)
from repro.obs import metrics as _metrics
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability_vector

__all__ = ["MonteCarloChannel"]


class MonteCarloChannel(Channel):
    """Sampling-based channel for an arbitrary fading family.

    Parameters
    ----------
    instance, beta:
        Mean signals, noise, and the SINR threshold.
    model:
        The fading family (e.g. ``NakagamiFading(m=2)``).
    mc_slots:
        Sample count for the probability estimators (they have no
        closed form here; see :class:`~repro.channel.rayleigh.RayleighChannel`
        for the exact special case ``NakagamiFading(m=1)``).
    """

    def __init__(
        self,
        instance: SINRInstance,
        beta: float,
        model: FadingModel,
        *,
        mc_slots: int = 2000,
    ):
        super().__init__(instance, beta)
        if not isinstance(model, FadingModel):
            raise TypeError(f"model must be a FadingModel, got {type(model).__name__}")
        if mc_slots <= 0:
            raise ValueError(f"mc_slots must be positive, got {mc_slots}")
        self.model = model
        self.mc_slots = int(mc_slots)

    @property
    def name(self) -> str:
        return self.model.name

    def realize(self, active, rng=None) -> np.ndarray:
        return simulate_slots_with_model(
            self.instance, self._mask(active), self.beta, self.model, rng, num_slots=1
        )[0]

    def realize_batch(self, patterns: np.ndarray, rng=None) -> np.ndarray:
        pats = self._patterns(patterns)
        _metrics.add("channel.realize_slots", pats.shape[0])
        _metrics.add("channel.sinr_evaluations", pats.size)
        sinr = simulate_sinr_patterns_with_model(self.instance, pats, self.model, rng)
        return (sinr >= self.beta) & pats

    def slot_fields(self, num_slots: int, rng=None) -> np.ndarray:
        """One unit-mean fading multiplier per (slot, sender) — the CRN
        kernel's randomness, drawn grouping-invariantly (non-elementwise
        models fall back to per-slot draws)."""
        return draw_unit_multipliers(self.model, self.n, rng, num_slots)

    def apply_slot_fields(self, fields, patterns, offset: int = 0) -> np.ndarray:
        """Deterministic SINR evaluation of (possibly corrected)
        patterns against the cached multipliers."""
        pats = self._patterns(patterns)
        draws = fields[offset : offset + pats.shape[0]]
        sinr = sinr_from_unit_multipliers(self.instance, pats, draws)
        return (sinr >= self.beta) & pats

    def counterfactual(self, active, rng=None) -> np.ndarray:
        """Physics-faithful had-I-sent draw: sample the full gain matrix
        once and evaluate every link's SINR against the realized senders
        ``j ≠ i`` — the exact joint counterfactual law of the family."""
        mask = self._mask(active)
        gen = as_generator(rng)
        draws = self.model.sample(self.instance.gains, gen)
        signal = np.diagonal(draws)
        # Selection from the mean gains, values from this slot's draw
        # matrix: the draws stay dense so randomness consumption never
        # depends on the backend config.
        op = self.instance.gains_operator(keep_diagonal=True)
        total = op.gather_matmul(mask.astype(op.dtype), draws)
        denom = total - mask * signal + self.instance.noise
        with np.errstate(divide="ignore", invalid="ignore"):
            sinr = np.where(denom > 0.0, signal / np.maximum(denom, 1e-300), np.inf)
        return sinr >= self.beta

    def counterfactual_batch(self, patterns: np.ndarray, rng=None) -> np.ndarray:
        """Batched had-I-sent sampling via the common-random-numbers
        kernel: one unit-mean fading multiplier per (slot, sender) and one
        ``(B, n) @ (n, n)`` product per memory-bounded chunk.

        Per-(slot, link) marginals are exactly the family's
        counterfactual law (see
        :func:`repro.fading.models.simulate_sinr_patterns_with_model`);
        only the within-slot dependence across links differs from the
        explicit per-slot gain-matrix draw of :meth:`counterfactual`,
        which leaves every per-link frequency estimator unbiased.
        """
        pats = self._patterns(patterns)
        _metrics.add("channel.counterfactual_slots", pats.shape[0])
        sinr = simulate_sinr_patterns_with_model(
            self.instance, pats, self.model, rng, counterfactual=True
        )
        return sinr >= self.beta

    def sinr_batch(self, patterns: np.ndarray, rng=None) -> np.ndarray:
        return simulate_sinr_patterns_with_model(
            self.instance, self._patterns(patterns), self.model, rng
        )

    def success_probability(self, q, rng=None) -> np.ndarray:
        """Monte-Carlo estimate over ``mc_slots`` independent
        (pattern, fading) samples; ``rng`` is required."""
        qv = check_probability_vector(q, self.n)
        _metrics.add("mc.samples", self.mc_slots)
        gen = as_generator(rng)
        patterns = gen.random((self.mc_slots, self.n)) < qv
        hits = self.realize_batch(patterns, gen)
        est = hits.sum(axis=0) / self.mc_slots
        return guards.check_probabilities(
            est, f"{self.name}.success_probability", mc_slots=self.mc_slots
        )

    def conditional_success_probability(self, q, rng=None) -> np.ndarray:
        """Estimated success-given-send frequency while the *other*
        senders transmit with probabilities ``q``."""
        qv = check_probability_vector(q, self.n)
        _metrics.add("mc.samples", self.mc_slots)
        gen = as_generator(rng)
        patterns = gen.random((self.mc_slots, self.n)) < qv
        sinr = simulate_sinr_patterns_with_model(
            self.instance, patterns, self.model, gen, counterfactual=True
        )
        est = (sinr >= self.beta).sum(axis=0) / self.mc_slots
        return guards.check_probabilities(
            est, f"{self.name}.conditional_success_probability", mc_slots=self.mc_slots
        )

    def subchannel(self, indices) -> "MonteCarloChannel":
        return MonteCarloChannel(
            self.instance.subinstance(indices),
            self.beta,
            self.model,
            mc_slots=self.mc_slots,
        )
