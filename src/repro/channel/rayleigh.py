"""The Rayleigh channel — Theorem-1 closed form + distribution-exact sampling.

The fast path throughout: conditioned on the transmit pattern, distinct
receivers' success events depend on disjoint columns of the independent
exponential draw matrix, so they are mutually independent Bernoullis
with exactly the Theorem-1 probabilities (see
:mod:`repro.fading.rayleigh` for the argument and the statistical test
pinning it).  Sampling those Bernoullis is therefore
*distribution-identical* to explicit exponential sampling at a fraction
of the cost, and the closed form makes every probability query exact.

Since PR 3 the channel owns one lazily built
:class:`~repro.fading.success.Theorem1Kernel`: instances are frozen and
``β`` is fixed at construction, so the ``O(n²)`` log-factor and weight
tensors are derived once and every subsequent round-level call
(``realize``/``counterfactual``) is a single matvec against the cache
instead of a fresh factor-matrix build.

Array-backend routing is inherited from the kernel: its products run
through the operator shim (:mod:`repro.backend`), so ``--dtype float32``
and ``--topk`` sparsification apply to this channel without any code
here touching the backend — and the default config keeps every path
byte-identical.
"""

from __future__ import annotations

import numpy as np

from repro.channel.base import Channel
from repro.fading.success import Theorem1Kernel
from repro.obs import metrics as _metrics
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability_vector

__all__ = ["RayleighChannel"]


class RayleighChannel(Channel):
    """Exact Rayleigh channel (Theorem 1 + Bernoulli fast path)."""

    has_exact_probabilities = True

    @property
    def name(self) -> str:
        return "rayleigh"

    @property
    def kernel(self) -> Theorem1Kernel:
        """The cached Theorem-1 tensors for this ``(instance, β)`` pair."""
        kern = getattr(self, "_kernel", None)
        if kern is None:
            kern = Theorem1Kernel(self.instance, self.beta)
            self._kernel = kern
        return kern

    def realize(self, active, rng=None) -> np.ndarray:
        mask = self._mask(active)
        gen = as_generator(rng)
        p = np.where(mask, self.kernel.conditional_binary(mask), 0.0)
        return gen.random(self.n) < p

    def realize_batch(self, patterns: np.ndarray, rng=None) -> np.ndarray:
        pats = self._patterns(patterns)
        _metrics.add("channel.realize_slots", pats.shape[0])
        gen = as_generator(rng)
        p = self.kernel.conditional_batch(pats)
        return pats & (gen.random(pats.shape) < p)

    def slot_fields(self, num_slots: int, rng=None) -> np.ndarray:
        """One uniform row per slot — the Bernoulli fast path's only
        randomness.  ``gen.random`` fills element-sequentially, so any
        grouping of slots into calls draws identical rows."""
        return as_generator(rng).random((max(0, num_slots), self.n))

    def apply_slot_fields(self, fields, patterns, offset: int = 0) -> np.ndarray:
        """Threshold the cached uniforms against the exact conditional
        probabilities of the (possibly corrected) patterns.

        Only transmitting links can succeed, so probabilities are needed
        solely at the transmitting entries.  Entries of sparse slots go
        straight to the kernel's exact ragged gather
        (:meth:`~repro.fading.success.Theorem1Kernel.conditional_at`,
        cost ``a`` per entry).  Entries of dense slots (active count
        above the kernel's ``screen_cutoff``) are first screened against
        the top-K interferer upper bound
        (:meth:`~repro.fading.success.Theorem1Kernel.screen_bound`, cost
        ``K`` per entry): a uniform at or above the bound is at or above
        the exact probability too, so the entry fails without the ``a²``
        work, and only the rare survivors are evaluated exactly.  Either
        way every surviving comparison is ``u < p`` with the exact ``p``,
        so outcomes are bit-identical to unscreened evaluation."""
        pats = self._patterns(patterns)
        out = np.zeros(pats.shape, dtype=bool)
        rows, cols = np.nonzero(pats)
        if rows.size == 0:
            return out
        u = fields[offset : offset + pats.shape[0]]
        kern = self.kernel
        if not kern.supports_entry_gather:
            p = kern.conditional_batch(pats)[rows, cols]
            hit = u[rows, cols] < p
            out[rows[hit], cols[hit]] = True
            return out
        u_e = u[rows, cols]
        counts = np.bincount(rows, minlength=pats.shape[0])
        screened = counts[rows] > kern.screen_cutoff
        survive = np.ones(rows.size, dtype=bool)
        if screened.any():
            bound = kern.screen_bound(pats, rows[screened], cols[screened])
            survive[screened] = u_e[screened] < bound
        srows = rows[survive]
        scols = cols[survive]
        p = kern.conditional_at(pats, srows, scols, actives=(rows, cols, counts))
        live = u_e[survive] < p
        plain = ~screened[survive]
        kern.note_hit_rate(int(plain.sum()), int(live[plain].sum()))
        out[srows[live], scols[live]] = True
        return out

    def counterfactual(self, active, rng=None) -> np.ndarray:
        """Sampled success-if-sent with the exact conditional law.

        The conditional probability of link ``i`` does not depend on its
        own entry of the pattern, so one closed-form evaluation covers
        senders (realized outcome) and idlers (counterfactual) alike.
        """
        mask = self._mask(active)
        gen = as_generator(rng)
        return gen.random(self.n) < self.kernel.conditional_binary(mask)

    def counterfactual_batch(self, patterns: np.ndarray, rng=None) -> np.ndarray:
        """Batched success-if-sent draws: one ``(B, n) @ (n, n)`` product
        against the cached log factors plus one uniform block.

        Row ``t`` has the same law as ``counterfactual(patterns[t])``, and
        the uniforms are consumed in row order, so a batch draws exactly
        the variates the per-round loop would.
        """
        pats = self._patterns(patterns)
        _metrics.add("channel.counterfactual_slots", pats.shape[0])
        gen = as_generator(rng)
        return gen.random(pats.shape) < self.kernel.conditional_batch(pats)

    def success_probability(self, q, rng=None) -> np.ndarray:
        qv = check_probability_vector(q, self.n)
        return qv * self.kernel.conditional(qv)

    def conditional_success_probability(self, q, rng=None) -> np.ndarray:
        qv = check_probability_vector(q, self.n)
        return self.kernel.conditional(qv)
