"""The Rayleigh channel — Theorem-1 closed form + distribution-exact sampling.

The fast path throughout: conditioned on the transmit pattern, distinct
receivers' success events depend on disjoint columns of the independent
exponential draw matrix, so they are mutually independent Bernoullis
with exactly the Theorem-1 probabilities (see
:mod:`repro.fading.rayleigh` for the argument and the statistical test
pinning it).  Sampling those Bernoullis is therefore
*distribution-identical* to explicit exponential sampling at a fraction
of the cost, and the closed form makes every probability query exact.
"""

from __future__ import annotations

import numpy as np

from repro.channel.base import Channel
from repro.fading.success import (
    success_probability,
    success_probability_conditional,
    success_probability_conditional_batch,
)
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability_vector

__all__ = ["RayleighChannel"]


class RayleighChannel(Channel):
    """Exact Rayleigh channel (Theorem 1 + Bernoulli fast path)."""

    has_exact_probabilities = True

    @property
    def name(self) -> str:
        return "rayleigh"

    def realize(self, active, rng=None) -> np.ndarray:
        mask = self._mask(active)
        gen = as_generator(rng)
        p = np.where(
            mask,
            success_probability_conditional(
                self.instance, mask.astype(np.float64), self.beta
            ),
            0.0,
        )
        return gen.random(self.n) < p

    def realize_batch(self, patterns: np.ndarray, rng=None) -> np.ndarray:
        pats = self._patterns(patterns)
        gen = as_generator(rng)
        p = success_probability_conditional_batch(self.instance, pats, self.beta)
        return pats & (gen.random(pats.shape) < p)

    def counterfactual(self, active, rng=None) -> np.ndarray:
        """Sampled success-if-sent with the exact conditional law.

        The conditional probability of link ``i`` does not depend on its
        own entry of the pattern, so one closed-form evaluation covers
        senders (realized outcome) and idlers (counterfactual) alike.
        """
        mask = self._mask(active)
        gen = as_generator(rng)
        p = success_probability_conditional(
            self.instance, mask.astype(np.float64), self.beta
        )
        return gen.random(self.n) < p

    def success_probability(self, q, rng=None) -> np.ndarray:
        return success_probability(self.instance, q, self.beta)

    def conditional_success_probability(self, q, rng=None) -> np.ndarray:
        qv = check_probability_vector(q, self.n)
        return success_probability_conditional(self.instance, qv, self.beta)
