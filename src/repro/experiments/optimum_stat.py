"""E3 — the "49.75 successful transmissions" optimum statistic.

Section 7 reports that choosing the optimal set of sending links under
uniform powers on the Figure-1 networks yields on average 49.75
successful transmissions (out of 100 links).  Exact maximisation is
NP-hard and the paper does not state its method; we report the
multi-restart local-search estimate together with the plain greedy lower
bound, and on truncated (small) instances the exact branch-and-bound
value so the estimator's gap is visible.
"""

from __future__ import annotations

import numpy as np

from repro.capacity.greedy import greedy_capacity
from repro.capacity.optimum import local_search_capacity, optimal_capacity_bruteforce
from repro.engine.executor import (
    Task,
    get_worker_context,
    make_tasks,
    map_tasks,
)
from repro.obs import StageTimer
from repro.engine.faults import usable_results
from repro.engine.registry import register, scaled_config
from repro.experiments.config import Figure1Config
from repro.experiments.runner import ExperimentResult
from repro.experiments.workloads import figure1_network, instance_pair
from repro.utils.rng import RngFactory
from repro.utils.stats import summarize
from repro.utils.tables import format_table

__all__ = ["run_optimum_stat"]

PAPER_VALUE = 49.75


def _optimum_task(task: Task) -> tuple[int, int, int, int]:
    """One network: greedy and local-search sizes, plus the exact-vs-LS
    calibration pair on its truncated subinstance."""
    cfg, restarts, exact_subinstance_size = get_worker_context()
    net_idx = task.payload
    factory = RngFactory(cfg.seed)
    beta = cfg.params.beta
    net = figure1_network(cfg, net_idx)
    inst, _ = instance_pair(net, cfg.params, with_sqrt=False)
    greedy = int(greedy_capacity(inst, beta).size)
    ls = int(
        local_search_capacity(
            inst, beta, rng=factory.stream("opt-ls", net_idx), restarts=restarts
        ).size
    )
    # Exact-vs-estimator calibration on a truncated instance.
    k = min(exact_subinstance_size, inst.n)
    sub = inst.subinstance(np.arange(k))
    exact = int(optimal_capacity_bruteforce(sub, beta).size)
    ls_sub = int(
        local_search_capacity(
            sub, beta, rng=factory.stream("opt-ls-small", net_idx), restarts=restarts
        ).size
    )
    return greedy, ls, exact, ls_sub


@register(
    "E3",
    title="Optimum statistic (paper: 49.75)",
    config=lambda scale, seed: {"config": scaled_config(Figure1Config, scale, seed)},
)
def run_optimum_stat(
    config: "Figure1Config | None" = None,
    *,
    restarts: int = 8,
    exact_subinstance_size: int = 18,
    jobs: "int | None" = 1,
) -> ExperimentResult:
    """Estimate the uniform-power optimum on the Figure-1 ensemble."""
    cfg = config if config is not None else Figure1Config.quick()

    timer = StageTimer()
    with timer.stage("sweep"):
        tasks = make_tasks(
            range(cfg.num_networks),
            root_seed=cfg.seed,
            name="optimum-task",
        )
        per_network = map_tasks(
            _optimum_task,
            tasks,
            jobs=jobs,
            context=(cfg, restarts, exact_subinstance_size),
            stage="networks",
        )

    good = usable_results(per_network, "the E3 optimum sweep")
    greedy_sizes = [row[0] for row in good]
    ls_sizes = [row[1] for row in good]
    exact_small = [row[2] for row in good]
    ls_small = [row[3] for row in good]

    ls = summarize(ls_sizes)
    greedy = summarize(greedy_sizes)
    gap = [e - l for e, l in zip(exact_small, ls_small)]
    rows = [
        ["local-search OPT estimate", ls.mean, ls.ci_half_width, ls.minimum, ls.maximum],
        ["greedy lower bound", greedy.mean, greedy.ci_half_width, greedy.minimum, greedy.maximum],
        ["paper reported optimum", PAPER_VALUE, 0.0, None, None],
        [
            f"exact B&B on first {min(exact_subinstance_size, cfg.num_links)} links",
            float(np.mean(exact_small)),
            0.0,
            float(np.min(exact_small)),
            float(np.max(exact_small)),
        ],
        [
            "estimator gap on same (exact - LS)",
            float(np.mean(gap)),
            0.0,
            float(np.min(gap)),
            float(np.max(gap)),
        ],
    ]
    checks = {
        # With best-response refinement the estimator lands within ~2.5%
        # of 49.75 at the paper's exact geometry (n = 100 on 1000²).  At
        # other sizes the optimum does not scale exactly linearly in n
        # (boundary links see less interference), so the band widens.
        f"OPT estimate within {10 if cfg.num_links == 100 else 25}% of paper "
        "value (scaled)": abs(ls.mean - PAPER_VALUE * cfg.num_links / 100.0)
        <= (0.10 if cfg.num_links == 100 else 0.25)
        * PAPER_VALUE
        * cfg.num_links
        / 100.0,
        "estimator >= greedy": ls.mean >= greedy.mean - 1e-9,
        "estimator matches exact on small instances": float(np.mean(gap)) <= 0.5,
    }
    text = format_table(
        ["quantity", "mean", "ci95", "min", "max"],
        rows,
        title="E3 — uniform-power optimum on Figure-1 networks "
        f"(n={cfg.num_links}, {cfg.num_networks} networks)",
        precision=2,
    )
    return ExperimentResult(
        experiment_id="E3",
        title="Optimum statistic (paper: 49.75 successes on average)",
        text=text,
        data={
            "local_search_sizes": ls_sizes,
            "greedy_sizes": greedy_sizes,
            "exact_small": exact_small,
            "ls_small": ls_small,
            "paper_value": PAPER_VALUE,
        },
        config=repr(cfg),
        checks=checks,
        timings=timer.timings,
    )
