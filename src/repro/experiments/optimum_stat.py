"""E3 — the "49.75 successful transmissions" optimum statistic.

Section 7 reports that choosing the optimal set of sending links under
uniform powers on the Figure-1 networks yields on average 49.75
successful transmissions (out of 100 links).  Exact maximisation is
NP-hard and the paper does not state its method; we report the
multi-restart local-search estimate together with the plain greedy lower
bound, and on truncated (small) instances the exact branch-and-bound
value so the estimator's gap is visible.
"""

from __future__ import annotations

import numpy as np

from repro.capacity.greedy import greedy_capacity
from repro.capacity.optimum import local_search_capacity, optimal_capacity_bruteforce
from repro.experiments.config import Figure1Config
from repro.experiments.runner import ExperimentResult
from repro.experiments.workloads import figure1_networks, instance_pair
from repro.utils.rng import RngFactory
from repro.utils.stats import summarize
from repro.utils.tables import format_table

__all__ = ["run_optimum_stat"]

PAPER_VALUE = 49.75


def run_optimum_stat(
    config: "Figure1Config | None" = None,
    *,
    restarts: int = 8,
    exact_subinstance_size: int = 18,
) -> ExperimentResult:
    """Estimate the uniform-power optimum on the Figure-1 ensemble."""
    cfg = config if config is not None else Figure1Config.quick()
    factory = RngFactory(cfg.seed)
    beta = cfg.params.beta

    greedy_sizes: list[int] = []
    ls_sizes: list[int] = []
    exact_small: list[int] = []
    ls_small: list[int] = []
    for net_idx, net in enumerate(figure1_networks(cfg)):
        inst, _ = instance_pair(net, cfg.params, with_sqrt=False)
        greedy_sizes.append(int(greedy_capacity(inst, beta).size))
        ls_sizes.append(
            int(
                local_search_capacity(
                    inst, beta, rng=factory.stream("opt-ls", net_idx), restarts=restarts
                ).size
            )
        )
        # Exact-vs-estimator calibration on a truncated instance.
        k = min(exact_subinstance_size, inst.n)
        sub = inst.subinstance(np.arange(k))
        exact_small.append(int(optimal_capacity_bruteforce(sub, beta).size))
        ls_small.append(
            int(
                local_search_capacity(
                    sub, beta, rng=factory.stream("opt-ls-small", net_idx), restarts=restarts
                ).size
            )
        )

    ls = summarize(ls_sizes)
    greedy = summarize(greedy_sizes)
    gap = [e - l for e, l in zip(exact_small, ls_small)]
    rows = [
        ["local-search OPT estimate", ls.mean, ls.ci_half_width, ls.minimum, ls.maximum],
        ["greedy lower bound", greedy.mean, greedy.ci_half_width, greedy.minimum, greedy.maximum],
        ["paper reported optimum", PAPER_VALUE, 0.0, None, None],
        [
            f"exact B&B on first {min(exact_subinstance_size, cfg.num_links)} links",
            float(np.mean(exact_small)),
            0.0,
            float(np.min(exact_small)),
            float(np.max(exact_small)),
        ],
        [
            "estimator gap on same (exact - LS)",
            float(np.mean(gap)),
            0.0,
            float(np.min(gap)),
            float(np.max(gap)),
        ],
    ]
    checks = {
        # With best-response refinement the estimator lands within ~2.5%
        # of 49.75 at the paper's exact geometry (n = 100 on 1000²).  At
        # other sizes the optimum does not scale exactly linearly in n
        # (boundary links see less interference), so the band widens.
        f"OPT estimate within {10 if cfg.num_links == 100 else 25}% of paper "
        "value (scaled)": abs(ls.mean - PAPER_VALUE * cfg.num_links / 100.0)
        <= (0.10 if cfg.num_links == 100 else 0.25)
        * PAPER_VALUE
        * cfg.num_links
        / 100.0,
        "estimator >= greedy": ls.mean >= greedy.mean - 1e-9,
        "estimator matches exact on small instances": float(np.mean(gap)) <= 0.5,
    }
    text = format_table(
        ["quantity", "mean", "ci95", "min", "max"],
        rows,
        title="E3 — uniform-power optimum on Figure-1 networks "
        f"(n={cfg.num_links}, {cfg.num_networks} networks)",
        precision=2,
    )
    return ExperimentResult(
        experiment_id="E3",
        title="Optimum statistic (paper: 49.75 successes on average)",
        text=text,
        data={
            "local_search_sizes": ls_sizes,
            "greedy_sizes": greedy_sizes,
            "exact_small": exact_small,
            "ls_small": ls_small,
            "paper_value": PAPER_VALUE,
        },
        config=repr(cfg),
        checks=checks,
    )
