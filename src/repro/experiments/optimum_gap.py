"""E11 — the measured Rayleigh/non-fading optimum gap vs log* n.

Theorem 2 proves the Rayleigh optimum is at most ``O(log* n)`` times the
non-fading optimum, and Section 8 conjectures the true factor is a
constant.  This experiment measures both optima numerically across
network sizes: the non-fading side by local search, the Rayleigh side by
gradient ascent on the exact Theorem-1 objective (warm-started with the
non-fading solution and rounded to a vertex).

Expected shape: the measured ratio stays bounded by a small constant —
on these interference-dominated workloads it is in fact *below 1*
(fading strictly hurts the optimum), far under the ``log* n`` ceiling,
supporting the constant-factor conjecture.
"""

from __future__ import annotations

from repro.analysis.model_gap import measured_optimum_gap
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.engine.registry import register, seed_kwargs
from repro.experiments.config import PaperParameters
from repro.experiments.runner import ExperimentResult
from repro.geometry.placement import paper_random_network
from repro.utils.logstar import log_star
from repro.utils.rng import RngFactory
from repro.utils.tables import format_table

__all__ = ["run_optimum_gap"]


@register(
    "E11",
    title="Measured optimum gap vs log* n",
    config=lambda scale, seed: {
        "sizes": (20, 40, 80, 160) if scale == "paper" else (20, 40, 80),
        **seed_kwargs(seed),
    },
)
def run_optimum_gap(
    *,
    sizes: tuple[int, ...] = (20, 40, 80),
    networks_per_size: int = 3,
    restarts: int = 5,
    params: "PaperParameters | None" = None,
    seed: int = 2012,
) -> ExperimentResult:
    """Measure the optimum ratio across sizes (density held fixed)."""
    pp = params if params is not None else PaperParameters.figure1()
    factory = RngFactory(seed)
    rows = []
    all_ratios: list[float] = []
    for n in sizes:
        ratios = []
        nf_values = []
        ray_values = []
        # Scale the area with sqrt(n) to hold link density at the
        # Figure-1 level, so interference conditions are comparable.
        area = 1000.0 * (n / 100.0) ** 0.5
        for k in range(networks_per_size):
            s, r = paper_random_network(
                n, area=area, rng=factory.stream("gap-net", n, k)
            )
            inst = SINRInstance.from_network(
                Network(s, r), UniformPower(pp.power_scale), pp.alpha, pp.noise
            )
            gap = measured_optimum_gap(
                inst, pp.beta, factory.stream("gap-opt", n, k), restarts=restarts
            )
            ratios.append(gap.ratio)
            nf_values.append(gap.nonfading_value)
            ray_values.append(gap.rayleigh_value)
        all_ratios.extend(ratios)
        rows.append(
            [
                n,
                log_star(n),
                sum(nf_values) / len(nf_values),
                sum(ray_values) / len(ray_values),
                sum(ratios) / len(ratios),
                max(ratios),
            ]
        )
    checks = {
        "ratio bounded by a small constant (<= 2, far below log* n)": max(
            all_ratios
        )
        <= 2.0,
        "ratio at least 1/e (Lemma 2 direction)": min(all_ratios) >= 0.3678 - 1e-9,
        "no growth with n (max ratio at largest n <= 1.5x smallest n's)": rows[-1][5]
        <= 1.5 * max(rows[0][5], 1e-9),
    }
    text = format_table(
        ["n", "log* n", "OPT^nf (mean)", "OPT^R (mean)", "ratio mean", "ratio max"],
        rows,
        title="E11 — measured Rayleigh/non-fading optimum ratio "
        "(Theorem 2 ceiling: O(log* n); conjecture: O(1))",
        precision=3,
    )
    return ExperimentResult(
        experiment_id="E11",
        title="Optimum gap: empirical support for the constant-factor conjecture",
        text=text,
        data={"rows": rows, "ratios": all_ratios},
        config=f"sizes={sizes}, networks_per_size={networks_per_size}, params={pp!r}",
        checks=checks,
    )
