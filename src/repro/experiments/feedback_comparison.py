"""E22 — full-information vs bandit feedback in the capacity game.

The theory of Section 6 requires only *some* no-regret algorithm and
cites the non-stochastic bandit work [23] for the partial-information
case — a link that stays silent learns nothing about what sending would
have yielded.  This experiment runs the Figure-2 game with the paper's
full-information RWM learners and with bandit Exp3 learners, in both
interference models, and compares trajectories.

Expected shape: both feedback models converge to the same welfare
ballpark (the Theorem-3 guarantee is feedback-agnostic), but the bandit
learners converge more slowly and settle slightly lower — the price of
exploration; the Rayleigh discount applies equally to both.
"""

from __future__ import annotations

import numpy as np

from repro.capacity.optimum import local_search_capacity
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.engine.registry import register, scaled_config, seed_kwargs
from repro.experiments.config import Figure2Config
from repro.experiments.runner import ExperimentResult
from repro.geometry.placement import paper_random_network
from repro.learning.diagnostics import convergence_report
from repro.learning.exp3 import Exp3Learner
from repro.learning.game import CapacityGame
from repro.learning.rwm_bank import RWMLearnerBank
from repro.utils.rng import RngFactory
from repro.utils.tables import format_table

__all__ = ["run_feedback_comparison"]


@register(
    "E22",
    title="Full-information vs bandit feedback",
    config=lambda scale, seed: {
        "config": scaled_config(Figure2Config, scale, seed),
        **seed_kwargs(seed),
    },
)
def run_feedback_comparison(
    *,
    config: "Figure2Config | None" = None,
    seed: int = 2012,
    channel: "str | None" = None,
) -> ExperimentResult:
    """RWM (full information) vs Exp3 (bandit) on the Figure-2 game.

    ``channel`` swaps the faded side of the comparison (default
    ``"rayleigh"``) for any channel spec.
    """
    cfg = config if config is not None else Figure2Config.quick()
    factory = RngFactory(seed)
    beta = cfg.params.beta
    faded = channel if channel is not None else "rayleigh"
    T = cfg.num_rounds

    rows = []
    tails: dict[tuple[str, str], list[float]] = {}
    for net_idx in range(cfg.num_networks):
        s, r = paper_random_network(
            cfg.num_links,
            area=cfg.area,
            min_length=cfg.min_length,
            max_length=cfg.max_length,
            rng=factory.stream("fb-net", net_idx),
        )
        inst = SINRInstance.from_network(
            Network(s, r), UniformPower(cfg.params.power_scale),
            cfg.params.alpha, cfg.params.noise,
        )
        opt = local_search_capacity(
            inst, beta, rng=factory.stream("fb-opt", net_idx),
            restarts=cfg.opt_restarts,
        ).size
        for model in ("nonfading", faded):
            for feedback in ("full-info", "bandit"):
                game = CapacityGame(
                    inst, beta, channel=model,
                    rng=factory.stream("fb-game", net_idx, model, feedback),
                )
                if feedback == "full-info":
                    learners = RWMLearnerBank(
                        inst.n, rng=factory.stream("fb-rwm", net_idx, model)
                    )
                    res = game.play(T, learners=learners)
                else:
                    bandits = [
                        Exp3Learner(rng=child, horizon=T)
                        for child in factory.stream(
                            "fb-exp3", net_idx, model
                        ).spawn(inst.n)
                    ]
                    res = game.play(T, learners=bandits)
                tail = res.average_successes(max(10, T // 4))
                rep = convergence_report(res.success_counts.astype(float))
                tails.setdefault((model, feedback), []).append(tail / max(opt, 1))
                rows.append(
                    [
                        net_idx,
                        model,
                        feedback,
                        tail,
                        opt,
                        tail / max(opt, 1),
                        rep.round_to_90pct if rep.round_to_90pct is not None else -1,
                    ]
                )
    mean_ratio = {k: float(np.mean(v)) for k, v in tails.items()}
    checks = {
        "full-info reaches >= 60% of OPT (non-fading)": mean_ratio[
            ("nonfading", "full-info")
        ]
        >= 0.6,
        "bandit also converges to a constant fraction (>= 35% of OPT)": min(
            mean_ratio[("nonfading", "bandit")], mean_ratio[(faded, "bandit")]
        )
        >= 0.35,
        "full information at least as good as bandit (both models)": all(
            mean_ratio[(m, "full-info")] >= mean_ratio[(m, "bandit")] - 0.05
            for m in ("nonfading", faded)
        ),
        f"{faded} discount applies to both feedback models": all(
            mean_ratio[(faded, fb)] <= mean_ratio[("nonfading", fb)] + 0.05
            for fb in ("full-info", "bandit")
        ),
    }
    text = format_table(
        ["net", "model", "feedback", "tail succ/round", "OPT est", "ratio", "t(90%)"],
        rows,
        title=f"E22 — full-information RWM vs bandit Exp3 (T={T}, n={cfg.num_links})",
        precision=3,
    )
    return ExperimentResult(
        experiment_id="E22",
        title="Feedback models: the Theorem-3 guarantee is feedback-agnostic",
        text=text,
        data={"rows": rows, "mean_ratio": {f"{m}/{f}": v for (m, f), v in mean_ratio.items()}},
        config=repr(cfg),
        checks=checks,
    )
