"""E15 — block fading: when the i.i.d.-slots assumption matters.

The paper assumes fading is redrawn independently every slot, and the
Section-4 ALOHA transformation exploits it: 4 repeats of a protocol step
help because each sees a fresh channel.  Under block fading with
coherence time ``L``, repeats that land in the same block share one
channel draw and stop helping.

This experiment measures the per-step success of the 4-repeat
transformation as ``L`` grows, against two references: the exact i.i.d.
value (``1 - (1 - Q_i)^4``, L = 1 should match it) and the fully
correlated limit (all repeats in one block — only the protocol's
transmit-pattern randomness is refreshed).

Expected shape: success decreases monotonically in ``L``; ``L = 1``
matches the exact i.i.d. value; even at large ``L`` the transformed step
keeps a useful success rate (pattern redraws still help), but the
paper's "at least as good as non-fading" guarantee visibly erodes —
quantifying exactly which assumption carries the proof.
"""

from __future__ import annotations

import numpy as np

from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.engine.registry import register, seed_kwargs
from repro.experiments.config import PaperParameters
from repro.experiments.runner import ExperimentResult
from repro.channel.block import BlockFadingChannel
from repro.channel.spec import make_fading_model, parse_channel_spec
from repro.geometry.placement import paper_random_network
from repro.transform.aloha_transform import transformed_step_success_probability
from repro.utils.rng import RngFactory
from repro.utils.tables import format_table

__all__ = ["run_block_fading_check"]


@register(
    "E15",
    title="Block fading: the transformation's i.i.d. assumption",
    config=lambda scale, seed: {
        "trials": 4000 if scale == "paper" else 1200,
        **seed_kwargs(seed),
    },
)
def run_block_fading_check(
    *,
    n: int = 60,
    q_level: float = 0.3,
    block_lengths: tuple[int, ...] = (1, 2, 4, 8),
    trials: int = 1500,
    repeats: int = 4,
    params: "PaperParameters | None" = None,
    seed: int = 2012,
    channel: "str | None" = None,
) -> ExperimentResult:
    """Measure the transformed step's success across coherence times.

    ``channel`` selects the fading family of the per-block draws
    (default Rayleigh) — e.g. ``--channel nakagami:m=2`` prices the
    coherence loss under Nakagami.  The exact i.i.d. reference is the
    Rayleigh closed form, so its match check only runs for Rayleigh.
    """
    pp = params if params is not None else PaperParameters.figure1()
    factory = RngFactory(seed)
    if channel is None:
        model, family_is_rayleigh = None, True
    else:
        head, p = parse_channel_spec(channel)
        if head == "block":
            head = p.pop("family", "rayleigh")
        p.pop("slots", None)
        p.pop("coherence", None)
        model = make_fading_model(head, p)
        family_is_rayleigh = head in ("rayleigh", "rayleigh-mc")
    s, r = paper_random_network(
        n, area=1000.0 * (n / 100.0) ** 0.5, rng=factory.stream("block-net")
    )
    inst = SINRInstance.from_network(
        Network(s, r), UniformPower(pp.power_scale), pp.alpha, pp.noise
    )
    q = np.full(n, q_level)
    exact_iid = float(
        transformed_step_success_probability(inst, q, pp.beta, repeats=repeats).sum()
    )

    rows = []
    means = []
    for L in block_lengths:
        ch = BlockFadingChannel(inst, pp.beta, block_length=L, model=model)
        gen = factory.stream("block-ch", L)
        total = 0.0
        for _ in range(trials):
            total += ch.transformed_step(q, gen, repeats=repeats).sum()
        mean = total / trials
        means.append(mean)
        rows.append([L, mean, mean / exact_iid])
    band = 5.0 * np.sqrt(exact_iid / trials)  # crude Poisson-style band
    checks = {
        "L = 1 matches the exact i.i.d. transformation": not family_is_rayleigh
        or abs(means[0] - exact_iid) <= band + 0.05 * exact_iid,
        "success non-increasing in coherence time": all(
            a >= b - 0.05 * exact_iid for a, b in zip(means, means[1:])
        ),
        # The 5% floor is calibrated to Rayleigh-depth fading; milder
        # families legitimately lose less, so they only need "no gain".
        "correlation causes a real loss (>= 5% at the longest L)": (
            means[-1] <= 0.95 * means[0]
            if family_is_rayleigh
            else means[-1] <= means[0] + band
        ),
        "pattern randomness keeps the step useful (>= 50% of i.i.d.)": means[-1]
        >= 0.5 * exact_iid,
    }
    rows.insert(0, ["(exact i.i.d.)", exact_iid, 1.0])
    text = format_table(
        ["coherence L", "E[successes]/step", "fraction of i.i.d."],
        rows,
        title=f"E15 — the 4-repeat transformation under block fading "
        f"(n={n}, q={q_level}, {trials} trials)",
        precision=3,
    )
    return ExperimentResult(
        experiment_id="E15",
        title="Block fading: the transformation's independence assumption, priced",
        text=text,
        data={"rows": rows, "exact_iid": exact_iid},
        config=f"n={n}, q={q_level}, L={block_lengths}, trials={trials}",
        checks=checks,
    )
