"""E9 — regret-learning statistics (Theorems 3–4, Lemmas 4–5).

Quantitative backing for Section 6 on the Figure-2 ensemble:

* per-player external regret against realized rewards and against the
  expected rewards ``h̄`` — Lemma 4 says the two differ by
  ``O(sqrt(T ln T))``;
* the Lemma-5 invariant ``X ≤ F ≤ 2X + εn``;
* the capacity ratio: average successes per round over the final
  quarter vs the non-fading OPT estimate (Theorem 3/4:
  ``Ω(|OPT|)``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.capacity.optimum import local_search_capacity
from repro.engine.registry import register, scaled_config
from repro.experiments.config import Figure2Config
from repro.experiments.runner import ExperimentResult
from repro.experiments.workloads import figure2_networks, instance_pair
from repro.learning.game import CapacityGame
from repro.utils.rng import RngFactory
from repro.utils.tables import format_table

__all__ = ["run_regret_stats"]


@register(
    "E9",
    title="Regret-learning statistics",
    config=lambda scale, seed: {"config": scaled_config(Figure2Config, scale, seed)},
)
def run_regret_stats(
    config: "Figure2Config | None" = None,
    *,
    channel: "str | None" = None,
) -> ExperimentResult:
    """Record regret, Lemma-5, and capacity-ratio statistics.

    ``channel`` swaps the faded side of the comparison (default
    ``"rayleigh"``).  The Lemma-4 realized-vs-expected comparison uses
    the exact Theorem-1 expected rewards and is therefore evaluated only
    on the exact Rayleigh runs; other families fall back to realized
    regret there.
    """
    cfg = config if config is not None else Figure2Config.quick()
    factory = RngFactory(cfg.seed)
    beta = cfg.params.beta
    faded = channel if channel is not None else "rayleigh"
    T = cfg.num_rounds

    rows = []
    lemma5_ok = True
    lemma4_ok = True
    ratio_ok = True
    networks = figure2_networks(cfg)
    for net_idx, net in enumerate(networks):
        inst, _ = instance_pair(net, cfg.params, with_sqrt=False)
        opt = local_search_capacity(
            inst, beta, rng=factory.stream("rs-opt", net_idx), restarts=cfg.opt_restarts
        ).size
        for model in ("nonfading", faded):
            game = CapacityGame(
                inst, beta, channel=model, rng=factory.stream("rs-game", net_idx, model)
            )
            res = game.play(T)
            realized = res.realized_regret()
            expected = res.expected_regret(inst) if model == "rayleigh" else realized
            X, F = res.lemma5(inst)
            eps = float(np.max(expected)) / T
            lemma5_ok &= X <= F + 1e-9 and F <= 2 * X + eps * inst.n + 1e-6
            # Lemma 4: |R_h - R_hbar| = O(sqrt(T ln T)); allow a generous
            # constant (the proof's is sqrt(16)).
            gap = float(np.max(np.abs(expected - realized)))
            lemma4_ok &= gap <= 8.0 * math.sqrt(T * math.log(max(T, 2)))
            tail = res.average_successes(max(10, T // 4))
            ratio = tail / opt if opt else float("nan")
            ratio_ok &= ratio >= 0.3  # Ω(|OPT|) with an honest constant
            rows.append(
                [
                    net_idx,
                    model,
                    float(np.mean(realized)) / T,
                    float(np.mean(expected)) / T,
                    X,
                    F,
                    tail,
                    opt,
                    ratio,
                ]
            )
    checks = {
        "Lemma 5 invariant X <= F <= 2X + eps*n on every run": lemma5_ok,
        "Lemma 4: realized vs expected regret within O(sqrt(T ln T))": lemma4_ok,
        "tail capacity >= 0.3 x OPT estimate on every run (Theorem 3)": ratio_ok,
    }
    text = format_table(
        [
            "net",
            "model",
            "avg regret/T (realized)",
            "avg regret/T (expected)",
            "X",
            "F",
            "tail succ/round",
            "OPT est",
            "ratio",
        ],
        rows,
        title=f"E9 — regret learning statistics (T={T}, n={cfg.num_links})",
        precision=3,
    )
    return ExperimentResult(
        experiment_id="E9",
        title="Regret learning: Lemmas 4-5 and the Theorem-3 capacity ratio",
        text=text,
        data={"rows": rows},
        config=repr(cfg),
        checks=checks,
    )
