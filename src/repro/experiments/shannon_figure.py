"""E17 — Figure 1 with Shannon utilities: the crossover is a threshold
artifact.

The paper's figures use binary utilities; its theory covers arbitrary
valid utility functions (Definition 1).  This experiment re-runs the
Figure-1 sweep with the Shannon profile ``u(γ) = log(1 + γ)`` and
contrasts the shapes:

* **binary** — interior peak and a Rayleigh/non-fading crossover (more
  transmitters eventually destroy *threshold* successes, and fading's
  lucky draws win at high interference);
* **Shannon** — both curves increase monotonically in q (the log softens
  the interference penalty, so total rate keeps growing), and the
  non-fading curve dominates at *every* q with a ratio close to E5's
  Shannon transfer ratio (~0.88 ≥ 1/e): under a smooth utility there is
  nothing for fading's luck to win.

Rayleigh values are Monte-Carlo (Shannon utility has no closed-form
expectation); non-fading values are exact given the sampled patterns.
"""

from __future__ import annotations

import numpy as np

from repro.engine.registry import register, scaled_config
from repro.experiments.config import Figure1Config
from repro.experiments.runner import ExperimentResult
from repro.experiments.workloads import figure1_networks, instance_pair
from repro.fading.rayleigh import simulate_sinr
from repro.utility.shannon import ShannonUtility
from repro.utils.rng import RngFactory
from repro.utils.tables import format_series

__all__ = ["run_shannon_figure"]


@register(
    "E17",
    title="Shannon-utility Figure 1 (no crossover)",
    config=lambda scale, seed: {
        "config": scaled_config(Figure1Config, scale, seed),
        "fading_slots": 10 if scale == "paper" else 6,
    },
)
def run_shannon_figure(
    config: "Figure1Config | None" = None,
    *,
    fading_slots: int = 6,
    sinr_cap: float = 1e4,
) -> ExperimentResult:
    """Sweep q and measure total Shannon capacity in both models."""
    cfg = config if config is not None else Figure1Config.quick()
    factory = RngFactory(cfg.seed)
    probs = np.asarray(cfg.probabilities, dtype=np.float64)
    networks = figure1_networks(cfg)

    nf_curve = np.zeros(probs.size)
    ray_curve = np.zeros(probs.size)
    samples = np.zeros(probs.size)
    for net_idx, net in enumerate(networks):
        inst, _ = instance_pair(net, cfg.params, with_sqrt=False)
        profile = ShannonUtility(inst.n, cap=sinr_cap)
        gen = factory.stream("shannon-run", net_idx)
        for k, q in enumerate(probs):
            for _ in range(cfg.num_transmit_seeds):
                pattern = gen.random(inst.n) < q
                if not pattern.any():
                    samples[k] += 1
                    continue
                sinr_nf = inst.sinr(pattern)
                nf_curve[k] += float(profile(sinr_nf)[pattern].sum())
                sinr_r = simulate_sinr(inst, pattern, gen, num_slots=fading_slots)
                ray_curve[k] += float(
                    np.where(pattern, profile(sinr_r), 0.0).sum(axis=1).mean()
                )
                samples[k] += 1
    nf_curve /= np.maximum(samples, 1)
    ray_curve /= np.maximum(samples, 1)

    ratio = ray_curve / np.maximum(nf_curve, 1e-12)
    # Noise tolerance for monotonicity: a few percent of the curve top.
    tol = 0.04 * float(nf_curve.max())
    checks = {
        "non-fading Shannon capacity monotone in q (no interior peak)": bool(
            np.all(np.diff(nf_curve) >= -tol)
        ),
        "Rayleigh Shannon capacity monotone in q": bool(
            np.all(np.diff(ray_curve) >= -tol)
        ),
        "non-fading dominates at every q (no crossover)": bool(
            np.all(nf_curve + tol >= ray_curve)
        ),
        "transfer ratio within [1/e, 1] everywhere": bool(
            np.all(ratio >= np.exp(-1.0) - 0.02) and np.all(ratio <= 1.0 + 0.05)
        ),
    }
    text = format_series(
        "q",
        [float(p) for p in probs],
        {
            "shannon nonfading": nf_curve.tolist(),
            "shannon rayleigh": ray_curve.tolist(),
            "ratio": ratio.tolist(),
        },
        title="E17 — total Shannon capacity vs transmission probability",
        precision=2,
    )
    return ExperimentResult(
        experiment_id="E17",
        title="Shannon-utility Figure 1: the crossover is a threshold artifact",
        text=text,
        data={
            "q": probs.tolist(),
            "nonfading": nf_curve.tolist(),
            "rayleigh": ray_curve.tolist(),
            "ratio": ratio.tolist(),
        },
        config=repr(cfg),
        checks=checks,
    )
