"""E19 — measured approximation factors against exact optima.

The paper's framing is worst-case approximation factors; this table
grounds it empirically.  On instances small enough for exact branch &
bound (n = 14, across four topology families), every capacity algorithm
is scored by its worst and mean ratio to the exact uniform-power
optimum.

Expected shape: the refined local search is essentially exact; the
affectance greedy stays within a modest constant of optimal everywhere
(its published guarantee is a constant factor, with a much smaller
typical-case gap); power control — which may exceed the *uniform-power*
optimum thanks to its extra freedom — reaches at least the optimum on
the nested family where uniform power collapses.
"""

from __future__ import annotations

import numpy as np

from repro.capacity.greedy import greedy_capacity
from repro.capacity.optimum import local_search_capacity, optimal_capacity_bruteforce
from repro.capacity.power_control import power_control_capacity
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.engine.registry import register, seed_kwargs
from repro.experiments.config import PaperParameters
from repro.experiments.runner import ExperimentResult
from repro.geometry.placement import (
    cluster_network,
    grid_network,
    nested_pairs_network,
    paper_random_network,
)
from repro.utils.rng import RngFactory
from repro.utils.tables import format_table

__all__ = ["run_approximation_factors"]


def _families(n: int, factory: RngFactory, seeds: int):
    """Yield (family, network) pairs of ~n links each."""
    for k in range(seeds):
        s, r = paper_random_network(
            n, area=1000.0 * (n / 100.0) ** 0.5, rng=factory.stream("af-random", k)
        )
        yield "random", Network(s, r)
        s, r = cluster_network(
            2, n // 2, area=400.0, cluster_radius=50.0,
            rng=factory.stream("af-cluster", k),
        )
        yield "cluster", Network(s, r)
        side = max(2, int(round(n**0.5)))
        s, r = grid_network(
            side, side, spacing=120.0, link_length=25.0,
            rng=factory.stream("af-grid", k),
        )
        yield "grid", Network(s, r)
    s, r = nested_pairs_network(min(n, 10), base_length=10.0, growth=6.0)
    yield "nested", Network(s, r)


@register(
    "E19",
    title="Approximation factors vs exact optima",
    config=lambda scale, seed: {
        "seeds": 6 if scale == "paper" else 3,
        **seed_kwargs(seed),
    },
)
def run_approximation_factors(
    *,
    n: int = 14,
    seeds: int = 3,
    params: "PaperParameters | None" = None,
    seed: int = 2012,
) -> ExperimentResult:
    """Score the capacity algorithms against exact B&B optima."""
    pp = params if params is not None else PaperParameters.figure1()
    factory = RngFactory(seed)

    ratios: dict[tuple[str, str], list[float]] = {}
    ls_gaps: list[int] = []
    pc_beats_exact_on_nested = False
    for family, net in _families(n, factory, seeds):
        # The nested family is only interesting at its separating physics.
        beta, alpha, noise = (
            (1.0, 3.0, 0.0) if family == "nested" else (pp.beta, pp.alpha, pp.noise)
        )
        inst = SINRInstance.from_network(
            net, UniformPower(pp.power_scale), alpha, noise
        )
        exact = optimal_capacity_bruteforce(inst, beta).size
        if exact == 0:
            continue
        greedy = greedy_capacity(inst, beta).size
        ls = local_search_capacity(
            inst, beta, rng=factory.stream("af-ls", family, net.n), restarts=6
        ).size
        pc = power_control_capacity(net, beta, alpha, noise).selected.size
        ratios.setdefault((family, "greedy"), []).append(greedy / exact)
        ratios.setdefault((family, "local search"), []).append(ls / exact)
        ratios.setdefault((family, "power control"), []).append(pc / exact)
        ls_gaps.append(exact - ls)
        if family == "nested" and pc >= exact:
            pc_beats_exact_on_nested = True

    rows = []
    greedy_worst = 1.0
    for (family, alg), vals in sorted(ratios.items()):
        worst, mean = float(np.min(vals)), float(np.mean(vals))
        rows.append([family, alg, mean, worst])
        if alg == "greedy":
            greedy_worst = min(greedy_worst, worst)
    checks = {
        # At n ≈ 14 one link is ~7% of the optimum, so the right criterion
        # for the randomized estimator is an absolute gap, not a ratio.
        "refined local search within 1 link of exact everywhere": max(ls_gaps) <= 1,
        "greedy within its constant factor (>= 0.5x exact) everywhere": greedy_worst
        >= 0.5,
        "power control >= uniform-power optimum on the nested family": (
            pc_beats_exact_on_nested
        ),
    }
    text = format_table(
        ["family", "algorithm", "mean ratio to exact", "worst ratio"],
        rows,
        title=f"E19 — measured approximation factors vs exact B&B (n≈{n})",
        precision=3,
    )
    return ExperimentResult(
        experiment_id="E19",
        title="Approximation factors of the capacity algorithms, measured",
        text=text,
        data={"ratios": {f"{f}/{a}": v for (f, a), v in ratios.items()}},
        config=f"n={n}, seeds={seeds}",
        checks=checks,
    )
