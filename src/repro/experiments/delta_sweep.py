"""E21 — power assignments vs link-length diversity Δ.

The paper's related work orders power assignments by how they cope with
length diversity: uniform power costs ``O(log Δ)`` ([5]), square-root
power ``O(log log Δ + log n)`` ([4]), and free power control a constant
([6]) — where ``Δ`` is the max/min link-length ratio.  This experiment
sweeps Δ on a mixed workload (nested geometric length classes diluted
into a plane) and measures the capacity of each assignment relative to
power control.

Expected shape: at Δ ≈ 1 all three agree; as Δ grows the uniform-power
capacity falls away first and fastest, square-root holds on longer, and
power control stays flat — the qualitative hierarchy behind the cited
bounds.
"""

from __future__ import annotations

import numpy as np

from repro.capacity.greedy import greedy_capacity
from repro.capacity.power_control import power_control_capacity
from repro.core.network import Network
from repro.core.power import SquareRootPower, UniformPower
from repro.core.sinr import SINRInstance
from repro.engine.registry import register, seed_kwargs
from repro.experiments.runner import ExperimentResult
from repro.utils.rng import RngFactory
from repro.utils.tables import format_table

__all__ = ["run_delta_sweep"]

BETA, ALPHA = 1.0, 3.0


def _diverse_network(
    clusters: int, classes: int, delta: float, rng: np.random.Generator
) -> Network:
    """Nested length classes sharing hotspots.

    Each of ``clusters`` hotspots hosts one link per length class, all
    crossing the hotspot center (the Moscibroda–Wattenhofer nesting);
    lengths span ``[L, L·Δ]`` geometrically across classes.  Hotspots are
    spaced far apart relative to the longest link, so the contention is
    *within* hotspots — exactly the regime where the power-assignment
    hierarchy bites.
    """
    base = 10.0
    lengths = base * delta ** (np.arange(classes) / max(classes - 1, 1))
    spacing = 8.0 * lengths[-1]
    side = int(np.ceil(np.sqrt(clusters)))
    senders, receivers = [], []
    for c in range(clusters):
        center = np.array([(c % side) * spacing, (c // side) * spacing])
        center = center + rng.uniform(-0.05, 0.05, 2) * spacing
        for length in lengths:
            angle = rng.uniform(0.0, 2 * np.pi)
            half = 0.5 * length * np.array([np.cos(angle), np.sin(angle)])
            jitter = rng.uniform(-0.02, 0.02, 2) * length
            senders.append(center + half + jitter)
            receivers.append(center - half + jitter)
    return Network(np.array(senders), np.array(receivers))


@register(
    "E21",
    title="Power-assignment hierarchy vs delta",
    config=lambda scale, seed: {
        "networks_per_delta": 8 if scale == "paper" else 4,
        **seed_kwargs(seed),
    },
)
def run_delta_sweep(
    *,
    clusters: int = 6,
    classes: int = 4,
    deltas: tuple[float, ...] = (1.0, 8.0, 64.0, 512.0),
    networks_per_delta: int = 4,
    seed: int = 2012,
) -> ExperimentResult:
    """Capacity of uniform / sqrt / power-control across Δ."""
    factory = RngFactory(seed)
    n = clusters * classes
    rows = []
    rel_uniform, rel_sqrt = [], []
    for delta in deltas:
        uni, sqr, pc = [], [], []
        for k in range(networks_per_delta):
            net = _diverse_network(
                clusters, classes, delta, factory.stream("delta-net", delta, k)
            )
            inst_u = SINRInstance.from_network(net, UniformPower(1.0), ALPHA, 0.0)
            inst_s = SINRInstance.from_network(net, SquareRootPower(1.0), ALPHA, 0.0)
            uni.append(greedy_capacity(inst_u, BETA).size)
            sqr.append(greedy_capacity(inst_s, BETA).size)
            pc.append(power_control_capacity(net, BETA, ALPHA, 0.0).selected.size)
        u, s, p = float(np.mean(uni)), float(np.mean(sqr)), float(np.mean(pc))
        rel_uniform.append(u / max(p, 1e-9))
        rel_sqrt.append(s / max(p, 1e-9))
        rows.append([delta, u, s, p, u / max(p, 1e-9), s / max(p, 1e-9)])
    checks = {
        "all assignments comparable at delta = 1 (within 25%)": (
            min(rel_uniform[0], rel_sqrt[0]) >= 0.75
        ),
        "uniform power degrades with delta (ratio falls >= 30%)": rel_uniform[-1]
        <= 0.7 * rel_uniform[0],
        "sqrt power degrades strictly less than uniform at max delta": rel_sqrt[-1]
        >= rel_uniform[-1],
        "hierarchy at max delta: uniform <= sqrt <= power control": (
            rows[-1][1] <= rows[-1][2] + 1e-9 and rows[-1][2] <= rows[-1][3] + 1e-9
        ),
    }
    text = format_table(
        ["delta", "uniform", "sqrt", "power control", "uniform/PC", "sqrt/PC"],
        rows,
        title=f"E21 — capacity vs length diversity Δ (n={n}, β={BETA}, α={ALPHA})",
        precision=3,
    )
    return ExperimentResult(
        experiment_id="E21",
        title="Power-assignment hierarchy across Δ (the [4]/[5]/[6] ordering)",
        text=text,
        data={"rows": rows},
        config=(
            f"clusters={clusters}, classes={classes}, deltas={deltas}, "
            f"networks_per_delta={networks_per_delta}"
        ),
        checks=checks,
    )
