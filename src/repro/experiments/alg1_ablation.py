"""E12 — ablation of Algorithm 1's constants (19 repeats, damping 4).

The proof of Theorem 2 fixes two constants: 19 independent repetitions
per stage and a probability damping of ``1/(4 b_k)``.  This ablation
sweeps both and measures, against the exact Rayleigh probabilities, how
often the domination claim of Lemma 3 fails per link — quantifying how
conservative the paper's constants are and what they buy.

Expected shape: the paper's (19, 4) setting dominates everywhere; the
slot cost scales linearly with the repeat count; aggressive settings
(few repeats) trade slots for measurable domination violations.
"""

from __future__ import annotations

import numpy as np

from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.engine.registry import register, seed_kwargs
from repro.experiments.config import PaperParameters
from repro.experiments.runner import ExperimentResult
from repro.fading.success import success_probability
from repro.geometry.placement import paper_random_network
from repro.transform.simulation import simulate_rayleigh_optimum
from repro.utils.rng import RngFactory
from repro.utils.tables import format_table

__all__ = ["run_alg1_ablation"]


@register(
    "E12",
    title="Algorithm 1 constants ablation",
    config=lambda scale, seed: {
        "trials": 500 if scale == "paper" else 150,
        **seed_kwargs(seed),
    },
)
def run_alg1_ablation(
    *,
    n: int = 60,
    q_level: float = 0.6,
    trials: int = 200,
    repeats_grid: tuple[int, ...] = (3, 7, 19, 30),
    damping_grid: tuple[float, ...] = (2.0, 4.0, 8.0),
    params: "PaperParameters | None" = None,
    seed: int = 2012,
) -> ExperimentResult:
    """Sweep Algorithm 1's constants and measure Lemma-3 domination."""
    pp = params if params is not None else PaperParameters.figure1()
    factory = RngFactory(seed)
    s, r = paper_random_network(
        n, area=1000.0 * (n / 100.0) ** 0.5, rng=factory.stream("abl-net")
    )
    inst = SINRInstance.from_network(
        Network(s, r), UniformPower(pp.power_scale), pp.alpha, pp.noise
    )
    q = np.full(n, q_level)
    rayleigh = success_probability(inst, q, pp.beta)

    rows = []
    paper_ok = False
    monotone_ok = True
    prev_violations_by_damping: dict[float, float] = {}
    for repeats in repeats_grid:
        for damping in damping_grid:
            hits = np.zeros(n)
            slots = 0
            for t in range(trials):
                out = simulate_rayleigh_optimum(
                    inst,
                    q,
                    pp.beta,
                    factory.stream("abl-sim", repeats, damping, t),
                    repeats=repeats,
                    damping=damping,
                )
                hits += out.success
                slots = out.num_slots
            freq = hits / trials
            band = 4.0 * np.sqrt(freq * (1 - freq) / trials) + 8.0 / trials
            violations = int(np.sum(freq + band < rayleigh))
            margin = float((freq - rayleigh).min())
            rows.append([repeats, damping, slots, violations, margin])
            if repeats == 19 and damping == 4.0:
                paper_ok = violations == 0
            # More repeats at fixed damping must not create violations.
            key = damping
            if key in prev_violations_by_damping:
                monotone_ok &= violations <= prev_violations_by_damping[key] + 1
            prev_violations_by_damping[key] = violations
    checks = {
        "paper constants (19, 4) dominate on every link": paper_ok,
        "more repeats never (materially) worse": monotone_ok,
        "slot cost linear in repeats": all(
            row[2] == row[0] * rows[0][2] // rows[0][0] for row in rows
        ),
    }
    text = format_table(
        ["repeats", "damping", "slots", "violating links", "min margin"],
        rows,
        title=f"E12 — Algorithm 1 constants ablation (n={n}, q={q_level}, "
        f"{trials} trials; paper setting: repeats=19, damping=4)",
        precision=4,
    )
    return ExperimentResult(
        experiment_id="E12",
        title="Algorithm 1 ablation: what the constants 19 and 4 buy",
        text=text,
        data={"rows": rows},
        config=f"n={n}, q={q_level}, trials={trials}, params={pp!r}",
        checks=checks,
    )
