"""E2 — Figure 2: no-regret learning over time, both models.

Replication of the paper's second simulation: on 200-link networks
(lengths U[0, 100], β = 0.5, α = 2.1, ν = 0) every link runs the
Randomized Weighted Majority learner with the Section-7 losses; the
figure plots successful transmissions per round for the Rayleigh and the
non-fading model, against the (estimated) non-fading optimum.

Expected shape: both curves climb within ~30–40 rounds to near the
non-fading optimum; the Rayleigh curve fluctuates more and settles
slightly lower.

The faded side of the comparison is a channel spec (default
``"rayleigh"``); ``--channel nakagami:m=2`` replays the same learning
dynamics under another fading family.
"""

from __future__ import annotations

import numpy as np

from repro.capacity.optimum import local_search_capacity
from repro.engine.registry import register, scaled_config
from repro.experiments.config import Figure2Config
from repro.experiments.runner import ExperimentResult
from repro.experiments.workloads import figure2_networks, instance_pair
from repro.learning.game import CapacityGame
from repro.utils.rng import RngFactory
from repro.utils.tables import format_series

__all__ = ["run_figure2"]


@register(
    "E2",
    title="Figure 2: no-regret learning over time",
    config=lambda scale, seed: {"config": scaled_config(Figure2Config, scale, seed)},
)
def run_figure2(
    config: "Figure2Config | None" = None,
    *,
    channel: "str | None" = None,
) -> ExperimentResult:
    """Run the Figure-2 experiment and render its series.

    ``channel`` swaps the faded side of the comparison (default
    ``"rayleigh"``) for any channel spec, e.g. ``"nakagami:m=2"``.
    """
    cfg = config if config is not None else Figure2Config.quick()
    factory = RngFactory(cfg.seed)
    beta = cfg.params.beta
    faded = channel if channel is not None else "rayleigh"

    curves = {
        "nonfading": np.zeros(cfg.num_rounds),
        faded: np.zeros(cfg.num_rounds),
    }
    opt_sizes: list[int] = []
    networks = figure2_networks(cfg)
    for net_idx, net in enumerate(networks):
        inst, _ = instance_pair(net, cfg.params, with_sqrt=False)
        opt = local_search_capacity(
            inst, beta, rng=factory.stream("figure2-opt", net_idx), restarts=cfg.opt_restarts
        )
        opt_sizes.append(int(opt.size))
        for model in ("nonfading", faded):
            game = CapacityGame(
                inst, beta, channel=model, rng=factory.stream("figure2-game", net_idx, model)
            )
            result = game.play(cfg.num_rounds)
            curves[model] += result.success_counts
    for model in curves:
        curves[model] /= len(networks)
    opt_mean = float(np.mean(opt_sizes))

    tail = max(10, cfg.num_rounds // 5)
    nf_tail = float(curves["nonfading"][-tail:].mean())
    ray_tail = float(curves[faded][-tail:].mean())
    head = min(10, cfg.num_rounds // 4)
    # Paper: "a good performance can already be seen after 30 to 40 time
    # steps" — formalised as the trailing average reaching 90% of its
    # final level.
    from repro.learning.diagnostics import convergence_report

    nf_conv = convergence_report(curves["nonfading"]).round_to_90pct
    checks = {
        "non-fading converges within 40 rounds (paper: 30-40)": nf_conv is not None
        and nf_conv <= 40,
        "nonfading converges near optimum (>= 60% of OPT estimate)": nf_tail
        >= 0.6 * opt_mean,
        f"{faded} converges (>= 50% of OPT estimate)": ray_tail >= 0.5 * opt_mean,
        f"nonfading settles at or above {faded}": nf_tail >= ray_tail - 0.02 * opt_mean,
        "learning improves over start": nf_tail
        >= float(curves["nonfading"][:head].mean()),
        f"{faded} fluctuates more (tail std)": float(
            curves[faded][-tail:].std()
        )
        >= float(curves["nonfading"][-tail:].std()) * 0.5,
    }
    series = {
        "nonfading": curves["nonfading"].tolist(),
        faded: curves[faded].tolist(),
        "opt estimate": [opt_mean] * cfg.num_rounds,
    }
    text = format_series(
        "round",
        list(range(1, cfg.num_rounds + 1)),
        series,
        title="Figure 2 — successful transmissions per round under no-regret learning",
        precision=2,
    )
    return ExperimentResult(
        experiment_id="E2",
        title="Figure 2: no-regret learning, Rayleigh vs non-fading",
        text=text,
        data={
            "rounds": list(range(1, cfg.num_rounds + 1)),
            **series,
            "opt_sizes": opt_sizes,
            "nonfading_tail_mean": nf_tail,
            f"{faded}_tail_mean": ray_tail,
        },
        config=repr(cfg),
        checks=checks,
    )
