"""E6 — Theorem 2 / Algorithm 1: simulating the Rayleigh optimum.

For increasing network sizes, compare three per-link quantities under a
common transmission-probability vector ``q``:

* the exact single-slot Rayleigh success probability ``Q_i(q, β)``
  (Theorem 1),
* the measured probability that Algorithm 1's ``O(log* n)``-slot
  non-fading simulation serves the link at least once,
* the number of stages/slots the simulation used.

Lemma 3 predicts the simulation's any-slot success probability
dominates the Rayleigh one for every threshold up to ``S̄(i,i)/(2ν)``
(always satisfied here), and the stage count should track ``log* n`` —
both are recorded as shape checks.
"""

from __future__ import annotations

import numpy as np

from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.engine.executor import (
    Task,
    get_worker_context,
    make_tasks,
    map_tasks,
)
from repro.obs import StageTimer
from repro.engine.faults import is_failure
from repro.engine.registry import register, seed_kwargs
from repro.experiments.config import PaperParameters
from repro.experiments.runner import ExperimentResult
from repro.fading.success import success_probability
from repro.geometry.placement import paper_random_network
from repro.transform.simulation import simulate_rayleigh_optimum
from repro.utils.logstar import log_star
from repro.utils.rng import RngFactory
from repro.utils.tables import format_table

__all__ = ["run_theorem2"]

#: Trials per executor task.  A fixed constant (never derived from the
#: worker count) so the chunk boundaries — and hence the aggregation
#: order of the partial sums — are identical for every ``jobs`` value.
_TRIAL_CHUNK = 25


def _theorem2_instance(seed: int, n: int, pp: PaperParameters) -> SINRInstance:
    factory = RngFactory(seed)
    s, r = paper_random_network(n, rng=factory.stream("t2-net", n))
    return SINRInstance.from_network(
        Network(s, r), UniformPower(pp.power_scale), pp.alpha, pp.noise
    )


def _theorem2_sim_task(task: Task):
    """One chunk of Algorithm-1 trials for one network size.

    Returns partial sums ``(hits, utility_sum, num_stages, num_slots)``
    over trials ``[start, stop)``; every trial draws from its own named
    stream, so chunks are process-independent.
    """
    from repro.utility.shannon import ShannonUtility

    seed, q_level, pp = get_worker_context()
    n, start, stop = task.payload
    factory = RngFactory(seed)
    inst = _theorem2_instance(seed, n, pp)
    q = np.full(n, q_level)
    profile = ShannonUtility(n, cap=1e6)
    hits = np.zeros(n, dtype=np.int64)
    utility_sum = np.zeros(n, dtype=np.float64)
    num_stages = num_slots = 0
    for t in range(start, stop):
        out = simulate_rayleigh_optimum(
            inst, q, pp.beta, factory.stream("t2-sim", n, t)
        )
        hits += out.success
        utility_sum += profile(np.minimum(out.best_sinr, 1e6))
        num_stages, num_slots = out.num_stages, out.num_slots
    return hits, utility_sum, num_stages, num_slots


def _theorem2_util_task(task: Task) -> np.ndarray:
    """Per-link ``E[u(γ^R)]`` estimate for one network size, batched."""
    from repro.fading.rayleigh import simulate_sinr_patterns
    from repro.utility.shannon import ShannonUtility

    seed, q_level, pp = get_worker_context()
    n, util_trials = task.payload
    factory = RngFactory(seed)
    inst = _theorem2_instance(seed, n, pp)
    profile = ShannonUtility(n, cap=1e6)
    mc_rng = factory.stream("t2-util", n)
    patterns = mc_rng.random((util_trials, n)) < q_level
    sinr = simulate_sinr_patterns(inst, patterns, mc_rng)
    vals = np.where(patterns, profile(sinr), 0.0)
    return vals.sum(axis=0) / util_trials


@register(
    "E6",
    title="Theorem 2 / Algorithm 1 simulation",
    config=lambda scale, seed: {
        "trials": 500 if scale == "paper" else 150,
        **seed_kwargs(seed),
    },
)
def run_theorem2(
    *,
    sizes: tuple[int, ...] = (20, 50, 100),
    q_level: float = 0.5,
    trials: int = 200,
    params: "PaperParameters | None" = None,
    seed: int = 2012,
    jobs: "int | None" = 1,
) -> ExperimentResult:
    """Measure Algorithm 1 against the exact Rayleigh probabilities.

    Besides the threshold (Lemma 3) check, the full Theorem-2 statement
    for general utilities is measured with the Shannon profile: the
    expected Rayleigh utility must be at most 8x the expected utility of
    the best simulation slot, ``E[u(γ^R)] ≤ 8·E[u(max_t γ^{nf,t})]``
    (the constant from the proof's decomposition).
    """
    pp = params if params is not None else PaperParameters.figure1()
    util_trials = max(trials, 200)

    timer = StageTimer()
    with timer.stage("simulate"):
        chunks = [
            (n, start, min(start + _TRIAL_CHUNK, trials))
            for n in sizes
            for start in range(0, trials, _TRIAL_CHUNK)
        ]
        sim_tasks = make_tasks(chunks, root_seed=seed, name="t2-sim-task")
        sim_parts = map_tasks(
            _theorem2_sim_task,
            sim_tasks,
            jobs=jobs,
            context=(seed, q_level, pp),
            stage="simulate",
        )

    with timer.stage("utility"):
        util_tasks = make_tasks(
            [(n, util_trials) for n in sizes],
            root_seed=seed,
            name="t2-util-task",
        )
        ray_utilities = map_tasks(
            _theorem2_util_task,
            util_tasks,
            jobs=jobs,
            context=(seed, q_level, pp),
            stage="utility",
        )

    rows = []
    domination_ok = True
    stage_growth_ok = True
    utility_factor_ok = True
    utility_factors = []
    for size_idx, n in enumerate(sizes):
        inst = _theorem2_instance(seed, n, pp)
        q = np.full(n, q_level)
        rayleigh = success_probability(inst, q, pp.beta)
        hits = np.zeros(n, dtype=np.int64)
        sim_utility = np.zeros(n, dtype=np.float64)
        num_stages = num_slots = 0
        done_trials = 0  # trials whose chunk actually completed
        for chunk, part in zip(chunks, sim_parts):
            if chunk[0] != n or is_failure(part):
                continue
            hits += part[0]
            sim_utility += part[1]
            num_stages, num_slots = part[2], part[3]
            done_trials += chunk[2] - chunk[1]
        if done_trials == 0:
            raise RuntimeError(
                f"all E6 simulation chunks for n={n} failed; see the fault report"
            )
        sim_prob = hits / done_trials
        sim_utility /= done_trials  # E[u(max_t γ^{nf,t})] per link
        # E[u(γ^R)] per link under one Rayleigh slot with pattern ~ q.
        ray_utility = ray_utilities[size_idx]
        if is_failure(ray_utility):
            raise RuntimeError(
                f"the E6 utility task for n={n} failed: {ray_utility.describe()}"
            )
        factor = float(ray_utility.sum() / max(sim_utility.sum(), 1e-12))
        utility_factors.append(factor)
        utility_factor_ok &= factor <= 8.0
        # Per-link domination with a 4-sigma Bernoulli band on the estimate.
        band = 4.0 * np.sqrt(
            np.maximum(sim_prob * (1 - sim_prob), 1e-6) / done_trials
        )
        domination_ok &= bool(np.all(sim_prob + band >= rayleigh))
        stage_growth_ok &= num_stages >= log_star(n) - 2  # same growth order
        rows.append(
            [
                n,
                num_stages,
                num_slots,
                log_star(n),
                float(rayleigh.mean()),
                float(sim_prob.mean()),
                float((sim_prob - rayleigh).min()),
                factor,
            ]
        )
    checks = {
        "simulation success dominates Rayleigh per link (Lemma 3, 4-sigma)": domination_ok,
        "stage count grows like log* n": stage_growth_ok,
        "stage count stays tiny (<= 8 at n=100)": all(r[1] <= 8 for r in rows),
        "Shannon-utility factor E[u(γ^R)] / E[u(max γ^nf)] <= 8 (Theorem 2)": (
            utility_factor_ok
        ),
    }
    text = format_table(
        [
            "n",
            "stages",
            "slots",
            "log* n",
            "Rayleigh Q mean",
            "sim success mean",
            "min(sim - Q)",
            "utility factor",
        ],
        rows,
        title=f"E6 — Algorithm 1 simulation vs exact Rayleigh success (q={q_level}, "
        f"{trials} trials)",
        precision=4,
    )
    return ExperimentResult(
        experiment_id="E6",
        title="Theorem 2: O(log* n) non-fading simulation of the Rayleigh optimum",
        text=text,
        data={"rows": rows},
        config=f"sizes={sizes}, q={q_level}, trials={trials}, params={pp!r}",
        checks=checks,
        timings=timer.timings,
    )
