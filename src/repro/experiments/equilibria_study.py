"""E16 — equilibria of the capacity game and their price of anarchy.

Section 6's sequences "generalize Nash equilibria", transferring the
game-theoretic studies of Andrews–Dinitz [5].  This experiment samples
pure equilibria by best-response dynamics in both interference models
and relates their welfare to the non-fading optimum.

Expected shape: dynamics converge on the large majority of starts;
converged non-fading equilibria are maximal feasible sets, so their
welfare sits near the optimum (empirical PoA close to 1 on random
instances, far below any worst-case bound); Rayleigh equilibria carry
the familiar fading discount (≈ the E11 ratio) but remain a constant
fraction of OPT — the equilibrium analogue of Theorem 3.
"""

from __future__ import annotations

import numpy as np

from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.engine.registry import register, seed_kwargs
from repro.experiments.config import PaperParameters
from repro.experiments.runner import ExperimentResult
from repro.geometry.placement import paper_random_network
from repro.learning.equilibria import price_of_anarchy_sample
from repro.utils.rng import RngFactory
from repro.utils.tables import format_table

__all__ = ["run_equilibria_study"]


@register(
    "E16",
    title="Equilibria & price of anarchy",
    config=lambda scale, seed: {
        "num_networks": 8 if scale == "paper" else 4,
        "num_starts": 12 if scale == "paper" else 8,
        **seed_kwargs(seed),
    },
)
def run_equilibria_study(
    *,
    n: int = 60,
    num_networks: int = 4,
    num_starts: int = 8,
    params: "PaperParameters | None" = None,
    seed: int = 2012,
    channel: "str | None" = None,
) -> ExperimentResult:
    """Sample equilibria and tabulate their welfare vs OPT.

    ``channel`` swaps the faded side of the comparison (default
    ``"rayleigh"``) for any channel spec, e.g. ``"nakagami:m=2"``.
    """
    pp = params if params is not None else PaperParameters.figure1()
    factory = RngFactory(seed)
    faded = channel if channel is not None else "rayleigh"
    rows = []
    poa_values = {"nonfading": [], faded: []}
    converged_total = starts_total = 0
    for k in range(num_networks):
        s, r = paper_random_network(
            n, area=1000.0 * (n / 100.0) ** 0.5, rng=factory.stream("eq-net", k)
        )
        inst = SINRInstance.from_network(
            Network(s, r), UniformPower(pp.power_scale), pp.alpha, pp.noise
        )
        for model in ("nonfading", faded):
            sample = price_of_anarchy_sample(
                inst,
                pp.beta,
                factory.stream("eq-dyn", k, model),
                channel=model,
                num_starts=num_starts,
            )
            converged_total += sample["num_converged"]
            starts_total += num_starts
            if np.isfinite(sample["poa"]):
                poa_values[model].append(sample["poa"])
            rows.append(
                [
                    k,
                    model,
                    sample["opt"],
                    sample["worst"],
                    sample["best"],
                    sample["poa"],
                    sample["num_converged"],
                ]
            )
    checks = {
        "best-response dynamics converge on >= 80% of starts": converged_total
        >= 0.8 * starts_total,
        "non-fading empirical PoA <= 1.5 on every instance": all(
            v <= 1.5 for v in poa_values["nonfading"]
        ),
        f"{faded} equilibria keep a constant fraction of OPT (PoA <= e)": all(
            v <= np.e + 0.2 for v in poa_values[faded]
        ),
        f"{faded} PoA >= non-fading PoA on average (fading discount)": (
            float(np.mean(poa_values[faded]))
            >= float(np.mean(poa_values["nonfading"])) - 0.05
        ),
    }
    text = format_table(
        ["net", "model", "OPT est", "worst eq", "best eq", "PoA", "# converged"],
        rows,
        title=f"E16 — pure equilibria of the capacity game (n={n}, "
        f"{num_starts} starts per instance/model)",
        precision=3,
    )
    return ExperimentResult(
        experiment_id="E16",
        title="Equilibria & price of anarchy (the [5]-transfer of Section 6)",
        text=text,
        data={"rows": rows, "poa": poa_values},
        config=f"n={n}, networks={num_networks}, starts={num_starts}",
        checks=checks,
    )
