"""E4 — Theorem 1 / Lemma 1 validation table.

For a grid of (probability level, threshold) settings on Figure-1-style
networks, tabulate the exact Theorem-1 success probability against the
Lemma-1 lower/upper bounds and a brute-force Monte-Carlo estimate.  The
reproduction claims checked: the sandwich holds everywhere, the Monte
Carlo agrees with the closed form, and the bounds are tight in the
low-interference limit.
"""

from __future__ import annotations

import numpy as np

from repro.engine.registry import register, scaled_config
from repro.experiments.config import Figure1Config
from repro.experiments.runner import ExperimentResult
from repro.experiments.workloads import figure1_networks, instance_pair
from repro.fading.bounds import success_probability_lower, success_probability_upper
from repro.fading.montecarlo import estimate_success_probability
from repro.fading.success import success_probability
from repro.utils.rng import RngFactory
from repro.utils.tables import format_table

__all__ = ["run_lemma_bounds"]


@register(
    "E4",
    title="Theorem 1 / Lemma 1 bounds",
    config=lambda scale, seed: {"config": scaled_config(Figure1Config, scale, seed)},
)
def run_lemma_bounds(
    config: "Figure1Config | None" = None,
    *,
    q_levels: tuple[float, ...] = (0.1, 0.3, 0.5, 0.8, 1.0),
    beta_levels: tuple[float, ...] = (0.5, 2.5, 10.0),
    mc_samples: int = 3000,
) -> ExperimentResult:
    """Tabulate exact vs bounds vs Monte Carlo for the success probability."""
    cfg = config if config is not None else Figure1Config.quick()
    factory = RngFactory(cfg.seed)
    net = figure1_networks(cfg)[0]
    inst, _ = instance_pair(net, cfg.params, with_sqrt=False)
    n = inst.n

    rows = []
    sandwich_ok = True
    mc_ok = True
    max_mc_gap = 0.0
    for beta in beta_levels:
        for q_level in q_levels:
            q = np.full(n, q_level)
            exact = success_probability(inst, q, beta)
            lo = success_probability_lower(inst, q, beta)
            hi = success_probability_upper(inst, q, beta)
            sandwich_ok &= bool(
                np.all(lo <= exact + 1e-12) and np.all(exact <= hi + 1e-12)
            )
            mc = estimate_success_probability(
                inst, q, beta, factory.stream("bounds-mc", beta, q_level),
                num_samples=mc_samples,
            )
            gap = float(np.abs(mc - exact).max())
            max_mc_gap = max(max_mc_gap, gap)
            # 5-sigma Bernoulli band per link (the check runs ~1.5k
            # link-settings, so 4 sigma would false-alarm once in a few
            # runs), plus an absolute slack of a few counts for the
            # extreme-tail regime (p ~ 1/mc_samples) where the normal
            # approximation undershoots the Poisson tail.
            band = (
                5.0 * np.sqrt(exact * (1.0 - exact) / mc_samples) + 8.0 / mc_samples
            )
            mc_ok &= bool(np.all(np.abs(mc - exact) <= band + 1e-9))
            rows.append(
                [
                    beta,
                    q_level,
                    float(exact.mean()),
                    float(lo.mean()),
                    float(hi.mean()),
                    float(mc.mean()),
                    gap,
                ]
            )
    checks = {
        "Lemma 1 sandwich holds on every link and setting": sandwich_ok,
        "Monte Carlo within 5-sigma of Theorem 1 everywhere": mc_ok,
    }
    text = format_table(
        ["beta", "q", "exact mean", "lower mean", "upper mean", "MC mean", "max |MC-exact|"],
        rows,
        title=f"E4 — success probability: Theorem 1 vs Lemma 1 bounds vs Monte Carlo "
        f"(n={n}, {mc_samples} samples)",
        precision=4,
    )
    return ExperimentResult(
        experiment_id="E4",
        title="Theorem 1 exactness and Lemma 1 bound sandwich",
        text=text,
        data={"rows": rows, "max_mc_gap": max_mc_gap},
        config=repr(cfg),
        checks=checks,
    )
