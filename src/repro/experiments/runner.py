"""Common experiment-result container.

Every experiment driver returns an :class:`ExperimentResult`: the raw
numeric data (JSON-serialisable), the rendered text table/series, and
enough provenance (config repr, seed) to re-run it exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["ExperimentResult"]


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one experiment driver.

    Attributes
    ----------
    experiment_id:
        DESIGN.md identifier, e.g. ``"E1"``.
    title:
        Human-readable experiment name.
    text:
        Rendered table/series (what the bench prints).
    data:
        Raw numbers behind the table (JSON-serialisable dict).
    config:
        ``repr`` of the configuration used.
    checks:
        Named boolean shape checks ("who wins", monotonicity, bound
        satisfaction, ...) — the machine-readable reproduction verdicts.
    timings:
        Per-stage wall-clock seconds — renderings of the telemetry
        layer's span data (:class:`~repro.obs.trace.StageTimer` per
        driver stage, plus a ``"total"`` entry the registry reads off
        the experiment span).  Deliberately excluded from
        :meth:`to_json` so result files are byte-identical across
        re-runs, worker counts, and telemetry settings.
    faults:
        Failure records and degradation events collected by the engine's
        :class:`~repro.engine.faults.RunReport` when the run was executed
        under a fault-tolerant policy (``--on-error skip/retry``).  Empty
        for clean runs.  Like ``timings``, excluded from :meth:`to_json` —
        whether a run needed retries must not change its result bytes;
        the CLI surfaces it in ``summary.json`` instead.
    """

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)
    config: str = ""
    checks: dict = field(default_factory=dict)
    timings: dict = field(default_factory=dict)
    faults: dict = field(default_factory=dict)

    @property
    def all_checks_pass(self) -> bool:
        """Whether every recorded shape check holds."""
        return all(bool(v) for v in self.checks.values())

    @property
    def incomplete(self) -> bool:
        """Whether any task slot produced no result (skipped failures)."""
        return bool(self.faults.get("failures"))

    def to_json(self) -> str:
        """Serialise data + checks (not the rendered text) as JSON."""

        def _default(obj: Any):
            try:
                return obj.tolist()
            except AttributeError:
                return str(obj)

        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "config": self.config,
                "data": self.data,
                "checks": {k: bool(v) for k, v in self.checks.items()},
            },
            default=_default,
            indent=2,
        )

    def render(self, *, timings: bool = False) -> str:
        """Full printable report: header, table, check verdicts.

        ``timings=True`` appends the per-stage wall-clock section (the
        CLI's ``--timings`` flag).
        """
        lines = [f"[{self.experiment_id}] {self.title}", ""]
        lines.append(self.text)
        if self.checks:
            lines.append("")
            lines.append("shape checks:")
            for name, ok in self.checks.items():
                lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        if self.faults:
            lines.append("")
            lines.append("faults:")
            for event in self.faults.get("events", []):
                lines.append(f"  [event] {event['kind']}: {event['detail']}")
            for failure in self.faults.get("failures", []):
                lines.append(
                    f"  [lost]  task {failure['index']} (stage "
                    f"{failure['stage']!r}) {failure['kind']} after "
                    f"{failure['attempts']} attempt(s): {failure['message']}"
                )
            if self.incomplete:
                lines.append("  result is INCOMPLETE — aggregates exclude lost tasks")
        if timings and self.timings:
            lines.append("")
            lines.append("timings (wall-clock seconds):")
            for name, seconds in self.timings.items():
                lines.append(f"  {name}: {seconds:.3f}")
        return "\n".join(lines)
