"""Workload generators shared by the experiment drivers."""

from __future__ import annotations

import numpy as np

from repro.core.network import Network
from repro.core.power import SquareRootPower, UniformPower
from repro.core.sinr import SINRInstance
from repro.experiments.config import Figure1Config, Figure2Config
from repro.geometry.placement import paper_random_network
from repro.utils.rng import RngFactory

__all__ = [
    "figure1_network",
    "figure1_networks",
    "figure2_networks",
    "instance_pair",
]


def figure1_network(config: Figure1Config, index: int) -> Network:
    """Network ``index`` of the Figure-1 ensemble.

    Each network depends only on ``(config.seed, index)``, so executor
    tasks can build their own network in any worker process and still
    match a serial run bit-for-bit.
    """
    factory = RngFactory(config.seed)
    s, r = paper_random_network(
        config.num_links,
        area=config.area,
        min_length=config.min_length,
        max_length=config.max_length,
        rng=factory.stream("figure1-network", index),
    )
    return Network(s, r)


def figure1_networks(config: Figure1Config) -> list[Network]:
    """The Figure-1 network ensemble (one per network seed)."""
    return [figure1_network(config, k) for k in range(config.num_networks)]


def figure2_networks(config: Figure2Config) -> list[Network]:
    """The Figure-2 network ensemble."""
    factory = RngFactory(config.seed)
    nets = []
    for k in range(config.num_networks):
        s, r = paper_random_network(
            config.num_links,
            area=config.area,
            min_length=config.min_length,
            max_length=config.max_length,
            rng=factory.stream("figure2-network", k),
        )
        nets.append(Network(s, r))
    return nets


def instance_pair(
    network: Network, params, *,
    with_sqrt: bool = True,
) -> "tuple[SINRInstance, SINRInstance | None]":
    """Uniform-power and (optionally) square-root-power instances for a
    network under the given :class:`~repro.experiments.config.PaperParameters`."""
    uniform = SINRInstance.from_network(
        network, UniformPower(params.power_scale), params.alpha, params.noise
    )
    sqrt_inst = None
    if with_sqrt:
        sqrt_inst = SINRInstance.from_network(
            network, SquareRootPower(params.power_scale), params.alpha, params.noise
        )
    return uniform, sqrt_inst
