"""Workload generators shared by the experiment drivers."""

from __future__ import annotations

import numpy as np

from repro.core.network import Network
from repro.core.power import SquareRootPower, UniformPower
from repro.core.sinr import SINRInstance
from repro.experiments.config import Figure1Config, Figure2Config
from repro.geometry.placement import paper_random_network
from repro.utils.rng import RngFactory

__all__ = [
    "figure1_networks",
    "figure2_networks",
    "instance_pair",
]


def figure1_networks(config: Figure1Config) -> list[Network]:
    """The Figure-1 network ensemble (one per network seed)."""
    factory = RngFactory(config.seed)
    nets = []
    for k in range(config.num_networks):
        s, r = paper_random_network(
            config.num_links,
            area=config.area,
            min_length=config.min_length,
            max_length=config.max_length,
            rng=factory.stream("figure1-network", k),
        )
        nets.append(Network(s, r))
    return nets


def figure2_networks(config: Figure2Config) -> list[Network]:
    """The Figure-2 network ensemble."""
    factory = RngFactory(config.seed)
    nets = []
    for k in range(config.num_networks):
        s, r = paper_random_network(
            config.num_links,
            area=config.area,
            min_length=config.min_length,
            max_length=config.max_length,
            rng=factory.stream("figure2-network", k),
        )
        nets.append(Network(s, r))
    return nets


def instance_pair(
    network: Network, params, *,
    with_sqrt: bool = True,
) -> "tuple[SINRInstance, SINRInstance | None]":
    """Uniform-power and (optionally) square-root-power instances for a
    network under the given :class:`~repro.experiments.config.PaperParameters`."""
    uniform = SINRInstance.from_network(
        network, UniformPower(params.power_scale), params.alpha, params.noise
    )
    sqrt_inst = None
    if with_sqrt:
        sqrt_inst = SINRInstance.from_network(
            network, SquareRootPower(params.power_scale), params.alpha, params.noise
        )
    return uniform, sqrt_inst
