"""E18 — latency scaling: schedulers against certified lower bounds.

The latency algorithms the paper transfers carry approximation
guarantees — ``O(log n)`` for repeated single-slot maximization and for
ALOHA-style contention resolution.  This experiment measures realized
latencies against the instance-specific lower bound
(max of the capacity bound ``ceil(n / C*)`` and the conflict-clique
bound) across network sizes at fixed density.

Expected shape: the repeated-max/lower-bound ratio stays small and flat
(its log-factor is invisible at these sizes); the distributed protocols
pay a contention overhead that grows slowly; everything scales linearly
in ``n`` at fixed density (latency ∝ n / capacity-per-slot, and
capacity per slot is density-limited).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.lower_bounds import latency_lower_bound
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.engine.registry import register, seed_kwargs
from repro.experiments.config import PaperParameters
from repro.experiments.runner import ExperimentResult
from repro.geometry.placement import paper_random_network
from repro.latency.aloha import aloha_latency
from repro.latency.decay import decay_latency
from repro.latency.repeated_max import repeated_max_latency
from repro.utils.rng import RngFactory
from repro.utils.tables import format_table

__all__ = ["run_latency_scaling"]


@register(
    "E18",
    title="Latency scaling vs lower bounds",
    config=lambda scale, seed: {
        "sizes": (25, 50, 100, 200) if scale == "paper" else (25, 50, 100),
        "networks_per_size": 5 if scale == "paper" else 3,
        **seed_kwargs(seed),
    },
)
def run_latency_scaling(
    *,
    sizes: tuple[int, ...] = (25, 50, 100),
    networks_per_size: int = 3,
    params: "PaperParameters | None" = None,
    seed: int = 2012,
) -> ExperimentResult:
    """Measure scheduler latencies and lower bounds across sizes."""
    pp = params if params is not None else PaperParameters.figure1()
    factory = RngFactory(seed)
    rows = []
    repmax_ratios = []
    for n in sizes:
        area = 1000.0 * (n / 100.0) ** 0.5
        lbs, rms, als, dcs = [], [], [], []
        for k in range(networks_per_size):
            s, r = paper_random_network(
                n, area=area, rng=factory.stream("ls-net", n, k)
            )
            inst = SINRInstance.from_network(
                Network(s, r), UniformPower(pp.power_scale), pp.alpha, pp.noise
            )
            lbs.append(
                latency_lower_bound(inst, pp.beta, factory.stream("ls-lb", n, k))
            )
            rms.append(repeated_max_latency(inst, pp.beta).latency)
            als.append(
                aloha_latency(
                    inst, pp.beta, factory.stream("ls-aloha", n, k)
                ).latency
            )
            dcs.append(
                decay_latency(
                    inst, pp.beta, factory.stream("ls-decay", n, k)
                ).latency
            )
        lb, rm = float(np.mean(lbs)), float(np.mean(rms))
        al, dc = float(np.mean(als)), float(np.mean(dcs))
        repmax_ratios.append(rm / lb)
        rows.append([n, lb, rm, rm / lb, al, dc])
    checks = {
        "repeated-max within 4x of the lower bound at every size": all(
            r <= 4.0 for r in repmax_ratios
        ),
        "repeated-max ratio does not blow up with n (<= 2x smallest)": repmax_ratios[-1]
        <= 2.0 * repmax_ratios[0],
        "distributed protocols within 25x of repeated-max": all(
            row[4] <= 25.0 * row[2] and row[5] <= 25.0 * row[2] for row in rows
        ),
    }
    text = format_table(
        ["n", "lower bound", "repeated-max", "rm / LB", "aloha", "decay"],
        rows,
        title="E18 — latency scaling at fixed density (non-fading model)",
        precision=2,
    )
    return ExperimentResult(
        experiment_id="E18",
        title="Latency vs certified lower bounds across network sizes",
        text=text,
        data={"rows": rows},
        config=f"sizes={sizes}, networks_per_size={networks_per_size}",
        checks=checks,
    )
