"""E7 — capacity algorithm comparison across both models.

Supports the Section-4 claims: each transferred algorithm's Rayleigh
value should stay within a constant factor of its non-fading value, and
the algorithm ranking should be preserved.  Compared on Figure-1-style
networks plus the nested-pairs family (where uniform power is provably
weak and power control shines):

* greedy with uniform powers [8],
* greedy with square-root (oblivious) powers [7],
* power control [6],
* the local-search OPT estimate (upper reference).
"""

from __future__ import annotations

import numpy as np

from repro.capacity.greedy import greedy_capacity
from repro.capacity.optimum import local_search_capacity
from repro.capacity.power_control import power_control_capacity
from repro.channel.rayleigh import RayleighChannel
from repro.channel.spec import make_channel
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.engine.executor import (
    Task,
    get_worker_context,
    make_tasks,
    map_tasks,
)
from repro.obs import StageTimer
from repro.engine.faults import usable_results
from repro.engine.registry import register, scaled_config
from repro.experiments.config import Figure1Config
from repro.experiments.runner import ExperimentResult
from repro.experiments.workloads import figure1_network, instance_pair
from repro.geometry.placement import nested_pairs_network
from repro.transform.blackbox import rayleigh_expected_binary
from repro.utils.rng import RngFactory
from repro.utils.tables import format_table

__all__ = ["run_capacity_compare"]


def _ranking_consistent(nf_a: float, nf_b: float, ray_a: float, ray_b: float) -> bool:
    """True when both models rank (a, b) the same way, treating values
    within 10% of each other as a tie (no defined ranking)."""
    tie_nf = abs(nf_a - nf_b) <= 0.1 * max(nf_a, nf_b, 1e-9)
    tie_ray = abs(ray_a - ray_b) <= 0.1 * max(ray_a, ray_b, 1e-9)
    if tie_nf or tie_ray:
        return True
    return (nf_a > nf_b) == (ray_a > ray_b)


def _evaluate(
    inst: SINRInstance,
    subset: np.ndarray,
    beta: float,
    channel: "str | None" = None,
    rng=None,
    fad_channel: "RayleighChannel | None" = None,
) -> tuple[int, float]:
    """(non-fading successes, expected faded successes) of a set.

    The faded value is the exact Theorem-1 expectation by default; with a
    ``channel`` spec it is that channel's (exact or Monte-Carlo)
    ``expected_successes``.  ``fad_channel`` is an optional pre-built
    Rayleigh channel on ``inst`` whose cached Theorem-1 tensors are
    reused across evaluations (identical numbers either way).
    """
    if subset.size == 0:
        return 0, 0.0
    mask = np.zeros(inst.n, dtype=bool)
    mask[subset] = True
    nf = int(inst.successes(mask, beta).sum())
    if fad_channel is not None:
        fad = fad_channel.expected_successes(mask)
    elif channel is None:
        fad = rayleigh_expected_binary(inst, subset, beta)
    else:
        fad = make_channel(channel, inst, beta).expected_successes(mask, rng)
    return nf, fad


def _capacity_task(task: Task) -> "dict[str, tuple[int, float]]":
    """One network: (non-fading, faded) values of all four algorithms.

    Shared sweep parameters ride in the worker context; the payload is
    just the network index.
    """
    cfg, opt_restarts, channel = get_worker_context()
    net_idx = task.payload
    factory = RngFactory(cfg.seed)
    beta, alpha, noise = cfg.params.beta, cfg.params.alpha, cfg.params.noise
    net = figure1_network(cfg, net_idx)
    uniform, sqrt_inst = instance_pair(net, cfg.params, with_sqrt=True)

    fad_channels: "dict[int, RayleighChannel]" = {}

    def ev(inst, subset):
        if channel is not None:
            rng = factory.stream("cc-channel", net_idx)
            return _evaluate(inst, subset, beta, channel, rng)
        # One RayleighChannel per instance: evaluations that share an
        # instance (greedy and the OPT estimate on uniform powers) hit
        # the same cached Theorem-1 tensors.
        fad = fad_channels.setdefault(id(inst), RayleighChannel(inst, beta))
        return _evaluate(inst, subset, beta, fad_channel=fad)

    out: dict[str, tuple[int, float]] = {}
    out["greedy uniform"] = ev(uniform, greedy_capacity(uniform, beta))
    out["greedy sqrt"] = ev(sqrt_inst, greedy_capacity(sqrt_inst, beta))
    pc = power_control_capacity(net, beta, alpha, noise)
    if pc.selected.size:
        pc_inst = SINRInstance.from_network(
            net, pc.power_assignment(net.n), alpha, noise
        )
        out["power control"] = ev(pc_inst, pc.selected)
    else:
        out["power control"] = (0, 0.0)
    out["OPT estimate (uniform)"] = ev(
        uniform,
        local_search_capacity(
            uniform, beta, rng=factory.stream("cc-opt", net_idx),
            restarts=opt_restarts,
        ),
    )
    return out


@register(
    "E7",
    title="Capacity algorithm comparison",
    config=lambda scale, seed: {"config": scaled_config(Figure1Config, scale, seed)},
)
def run_capacity_compare(
    config: "Figure1Config | None" = None,
    *,
    nested_n: int = 12,
    opt_restarts: int = 6,
    jobs: "int | None" = 1,
    channel: "str | None" = None,
) -> ExperimentResult:
    """Compare the capacity algorithms on random and nested families.

    ``channel`` swaps the faded side of the comparison (default: exact
    Rayleigh expectation) for any channel spec.
    """
    cfg = config if config is not None else Figure1Config.quick()
    beta = cfg.params.beta
    fad_name = channel if channel is not None else "Rayleigh"

    timer = StageTimer()
    with timer.stage("sweep"):
        tasks = make_tasks(
            range(cfg.num_networks),
            root_seed=cfg.seed,
            name="capacity-task",
        )
        per_network = map_tasks(
            _capacity_task,
            tasks,
            jobs=jobs,
            context=(cfg, opt_restarts, channel),
            stage="networks",
        )

    acc: dict[str, list[tuple[int, float]]] = {}
    for records in usable_results(per_network, "the E7 capacity sweep"):
        for name, value in records.items():
            acc.setdefault(name, []).append(value)

    # Nested-pairs family: uniform power collapses, power control does not.
    # Growth 6 with α = 3 and β = 1 makes the whole nested set power-
    # feasible (spectral margin > 0) while uniform power still serves only
    # the longest link — the Moscibroda–Wattenhofer separation [2].
    nested_beta, nested_alpha = 1.0, 3.0
    s, r = nested_pairs_network(nested_n, base_length=10.0, growth=6.0)
    nested = Network(s, r)
    nested_uniform = SINRInstance.from_network(
        nested, UniformPower(cfg.params.power_scale), nested_alpha, 0.0
    )
    nested_greedy = greedy_capacity(nested_uniform, nested_beta).size
    nested_pc = power_control_capacity(
        nested, nested_beta, nested_alpha, 0.0
    ).selected.size

    rows = []
    ratios = {}
    for name, vals in acc.items():
        nf_mean = float(np.mean([v[0] for v in vals]))
        ray_mean = float(np.mean([v[1] for v in vals]))
        ratio = ray_mean / nf_mean if nf_mean > 0 else float("nan")
        ratios[name] = ratio
        rows.append([name, nf_mean, ray_mean, ratio])
    rows.append(["nested-pairs greedy uniform (n=%d)" % nested_n, nested_greedy, None, None])
    rows.append(["nested-pairs power control", nested_pc, None, None])

    nf_of = {name: r[1] for name, r in zip(acc.keys(), rows)}
    checks = {
        "every transfer ratio >= 1/e": all(
            (np.isnan(v) or v >= np.exp(-1.0) - 1e-9) for v in ratios.values()
        ),
        "OPT estimate >= greedy uniform (non-fading)": nf_of["OPT estimate (uniform)"]
        >= nf_of["greedy uniform"] - 1e-9,
        "power control beats uniform greedy on nested pairs": nested_pc
        >= nested_greedy,
        # Ranking preservation, with a 10% tie band: when the two greedy
        # variants are within noise of each other the ranking is undefined
        # and must not be asserted either way.
        "ranking preserved across models (greedy uniform vs sqrt)": (
            _ranking_consistent(
                nf_of["greedy uniform"],
                nf_of["greedy sqrt"],
                float(np.mean([v[1] for v in acc["greedy uniform"]])),
                float(np.mean([v[1] for v in acc["greedy sqrt"]])),
            )
        ),
    }
    text = format_table(
        ["algorithm", "non-fading successes", f"E[{fad_name} successes]", "ratio"],
        rows,
        title="E7 — capacity algorithms in both models "
        f"(beta={beta}, {cfg.num_networks} networks, n={cfg.num_links})",
        precision=3,
    )
    return ExperimentResult(
        experiment_id="E7",
        title=f"Capacity algorithm comparison, non-fading vs {fad_name}",
        text=text,
        data={
            "per_algorithm": {
                k: {"nonfading": [v[0] for v in vals], "rayleigh": [v[1] for v in vals]}
                for k, vals in acc.items()
            },
            "nested_greedy": nested_greedy,
            "nested_power_control": nested_pc,
        },
        config=repr(cfg),
        checks=checks,
        timings=timer.timings,
    )
