"""E8 — latency schedulers, non-fading vs Rayleigh.

Supports the Section-4 transfer claims for latency minimization:
repeated single-slot maximization and ALOHA-style contention resolution
are run in both models (the Rayleigh runs using the stochastic service /
4-repeat transformation), and the measured Rayleigh latencies should
exceed the non-fading ones by only a small constant factor.
"""

from __future__ import annotations

import numpy as np

from repro.engine.registry import register, scaled_config
from repro.experiments.config import Figure1Config
from repro.experiments.runner import ExperimentResult
from repro.experiments.workloads import figure1_networks, instance_pair
from repro.latency.aloha import aloha_latency
from repro.latency.decay import decay_latency
from repro.latency.repeated_max import repeated_max_latency
from repro.utils.rng import RngFactory
from repro.utils.stats import summarize
from repro.utils.tables import format_table

__all__ = ["run_latency_compare"]


@register(
    "E8",
    title="Latency schedulers, both models",
    config=lambda scale, seed: {"config": scaled_config(Figure1Config, scale, seed)},
)
def run_latency_compare(
    config: "Figure1Config | None" = None,
    *,
    rayleigh_trials: int = 5,
) -> ExperimentResult:
    """Measure latencies of both schedulers in both models."""
    cfg = config if config is not None else Figure1Config.quick()
    factory = RngFactory(cfg.seed)
    beta = cfg.params.beta
    networks = figure1_networks(cfg)

    lat: dict[str, list[float]] = {
        "repeated-max nonfading": [],
        "repeated-max rayleigh": [],
        "aloha nonfading": [],
        "aloha rayleigh (4-repeat)": [],
        "decay nonfading": [],
        "decay rayleigh (4-repeat)": [],
    }
    for net_idx, net in enumerate(networks):
        inst, _ = instance_pair(net, cfg.params, with_sqrt=False)
        lat["repeated-max nonfading"].append(
            float(repeated_max_latency(inst, beta).latency)
        )
        lat["aloha nonfading"].append(
            float(
                aloha_latency(
                    inst, beta, factory.stream("lat-aloha-nf", net_idx)
                ).latency
            )
        )
        lat["decay nonfading"].append(
            float(
                decay_latency(
                    inst, beta, factory.stream("lat-decay-nf", net_idx)
                ).latency
            )
        )
        rm_r, al_r, dc_r = [], [], []
        for t in range(rayleigh_trials):
            rm_r.append(
                repeated_max_latency(
                    inst,
                    beta,
                    model="rayleigh",
                    rng=factory.stream("lat-rm-ray", net_idx, t),
                ).latency
            )
            al_r.append(
                aloha_latency(
                    inst,
                    beta,
                    factory.stream("lat-aloha-ray", net_idx, t),
                    model="rayleigh",
                ).latency
            )
            dc_r.append(
                decay_latency(
                    inst,
                    beta,
                    factory.stream("lat-decay-ray", net_idx, t),
                    model="rayleigh",
                ).latency
            )
        lat["repeated-max rayleigh"].append(float(np.mean(rm_r)))
        lat["aloha rayleigh (4-repeat)"].append(float(np.mean(al_r)))
        lat["decay rayleigh (4-repeat)"].append(float(np.mean(dc_r)))

    rows = []
    means = {}
    for name, vals in lat.items():
        s = summarize(vals)
        means[name] = s.mean
        rows.append([name, s.mean, s.ci_half_width, s.minimum, s.maximum])
    rm_factor = means["repeated-max rayleigh"] / means["repeated-max nonfading"]
    al_factor = means["aloha rayleigh (4-repeat)"] / means["aloha nonfading"]
    dc_factor = means["decay rayleigh (4-repeat)"] / means["decay nonfading"]
    rows.append(["repeated-max Rayleigh/non-fading factor", rm_factor, None, None, None])
    rows.append(["aloha Rayleigh/non-fading factor", al_factor, None, None, None])
    rows.append(["decay Rayleigh/non-fading factor", dc_factor, None, None, None])
    checks = {
        "Rayleigh latency within constant factor (repeated-max, <= 8x)": rm_factor <= 8.0,
        # The transformed protocols run 4 physical slots per protocol step,
        # so <= 8x total covers the 4x transformation plus stochastic
        # service.  Under heavy interference fading can even *help* the
        # randomized protocols (the Figure-1 high-q effect), so factors
        # below 1 are legitimate.
        "Rayleigh latency within constant factor (aloha, <= 8x)": al_factor <= 8.0,
        "Rayleigh latency within constant factor (decay, <= 8x)": dc_factor <= 8.0,
        "repeated-max beats aloha in both models": (
            means["repeated-max nonfading"] <= means["aloha nonfading"]
            and means["repeated-max rayleigh"] <= means["aloha rayleigh (4-repeat)"]
        ),
        "knowledge-free decay within 4x of tuned aloha (non-fading)": (
            means["decay nonfading"] <= 4.0 * means["aloha nonfading"]
        ),
    }
    text = format_table(
        ["scheduler/model", "mean latency", "ci95", "min", "max"],
        rows,
        title=f"E8 — latency minimization in both models (n={cfg.num_links}, "
        f"{cfg.num_networks} networks)",
        precision=2,
    )
    return ExperimentResult(
        experiment_id="E8",
        title="Latency schedulers: Rayleigh costs only a constant factor",
        text=text,
        data={name: vals for name, vals in lat.items()},
        config=repr(cfg),
        checks=checks,
    )
