"""E8 — latency schedulers, non-fading vs a fading channel.

Supports the Section-4 transfer claims for latency minimization:
repeated single-slot maximization and ALOHA-style contention resolution
are run in both models (the faded runs using the stochastic service /
4-repeat transformation), and the measured faded latencies should
exceed the non-fading ones by only a small constant factor.  The faded
side defaults to exact Rayleigh; ``--channel nakagami:m=2`` (or any
other spec) runs the same schedulers under that family end to end.
"""

from __future__ import annotations

import numpy as np

from repro.engine.registry import register, scaled_config
from repro.experiments.config import Figure1Config
from repro.experiments.runner import ExperimentResult
from repro.experiments.workloads import figure1_networks, instance_pair
from repro.latency.aloha import aloha_latency
from repro.latency.decay import decay_latency
from repro.latency.repeated_max import repeated_max_latency
from repro.utils.rng import RngFactory
from repro.utils.stats import summarize
from repro.utils.tables import format_table

__all__ = ["run_latency_compare"]


@register(
    "E8",
    title="Latency schedulers, both models",
    config=lambda scale, seed: {"config": scaled_config(Figure1Config, scale, seed)},
)
def run_latency_compare(
    config: "Figure1Config | None" = None,
    *,
    rayleigh_trials: int = 5,
    channel: "str | None" = None,
) -> ExperimentResult:
    """Measure latencies of both schedulers in both models.

    ``channel`` swaps the faded side (default ``"rayleigh"``) for any
    channel spec; ``rayleigh_trials`` then counts trials of that family.
    """
    cfg = config if config is not None else Figure1Config.quick()
    factory = RngFactory(cfg.seed)
    beta = cfg.params.beta
    networks = figure1_networks(cfg)
    fad = channel if channel is not None else "rayleigh"

    key_rm = f"repeated-max {fad}"
    key_al = f"aloha {fad} (4-repeat)"
    key_dc = f"decay {fad} (4-repeat)"
    lat: dict[str, list[float]] = {
        "repeated-max nonfading": [],
        key_rm: [],
        "aloha nonfading": [],
        key_al: [],
        "decay nonfading": [],
        key_dc: [],
    }
    for net_idx, net in enumerate(networks):
        inst, _ = instance_pair(net, cfg.params, with_sqrt=False)
        lat["repeated-max nonfading"].append(
            float(repeated_max_latency(inst, beta).latency)
        )
        lat["aloha nonfading"].append(
            float(
                aloha_latency(
                    inst, beta, factory.stream("lat-aloha-nf", net_idx)
                ).latency
            )
        )
        lat["decay nonfading"].append(
            float(
                decay_latency(
                    inst, beta, factory.stream("lat-decay-nf", net_idx)
                ).latency
            )
        )
        rm_r, al_r, dc_r = [], [], []
        for t in range(rayleigh_trials):
            rm_r.append(
                repeated_max_latency(
                    inst,
                    beta,
                    channel=fad,
                    rng=factory.stream("lat-rm-ray", net_idx, t),
                ).latency
            )
            al_r.append(
                aloha_latency(
                    inst,
                    beta,
                    factory.stream("lat-aloha-ray", net_idx, t),
                    channel=fad,
                ).latency
            )
            dc_r.append(
                decay_latency(
                    inst,
                    beta,
                    factory.stream("lat-decay-ray", net_idx, t),
                    channel=fad,
                ).latency
            )
        lat[key_rm].append(float(np.mean(rm_r)))
        lat[key_al].append(float(np.mean(al_r)))
        lat[key_dc].append(float(np.mean(dc_r)))

    rows = []
    means = {}
    for name, vals in lat.items():
        s = summarize(vals)
        means[name] = s.mean
        rows.append([name, s.mean, s.ci_half_width, s.minimum, s.maximum])
    rm_factor = means[key_rm] / means["repeated-max nonfading"]
    al_factor = means[key_al] / means["aloha nonfading"]
    dc_factor = means[key_dc] / means["decay nonfading"]
    rows.append([f"repeated-max {fad}/non-fading factor", rm_factor, None, None, None])
    rows.append([f"aloha {fad}/non-fading factor", al_factor, None, None, None])
    rows.append([f"decay {fad}/non-fading factor", dc_factor, None, None, None])
    checks = {
        f"{fad} latency within constant factor (repeated-max, <= 8x)": rm_factor <= 8.0,
        # The transformed protocols run 4 physical slots per protocol step,
        # so <= 8x total covers the 4x transformation plus stochastic
        # service.  Under heavy interference fading can even *help* the
        # randomized protocols (the Figure-1 high-q effect), so factors
        # below 1 are legitimate.
        f"{fad} latency within constant factor (aloha, <= 8x)": al_factor <= 8.0,
        f"{fad} latency within constant factor (decay, <= 8x)": dc_factor <= 8.0,
        "repeated-max beats aloha in both models": (
            means["repeated-max nonfading"] <= means["aloha nonfading"]
            and means[key_rm] <= means[key_al]
        ),
        "knowledge-free decay within 4x of tuned aloha (non-fading)": (
            means["decay nonfading"] <= 4.0 * means["aloha nonfading"]
        ),
    }
    text = format_table(
        ["scheduler/model", "mean latency", "ci95", "min", "max"],
        rows,
        title=f"E8 — latency minimization in both models (n={cfg.num_links}, "
        f"{cfg.num_networks} networks)",
        precision=2,
    )
    return ExperimentResult(
        experiment_id="E8",
        title="Latency schedulers: fading costs only a constant factor",
        text=text,
        data={name: vals for name, vals in lat.items()},
        config=repr(cfg),
        checks=checks,
    )
