"""E13 — where the two models cross, as a function of link density.

Section 7 explains Figure 1's crossover: "the non-fading model predicts
more success if total interference is small, while Rayleigh fading
allows more requests to become successful if interference is large".
If that explanation is right, the crossover must move with *density* —
packing the same links into a smaller plane increases interference at
every q, so the Rayleigh advantage should set in at a smaller q.

This experiment sweeps the deployment area at fixed n and reports, per
density, the peak of each curve and the crossover probability.

Expected shape: the crossover q decreases (or the crossing disappears
into "Rayleigh always ahead") as density rises, and the peak capacity
falls.
"""

from __future__ import annotations

import numpy as np

from repro.engine.executor import (
    Task,
    get_worker_context,
    make_tasks,
    map_tasks,
)
from repro.obs import StageTimer
from repro.engine.faults import usable_results
from repro.engine.registry import register, seed_kwargs
from repro.experiments.config import Figure1Config, PaperParameters
from repro.experiments.figure1 import _network_curves
from repro.experiments.runner import ExperimentResult
from repro.experiments.workloads import instance_pair
from repro.core.network import Network
from repro.geometry.placement import paper_random_network
from repro.utils.rng import RngFactory
from repro.utils.tables import format_table

__all__ = ["run_density_sweep"]


def _crossover(q: np.ndarray, nf: np.ndarray, ray: np.ndarray) -> "float | None":
    """First q where the Rayleigh curve overtakes the non-fading curve."""
    diff = nf - ray
    for i in range(1, q.size):
        if diff[i - 1] > 0 >= diff[i]:
            return float(q[i])
    return None


def _density_task(task: Task) -> "tuple[np.ndarray, np.ndarray]":
    """Curves of one (area, network) cell of the density sweep."""
    seed, num_links, num_transmit_seeds, pp = get_worker_context()
    area, k = task.payload
    factory = RngFactory(seed)
    cfg_proto = Figure1Config(params=pp)
    probs = np.round(np.arange(0.05, 1.0001, 0.05), 3)
    s, r = paper_random_network(
        num_links,
        area=area,
        min_length=cfg_proto.min_length,
        max_length=cfg_proto.max_length,
        rng=factory.stream("dens-net", area, k),
    )
    inst, _ = instance_pair(Network(s, r), pp, with_sqrt=False)
    return _network_curves(
        inst,
        probs,
        num_transmit_seeds,
        0,
        "exact",
        pp.beta,
        factory.stream("dens-run", area, k),
    )


@register(
    "E13",
    title="Density sweep: crossover location",
    config=lambda scale, seed: {
        "num_networks": 10 if scale == "paper" else 4,
        **seed_kwargs(seed),
    },
)
def run_density_sweep(
    *,
    num_links: int = 100,
    areas: tuple[float, ...] = (1600.0, 1000.0, 700.0, 500.0),
    num_networks: int = 6,
    num_transmit_seeds: int = 15,
    params: "PaperParameters | None" = None,
    seed: int = 2012,
    jobs: "int | None" = 1,
) -> ExperimentResult:
    """Sweep the deployment area (density) and locate peaks/crossovers."""
    pp = params if params is not None else PaperParameters.figure1()
    probs = np.round(np.arange(0.05, 1.0001, 0.05), 3)

    timer = StageTimer()
    with timer.stage("sweep"):
        cells = [(area, k) for area in areas for k in range(num_networks)]
        tasks = make_tasks(cells, root_seed=seed, name="density-task")
        per_cell = map_tasks(
            _density_task,
            tasks,
            jobs=jobs,
            context=(seed, num_links, num_transmit_seeds, pp),
            stage="cells",
        )

    rows = []
    crossovers: list[float] = []
    peaks: list[float] = []
    for area_idx, area in enumerate(areas):
        area_cells = usable_results(
            per_cell[area_idx * num_networks : (area_idx + 1) * num_networks],
            f"the E13 density sweep at area={area:g}",
        )
        nf_total = np.zeros(probs.size)
        ray_total = np.zeros(probs.size)
        for nf, ray in area_cells:
            nf_total += nf
            ray_total += ray
        nf_mean = nf_total / len(area_cells)
        ray_mean = ray_total / len(area_cells)
        cross = _crossover(probs, nf_mean, ray_mean)
        density = num_links / area**2 * 1e6  # links per 1000x1000
        peak_q = float(probs[int(np.argmax(nf_mean))])
        rows.append(
            [
                area,
                density,
                float(nf_mean.max()),
                peak_q,
                cross if cross is not None else float("nan"),
            ]
        )
        peaks.append(float(nf_mean.max()))
        if cross is not None:
            crossovers.append(cross)
        elif bool(np.all(nf_mean >= ray_mean)):
            crossovers.append(1.05)  # non-fading ahead everywhere: beyond q=1
        else:
            crossovers.append(0.0)  # Rayleigh ahead from the start
    defined = [c for c in crossovers if 0.0 < c <= 1.0]
    checks = {
        "crossover q non-increasing with density": all(
            a >= b - 0.051 for a, b in zip(crossovers, crossovers[1:])
        ),
        "peak capacity falls with density": all(
            a >= b - 1e-9 for a, b in zip(peaks, peaks[1:])
        ),
        "a crossover exists at paper density or denser": len(defined) >= 1,
    }
    text = format_table(
        ["area", "links per 1000²", "peak successes", "peak q", "crossover q"],
        rows,
        title=f"E13 — density sweep (n={num_links}): where Rayleigh overtakes "
        "non-fading",
        precision=3,
    )
    return ExperimentResult(
        experiment_id="E13",
        title="Density sweep: the interference explanation of the crossover",
        text=text,
        data={"rows": rows},
        config=f"areas={areas}, n={num_links}, networks={num_networks}",
        checks=checks,
        timings=timer.timings,
    )
