"""E10 — the Section-4 ALOHA transformation check.

The paper's claim: if one randomized protocol step succeeds for a link
with probability ``p`` in the non-fading model (transmit probabilities
at most 1/2), then 4 independent Rayleigh executions of the same step
succeed at least once with probability at least ``p``.  We measure both
sides on random instances across a sweep of transmit probabilities and
verify per-link domination (up to Monte-Carlo error on the non-fading
side, which has no closed form).
"""

from __future__ import annotations

import numpy as np

from repro.engine.registry import register, scaled_config
from repro.experiments.config import Figure1Config
from repro.experiments.runner import ExperimentResult
from repro.experiments.workloads import figure1_networks, instance_pair
from repro.transform.aloha_transform import (
    estimate_step_success_nonfading,
    transformed_step_success_probability,
)
from repro.utils.rng import RngFactory
from repro.utils.tables import format_table

__all__ = ["run_aloha_transform_check"]


@register(
    "E10",
    title="ALOHA 4-repeat transformation",
    config=lambda scale, seed: {"config": scaled_config(Figure1Config, scale, seed)},
)
def run_aloha_transform_check(
    config: "Figure1Config | None" = None,
    *,
    q_levels: tuple[float, ...] = (0.05, 0.1, 0.25, 0.5),
    mc_samples: int = 4000,
    repeats: int = 4,
) -> ExperimentResult:
    """Compare transformed-Rayleigh vs non-fading per-step success."""
    cfg = config if config is not None else Figure1Config.quick()
    factory = RngFactory(cfg.seed)
    beta = cfg.params.beta
    net = figure1_networks(cfg)[0]
    inst, _ = instance_pair(net, cfg.params, with_sqrt=False)
    n = inst.n

    rows = []
    dominated = True
    for q_level in q_levels:
        q = np.full(n, q_level)
        transformed = transformed_step_success_probability(inst, q, beta, repeats=repeats)
        nonfading = estimate_step_success_nonfading(
            inst, q, beta, factory.stream("aloha-nf", q_level), num_samples=mc_samples
        )
        band = 4.0 * np.sqrt(np.maximum(nonfading * (1 - nonfading), 1e-6) / mc_samples)
        dominated &= bool(np.all(transformed + band >= nonfading))
        rows.append(
            [
                q_level,
                float(nonfading.mean()),
                float(transformed.mean()),
                float((transformed - nonfading).min()),
                int(np.sum(transformed + band < nonfading)),
            ]
        )
    checks = {
        f"transformed ({repeats}x) success dominates non-fading per link "
        "(q <= 1/2, 4-sigma)": dominated,
    }
    text = format_table(
        [
            "q",
            "non-fading step succ (MC)",
            f"Rayleigh {repeats}-repeat succ (exact)",
            "min per-link margin",
            "# violating links",
        ],
        rows,
        title=f"E10 — ALOHA step transformation (n={n}, beta={beta})",
        precision=4,
    )
    return ExperimentResult(
        experiment_id="E10",
        title="Section 4: 4-repeat Rayleigh step dominates the non-fading step",
        text=text,
        data={"rows": rows},
        config=repr(cfg),
        checks=checks,
    )
