"""E1 — Figure 1: successes vs transmission probability, both models.

Replication of the paper's first simulation: on 40 random 100-link
networks, every link transmits independently with the same probability
``q``; the figure plots the mean number of successful transmissions
against ``q`` for four curves — {uniform, square-root power} x
{non-fading, Rayleigh}.

Expected shape (Section 7): the Rayleigh curve is a smoothed version of
the non-fading one; the non-fading model predicts more success when
interference is small (low ``q``), Rayleigh more when interference is
large (high ``q``); square-root powers dominate uniform powers
throughout.
"""

from __future__ import annotations

import numpy as np

from repro.engine.executor import (
    Task,
    get_worker_context,
    make_tasks,
    map_tasks,
)
from repro.obs import StageTimer
from repro.engine.faults import usable_results
from repro.engine.registry import register, scaled_config
from repro.experiments.config import Figure1Config
from repro.experiments.runner import ExperimentResult
from repro.experiments.workloads import figure1_network, instance_pair
from repro.fading.success import Theorem1Kernel
from repro.utils.rng import RngFactory
from repro.utils.tables import format_series

__all__ = ["run_figure1"]

CURVES = (
    "uniform nonfading",
    "uniform rayleigh",
    "sqrt nonfading",
    "sqrt rayleigh",
)


def _network_curves(
    instance,
    probabilities: np.ndarray,
    num_transmit_seeds: int,
    num_fading_seeds: int,
    fading_mode: str,
    beta: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Mean non-fading and Rayleigh success counts per probability."""
    n = instance.n
    nonfading = np.empty(probabilities.size, dtype=np.float64)
    rayleigh = np.empty(probabilities.size, dtype=np.float64)
    # One kernel for the whole q sweep: instance and beta are fixed, so
    # the O(n^2) log-factor tensor is built once (bit-compatible with a
    # per-call success_probability_conditional_batch).
    kernel = Theorem1Kernel(instance, beta)
    for k, q in enumerate(probabilities):
        patterns = rng.random((num_transmit_seeds, n)) < q
        sinr = instance.sinr_batch(patterns)
        nonfading[k] = float((sinr >= beta).sum(axis=1).mean())
        cond = kernel.conditional_batch(patterns)
        cond = np.where(patterns, cond, 0.0)
        if fading_mode == "exact":
            # Exact expectation over fading given each pattern.
            rayleigh[k] = float(cond.sum(axis=1).mean())
        else:
            draws = rng.random((num_fading_seeds, *cond.shape)) < cond[None, :, :]
            rayleigh[k] = float(draws.sum(axis=2).mean())
    return nonfading, rayleigh


def _figure1_task(task: Task) -> "dict[str, np.ndarray]":
    """Per-network sweep: all four curves of one Figure-1 network.

    Randomness is re-derived from the config's seed and the network
    index, so the result is independent of which process runs the task.
    The config travels in the worker context (shipped once per process),
    not in the payload.
    """
    cfg = get_worker_context()
    net_idx = task.payload
    factory = RngFactory(cfg.seed)
    probs = np.asarray(cfg.probabilities, dtype=np.float64)
    net = figure1_network(cfg, net_idx)
    uniform, sqrt_inst = instance_pair(net, cfg.params, with_sqrt=True)
    out: dict[str, np.ndarray] = {}
    for name, inst in (("uniform", uniform), ("sqrt", sqrt_inst)):
        nf, ray = _network_curves(
            inst,
            probs,
            cfg.num_transmit_seeds,
            cfg.num_fading_seeds,
            cfg.fading_mode,
            cfg.params.beta,
            factory.stream("figure1-run", net_idx, name),
        )
        out[f"{name} nonfading"] = nf
        out[f"{name} rayleigh"] = ray
    return out


@register(
    "E1",
    title="Figure 1: capacity vs transmit probability",
    config=lambda scale, seed: {"config": scaled_config(Figure1Config, scale, seed)},
)
def run_figure1(
    config: "Figure1Config | None" = None, *, jobs: "int | None" = 1
) -> ExperimentResult:
    """Run the Figure-1 experiment and render its series."""
    cfg = config if config is not None else Figure1Config.quick()
    if cfg.fading_mode not in ("exact", "sample"):
        raise ValueError(f"unknown fading_mode {cfg.fading_mode!r}")
    probs = np.asarray(cfg.probabilities, dtype=np.float64)

    timer = StageTimer()
    with timer.stage("sweep"):
        tasks = make_tasks(
            range(cfg.num_networks),
            root_seed=cfg.seed,
            name="figure1-task",
        )
        per_network = map_tasks(
            _figure1_task, tasks, jobs=jobs, context=cfg, stage="networks"
        )

    with timer.stage("aggregate"):
        good = usable_results(per_network, "the E1 network sweep")
        totals = {name: np.zeros(probs.size) for name in CURVES}
        for net_curves in good:
            for name in CURVES:
                totals[name] += net_curves[name]
        curves = {name: vals / len(good) for name, vals in totals.items()}

    # Shape checks from Section 7's discussion.
    checks = {}
    for pw in ("uniform", "sqrt"):
        nf = curves[f"{pw} nonfading"]
        ray = curves[f"{pw} rayleigh"]
        diff = nf - ray
        checks[f"{pw}: non-fading ahead at low q"] = diff[0] >= 0.0
        checks[f"{pw}: rayleigh ahead at high q"] = diff[-1] <= 0.0
        checks[f"{pw}: curves cross"] = bool(np.any(diff > 0) and np.any(diff < 0))
        # Smoothing: total curvature (sum |second difference|) is smaller
        # for the Rayleigh curve.
        checks[f"{pw}: rayleigh smoother"] = float(
            np.abs(np.diff(ray, 2)).sum()
        ) <= float(np.abs(np.diff(nf, 2)).sum())
    text = format_series(
        "q",
        [float(p) for p in probs],
        {k: list(map(float, v)) for k, v in curves.items()},
        title="Figure 1 — mean successful transmissions vs transmission probability",
        precision=2,
    )
    return ExperimentResult(
        experiment_id="E1",
        title="Figure 1: capacity vs transmission probability (both models, both powers)",
        text=text,
        data={"q": probs.tolist(), **{k: v.tolist() for k, v in curves.items()}},
        config=repr(cfg),
        checks=checks,
        timings=timer.timings,
    )
