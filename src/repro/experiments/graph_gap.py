"""E20 — how wrong graph interference models are, by density.

The paper's introduction recalls that research moved from graph-based
interference models to SINR models because pairwise compatibility misses
*aggregate* interference ("significantly different techniques than in
graph-based models have to be applied").  This experiment quantifies
that motivation on the paper's own workload: at each density, sample
independent sets of the pairwise-conflict graph and measure the fraction
that violate the SINR constraints.

Expected shape: near zero for sparse deployments (pairwise ≈ aggregate
when neighbours are few) and rising towards 1 at the paper's density and
beyond — at Figure-1 density, essentially *every* graph-feasible
schedule is SINR-infeasible, which is exactly why the paper's machinery
is needed.
"""

from __future__ import annotations

from repro.analysis.graphs import conflict_graph, graph_model_gap
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.engine.registry import register, seed_kwargs
from repro.experiments.config import PaperParameters
from repro.experiments.runner import ExperimentResult
from repro.geometry.placement import paper_random_network
from repro.utils.rng import RngFactory
from repro.utils.tables import format_table

__all__ = ["run_graph_gap"]


@register(
    "E20",
    title="Graph-model gap vs density (why SINR)",
    config=lambda scale, seed: {
        "networks_per_area": 5 if scale == "paper" else 3,
        "num_samples": 300 if scale == "paper" else 120,
        **seed_kwargs(seed),
    },
)
def run_graph_gap(
    *,
    num_links: int = 60,
    areas: tuple[float, ...] = (6000.0, 2400.0, 1200.0, 775.0, 500.0),
    networks_per_area: int = 3,
    num_samples: int = 120,
    params: "PaperParameters | None" = None,
    seed: int = 2012,
) -> ExperimentResult:
    """Sweep density; measure the graph-model violation fraction."""
    pp = params if params is not None else PaperParameters.figure1()
    factory = RngFactory(seed)
    rows = []
    gaps = []
    for area in areas:
        gap_vals = []
        edge_counts = []
        for k in range(networks_per_area):
            s, r = paper_random_network(
                num_links, area=area, rng=factory.stream("gg-net", area, k)
            )
            inst = SINRInstance.from_network(
                Network(s, r), UniformPower(pp.power_scale), pp.alpha, pp.noise
            )
            gap_vals.append(
                graph_model_gap(
                    inst,
                    pp.beta,
                    factory.stream("gg-sample", area, k),
                    num_samples=num_samples,
                )
            )
            edge_counts.append(conflict_graph(inst, pp.beta).number_of_edges())
        density = num_links / area**2 * 1e6
        mean_gap = sum(gap_vals) / len(gap_vals)
        gaps.append(mean_gap)
        rows.append(
            [area, density, sum(edge_counts) / len(edge_counts), mean_gap]
        )
    # Paper density (100 links per 1000² == 'density 100' in these units).
    paper_like = [g for row, g in zip(rows, gaps) if row[1] >= 90.0]
    checks = {
        "gap (weakly) increases with density": all(
            a <= b + 0.1 for a, b in zip(gaps, gaps[1:])
        ),
        "sparse deployments nearly graph-exact (gap <= 0.3)": gaps[0] <= 0.3,
        "graph model essentially useless at paper density (gap >= 0.7)": (
            bool(paper_like) and min(paper_like) >= 0.7
        ),
    }
    text = format_table(
        ["area", "links per 1000²", "mean conflict edges", "SINR-violation fraction"],
        rows,
        title=f"E20 — graph-model gap vs density (n={num_links}, "
        f"{num_samples} sampled independent sets each)",
        precision=3,
    )
    return ExperimentResult(
        experiment_id="E20",
        title="Why SINR: fraction of graph-feasible schedules that fail under SINR",
        text=text,
        data={"rows": rows, "gaps": gaps},
        config=f"n={num_links}, areas={areas}",
        checks=checks,
    )
