"""Experiment harness — one driver per reproduced table/figure.

Each module implements one experiment of the DESIGN.md index (E1–E10)
as a pure function from a configuration to an
:class:`~repro.experiments.runner.ExperimentResult`, which carries the
numeric series plus a rendered text table.  The benchmark suite under
``benchmarks/`` calls these drivers; the default configurations are
scaled down so the whole suite runs in minutes, and every config has a
``paper()`` constructor with the exact Section-7 parameters.
"""

from repro.experiments.alg1_ablation import run_alg1_ablation
from repro.experiments.aloha_transform_check import run_aloha_transform_check
from repro.experiments.block_fading_check import run_block_fading_check
from repro.experiments.capacity_compare import run_capacity_compare
from repro.experiments.delta_sweep import run_delta_sweep
from repro.experiments.density_sweep import run_density_sweep
from repro.experiments.equilibria_study import run_equilibria_study
from repro.experiments.fading_families import run_fading_families
from repro.experiments.feedback_comparison import run_feedback_comparison
from repro.experiments.config import (
    Figure1Config,
    Figure2Config,
    PaperParameters,
)
from repro.experiments.figure1 import run_figure1
from repro.experiments.graph_gap import run_graph_gap
from repro.experiments.figure2 import run_figure2
from repro.experiments.approximation_factors import run_approximation_factors
from repro.experiments.latency_scaling import run_latency_scaling
from repro.experiments.lemma_bounds import run_lemma_bounds
from repro.experiments.lemma2_transfer import run_lemma2_transfer
from repro.experiments.latency_compare import run_latency_compare
from repro.experiments.optimum_gap import run_optimum_gap
from repro.experiments.optimum_stat import run_optimum_stat
from repro.experiments.regret_stats import run_regret_stats
from repro.experiments.runner import ExperimentResult
from repro.experiments.shannon_figure import run_shannon_figure
from repro.experiments.theorem2 import run_theorem2
from repro.experiments.workloads import figure1_networks, figure2_networks

__all__ = [
    "ExperimentResult",
    "Figure1Config",
    "Figure2Config",
    "PaperParameters",
    "figure1_networks",
    "figure2_networks",
    "run_alg1_ablation",
    "run_approximation_factors",
    "run_aloha_transform_check",
    "run_block_fading_check",
    "run_capacity_compare",
    "run_delta_sweep",
    "run_density_sweep",
    "run_equilibria_study",
    "run_fading_families",
    "run_feedback_comparison",
    "run_figure1",
    "run_figure2",
    "run_graph_gap",
    "run_latency_compare",
    "run_latency_scaling",
    "run_lemma2_transfer",
    "run_lemma_bounds",
    "run_optimum_gap",
    "run_optimum_stat",
    "run_regret_stats",
    "run_shannon_figure",
    "run_theorem2",
]
