"""E5 — Lemma 2: the 1/e transfer factor, across utility families.

Run the non-fading capacity algorithms on Figure-1-style networks,
replay their solutions unchanged under Rayleigh fading, and measure the
expected-utility ratio.  Lemma 2 guarantees a ratio of at least 1/e for
every valid utility profile; the table reports the measured ratios for
binary, weighted, and Shannon utilities under both power assignments.
"""

from __future__ import annotations

import numpy as np

from repro.capacity.greedy import greedy_capacity
from repro.engine.executor import (
    Task,
    get_worker_context,
    make_tasks,
    map_tasks,
)
from repro.obs import StageTimer
from repro.engine.faults import usable_results
from repro.engine.registry import register, scaled_config
from repro.experiments.config import Figure1Config
from repro.experiments.runner import ExperimentResult
from repro.experiments.workloads import figure1_network, instance_pair
from repro.transform.blackbox import transfer_capacity_algorithm
from repro.utility.binary import BinaryUtility
from repro.utility.shannon import ShannonUtility
from repro.utility.weighted import WeightedUtility
from repro.utils.rng import RngFactory
from repro.utils.stats import summarize
from repro.utils.tables import format_table

__all__ = ["run_lemma2_transfer"]

ONE_OVER_E = float(np.exp(-1.0))


def _lemma2_task(task: Task) -> "list[tuple[str, str, float, bool]]":
    """One network: transfer ratios for every (power, utility) pair.

    Returns ``(power, utility, ratio, certified_ok)`` tuples for pairs
    with positive non-fading value.
    """
    cfg, mc_samples = get_worker_context()
    net_idx = task.payload
    factory = RngFactory(cfg.seed)
    beta = cfg.params.beta
    net = figure1_network(cfg, net_idx)
    uniform, sqrt_inst = instance_pair(net, cfg.params, with_sqrt=True)
    entries: list[tuple[str, str, float, bool]] = []
    for pw_name, inst in (("uniform", uniform), ("sqrt", sqrt_inst)):
        n = inst.n
        weights_rng = factory.stream("lemma2-weights", net_idx, pw_name)
        profiles = {
            "binary": BinaryUtility(n, beta),
            "weighted": WeightedUtility(weights_rng.uniform(0.5, 2.0, n), beta),
            "shannon": ShannonUtility(n, cap=1e4),
        }
        for u_name, profile in profiles.items():
            report = transfer_capacity_algorithm(
                inst,
                profile,
                lambda i_: greedy_capacity(i_, beta),
                rng=factory.stream("lemma2-mc", net_idx, pw_name, u_name),
                num_samples=mc_samples,
                beta=beta,
            )
            if report.nonfading_value > 0:
                certified = bool(
                    report.certified_bound
                    >= ONE_OVER_E * report.nonfading_value - 1e-9
                )
                entries.append((pw_name, u_name, report.ratio, certified))
    return entries


@register(
    "E5",
    title="Lemma 2: 1/e transfer",
    config=lambda scale, seed: {"config": scaled_config(Figure1Config, scale, seed)},
)
def run_lemma2_transfer(
    config: "Figure1Config | None" = None,
    *,
    mc_samples: int = 1500,
    jobs: "int | None" = 1,
) -> ExperimentResult:
    """Measure the Rayleigh/non-fading utility ratio of greedy solutions."""
    cfg = config if config is not None else Figure1Config.quick()

    timer = StageTimer()
    with timer.stage("sweep"):
        tasks = make_tasks(
            range(cfg.num_networks),
            root_seed=cfg.seed,
            name="lemma2-task",
        )
        per_network = map_tasks(
            _lemma2_task, tasks, jobs=jobs, context=(cfg, mc_samples), stage="networks"
        )

    ratios: dict[tuple[str, str], list[float]] = {}
    certified_ok = True
    for entries in usable_results(per_network, "the E5 transfer sweep"):
        for pw_name, u_name, ratio, certified in entries:
            ratios.setdefault((pw_name, u_name), []).append(ratio)
            certified_ok &= certified

    rows = []
    min_ratio = float("inf")
    for (pw_name, u_name), vals in sorted(ratios.items()):
        s = summarize(vals)
        min_ratio = min(min_ratio, s.minimum)
        rows.append([pw_name, u_name, s.mean, s.minimum, s.maximum, ONE_OVER_E])
    checks = {
        "certified bound >= (1/e) x non-fading value on every run": certified_ok,
        # The measured expectation can only exceed the certified bound;
        # tolerance covers Shannon's Monte-Carlo noise.
        "measured ratio >= 1/e on every instance (2% MC tolerance)": min_ratio
        >= ONE_OVER_E * 0.98,
    }
    text = format_table(
        ["power", "utility", "ratio mean", "ratio min", "ratio max", "1/e bound"],
        rows,
        title="E5 — Lemma 2 transfer: Rayleigh expected utility / non-fading utility",
        precision=4,
    )
    return ExperimentResult(
        experiment_id="E5",
        title="Lemma 2: black-box transfer keeps >= 1/e of utility",
        text=text,
        data={
            "ratios": {f"{p}/{u}": v for (p, u), v in ratios.items()},
            "one_over_e": ONE_OVER_E,
        },
        config=repr(cfg),
        checks=checks,
        timings=timer.timings,
    )
