"""Experiment configurations, including the verbatim Section-7 presets.

Every config dataclass has two constructors:

* ``paper()`` — the exact parameters stated in Section 7 of the paper;
* ``quick()`` — a scaled-down variant (fewer networks/seeds, same
  physics) used as the default by the benchmark suite so a full run
  finishes in minutes.  Shapes are preserved; only Monte-Carlo noise
  grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PaperParameters", "Figure1Config", "Figure2Config"]


@dataclass(frozen=True)
class PaperParameters:
    """SINR physics parameters shared by a family of experiments."""

    beta: float
    alpha: float
    noise: float
    power_scale: float = 2.0  # the constant 2 in both power assignments

    @classmethod
    def figure1(cls) -> "PaperParameters":
        """Section 7 / Figure 1: β = 2.5, α = 2.2, ν = 4e-7, p = 2."""
        return cls(beta=2.5, alpha=2.2, noise=4e-7, power_scale=2.0)

    @classmethod
    def figure2(cls) -> "PaperParameters":
        """Section 7 / Figure 2: β = 0.5, α = 2.1, ν = 0, p = 2."""
        return cls(beta=0.5, alpha=2.1, noise=0.0, power_scale=2.0)


@dataclass(frozen=True)
class Figure1Config:
    """Figure 1 — success counts vs transmission probability.

    Paper text: 40 networks with 100 links each on a 1000x1000 plane,
    link lengths uniform in [20, 40]; 25 transmit seeds per network and
    10 fading seeds per transmit draw (we can replace fading seeds by
    the exact Theorem-1 expectation, see ``fading_mode``).
    """

    num_networks: int = 40
    num_links: int = 100
    area: float = 1000.0
    min_length: float = 20.0
    max_length: float = 40.0
    num_transmit_seeds: int = 25
    num_fading_seeds: int = 10
    probabilities: tuple[float, ...] = tuple(np.round(np.arange(0.05, 1.0001, 0.05), 3))
    params: PaperParameters = field(default_factory=PaperParameters.figure1)
    fading_mode: str = "exact"  # "exact" (Theorem 1) or "sample" (paper-style seeds)
    seed: int = 2012

    @classmethod
    def paper(cls) -> "Figure1Config":
        return cls(fading_mode="sample")

    @classmethod
    def quick(cls) -> "Figure1Config":
        return cls(
            num_networks=8,
            num_transmit_seeds=10,
            probabilities=tuple(np.round(np.arange(0.1, 1.0001, 0.1), 3)),
        )


@dataclass(frozen=True)
class Figure2Config:
    """Figure 2 — no-regret learning over time, both models.

    Paper text: networks with 200 links, link lengths uniform in
    [0, 100], β = 0.5, α = 2.1, ν = 0; Randomized Weighted Majority with
    the Section-7 losses and η schedule.  Convergence is visible after
    30–40 rounds.
    """

    num_networks: int = 5
    num_links: int = 200
    area: float = 1000.0
    min_length: float = 0.0
    max_length: float = 100.0
    num_rounds: int = 100
    params: PaperParameters = field(default_factory=PaperParameters.figure2)
    opt_restarts: int = 8  # local-search restarts for the optimum estimate
    seed: int = 2012

    @classmethod
    def paper(cls) -> "Figure2Config":
        return cls()

    @classmethod
    def quick(cls) -> "Figure2Config":
        return cls(num_networks=2, num_links=100, num_rounds=60, opt_restarts=4)
