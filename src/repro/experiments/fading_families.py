"""E14 — beyond Rayleigh: Nakagami-m and Rician-K fading families.

Section 8 hopes the paper's techniques extend to "interference models
capturing further realistic properties".  This experiment replays the
non-fading greedy schedule (the Lemma-2 recipe, powers untouched) under
the Nakagami-m and Rician-K families, which both *contain* Rayleigh
(``m = 1``, ``K = 0``) and *converge to the non-fading model*
(``m, K → ∞``).

Measured quantity: the retention ratio — expected successes under the
fading family divided by the non-fading success count.

Expected shape: retention rises monotonically from the Rayleigh value
(≈ 0.6–0.8 on these workloads, ≥ 1/e by Lemma 2) towards 1 as the
fading gets milder; the ``m = 1`` and ``K = 0`` points match the exact
Rayleigh value; milder-than-Rayleigh fading always retains *more* —
i.e. Rayleigh is the conservative case and the paper's guarantees look
transferable across the families.
"""

from __future__ import annotations

import numpy as np

from repro.capacity.greedy import greedy_capacity
from repro.channel.spec import make_channel
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.engine.registry import register, seed_kwargs
from repro.experiments.config import PaperParameters
from repro.experiments.runner import ExperimentResult
from repro.fading.models import (
    NakagamiFading,
    RicianFading,
    expected_successes_with_model,
)
from repro.geometry.placement import paper_random_network
from repro.transform.blackbox import rayleigh_expected_binary
from repro.utils.rng import RngFactory
from repro.utils.tables import format_table

__all__ = ["run_fading_families"]

ONE_OVER_E = float(np.exp(-1.0))


@register(
    "E14",
    title="Fading families (Nakagami / Rician)",
    config=lambda scale, seed: {
        "mc_slots": 8000 if scale == "paper" else 1500,
        **seed_kwargs(seed),
    },
)
def run_fading_families(
    *,
    n: int = 80,
    num_networks: int = 3,
    nakagami_m: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 16.0),
    rician_k: tuple[float, ...] = (0.0, 1.0, 4.0, 16.0),
    mc_slots: int = 2000,
    params: "PaperParameters | None" = None,
    seed: int = 2012,
    channel: "str | None" = None,
) -> ExperimentResult:
    """Retention of the greedy schedule across fading families.

    ``channel`` adds one extra retention row evaluated through the
    channel layer (e.g. ``block:coherence=5`` or ``rician:k=2,slots=4000``);
    the standard family grid always runs.
    """
    pp = params if params is not None else PaperParameters.figure1()
    factory = RngFactory(seed)

    retention: dict[str, list[float]] = {}
    extra_channel: list[float] = []
    rayleigh_exact: list[float] = []
    for k in range(num_networks):
        s, r = paper_random_network(
            n, area=1000.0 * (n / 100.0) ** 0.5, rng=factory.stream("fam-net", k)
        )
        inst = SINRInstance.from_network(
            Network(s, r), UniformPower(pp.power_scale), pp.alpha, pp.noise
        )
        chosen = greedy_capacity(inst, pp.beta)
        if chosen.size == 0:
            continue
        size = float(chosen.size)
        rayleigh_exact.append(
            rayleigh_expected_binary(inst, chosen, pp.beta) / size
        )
        for m in nakagami_m:
            value = expected_successes_with_model(
                inst,
                chosen,
                pp.beta,
                NakagamiFading(m),
                factory.stream("fam-mc", k, "nakagami", m),
                num_slots=mc_slots,
            )
            retention.setdefault(f"nakagami m={m:g}", []).append(value / size)
        for kf in rician_k:
            value = expected_successes_with_model(
                inst,
                chosen,
                pp.beta,
                RicianFading(kf),
                factory.stream("fam-mc", k, "rician", kf),
                num_slots=mc_slots,
            )
            retention.setdefault(f"rician K={kf:g}", []).append(value / size)
        if channel is not None:
            ch = make_channel(channel, inst, pp.beta)
            value = ch.expected_successes(chosen, factory.stream("fam-channel", k))
            extra_channel.append(value / size)

    means = {name: float(np.mean(vals)) for name, vals in retention.items()}
    ray_mean = float(np.mean(rayleigh_exact))
    tol = 3.0 / np.sqrt(mc_slots * max(len(rayleigh_exact), 1))

    nak_series = [means[f"nakagami m={m:g}"] for m in nakagami_m]
    ric_series = [means[f"rician K={kf:g}"] for kf in rician_k]
    checks = {
        "nakagami m=1 matches exact Rayleigh": abs(
            means["nakagami m=1"] - ray_mean
        )
        <= 5 * tol + 0.01,
        "rician K=0 matches exact Rayleigh": abs(means["rician K=0"] - ray_mean)
        <= 5 * tol + 0.01,
        "retention monotone in m": all(
            a <= b + 0.02 for a, b in zip(nak_series, nak_series[1:])
        ),
        "retention monotone in K": all(
            a <= b + 0.02 for a, b in zip(ric_series, ric_series[1:])
        ),
        "mildest settings approach non-fading (>= 0.9)": min(
            nak_series[-1], ric_series[-1]
        )
        >= 0.85,
        "every family/parameter retains >= 1/e": min(means.values())
        >= ONE_OVER_E - 0.02,
    }
    rows = [["rayleigh (exact, Theorem 1)", ray_mean]]
    rows += [[name, value] for name, value in means.items()]
    if channel is not None and extra_channel:
        extra_mean = float(np.mean(extra_channel))
        rows.append([f"--channel {channel}", extra_mean])
        means[f"channel:{channel}"] = extra_mean
    text = format_table(
        ["fading model", "retention (E[successes] / |S|)"],
        rows,
        title=f"E14 — fading families: retention of the greedy schedule "
        f"(n={n}, {num_networks} networks, {mc_slots} MC slots)",
        precision=4,
    )
    return ExperimentResult(
        experiment_id="E14",
        title="Beyond Rayleigh: Nakagami-m / Rician-K retention (Section 8 outlook)",
        text=text,
        data={"means": means, "rayleigh_exact": ray_mean},
        config=f"n={n}, networks={num_networks}, m={nakagami_m}, K={rician_k}",
        checks=checks,
    )
