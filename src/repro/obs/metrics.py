"""Metrics registry — counters, gauges, and histograms for one run.

The registry answers "what did the simulation actually do?": samples
drawn, Theorem-1 cache hits, SINR evaluations, executor retries, guard
trips.  Hot kernels report through three module-level functions —
:func:`add` (counter), :func:`set_gauge`, :func:`observe` (histogram) —
whose inactive fast path is two module-global ``None`` checks, so the
instrumentation costs nothing when telemetry is off.

Cross-process collection: the executor pushes a *task buffer* (a private
:class:`MetricsRegistry`) around every task execution, so increments
made inside a task — in whatever worker process it runs — land in the
buffer instead of a sink that does not exist in the worker.  The buffer
is shipped back piggybacked on the task's result and merged into the
main-process registry in task-settle order.  Counters are integer sums
and gauges are keyed last-write-by-task-index, so the merged totals are
identical for every ``--jobs`` value; only wall-clock histograms vary
between runs.

The determinism invariant of the whole layer: collection never draws
randomness, never mutates kernel values, and failed task attempts drop
their buffers (only *successful* executions ship metrics), so enabling
``--metrics`` cannot change any experiment's result bytes.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any

__all__ = [
    "MetricsRegistry",
    "add",
    "begin_task",
    "collecting",
    "current_registry",
    "end_task",
    "merge_task_metrics",
    "observe",
    "prefix_scope",
    "set_collection",
    "set_gauge",
]

#: Main-process sink (installed by ``obs_scope``); ``None`` = off.
_REGISTRY: "MetricsRegistry | None" = None
#: Task-local buffer pushed by the executor around each task execution.
_TASK_BUFFER: "MetricsRegistry | None" = None
#: Worker-process flag: collect into task buffers even without a sink
#: (the buffers travel back to the main process on the task results).
_COLLECT = False
#: Prefix (experiment id) applied by the main-process sink.
_PREFIX = ""


class MetricsRegistry:
    """One bag of counters, gauges, and histograms.

    Counters are exact integer/float sums; gauges keep the last written
    value; histograms accumulate ``(count, sum, log2 buckets)`` — enough
    to render distributions without storing samples.  All three merge by
    plain addition / last-write, so merging worker deltas in task order
    is deterministic regardless of which process produced them.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: "dict[str, int | float]" = {}
        self.gauges: "dict[str, float]" = {}
        self.histograms: "dict[str, dict[str, Any]]" = {}

    # -- recording ---------------------------------------------------------

    def add(self, name: str, value: "int | float" = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = {"count": 0, "sum": 0.0, "buckets": {}}
            self.histograms[name] = hist
        hist["count"] += 1
        hist["sum"] += float(value)
        bucket = _bucket_of(value)
        hist["buckets"][bucket] = hist["buckets"].get(bucket, 0) + 1

    # -- merging -----------------------------------------------------------

    def merge(self, other: "MetricsRegistry", prefix: str = "") -> None:
        """Fold ``other`` into this registry, optionally namespaced.

        Addition for counters/histograms and last-write for gauges: the
        caller merges deltas in task order, so the outcome is the same
        for every worker count.
        """
        pre = f"{prefix}/" if prefix else ""
        for name, value in other.counters.items():
            key = pre + name
            self.counters[key] = self.counters.get(key, 0) + value
        for name, value in other.gauges.items():
            self.gauges[pre + name] = value
        for name, hist in other.histograms.items():
            key = pre + name
            mine = self.histograms.get(key)
            if mine is None:
                mine = {"count": 0, "sum": 0.0, "buckets": {}}
                self.histograms[key] = mine
            mine["count"] += hist["count"]
            mine["sum"] += hist["sum"]
            for bucket, count in hist["buckets"].items():
                mine["buckets"][bucket] = mine["buckets"].get(bucket, 0) + count

    # -- export ------------------------------------------------------------

    def grouped_counters(self) -> "dict[str, dict[str, int | float]]":
        """Counters nested ``{scope: {name: value}}`` with sorted keys.

        The scope is the prefix applied at merge time (the experiment
        id); un-prefixed counters land under ``"run"``.
        """
        return _group(self.counters)

    def to_dict(self) -> "dict[str, Any]":
        """Deterministically ordered JSON document of all metrics."""
        doc: "dict[str, Any]" = {"counters": self.grouped_counters()}
        if self.gauges:
            doc["gauges"] = _group(self.gauges)
        if self.histograms:
            doc["histograms"] = {
                scope: {
                    name: {
                        "count": h["count"],
                        "sum": h["sum"],
                        "buckets": {k: h["buckets"][k] for k in sorted(h["buckets"])},
                    }
                    for name, h in sorted(names.items())
                }
                for scope, names in _group(self.histograms).items()
            }
        return doc

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)


def _group(flat: dict) -> "dict[str, dict]":
    grouped: "dict[str, dict]" = {}
    for key in sorted(flat):
        scope, _, name = key.rpartition("/")
        grouped.setdefault(scope or "run", {})[name] = flat[key]
    return grouped


def _bucket_of(value: float) -> str:
    """Log2 bucket label ``"<=2^k"`` covering ``value`` (seconds etc.)."""
    if value <= 0 or not math.isfinite(value):
        return "<=0" if value <= 0 else "inf"
    return f"<=2^{math.ceil(math.log2(value))}"


# ---------------------------------------------------------------------------
# Module-level ambient API — what the instrumented hot paths call.
# ---------------------------------------------------------------------------


def add(name: str, value: "int | float" = 1) -> None:
    """Increment a counter (no-op when telemetry is off).

    Inside a task execution the increment lands in the task buffer and
    travels back to the main process with the result; outside tasks it
    goes straight to the installed sink under the current prefix.
    """
    buf = _TASK_BUFFER
    if buf is not None:
        buf.add(name, value)
        return
    reg = _REGISTRY
    if reg is not None:
        reg.add(_PREFIX + name if _PREFIX else name, value)


def set_gauge(name: str, value: float) -> None:
    """Record a last-write-wins gauge (no-op when telemetry is off)."""
    buf = _TASK_BUFFER
    if buf is not None:
        buf.set_gauge(name, value)
        return
    reg = _REGISTRY
    if reg is not None:
        reg.set_gauge(_PREFIX + name if _PREFIX else name, value)


def observe(name: str, value: float) -> None:
    """Add one histogram observation (no-op when telemetry is off)."""
    buf = _TASK_BUFFER
    if buf is not None:
        buf.observe(name, value)
        return
    reg = _REGISTRY
    if reg is not None:
        reg.observe(_PREFIX + name if _PREFIX else name, value)


def collecting() -> bool:
    """Whether any metric written right now would be kept."""
    return _COLLECT or _REGISTRY is not None or _TASK_BUFFER is not None


def current_registry() -> "MetricsRegistry | None":
    """The installed main-process sink (``None`` when metrics are off)."""
    return _REGISTRY


def set_collection(flag: bool) -> None:
    """Worker-process switch: buffer task metrics even without a sink.

    Shipped to pool workers by the executor's initializer, mirroring the
    guard mode and chaos plan.
    """
    global _COLLECT
    _COLLECT = bool(flag)


def install(registry: "MetricsRegistry | None") -> "MetricsRegistry | None":
    """Install the main-process sink; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


@contextmanager
def prefix_scope(prefix: str):
    """Namespace sink-bound metrics under ``prefix`` (the experiment id)
    for the duration of the block.  Task buffers are unaffected — the
    executor applies the main process's prefix when it merges them."""
    global _PREFIX
    previous = _PREFIX
    _PREFIX = f"{prefix}/" if prefix else ""
    try:
        yield
    finally:
        _PREFIX = previous


# -- executor integration (task buffers) ------------------------------------


def begin_task() -> "MetricsRegistry | None":
    """Push a fresh task buffer; returns the previous one (for nesting).

    Called by the executor at the top of every task execution when
    :func:`collecting` is true, in whatever process runs the task.
    """
    global _TASK_BUFFER
    previous = _TASK_BUFFER
    _TASK_BUFFER = MetricsRegistry()
    return previous


def end_task(previous: "MetricsRegistry | None") -> MetricsRegistry:
    """Pop the task buffer installed by :func:`begin_task`."""
    global _TASK_BUFFER
    buffer = _TASK_BUFFER if _TASK_BUFFER is not None else MetricsRegistry()
    _TASK_BUFFER = previous
    return buffer


def merge_task_metrics(delta: "MetricsRegistry | None") -> None:
    """Merge one task's shipped buffer into the main-process sink under
    the current prefix.  Called at task-settle time, in task order."""
    if delta is None:
        return
    reg = _REGISTRY
    if reg is not None:
        reg.merge(delta, _PREFIX.rstrip("/"))
