"""Hierarchical tracing spans — run → experiment → stage → task.

A span is one timed region of a run.  The ambient stack gives spans
their parents: the CLI opens a ``run`` span, the registry opens one
``experiment`` span per driver call, drivers open ``stage`` spans (via
:class:`StageTimer`), and the executor attaches one ``task`` span per
completed task (timed in whatever process executed it, shipped back as
a duration on the result envelope).

Spans always *measure* — entering one costs two ``perf_counter`` calls
even with tracing off, which is how :class:`StageTimer` (and hence
``--timings`` and ``timings["total"]``) is a rendering of span data
rather than a second timing code path.  Only when a :class:`TraceWriter`
is installed are completed spans also *emitted*, as one JSON line each::

    {"name": "E1", "kind": "experiment", "id": 2, "parent": 1,
     "t0": 0.0012, "dur": 3.41}

``t0`` is seconds since the writer opened (a monotonic offset, not a
wall-clock date), so traces are diffable across machines.  Tracing
writes no randomness and never touches task results; the byte-identity
invariant of ``--jobs`` extends to ``--trace`` on/off by construction.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter
from typing import Any, TextIO

__all__ = [
    "Span",
    "StageTimer",
    "TraceWriter",
    "current_experiment",
    "install_tracer",
    "record_complete",
    "span",
]

SPAN_KINDS = ("run", "experiment", "stage", "task")


class Span:
    """One timed region; ``duration`` is valid after the block exits."""

    __slots__ = ("name", "kind", "span_id", "parent_id", "start", "duration", "meta")

    def __init__(
        self,
        name: str,
        kind: str,
        span_id: int,
        parent_id: "int | None",
        meta: "dict[str, Any] | None" = None,
    ):
        if kind not in SPAN_KINDS:
            raise ValueError(f"span kind must be one of {SPAN_KINDS}, got {kind!r}")
        self.name = name
        self.kind = kind
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = perf_counter()
        self.duration = 0.0
        self.meta = meta or {}


class TraceWriter:
    """Streams completed spans to a JSONL file as they close.

    Each line is self-contained, so a killed run keeps every span that
    finished before the crash (the same append-only philosophy as the
    checkpoint journal).
    """

    def __init__(self, path):
        self.path = Path(path)
        self._fh: "TextIO | None" = open(self.path, "w", encoding="utf-8")
        self.epoch = perf_counter()
        self.spans_written = 0

    def emit(self, sp: Span) -> None:
        if self._fh is None:
            return
        doc: "dict[str, Any]" = {
            "name": sp.name,
            "kind": sp.kind,
            "id": sp.span_id,
            "parent": sp.parent_id,
            "t0": round(sp.start - self.epoch, 6),
            "dur": round(sp.duration, 6),
        }
        if sp.meta:
            doc["meta"] = sp.meta
        self._fh.write(json.dumps(doc) + "\n")
        self._fh.flush()
        self.spans_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


_TRACER: "TraceWriter | None" = None
_STACK: "list[Span]" = []
_NEXT_ID = 1


def install_tracer(tracer: "TraceWriter | None") -> "TraceWriter | None":
    """Install the span sink; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def current_tracer() -> "TraceWriter | None":
    return _TRACER


def current_experiment() -> "str | None":
    """Name of the innermost open ``experiment`` span, if any — the
    namespace profile dumps and task spans report under."""
    for sp in reversed(_STACK):
        if sp.kind == "experiment":
            return sp.name
    return None


def _new_span(name: str, kind: str, meta: "dict[str, Any] | None") -> Span:
    global _NEXT_ID
    parent = _STACK[-1].span_id if _STACK else None
    sp = Span(name, kind, _NEXT_ID, parent, meta)
    _NEXT_ID += 1
    return sp


@contextmanager
def span(name: str, kind: str = "stage", **meta: Any):
    """Open a span for the block; always measures, emits when traced.

    Yields the :class:`Span`; read ``span.duration`` after the block for
    the measured wall-clock seconds (this is the single timing source
    behind :class:`StageTimer` and the registry's ``timings["total"]``).
    """
    sp = _new_span(name, kind, meta or None)
    _STACK.append(sp)
    try:
        yield sp
    finally:
        sp.duration = perf_counter() - sp.start
        _STACK.pop()
        tracer = _TRACER
        if tracer is not None:
            tracer.emit(sp)


def record_complete(name: str, kind: str, duration: float, **meta: Any) -> None:
    """Emit an already-measured span (e.g. a task timed in a worker
    process) parented under the currently open span.  No-op untraced."""
    tracer = _TRACER
    if tracer is None:
        return
    sp = _new_span(name, kind, meta or None)
    sp.start = perf_counter() - duration
    sp.duration = duration
    tracer.emit(sp)


class StageTimer:
    """Accumulates per-stage wall-clock timings for an experiment run.

    Since the telemetry layer, each stage *is* a span: the timer opens a
    ``stage`` span (emitted to the trace when one is being written, and
    wrapped in a cProfile dump when ``--profile`` is active) and records
    the span's measured duration — ``--timings`` renders span data, it
    does not time anything itself.

    >>> timer = StageTimer()
    >>> with timer.stage("sweep"):
    ...     pass
    >>> sorted(timer.timings) == ["sweep"]
    True
    """

    def __init__(self) -> None:
        self.timings: "dict[str, float]" = {}

    @contextmanager
    def stage(self, name: str):
        from repro.obs.profile import maybe_profile

        with span(name, kind="stage") as sp, maybe_profile(name):
            yield
        self.timings[name] = self.timings.get(name, 0.0) + sp.duration
