"""Hierarchical tracing spans — run → experiment → stage → task.

A span is one timed region of a run.  The ambient stack gives spans
their parents: the CLI opens a ``run`` span, the registry opens one
``experiment`` span per driver call, drivers open ``stage`` spans (via
:class:`StageTimer`), and the executor attaches one ``task`` span per
completed task (timed in whatever process executed it, shipped back as
a duration on the result envelope).

Spans always *measure* — entering one costs two ``perf_counter`` calls
even with tracing off, which is how :class:`StageTimer` (and hence
``--timings`` and ``timings["total"]``) is a rendering of span data
rather than a second timing code path.  Only when a :class:`TraceWriter`
is installed are completed spans also *emitted*, as one JSON line each::

    {"name": "E1", "kind": "experiment", "id": 2, "parent": 1,
     "t0": 0.0012, "dur": 3.41}

``t0`` is seconds since the writer opened (a monotonic offset, not a
wall-clock date), so traces are diffable across machines.  Tracing
writes no randomness and never touches task results; the byte-identity
invariant of ``--jobs`` extends to ``--trace`` on/off by construction.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter
from typing import Any, TextIO

__all__ = [
    "Span",
    "SpanCollector",
    "StageTimer",
    "TraceWriter",
    "current_experiment",
    "emit_subtree",
    "install_tracer",
    "record_complete",
    "set_span_collection",
    "span",
    "span_collection",
]

SPAN_KINDS = ("run", "experiment", "stage", "task")


class Span:
    """One timed region; ``duration`` is valid after the block exits."""

    __slots__ = ("name", "kind", "span_id", "parent_id", "start", "duration", "meta")

    def __init__(
        self,
        name: str,
        kind: str,
        span_id: int,
        parent_id: "int | None",
        meta: "dict[str, Any] | None" = None,
    ):
        if kind not in SPAN_KINDS:
            raise ValueError(f"span kind must be one of {SPAN_KINDS}, got {kind!r}")
        self.name = name
        self.kind = kind
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = perf_counter()
        self.duration = 0.0
        self.meta = meta or {}


class TraceWriter:
    """Streams completed spans to a JSONL file as they close.

    Each line is self-contained, so a killed run keeps every span that
    finished before the crash (the same append-only philosophy as the
    checkpoint journal).
    """

    def __init__(self, path):
        self.path = Path(path)
        self._fh: "TextIO | None" = open(self.path, "w", encoding="utf-8")
        self.epoch = perf_counter()
        self.spans_written = 0

    def emit(self, sp: Span) -> None:
        if self._fh is None:
            return
        doc: "dict[str, Any]" = {
            "name": sp.name,
            "kind": sp.kind,
            "id": sp.span_id,
            "parent": sp.parent_id,
            "t0": round(sp.start - self.epoch, 6),
            "dur": round(sp.duration, 6),
        }
        if sp.meta:
            doc["meta"] = sp.meta
        self._fh.write(json.dumps(doc) + "\n")
        self._fh.flush()
        self.spans_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class SpanCollector:
    """A tracer that *buffers* spans instead of writing them.

    Worker processes (pool and dispatch) have no trace file — the
    writer lives with the dispatching process — but tasks executed in
    them still open spans.  When span collection is on (shipped on the
    worker bundle, like the metrics switch), :func:`execute_task`
    installs a collector as this process's tracer for the duration of
    one task; the closed spans accumulate here with start times
    *relative to the collector's epoch*, travel back to the dispatcher
    on the task's result envelope, and :func:`emit_subtree` re-emits
    them into the real trace with fresh ids and cross-process parent
    links.  That is what makes ``--trace`` complete under
    ``--executor dispatch``: every worker's task spans — persisted
    per-attempt in the queue's result files — get stitched into one
    coherent run trace.
    """

    def __init__(self) -> None:
        self.epoch = perf_counter()
        self.records: "list[dict[str, Any]]" = []

    def emit(self, sp: Span) -> None:
        self.records.append(
            {
                "name": sp.name,
                "kind": sp.kind,
                "id": sp.span_id,
                "parent": sp.parent_id,
                "rel": sp.start - self.epoch,
                "dur": sp.duration,
                "meta": sp.meta or {},
            }
        )


_TRACER: "TraceWriter | None" = None
_STACK: "list[Span]" = []
_NEXT_ID = 1
#: Worker-process switch (shipped on the worker bundle, mirroring the
#: metrics ``set_collection`` flag): buffer task spans for stitching
#: even though this process has no trace writer.
_COLLECT_SPANS = False


def install_tracer(tracer: "TraceWriter | None") -> "TraceWriter | None":
    """Install the span sink; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def current_tracer() -> "TraceWriter | None":
    return _TRACER


def set_span_collection(flag: bool) -> None:
    """Worker-process switch: buffer task spans for cross-process
    stitching even without a trace writer (see :class:`SpanCollector`)."""
    global _COLLECT_SPANS
    _COLLECT_SPANS = bool(flag)


def span_collection() -> bool:
    """Whether this process should collect task spans for shipping."""
    return _COLLECT_SPANS


def emit_subtree(records: "list[dict[str, Any]]") -> None:
    """Stitch a worker's collected span subtree into the local trace.

    ``records`` is a :class:`SpanCollector` buffer shipped back on a
    task's result envelope.  Worker-local span ids are remapped through
    this process's id counter (two workers may both have used id 7),
    parentless spans are grafted under the currently open span (the
    stage span, since settling happens inside the driver's stage
    block), and relative times are placed so the subtree *ends* at the
    moment of settling — the same convention :func:`record_complete`
    uses for worker-timed durations.  No-op untraced.
    """
    global _NEXT_ID
    tracer = _TRACER
    if tracer is None or not records:
        return
    top = _STACK[-1].span_id if _STACK else None
    idmap: "dict[int, int]" = {}
    for rec in records:
        idmap[rec["id"]] = _NEXT_ID
        _NEXT_ID += 1
    end = max(rec["rel"] + rec["dur"] for rec in records)
    base = perf_counter() - end
    for rec in records:
        parent = rec.get("parent")
        sp = Span(
            rec["name"],
            rec["kind"],
            idmap[rec["id"]],
            idmap.get(parent, top) if parent is not None else top,
            dict(rec.get("meta") or {}),
        )
        sp.start = base + rec["rel"]
        sp.duration = rec["dur"]
        tracer.emit(sp)


def current_experiment() -> "str | None":
    """Name of the innermost open ``experiment`` span, if any — the
    namespace profile dumps and task spans report under."""
    for sp in reversed(_STACK):
        if sp.kind == "experiment":
            return sp.name
    return None


def _new_span(name: str, kind: str, meta: "dict[str, Any] | None") -> Span:
    global _NEXT_ID
    parent = _STACK[-1].span_id if _STACK else None
    sp = Span(name, kind, _NEXT_ID, parent, meta)
    _NEXT_ID += 1
    return sp


@contextmanager
def span(name: str, kind: str = "stage", **meta: Any):
    """Open a span for the block; always measures, emits when traced.

    Yields the :class:`Span`; read ``span.duration`` after the block for
    the measured wall-clock seconds (this is the single timing source
    behind :class:`StageTimer` and the registry's ``timings["total"]``).
    """
    sp = _new_span(name, kind, meta or None)
    _STACK.append(sp)
    try:
        yield sp
    finally:
        sp.duration = perf_counter() - sp.start
        _STACK.pop()
        tracer = _TRACER
        if tracer is not None:
            tracer.emit(sp)


def record_complete(name: str, kind: str, duration: float, **meta: Any) -> None:
    """Emit an already-measured span (e.g. a task timed in a worker
    process) parented under the currently open span.  No-op untraced."""
    tracer = _TRACER
    if tracer is None:
        return
    sp = _new_span(name, kind, meta or None)
    sp.start = perf_counter() - duration
    sp.duration = duration
    tracer.emit(sp)


class StageTimer:
    """Accumulates per-stage wall-clock timings for an experiment run.

    Since the telemetry layer, each stage *is* a span: the timer opens a
    ``stage`` span (emitted to the trace when one is being written, and
    wrapped in a cProfile dump when ``--profile`` is active) and records
    the span's measured duration — ``--timings`` renders span data, it
    does not time anything itself.

    >>> timer = StageTimer()
    >>> with timer.stage("sweep"):
    ...     pass
    >>> sorted(timer.timings) == ["sweep"]
    True
    """

    def __init__(self) -> None:
        self.timings: "dict[str, float]" = {}

    @contextmanager
    def stage(self, name: str):
        from repro.obs.profile import maybe_profile

        with span(name, kind="stage") as sp, maybe_profile(name):
            yield
        self.timings[name] = self.timings.get(name, 0.0) + sp.duration
