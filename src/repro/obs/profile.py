"""Per-stage cProfile hooks (``repro run --profile``).

When a profile directory is installed, every driver stage (each
:meth:`~repro.obs.trace.StageTimer.stage` block, which runs in the main
process) is wrapped in a :class:`cProfile.Profile` and dumped to
``profile-<experiment>-<stage>.pstats`` in that directory — loadable
with :mod:`pstats` or any flamegraph tool that reads pstats files.

With ``--jobs >= 2`` the dump shows the main process's share of the
stage (task dispatch, unpickling, aggregation); the worker-side cost is
what the metrics counters and task spans account for.  cProfile cannot
nest, so an inner stage opened while an outer one is being profiled is
timed (its span is unaffected) but not separately profiled.

Profiling observes the interpreter only — it draws no randomness and
never touches results, so ``--profile`` preserves result bytes like the
rest of the telemetry layer.
"""

from __future__ import annotations

import cProfile
import re
from contextlib import contextmanager
from pathlib import Path

__all__ = ["install_profile_dir", "maybe_profile", "profile_dumps"]

_PROFILE_DIR: "Path | None" = None
_ACTIVE = False
_DUMPED: "list[str]" = []

_UNSAFE = re.compile(r"[^-._A-Za-z0-9]")


def install_profile_dir(path) -> None:
    """Enable per-stage profiling, dumping into ``path`` (``None`` off)."""
    global _PROFILE_DIR, _ACTIVE
    _PROFILE_DIR = None if path is None else Path(path)
    _ACTIVE = False
    _DUMPED.clear()


def profile_dumps() -> "list[str]":
    """File names dumped so far (for ``summary.json``'s telemetry entry)."""
    return list(_DUMPED)


@contextmanager
def maybe_profile(stage: str):
    """Profile the block when ``--profile`` is active and no outer stage
    is already being profiled; otherwise a no-op."""
    global _ACTIVE
    directory = _PROFILE_DIR
    if directory is None or _ACTIVE:
        yield
        return
    from repro.obs.trace import current_experiment

    scope = current_experiment() or "run"
    name = _UNSAFE.sub("_", f"profile-{scope}-{stage}") + ".pstats"
    profiler = cProfile.Profile()
    _ACTIVE = True
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        _ACTIVE = False
        profiler.dump_stats(directory / name)
        _DUMPED.append(name)
