"""Structured event bus — the live feed of a running fleet.

Spans and metrics (PR 5) answer questions *after* a run; the event bus
answers them *while* the run is alive.  Every interesting state change —
task lifecycle, lease grants, re-issues, quarantines, degraded writes,
chaos faults, worker heartbeats — is appended as one JSON line to a
file under ``<runs-root>/events/``::

    <runs-root>/events/run-<host>-<pid>.jsonl      # dispatcher / CLI
    <runs-root>/events/worker-<name>.jsonl         # each repro worker

Each *process* owns exactly one file (append-only, one ``write()`` per
line), so no cross-process interleaving can tear a record; readers
(``repro top``, ``repro tail``) merge the per-source files by the
``ts`` wall-clock field and tolerate a torn final line, exactly like
the doctor's journal readers.  There are no sockets and no server —
any host that mounts the runs root can both write and watch, which is
the same multi-host contract as the dispatch queue itself.

The layer inherits the obs invariants wholesale:

* **Never result bytes.**  Events are diagnostics; nothing reads them
  back into a computation.  Emitting is a no-op unless a bus has been
  installed (two module-global ``None`` checks, like metrics).
* **Never takes the run down.**  A full or read-only filesystem
  degrades event writes to a once-warned counter
  (``events.degraded_writes``), mirroring the journal's ``_degrade``
  from the self-healing work.

Wall-clock timestamps are deliberate: events are *not* trace spans, and
operators correlating a fleet need "when" in human time.  Cross-host
clock skew therefore skews ``repro tail`` ordering at worst — never
correctness, because nothing in the engine consumes event timestamps.
"""

from __future__ import annotations

import json
import os
import socket
import time
import warnings
from pathlib import Path
from typing import Any, TextIO

from repro.obs import metrics as _metrics

__all__ = [
    "EVENTS_DIRNAME",
    "EventBus",
    "Heartbeat",
    "current_bus",
    "current_events_dir",
    "emit",
    "ensure_bus",
    "install",
    "rss_bytes",
]

#: Directory under the runs root holding the per-source event files.
EVENTS_DIRNAME = "events"

#: Default seconds between heartbeat events.
DEFAULT_HEARTBEAT_PERIOD = 2.0


def default_source(role: str) -> str:
    """Event-file identity of this process: ``<role>-<host>-<pid>``."""
    return f"{role}-{socket.gethostname()}-{os.getpid()}"


def rss_bytes() -> "int | None":
    """This process's resident set size, best effort (``None`` unknown).

    Reads ``/proc/self/statm`` where it exists; falls back to
    ``resource.getrusage`` peak RSS.  Pure diagnostics for heartbeats —
    callers must tolerate ``None`` (e.g. on exotic platforms).
    """
    try:
        with open("/proc/self/statm", "rb") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(peak_kb) * 1024
    except Exception:
        return None


class EventBus:
    """Appends structured events to this process's JSONL file.

    One bus per process, one file per bus.  The file opens lazily on the
    first emit (so merely *constructing* a bus for a run that never
    events costs nothing) and every line is flushed immediately — a
    SIGKILLed worker keeps every event it managed to write, the same
    append-only philosophy as the trace writer and the journal.
    """

    def __init__(self, directory, source: str, extra: "dict[str, Any] | None" = None):
        self.directory = Path(directory)
        self.source = source
        self.path = self.directory / f"{source}.jsonl"
        #: Fields stamped onto every event (host/pid by default).
        self.extra: "dict[str, Any]" = {
            "host": socket.gethostname(),
            "pid": os.getpid(),
        }
        if extra:
            self.extra.update(extra)
        self._fh: "TextIO | None" = None
        self._seq = 0
        self._degraded = False
        self.events_written = 0

    def emit(self, kind: str, **fields: Any) -> None:
        """Append one event; best effort under resource exhaustion."""
        self._seq += 1
        doc: "dict[str, Any]" = {
            "ts": round(time.time(), 3),
            "seq": self._seq,
            "src": self.source,
            "kind": kind,
        }
        doc.update(self.extra)
        for key, value in fields.items():
            if value is not None:
                doc[key] = value
        try:
            if self._fh is None:
                self.directory.mkdir(parents=True, exist_ok=True)
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(json.dumps(doc) + "\n")
            self._fh.flush()
        except OSError as exc:
            self._degrade(exc)
            return
        self.events_written += 1

    def _degrade(self, exc: OSError) -> None:
        """Absorb a failed event write: count it, warn once, carry on.

        Same contract as the journal's degraded checkpoint writes — the
        event feed is diagnostics, never correctness, so exhaustion
        must not take the worker or the dispatcher down.
        """
        self._fh = None  # reopen on the next emit in case space frees up
        _metrics.add("events.degraded_writes")
        if not self._degraded:
            self._degraded = True
            warnings.warn(
                f"cannot append to the event bus at {self.path} ({exc}); "
                "continuing without live events — results are unaffected",
                stacklevel=3,
            )

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None


# ---------------------------------------------------------------------------
# Ambient API — mirrors repro.obs.metrics: a module-global sink, a
# fast-path no-op emit, and install/restore for scoping.
# ---------------------------------------------------------------------------

_BUS: "EventBus | None" = None


def install(bus: "EventBus | None") -> "EventBus | None":
    """Install this process's event bus; returns the previous one."""
    global _BUS
    previous = _BUS
    _BUS = bus
    return previous


def current_bus() -> "EventBus | None":
    return _BUS


def current_events_dir() -> "str | None":
    """The installed bus's directory (shipped to workers on the bundle)."""
    return None if _BUS is None else str(_BUS.directory)


def emit(kind: str, **fields: Any) -> None:
    """Emit one event on the installed bus (no-op when none is)."""
    bus = _BUS
    if bus is not None:
        bus.emit(kind, **fields)


def ensure_bus(directory, role: str = "proc") -> EventBus:
    """Idempotently give this process a bus under ``directory``.

    Used by :func:`~repro.engine.backends.base.install_worker_bundle`:
    a dispatch worker that already opened its own named bus (in
    ``worker_loop``) keeps it; a pool worker gets a fresh one keyed by
    its pid.  Re-installing for the same directory is a no-op, so one
    worker serving many queues of one run keeps appending to one file.
    The pid check unmasks *fork inheritance*: a forked pool worker
    arrives with the parent's bus installed, and writing through it
    would interleave two processes into one file under one identity —
    such a bus is replaced, never reused.
    """
    global _BUS
    directory = Path(directory)
    if (
        _BUS is not None
        and _BUS.extra.get("pid") == os.getpid()
        and os.path.abspath(_BUS.directory) == os.path.abspath(directory)
    ):
        return _BUS
    _BUS = EventBus(directory, default_source(role))
    return _BUS


class Heartbeat:
    """Periodic liveness events carrying host/pid/RSS/tasks-per-second.

    Call :meth:`beat` from the owner's main loop (dispatcher poll loop,
    worker scan loop); it emits at most once per ``period`` and derives
    the task rate from the task-count delta since the previous beat.
    A zero or negative period disables the heartbeat entirely.
    """

    def __init__(self, role: str, period: float = DEFAULT_HEARTBEAT_PERIOD):
        self.role = role
        self.period = float(period)
        self._last_beat: "float | None" = None
        self._last_tasks = 0

    def beat(self, tasks: int = 0, **fields: Any) -> bool:
        """Emit a heartbeat if one is due; returns whether it fired."""
        if self.period <= 0 or _BUS is None:
            return False
        now = time.monotonic()
        if self._last_beat is not None and now - self._last_beat < self.period:
            return False
        if self._last_beat is None:
            tps = 0.0
        else:
            tps = (tasks - self._last_tasks) / max(now - self._last_beat, 1e-9)
        self._last_beat = now
        self._last_tasks = tasks
        emit(
            "heartbeat",
            role=self.role,
            tasks=int(tasks),
            tps=round(tps, 3),
            rss=rss_bytes(),
            **fields,
        )
        return True
