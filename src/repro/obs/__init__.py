"""Telemetry layer: tracing spans, metrics, and profiling hooks.

Zero-dependency observability for the reproduction engine, in four
pieces:

* :mod:`repro.obs.trace` — hierarchical spans (run → experiment →
  stage → task) emitted as JSONL; :class:`~repro.obs.trace.StageTimer`
  and every ``timings`` entry are renderings of span data.
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry the
  hot kernels report into; worker-side increments are buffered per task
  and shipped back piggybacked on task results, merged deterministically
  regardless of ``--jobs``.
* :mod:`repro.obs.profile` — optional per-stage cProfile dumps.
* :mod:`repro.obs.stats` — the ``repro stats <run-dir>`` renderer.
* :mod:`repro.obs.events` — the live JSONL event bus a monitored run
  (``--monitor``) appends under ``<runs-root>/events/``: task
  lifecycle, lease grants, re-issues, quarantines, degraded writes,
  chaos faults, worker heartbeats.
* :mod:`repro.obs.live` — ``repro top`` / ``repro tail``, the
  files-only live views over the event bus.
* :mod:`repro.obs.openmetrics` — the Prometheus text exposition
  (``repro stats --format openmetrics`` and the ``metrics.prom``
  snapshot a monitored run refreshes).

Everything is wired up by :func:`obs_scope`, which installs a
:class:`Telemetry` bundle as ambient state for the duration of a run —
the same pattern as :func:`~repro.engine.faults.execution_scope`, and
composable with it (the CLI nests one inside the other).

The layer's hard invariant: telemetry on or off, any sink, any
``--jobs`` value, the result bytes of every experiment are identical.
Spans and counters consume no randomness, never mutate kernel outputs,
and are excluded from result JSON; CI's ``obs-smoke`` job ``cmp``-s the
bytes to keep it that way.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs import profile as _profile
from repro.obs import trace as _trace
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import StageTimer, TraceWriter, span

__all__ = [
    "EventBus",
    "MetricsRegistry",
    "StageTimer",
    "Telemetry",
    "TraceWriter",
    "experiment_scope",
    "obs_scope",
    "span",
]

#: File names a telemetry-enabled run writes into its run directory.
TRACE_FILENAME = "trace.jsonl"
METRICS_FILENAME = "metrics.json"


@dataclass
class Telemetry:
    """The sinks of one observed run (any subset may be ``None``)."""

    tracer: "TraceWriter | None" = None
    metrics: "MetricsRegistry | None" = None
    profile_dir: "Path | None" = None
    events: "EventBus | None" = None

    @classmethod
    def for_run_dir(
        cls, out_dir, *, trace: bool, metrics: bool, profile: bool
    ) -> "Telemetry | None":
        """The bundle a ``repro run --trace/--metrics/--profile``
        invocation asks for, with all sinks inside ``out_dir``."""
        if not (trace or metrics or profile):
            return None
        out = Path(out_dir)
        return cls(
            tracer=TraceWriter(out / TRACE_FILENAME) if trace else None,
            metrics=MetricsRegistry() if metrics else None,
            profile_dir=out if profile else None,
        )

    @property
    def enabled(self) -> bool:
        return (
            self.tracer is not None
            or self.metrics is not None
            or self.profile_dir is not None
            or self.events is not None
        )


@contextmanager
def obs_scope(telemetry: "Telemetry | None"):
    """Install ``telemetry``'s sinks as the ambient observability state.

    Composes with :func:`~repro.engine.faults.execution_scope`: the CLI
    enters both, drivers and kernels consult whichever ambient state
    they need.  On exit the previous sinks are restored and the trace
    writer is closed (metrics stay on the bundle for the caller to
    serialise).
    """
    if telemetry is None:
        yield None
        return
    prev_tracer = _trace.install_tracer(telemetry.tracer)
    prev_metrics = _metrics.install(telemetry.metrics)
    prev_events = _events.install(telemetry.events)
    _profile.install_profile_dir(telemetry.profile_dir)
    try:
        yield telemetry
    finally:
        _trace.install_tracer(prev_tracer)
        _metrics.install(prev_metrics)
        _events.install(prev_events)
        _profile.install_profile_dir(None)
        if telemetry.tracer is not None:
            telemetry.tracer.close()
        if telemetry.events is not None:
            telemetry.events.close()


@contextmanager
def experiment_scope(experiment_id: str):
    """One experiment's observability frame: an ``experiment`` span plus
    a metrics namespace, both keyed by the experiment id.

    Entered by :meth:`~repro.engine.registry.ExperimentSpec.run` around
    every driver call; yields the span so the registry can reuse its
    measured duration as ``timings["total"]`` (span data is the only
    timing source).
    """
    with span(experiment_id, kind="experiment") as sp:
        with _metrics.prefix_scope(experiment_id):
            yield sp
