"""OpenMetrics / Prometheus text exposition of the metrics registry.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` document (the
``metrics.json`` shape) as the OpenMetrics text format, so the future
scheduling service is scrape-ready without a client library:

* counters → ``repro_<name>_total{scope="<experiment>"}``,
* gauges → plain samples,
* log2 histograms → cumulative ``_bucket{le=...}`` series (the
  ``"<=2^k"`` bucket labels become ``le="2**k"`` upper bounds) plus
  ``_sum``/``_count``, terminated by the mandatory ``# EOF``.

Two consumers: ``repro stats <run-dir> --format openmetrics`` renders a
finished run's ``metrics.json``, and :class:`MetricsSnapshotter`
refreshes a ``metrics.prom`` file *during* a monitored run (atomic
write-then-rename, so a scraper — or ``cat`` — never sees a torn
exposition).  Rendering reads the registry without locking; the
snapshotter simply skips a frame when a concurrent merge mutates a dict
mid-iteration, which keeps the hot path lock-free.
"""

from __future__ import annotations

import re
import threading
from pathlib import Path
from typing import Any

from repro.utils.atomic import atomic_write_text

__all__ = ["MetricsSnapshotter", "SNAPSHOT_FILENAME", "render"]

#: File name of the live exposition snapshot inside a run directory.
SNAPSHOT_FILENAME = "metrics.prom"

_NAME = re.compile(r"[^a-zA-Z0-9_]")
_BUCKET = re.compile(r"^<=2\^(-?\d+)$")


def _metric_name(name: str) -> str:
    base = _NAME.sub("_", name).strip("_")
    return f"repro_{base}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _labels(scope: str) -> str:
    return f'{{scope="{_escape(scope)}"}}'


def _fmt(value: "int | float") -> str:
    if isinstance(value, bool):  # pragma: no cover - counters are numeric
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _bucket_bound(label: str) -> "float | None":
    """The numeric upper bound of a ``"<=2^k"`` bucket label.

    ``"<=0"`` maps to 0, ``"inf"`` to ``None`` (its observations belong
    to the implicit ``+Inf`` bucket only).
    """
    if label == "<=0":
        return 0.0
    match = _BUCKET.match(label)
    if match is None:
        return None
    return float(2.0 ** int(match.group(1)))


def _family(
    doc: "dict[str, Any]", section: str
) -> "dict[str, list[tuple[str, Any]]]":
    """``{metric name: [(scope, value-or-histogram), ...]}`` ordered."""
    families: "dict[str, list[tuple[str, Any]]]" = {}
    for scope, named in (doc.get(section) or {}).items():
        for name, value in named.items():
            families.setdefault(name, []).append((scope, value))
    return dict(sorted(families.items()))


def render(doc: "dict[str, Any]") -> str:
    """The OpenMetrics text exposition of one metrics document."""
    lines: "list[str]" = []
    for name, samples in _family(doc, "counters").items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        for scope, value in samples:
            lines.append(f"{metric}_total{_labels(scope)} {_fmt(value)}")
    for name, samples in _family(doc, "gauges").items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        for scope, value in samples:
            lines.append(f"{metric}{_labels(scope)} {_fmt(value)}")
    for name, samples in _family(doc, "histograms").items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} histogram")
        for scope, hist in samples:
            buckets = []
            for label, count in (hist.get("buckets") or {}).items():
                bound = _bucket_bound(str(label))
                if bound is not None:
                    buckets.append((bound, int(count)))
            buckets.sort()
            cumulative = 0
            for bound, count in buckets:
                cumulative += count
                lines.append(
                    f'{metric}_bucket{{scope="{_escape(scope)}",'
                    f'le="{_fmt(bound)}"}} {cumulative}'
                )
            total = int(hist.get("count", 0))
            lines.append(
                f'{metric}_bucket{{scope="{_escape(scope)}",le="+Inf"}} {total}'
            )
            lines.append(f"{metric}_sum{_labels(scope)} {_fmt(hist.get('sum', 0.0))}")
            lines.append(f"{metric}_count{_labels(scope)} {total}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class MetricsSnapshotter:
    """Refreshes a ``metrics.prom`` exposition while a run is live.

    A daemon thread renders the (still-mutating) registry every
    ``interval`` seconds and atomically replaces the snapshot file.
    The registry is read without locks: a frame that races a concurrent
    dict mutation (``RuntimeError``) is skipped — the next tick gets a
    consistent view — and :meth:`stop` always writes one final, exact
    snapshot after the run has quiesced.  Snapshot writes never raise;
    a full disk silently stops refreshing (events/metrics already count
    degraded writes elsewhere — the snapshot is a pure convenience).
    """

    def __init__(self, registry, path, interval: float = 2.0):
        self.registry = registry
        self.path = Path(path)
        self.interval = float(interval)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="metrics-snapshotter", daemon=True
        )

    def _write(self) -> bool:
        try:
            text = render(self.registry.to_dict())
        except RuntimeError:  # registry mutated mid-render; next tick
            return False
        try:
            atomic_write_text(self.path, text)
        except OSError:
            return False
        return True

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._write()

    def start(self) -> "MetricsSnapshotter":
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop refreshing and write the final exact snapshot."""
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._write()
