"""Live fleet views — ``repro top <runs-root>`` and ``repro tail``.

Both commands watch a runs root the way the rest of the engine does:
**files only**.  They merge the per-process event files under
``<runs-root>/events/`` (written by :mod:`repro.obs.events`), peek at
open dispatch-queue directories, and render — no sockets, no server,
so any host that mounts the shared directory can watch a multi-host
campaign exactly as it can serve one.

``repro top`` is the refreshing dashboard: per-stage progress bars with
task rates and ETAs, per-worker health (host/pid/RSS/tasks-per-second
from heartbeats, with stale-heartbeat warnings), open queue depths, and
event-counter deltas between frames.  ``repro tail`` is the raw feed:
the merged event stream, one human-formatted line per event, with
``--follow`` streaming new events as they append.

Torn-line tolerance is inherited, not reimplemented: both views read
through :func:`repro.engine.doctor.iter_jsonl` /
:func:`~repro.engine.doctor.read_json` — the doctor's readers — so a
worker SIGKILLed mid-append, or a dispatcher appending *right now*,
never crashes the view; the torn tail line simply appears on the next
refresh once it is whole.  Reading is strictly passive: the views never
write into the runs root and can never affect result bytes.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Any

from repro.engine.doctor import iter_jsonl, read_json
from repro.obs.events import EVENTS_DIRNAME

__all__ = ["collect_state", "render_event_line", "render_top", "tail", "top"]

#: Seconds of heartbeat silence before ``repro top`` flags a worker.
DEFAULT_STALE_AFTER = 10.0

#: Event kinds surfaced in the incidents pane, newest last.
_INCIDENT_KINDS = (
    "worker-lost",
    "reissue",
    "quarantined",
    "timeout",
    "degraded-serial",
    "degraded-write",
    "chaos-fault",
    "pool-broken",
    "task-failed",
)

_MAX_INCIDENTS = 8


def load_events(root) -> "list[dict[str, Any]]":
    """Every whole event under ``<root>/events/``, merged by time.

    Per-source files are internally ordered; the merge sorts by the
    wall-clock ``ts`` (ties broken by source and sequence), which is
    exactly as good as the fleet's clocks — fine for a view, and never
    consumed by the engine itself.
    """
    events_dir = Path(root) / EVENTS_DIRNAME
    records: "list[dict[str, Any]]" = []
    try:
        files = sorted(events_dir.glob("*.jsonl"))
    except OSError:
        return records
    for path in files:
        records.extend(iter_jsonl(path))
    records.sort(key=lambda e: (e.get("ts", 0.0), str(e.get("src")), e.get("seq", 0)))
    return records


def _stage_key(event: "dict[str, Any]") -> str:
    stage = str(event.get("stage", "?"))
    experiment = event.get("experiment")
    return f"{experiment}/{stage}" if experiment else stage


def collect_state(root, *, now: "float | None" = None) -> "dict[str, Any]":
    """Fold the event stream (plus queue directories) into the live
    state ``render_top`` draws: stages, workers, queues, counts,
    incidents.  Pure function of the files — call it once per frame."""
    root = Path(root)
    events = load_events(root)
    now = time.time() if now is None else now
    stages: "dict[str, dict[str, Any]]" = {}
    workers: "dict[str, dict[str, Any]]" = {}
    counts: "dict[str, int]" = {}
    incidents: "list[dict[str, Any]]" = []

    for event in events:
        kind = str(event.get("kind", "?"))
        counts[kind] = counts.get(kind, 0) + 1
        ts = float(event.get("ts", 0.0))
        if kind == "stage-start":
            key = _stage_key(event)
            stages[key] = {
                "total": int(event.get("tasks", 0)),
                "pending": int(event.get("pending", 0)),
                "replayed": int(event.get("replayed", 0)),
                "backend": event.get("backend"),
                "start_ts": ts,
                "last_ts": ts,
                "done": 0,
                "failed": 0,
                "finished": None,
            }
        elif kind in ("task-done", "task-failed"):
            info = stages.get(_stage_key(event))
            if info is not None:
                info["done" if kind == "task-done" else "failed"] += 1
                info["last_ts"] = ts
        elif kind == "stage-done":
            info = stages.get(_stage_key(event))
            if info is not None:
                info["finished"] = ts
        elif kind == "heartbeat":
            src = str(event.get("src", "?"))
            info = workers.setdefault(src, {"first_ts": ts})
            info.update(
                role=event.get("role"),
                host=event.get("host"),
                pid=event.get("pid"),
                rss=event.get("rss"),
                tasks=event.get("tasks", 0),
                tps=event.get("tps", 0.0),
                last_ts=ts,
            )
        elif kind == "worker-start":
            src = str(event.get("src", "?"))
            workers.setdefault(src, {"first_ts": ts}).update(
                role="worker", host=event.get("host"), pid=event.get("pid"),
                last_ts=ts,
            )
        elif kind == "worker-exit":
            src = str(event.get("src", "?"))
            workers.setdefault(src, {"first_ts": ts}).update(
                exited=True, last_ts=ts, tasks=event.get("tasks", 0)
            )
        if kind in _INCIDENT_KINDS:
            incidents.append(event)

    queues: "list[dict[str, Any]]" = []
    queues_root = root / "queues"
    if queues_root.is_dir():
        for qdir in sorted(p for p in queues_root.iterdir() if p.is_dir()):
            manifest = read_json(qdir / "manifest.json") or {}

            def _count(sub: str, q: Path = qdir) -> int:
                try:
                    return sum(1 for _ in (q / sub).iterdir())
                except OSError:
                    return 0

            queues.append(
                {
                    "queue": qdir.name,
                    "stage": manifest.get("stage"),
                    "status": manifest.get("status", "?"),
                    "tasks": manifest.get("tasks"),
                    "todo": _count("todo"),
                    "claimed": _count("claimed"),
                    "results": _count("results"),
                }
            )

    return {
        "root": str(root),
        "now": now,
        "events": len(events),
        "sources": len({str(e.get("src")) for e in events}),
        "stages": stages,
        "workers": workers,
        "counts": counts,
        "incidents": incidents[-_MAX_INCIDENTS:],
        "queues": queues,
    }


# ---------------------------------------------------------------------------
# Rendering.
# ---------------------------------------------------------------------------


def _fmt_clock(ts: float) -> str:
    return time.strftime("%H:%M:%S", time.localtime(ts))


def _fmt_ago(now: float, ts: "float | None") -> str:
    if ts is None:
        return "never"
    return f"{max(0.0, now - ts):.1f}s ago"


def _fmt_bytes(n: "int | None") -> str:
    if n is None:
        return "?"
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024 or unit == "TB":
            return f"{value:.0f}{unit}"
        value /= 1024
    return f"{value:.0f}TB"


def _bar(fraction: float, width: int = 18) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def _stage_line(key: str, info: "dict[str, Any]") -> str:
    total = max(1, info["total"])
    resolved = info["replayed"] + info["done"] + info["failed"]
    fraction = resolved / total
    elapsed = max(info["last_ts"] - info["start_ts"], 1e-9)
    rate = info["done"] / elapsed if info["done"] else 0.0
    if info["finished"] is not None:
        tail = f"done in {info['finished'] - info['start_ts']:.1f}s"
    elif rate > 0:
        remaining = info["total"] - resolved
        tail = f"{rate:.1f} tasks/s  eta {remaining / rate:.0f}s"
    else:
        tail = "waiting for first task"
    line = (
        f"  {key:<24} {_bar(fraction)} {resolved:>4}/{info['total']:<4}"
        f" {fraction * 100:3.0f}%  {tail}"
    )
    if info["failed"]:
        line += f"  ({info['failed']} failed)"
    return line


def _worker_line(now: float, stale_after: float, src: str,
                 info: "dict[str, Any]") -> str:
    last = info.get("last_ts")
    bits = [f"  {src:<28}"]
    host, pid = info.get("host"), info.get("pid")
    if host is not None:
        bits.append(f"{host}:{pid}")
    if info.get("rss") is not None:
        bits.append(f"rss={_fmt_bytes(info.get('rss'))}")
    bits.append(f"{int(info.get('tasks', 0) or 0)} tasks")
    if info.get("tps"):
        bits.append(f"{info['tps']:.1f}/s")
    bits.append(f"beat {_fmt_ago(now, last)}")
    if info.get("exited"):
        bits.append("exited")
    elif last is not None and now - last > stale_after:
        bits.append(f"STALE (> {stale_after:g}s)")
    return "  ".join(bits)


def render_event_line(event: "dict[str, Any]") -> str:
    """One ``repro tail`` line: time, source, kind, then the fields."""
    skip = {"ts", "seq", "src", "kind", "host", "pid"}
    fields = " ".join(
        f"{k}={event[k]}" for k in event if k not in skip
    )
    ts = float(event.get("ts", 0.0))
    return (
        f"{_fmt_clock(ts)} {str(event.get('src', '?')):<28} "
        f"{str(event.get('kind', '?')):<14} {fields}".rstrip()
    )


def render_top(
    state: "dict[str, Any]",
    *,
    stale_after: float = DEFAULT_STALE_AFTER,
    prev_counts: "dict[str, int] | None" = None,
) -> str:
    """Draw one ``repro top`` frame from a :func:`collect_state` dict."""
    now = state["now"]
    lines = [
        f"repro top — {state['root']}  ({_fmt_clock(now)}; "
        f"{state['events']} event(s) from {state['sources']} source(s))"
    ]

    if state["stages"]:
        lines.append("")
        lines.append("stages:")
        lines.extend(_stage_line(k, v) for k, v in state["stages"].items())

    if state["workers"]:
        lines.append("")
        lines.append("workers:")
        for src in sorted(state["workers"]):
            lines.append(_worker_line(now, stale_after, src,
                                      state["workers"][src]))

    open_queues = [q for q in state["queues"] if q["status"] == "open"]
    if open_queues:
        lines.append("")
        lines.append(f"queues: {len(open_queues)} open")
        for q in open_queues:
            lines.append(
                f"  {q['queue']:<36} stage={q['stage']}  todo={q['todo']} "
                f"claimed={q['claimed']} results={q['results']}"
            )

    if state["counts"]:
        lines.append("")
        delta = ""
        if prev_counts is not None:
            new = sum(state["counts"].values()) - sum(prev_counts.values())
            delta = f"  (+{new} since last frame)" if new else "  (idle)"
        rendered = " ".join(
            f"{k}={state['counts'][k]}" for k in sorted(state["counts"])
        )
        lines.append(f"events: {rendered}{delta}")
    else:
        lines.append("")
        lines.append(
            "events: none yet — monitored runs (repro run --monitor) and "
            "their workers write the bus"
        )

    if state["incidents"]:
        lines.append("")
        lines.append("incidents:")
        for event in state["incidents"]:
            lines.append("  " + render_event_line(event))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Command bodies (imported lazily by the CLI).
# ---------------------------------------------------------------------------


def top(
    root,
    *,
    once: bool = False,
    interval: float = 2.0,
    stale_after: float = DEFAULT_STALE_AFTER,
) -> int:
    """Body of ``repro top``: render frames until interrupted."""
    root = Path(root)
    if not root.is_dir():
        print(f"repro top: no runs root at {root}", file=sys.stderr)
        return 1
    prev_counts: "dict[str, int] | None" = None
    while True:
        state = collect_state(root)
        frame = render_top(state, stale_after=stale_after,
                           prev_counts=prev_counts)
        if once:
            print(frame)
            return 0
        # ANSI clear + home, like any terminal dashboard.
        sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
        sys.stdout.flush()
        prev_counts = state["counts"]
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0


def tail(
    root,
    *,
    follow: bool = False,
    interval: float = 0.5,
) -> int:
    """Body of ``repro tail``: print the merged event stream.

    ``--follow`` re-reads the per-source files each poll and prints only
    records beyond the per-file counts already seen — torn tail lines
    are skipped by the reader and picked up whole on a later poll.
    """
    root = Path(root)
    if not root.is_dir():
        print(f"repro tail: no runs root at {root}", file=sys.stderr)
        return 1
    events_dir = root / EVENTS_DIRNAME
    seen: "dict[str, int]" = {}

    def _emit_new() -> None:
        try:
            files = sorted(events_dir.glob("*.jsonl"))
        except OSError:
            return
        fresh: "list[dict[str, Any]]" = []
        for path in files:
            records = iter_jsonl(path)
            start = seen.get(path.name, 0)
            fresh.extend(records[start:])
            seen[path.name] = len(records)
        fresh.sort(
            key=lambda e: (e.get("ts", 0.0), str(e.get("src")), e.get("seq", 0))
        )
        for event in fresh:
            print(render_event_line(event))

    _emit_new()
    if not follow:
        return 0
    while True:
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
        _emit_new()
        sys.stdout.flush()
