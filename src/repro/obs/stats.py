"""Render a past run's telemetry — ``repro stats <run-dir>``.

Reads whatever a ``repro run --out DIR`` invocation left behind —
``summary.json`` (checks, timings, fault records), ``metrics.json``
(aggregated counters/gauges/histograms), ``trace.jsonl`` (spans), and
any ``profile-*.pstats`` dumps — and renders one human-readable report.
Pretty-printing past faults lives here too: ``summary.json`` has carried
per-experiment fault metadata since the fault-tolerance work, and this
command is its reader.

Three output shapes since the live-observability work:
``--format human`` (the default report, now with a *fleet* section
summing the dispatch counters and the per-worker task tally stitched
into the trace), ``--format json`` (:func:`stats_doc` — the full
machine-readable document: counters, spans summary, faults, degraded
writes), and ``--format openmetrics`` (the Prometheus text exposition
of ``metrics.json``, rendered by :mod:`repro.obs.openmetrics`).

Everything is file-based and read-only: ``repro stats`` re-runs nothing
and works on any machine the run directory was copied to.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

__all__ = ["RunDirError", "render_run_dir", "stats_doc"]

#: Counter names summed across scopes into the fleet section.
FLEET_COUNTERS = (
    "executor.dispatch.queues",
    "executor.dispatch.reissues",
    "executor.dispatch.workers_lost",
    "executor.events.worker-lost",
    "quarantine.tasks",
    "journal.degraded_writes",
    "events.degraded_writes",
)


class RunDirError(RuntimeError):
    """The directory holds nothing ``repro stats`` can render."""


def _load_json(path: Path) -> "dict[str, Any] | None":
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise RunDirError(f"cannot read {path}: {exc}") from exc


def _load_spans(path: Path) -> "list[dict[str, Any]]":
    if not path.is_file():
        return []
    spans = []
    try:
        for line in path.read_text(encoding="utf-8").splitlines():
            if line.strip():
                spans.append(json.loads(line))
    except (OSError, json.JSONDecodeError) as exc:
        raise RunDirError(f"cannot read {path}: {exc}") from exc
    return spans


def _span_lines(spans: "list[dict[str, Any]]", experiment: str) -> "list[str]":
    """Stage and task lines of one experiment's span subtree."""
    exp = [s for s in spans if s.get("kind") == "experiment" and s.get("name") == experiment]
    if not exp:
        return []
    exp_ids = {s["id"] for s in exp}
    lines = [f"  spans ({sum(s['dur'] for s in exp):.3f}s total):"]
    for stage in (s for s in spans if s.get("parent") in exp_ids):
        if stage.get("kind") == "task":
            continue
        tasks = [
            t for t in spans if t.get("parent") == stage["id"] and t.get("kind") == "task"
        ]
        lines.append(f"    {stage['name']}: {stage['dur']:.3f}s")
        if tasks:
            total = sum(t["dur"] for t in tasks)
            lines.append(
                f"      tasks: {len(tasks)} "
                f"(sum {total:.3f}s, mean {total / len(tasks):.4f}s)"
            )
    return lines


def _fault_lines(entry: "dict[str, Any]") -> "list[str]":
    faults = entry.get("faults") or {}
    if not faults:
        return []
    lines = ["  faults:"]
    for event in faults.get("events", []):
        lines.append(f"    [event] {event.get('kind')}: {event.get('detail')}")
    for failure in faults.get("failures", []):
        lines.append(
            f"    [lost]  task {failure.get('index')} (stage "
            f"{failure.get('stage')!r}) {failure.get('kind')} after "
            f"{failure.get('attempts')} attempt(s): {failure.get('message')}"
        )
    if entry.get("incomplete"):
        lines.append("    result is INCOMPLETE — aggregates exclude lost tasks")
    return lines


def _counter_lines(
    grouped: "dict[str, dict[str, Any]]", scope: str, indent: str = "  "
) -> "list[str]":
    counters = grouped.get(scope)
    if not counters:
        return []
    lines = [f"{indent}counters:"]
    width = max(len(name) for name in counters)
    for name, value in counters.items():
        lines.append(f"{indent}  {name.ljust(width)}  {value}")
    return lines


def _fleet_totals(grouped: "dict[str, dict[str, Any]]") -> "dict[str, int]":
    """Dispatch/fleet counters summed across every scope, zero-dropped."""
    totals: "dict[str, int]" = {}
    for name in FLEET_COUNTERS:
        value = sum(counters.get(name, 0) for counters in grouped.values())
        if value:
            totals[name] = value
    return totals


def _worker_tasks(spans: "list[dict[str, Any]]") -> "dict[str, int]":
    """Tasks per worker, read off the stitched task spans' metadata."""
    tally: "dict[str, int]" = {}
    for sp in spans:
        if sp.get("kind") != "task":
            continue
        worker = (sp.get("meta") or {}).get("worker")
        if worker:
            tally[str(worker)] = tally.get(str(worker), 0) + 1
    return dict(sorted(tally.items()))


def _fleet_lines(
    grouped: "dict[str, dict[str, Any]]", spans: "list[dict[str, Any]]"
) -> "list[str]":
    """The dedicated fleet section: dispatch counters + worker roster."""
    totals = _fleet_totals(grouped)
    workers = _worker_tasks(spans)
    if not totals and not workers:
        return []
    lines = ["", "fleet:"]
    if totals:
        width = max(len(name) for name in totals)
        for name, value in totals.items():
            lines.append(f"  {name.ljust(width)}  {value}")
    if workers:
        roster = ", ".join(f"{w} ({n} tasks)" for w, n in workers.items())
        lines.append(f"  workers: {roster}")
    return lines


def _spans_summary(spans: "list[dict[str, Any]]") -> "dict[str, Any]":
    by_kind: "dict[str, int]" = {}
    for sp in spans:
        kind = str(sp.get("kind", "?"))
        by_kind[kind] = by_kind.get(kind, 0) + 1
    return {
        "total": len(spans),
        "by_kind": dict(sorted(by_kind.items())),
        "workers": _worker_tasks(spans),
    }


def stats_doc(run_dir) -> "dict[str, Any]":
    """The machine-readable ``repro stats --json`` document.

    Everything the human renderer knows, as one JSON object: run flags
    and status, per-experiment checks/timings/faults, the full counter/
    gauge/histogram document, a spans summary (with the per-worker task
    tally), the fleet totals, and the degraded-write counts.
    """
    base = Path(run_dir)
    summary = _load_json(base / "summary.json")
    metrics = _load_json(base / "metrics.json")
    spans = _load_spans(base / "trace.jsonl")
    profiles = sorted(p.name for p in base.glob("profile-*.pstats"))
    if summary is None and metrics is None and not spans:
        raise RunDirError(
            f"{base} holds no summary.json, metrics.json, or trace.jsonl; "
            "create one with `repro run ... --out DIR [--trace --metrics]`"
        )
    grouped = (metrics or {}).get("counters", {})
    health = (summary or {}).get("journal") or {}
    doc: "dict[str, Any]" = {
        "run_dir": str(base),
        "flags": {
            key: (summary or {}).get(key)
            for key in ("scale", "seed", "jobs", "channel", "executor", "run_id")
        },
        "backend": (summary or {}).get("backend"),
        "passed": (summary or {}).get("passed"),
        "incomplete": bool((summary or {}).get("incomplete")),
        "experiments": (summary or {}).get("experiments", []),
        "metrics": metrics,
        "spans": _spans_summary(spans),
        "fleet": _fleet_totals(grouped),
        "degraded_writes": {
            "journal": int(health.get("degraded_writes", 0) or 0),
            "counted": sum(
                counters.get(name, 0)
                for counters in grouped.values()
                for name in ("journal.degraded_writes", "events.degraded_writes")
            ),
        },
        "profiles": profiles,
    }
    return doc


def render_run_dir(run_dir) -> str:
    """One readable report of everything the run directory recorded."""
    base = Path(run_dir)
    summary = _load_json(base / "summary.json")
    metrics = _load_json(base / "metrics.json")
    spans = _load_spans(base / "trace.jsonl")
    profiles = sorted(p.name for p in base.glob("profile-*.pstats"))
    if summary is None and metrics is None and not spans:
        raise RunDirError(
            f"{base} holds no summary.json, metrics.json, or trace.jsonl; "
            "create one with `repro run ... --out DIR [--trace --metrics]`"
        )

    grouped = (metrics or {}).get("counters", {})
    lines = [f"run directory: {base}"]
    if summary is not None:
        flags = ", ".join(
            f"{key}={summary.get(key)!r}"
            for key in ("scale", "seed", "jobs", "channel", "run_id")
            if summary.get(key) is not None
        )
        lines.append(f"flags: {flags or '(defaults)'}")
        backend_doc = summary.get("backend")
        if isinstance(backend_doc, dict):
            topk = backend_doc.get("topk")
            tail = "dense" if topk is None else f"topk={topk}"
            lines.append(
                "backend: "
                f"{backend_doc.get('backend')}/{backend_doc.get('dtype')}/{tail}"
            )
        status = "PASS" if summary.get("passed") else "FAIL"
        if summary.get("incomplete"):
            status += " (INCOMPLETE)"
        lines.append(f"status: {status}")
        health = summary.get("journal")
        if isinstance(health, dict):
            corrupt = int(health.get("corrupt_records", 0) or 0)
            degraded = int(health.get("degraded_writes", 0) or 0)
            if corrupt:
                lines.append(
                    f"journal: {corrupt} corrupt record(s) skipped on "
                    "resume — those tasks silently re-ran"
                )
            if degraded:
                lines.append(
                    f"journal: {degraded} checkpoint write(s) degraded "
                    "(resource exhaustion) — results correct, resume "
                    "coverage reduced"
                )

    for entry in (summary or {}).get("experiments", []):
        exp_id = str(entry.get("experiment_id"))
        lines.append("")
        verdict = "PASS" if entry.get("passed") else "FAIL"
        lines.append(f"[{exp_id}] {entry.get('title')}  [{verdict}]")
        timings = entry.get("timings") or {}
        if timings:
            rendered = ", ".join(f"{k}={v:.3f}s" for k, v in timings.items())
            lines.append(f"  timings: {rendered}")
        lines.extend(_fault_lines(entry))
        lines.extend(_span_lines(spans, exp_id))
        lines.extend(_counter_lines(grouped, exp_id))

    if summary is None and metrics is not None:
        # Metrics without a summary: render every scope we have.
        for scope in grouped:
            if scope == "run":
                continue
            lines.append("")
            lines.append(f"[{scope}]")
            lines.extend(_counter_lines(grouped, scope))

    lines.extend(_fleet_lines(grouped, spans))

    run_counters = _counter_lines(grouped, "run")
    gauges = (metrics or {}).get("gauges", {})
    hists = (metrics or {}).get("histograms", {})
    if run_counters or spans or profiles or gauges or hists:
        lines.append("")
        lines.append("run totals:")
        lines.extend(_counter_lines(grouped, "run", indent="  "))
        for scope, named in gauges.items():
            for name, value in named.items():
                lines.append(f"  gauge {scope}/{name} = {value}")
        for scope, named in hists.items():
            for name, hist in named.items():
                count = hist.get("count", 0)
                total = hist.get("sum", 0.0)
                mean = total / count if count else 0.0
                lines.append(
                    f"  histogram {scope}/{name}: count={count} "
                    f"sum={total:.4f} mean={mean:.5f}"
                )
        if spans:
            lines.append(f"  trace: {len(spans)} span(s) in trace.jsonl")
        for name in profiles:
            lines.append(f"  profile: {name}")
    return "\n".join(lines)
