"""Exp3 — no-regret learning under bandit feedback (Auer et al. [23]).

The theory of Section 6 only needs *some* algorithm with the no-regret
property holding with high probability after polynomially many rounds;
the paper cites the non-stochastic multi-armed bandit work [23], where a
player observes only the reward of the action actually played.  Exp3 is
that algorithm, included so the game engine can be run in the more
realistic partial-information mode (a link that stays silent learns
nothing about what sending would have yielded).

Rewards ``h ∈ {-1, 0, +1}`` are mapped affinely into ``[0, 1]`` before
the importance-weighted update.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["Exp3Learner"]

IDLE, SEND = 0, 1


class Exp3Learner:
    """Two-action Exp3 with uniform exploration ``γ``.

    Parameters
    ----------
    rng:
        Seed or generator.
    gamma:
        Exploration rate in ``(0, 1]``.  The classical tuning for horizon
        ``T`` and ``K=2`` actions is ``min(1, sqrt(K ln K / ((e-1) T)))``;
        pass ``horizon=`` to apply it, otherwise a mild default is used.
    horizon:
        Optional known horizon for the classical tuning.
    """

    def __init__(self, rng=None, *, gamma: "float | None" = None, horizon: "int | None" = None):
        self._rng = as_generator(rng)
        if gamma is None:
            if horizon is not None and horizon > 0:
                gamma = min(1.0, math.sqrt(2.0 * math.log(2.0) / ((math.e - 1) * horizon)))
            else:
                gamma = 0.1
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must lie in (0, 1], got {gamma}")
        self.gamma = float(gamma)
        self._log_w = np.zeros(2, dtype=np.float64)
        self.t = 0
        self._last_probs = np.full(2, 0.5)

    @property
    def probabilities(self) -> np.ndarray:
        """Current action distribution (with exploration mixed in)."""
        w = np.exp(self._log_w - self._log_w.max())
        p = (1.0 - self.gamma) * w / w.sum() + self.gamma / 2.0
        return p

    @property
    def send_probability(self) -> float:
        return float(self.probabilities[SEND])

    def choose(self) -> int:
        """Sample an action and remember the distribution used (needed for
        the importance-weighted update)."""
        p = self.probabilities
        self._last_probs = p
        return SEND if self._rng.random() < p[SEND] else IDLE

    def update(self, action: int, reward: float) -> None:
        """Bandit update with the observed reward of the *played* action.

        ``reward`` is the game reward in ``[-1, 1]``; it is rescaled to
        ``[0, 1]`` internally.
        """
        if action not in (IDLE, SEND):
            raise ValueError(f"action must be 0 or 1, got {action}")
        if not -1.0 <= reward <= 1.0:
            raise ValueError(f"reward must lie in [-1, 1], got {reward}")
        x = (reward + 1.0) / 2.0
        estimated = x / max(self._last_probs[action], 1e-12)
        self._log_w[action] += self.gamma * estimated / 2.0
        self._log_w -= self._log_w.max()
        self.t += 1

    def __repr__(self) -> str:
        return f"Exp3Learner(t={self.t}, gamma={self.gamma:.4f}, p_send={self.send_probability:.4f})"
