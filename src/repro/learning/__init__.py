"""Distributed capacity maximization by regret learning (Section 6).

Each link is a player with two actions per round — send or stay idle —
and reward ``+1`` for a successful transmission, ``-1`` for a failed one,
``0`` for silence.  When every player runs a no-regret algorithm, the
average number of successful transmissions per round converges to
``Ω(|OPT|)`` (Theorem 3), in the Rayleigh model as well as the non-fading
one; combined with Theorem 2 this gives the ``O(log* n)`` guarantee.

* :mod:`~repro.learning.rwm` — the Randomized Weighted Majority learner
  [26] with exactly the loss values and η-schedule of Section 7.
* :mod:`~repro.learning.exp3` — the bandit-feedback Exp3 learner [23]
  (the no-regret algorithm class the theory quotes for partial
  information).
* :mod:`~repro.learning.game` — the round-based capacity game for both
  interference models, recording everything the analysis talks about.
* :mod:`~repro.learning.regret` — reward accounting: realized and
  expected rewards, external regret (Definition 2), and the Lemma-5
  quantities ``X`` and ``F``.
"""

from repro.learning.diagnostics import (
    ConvergenceReport,
    convergence_report,
    convergence_round,
    moving_average,
)
from repro.learning.equilibria import (
    EquilibriumResult,
    best_response_dynamics,
    equilibrium_welfare,
    is_equilibrium,
    price_of_anarchy_sample,
)
from repro.learning.exp3 import Exp3Learner
from repro.learning.game import CapacityGame, GameResult
from repro.learning.regret import (
    expected_send_rewards,
    external_regret,
    lemma5_quantities,
    realized_rewards,
)
from repro.learning.rwm import RWMLearner
from repro.learning.rwm_bank import RWMLearnerBank

__all__ = [
    "CapacityGame",
    "ConvergenceReport",
    "EquilibriumResult",
    "convergence_report",
    "convergence_round",
    "moving_average",
    "best_response_dynamics",
    "equilibrium_welfare",
    "is_equilibrium",
    "price_of_anarchy_sample",
    "Exp3Learner",
    "GameResult",
    "RWMLearner",
    "RWMLearnerBank",
    "expected_send_rewards",
    "external_regret",
    "lemma5_quantities",
    "realized_rewards",
]
