"""Nash equilibria of the capacity game (the [5]-style game layer).

Section 6's no-regret sequences generalize Nash equilibria — "this
result transfers the respective game-theoretic studies" of
Andrews–Dinitz [5].  This module makes the equilibrium side concrete for
the two-action capacity game (send / idle, rewards +1 / −1 / 0):

* In the **non-fading** model a pure profile is a Nash equilibrium iff
  every sender would be received (deviating to idle would forfeit +1)
  and every idle player would *not* be received if it joined (deviating
  to send would earn −1).
* In the **Rayleigh** model rewards are stochastic; the natural solution
  concept is equilibrium in *expected* reward: player ``i`` prefers
  sending iff its conditional Theorem-1 success probability exceeds 1/2
  (``E[h_i | send] = 2Q̃_i − 1 > 0``).

:func:`best_response_dynamics` runs asynchronous better-response updates
(round-robin over players, switch when the deviation strictly gains);
in this game a switch by one player only ever *lowers* other senders'
success, so cycling is possible in principle — the dynamics therefore
carry a step cap and report convergence honestly.  :func:`is_equilibrium`
verifies profiles, and :func:`price_of_anarchy_sample` measures the
welfare (successful-transmission count) of found equilibria against the
optimum — the quantity the Andrews–Dinitz line of work bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.capacity.optimum import local_search_capacity
from repro.core.sinr import SINRInstance
from repro.fading.success import success_probability_conditional
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = [
    "EquilibriumResult",
    "best_response_dynamics",
    "is_equilibrium",
    "equilibrium_welfare",
    "price_of_anarchy_sample",
]


def _send_payoff(instance: SINRInstance, actions: np.ndarray, beta: float, model: str) -> np.ndarray:
    """Expected reward of SEND for every player, given the others' actions.

    Non-fading: ±1 by the deterministic reception test.  Rayleigh:
    ``2Q̃_i − 1`` with the exact conditional probability.
    """
    if model == "nonfading":
        diag = instance.signal
        interference = actions.astype(np.float64) @ instance.gains - actions * diag
        denom = interference + instance.noise
        with np.errstate(divide="ignore"):
            sinr_if_sent = np.where(
                denom > 0.0, diag / np.maximum(denom, 1e-300), np.inf
            )
        return np.where(sinr_if_sent >= beta, 1.0, -1.0)
    probs = success_probability_conditional(
        instance, actions.astype(np.float64), beta
    )
    return 2.0 * probs - 1.0


def is_equilibrium(
    instance: SINRInstance,
    actions,
    beta: float,
    *,
    model: str = "nonfading",
    tolerance: float = 0.0,
) -> bool:
    """Whether the pure profile ``actions`` is a Nash equilibrium.

    A player may gain at most ``tolerance`` by unilateral deviation
    (``tolerance = 0`` is exact Nash; positive values give ε-equilibria,
    the right notion for the stochastic Rayleigh payoffs).
    """
    check_positive(beta, "beta")
    if model not in ("nonfading", "rayleigh"):
        raise ValueError(f"unknown model {model!r}")
    a = np.asarray(actions, dtype=bool)
    if a.shape != (instance.n,):
        raise ValueError(f"actions must have shape ({instance.n},)")
    payoff = _send_payoff(instance, a, beta, model)
    # Senders earn payoff, idlers earn 0; deviation swaps the two.
    senders_fine = payoff[a] >= 0.0 - tolerance
    idlers_fine = payoff[~a] <= 0.0 + tolerance
    return bool(np.all(senders_fine) and np.all(idlers_fine))


@dataclass(frozen=True)
class EquilibriumResult:
    """Outcome of best-response dynamics.

    Attributes
    ----------
    actions:
        The final pure profile.
    converged:
        ``True`` iff a full round-robin pass produced no switch (the
        profile is then an exact equilibrium of the expected game).
    steps:
        Total single-player updates performed.
    welfare:
        Expected number of successful transmissions of the profile
        (deterministic count for non-fading, Σ Q̃ over senders for
        Rayleigh).
    """

    actions: np.ndarray
    converged: bool
    steps: int
    welfare: float


def equilibrium_welfare(
    instance: SINRInstance, actions, beta: float, *, model: str = "nonfading"
) -> float:
    """(Expected) successful transmissions of a pure profile."""
    a = np.asarray(actions, dtype=bool)
    if model == "nonfading":
        return float(instance.successes(a, beta).sum())
    probs = success_probability_conditional(instance, a.astype(np.float64), beta)
    return float(probs[a].sum())


def best_response_dynamics(
    instance: SINRInstance,
    beta: float,
    rng=None,
    *,
    model: str = "nonfading",
    initial=None,
    max_rounds: int = 200,
) -> EquilibriumResult:
    """Round-robin better-response dynamics for the capacity game.

    Parameters
    ----------
    instance, beta, model:
        The game.
    rng:
        Randomness for the initial profile (when ``initial`` is None) and
        the player order.
    initial:
        Starting profile (boolean mask); default random.
    max_rounds:
        Cap on full passes; the game need not be a potential game, so
        convergence is reported, not assumed.

    Returns
    -------
    :class:`EquilibriumResult`
    """
    check_positive(beta, "beta")
    if model not in ("nonfading", "rayleigh"):
        raise ValueError(f"unknown model {model!r}")
    if max_rounds <= 0:
        raise ValueError(f"max_rounds must be positive, got {max_rounds}")
    gen = as_generator(rng)
    n = instance.n
    if initial is not None:
        a = np.asarray(initial, dtype=bool).copy()
        if a.shape != (n,):
            raise ValueError(f"initial profile must have shape ({n},)")
    else:
        a = gen.random(n) < 0.5
    steps = 0
    converged = False
    for _ in range(max_rounds):
        changed = False
        for i in gen.permutation(n):
            i = int(i)
            payoff = _send_payoff(instance, a, beta, model)[i]
            want_send = payoff > 0.0
            if want_send != a[i]:
                a[i] = want_send
                changed = True
                steps += 1
        if not changed:
            converged = True
            break
    return EquilibriumResult(
        actions=a,
        converged=converged,
        steps=steps,
        welfare=equilibrium_welfare(instance, a, beta, model=model),
    )


def price_of_anarchy_sample(
    instance: SINRInstance,
    beta: float,
    rng=None,
    *,
    model: str = "nonfading",
    num_starts: int = 8,
    opt_restarts: int = 6,
) -> dict:
    """Welfare of sampled equilibria vs the non-fading optimum.

    Runs best-response dynamics from ``num_starts`` random profiles and
    reports the worst and best *converged* equilibrium welfare against
    the local-search optimum — an empirical price-of-anarchy /
    price-of-stability pair for this instance (the quantities the
    game-theoretic line [5], [24] bounds).

    Returns a dict with keys ``opt``, ``worst``, ``best``, ``poa``
    (opt/worst), ``pos`` (opt/best), ``num_converged``.
    """
    gen = as_generator(rng)
    opt = float(
        local_search_capacity(instance, beta, gen, restarts=opt_restarts).size
    )
    welfare_values = []
    for _ in range(num_starts):
        result = best_response_dynamics(instance, beta, gen, model=model)
        if result.converged:
            welfare_values.append(result.welfare)
    if not welfare_values or opt == 0.0:
        return {
            "opt": opt,
            "worst": float("nan"),
            "best": float("nan"),
            "poa": float("nan"),
            "pos": float("nan"),
            "num_converged": len(welfare_values),
        }
    worst, best = min(welfare_values), max(welfare_values)
    return {
        "opt": opt,
        "worst": worst,
        "best": best,
        "poa": opt / worst if worst > 0 else float("inf"),
        "pos": opt / best if best > 0 else float("inf"),
        "num_converged": len(welfare_values),
    }
