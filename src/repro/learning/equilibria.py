"""Nash equilibria of the capacity game (the [5]-style game layer).

Section 6's no-regret sequences generalize Nash equilibria — "this
result transfers the respective game-theoretic studies" of
Andrews–Dinitz [5].  This module makes the equilibrium side concrete for
the two-action capacity game (send / idle, rewards +1 / −1 / 0):

* Under a **deterministic** channel a pure profile is a Nash
  equilibrium iff every sender would be received (deviating to idle
  would forfeit +1) and every idle player would *not* be received if it
  joined (deviating to send would earn −1).
* Under a **stochastic** channel rewards are random; the natural
  solution concept is equilibrium in *expected* reward: player ``i``
  prefers sending iff its conditional success probability exceeds 1/2
  (``E[h_i | send] = 2Q̃_i − 1 > 0``).  For Rayleigh this probability is
  the exact Theorem-1 form; Monte-Carlo channels (Nakagami, Rician)
  estimate it, making the dynamics ε-better-response in expectation.

All entry points accept either the legacy ``model`` string (a channel
spec alias) or an explicit ``channel``; payoff evaluation is delegated
to :meth:`~repro.channel.base.Channel.counterfactual` /
:meth:`~repro.channel.base.Channel.conditional_success_probability`.

:func:`best_response_dynamics` runs asynchronous better-response updates
(round-robin over players, switch when the deviation strictly gains);
in this game a switch by one player only ever *lowers* other senders'
success, so cycling is possible in principle — the dynamics therefore
carry a step cap and report convergence honestly.  :func:`is_equilibrium`
verifies profiles, and :func:`price_of_anarchy_sample` measures the
welfare (successful-transmission count) of found equilibria against the
optimum — the quantity the Andrews–Dinitz line of work bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.capacity.optimum import local_search_capacity
from repro.channel.base import Channel
from repro.channel.spec import make_channel
from repro.core.sinr import SINRInstance
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = [
    "EquilibriumResult",
    "best_response_dynamics",
    "is_equilibrium",
    "equilibrium_welfare",
    "price_of_anarchy_sample",
]


def _send_payoff(channel: Channel, actions: np.ndarray, rng=None) -> np.ndarray:
    """Expected reward of SEND for every player, given the others' actions.

    Deterministic channels: ±1 by the reception test (the channel's
    counterfactual *is* the expectation).  Stochastic channels:
    ``2Q̃_i − 1`` with the conditional success probability — exact for
    Rayleigh, a Monte-Carlo estimate (consuming ``rng``) otherwise.
    """
    if channel.is_deterministic:
        return np.where(channel.counterfactual(actions), 1.0, -1.0)
    probs = channel.conditional_success_probability(actions.astype(np.float64), rng)
    return 2.0 * probs - 1.0


def is_equilibrium(
    instance: SINRInstance,
    actions,
    beta: float,
    *,
    model: str = "nonfading",
    channel: "Channel | str | None" = None,
    tolerance: float = 0.0,
    rng=None,
) -> bool:
    """Whether the pure profile ``actions`` is a Nash equilibrium.

    A player may gain at most ``tolerance`` by unilateral deviation
    (``tolerance = 0`` is exact Nash; positive values give ε-equilibria,
    the right notion for stochastic payoffs).  ``rng`` is consumed only
    when the channel estimates probabilities by Monte Carlo.
    """
    check_positive(beta, "beta")
    ch = make_channel(channel if channel is not None else model, instance, beta)
    a = np.asarray(actions, dtype=bool)
    if a.shape != (instance.n,):
        raise ValueError(f"actions must have shape ({instance.n},)")
    payoff = _send_payoff(ch, a, rng)
    # Senders earn payoff, idlers earn 0; deviation swaps the two.
    senders_fine = payoff[a] >= 0.0 - tolerance
    idlers_fine = payoff[~a] <= 0.0 + tolerance
    return bool(np.all(senders_fine) and np.all(idlers_fine))


@dataclass(frozen=True)
class EquilibriumResult:
    """Outcome of best-response dynamics.

    Attributes
    ----------
    actions:
        The final pure profile.
    converged:
        ``True`` iff a full round-robin pass produced no switch (the
        profile is then an exact equilibrium of the expected game).
    steps:
        Total single-player updates performed.
    welfare:
        Expected number of successful transmissions of the profile
        (deterministic count for non-fading, Σ Q̃ over senders for
        stochastic channels).
    """

    actions: np.ndarray
    converged: bool
    steps: int
    welfare: float


def equilibrium_welfare(
    instance: SINRInstance,
    actions,
    beta: float,
    *,
    model: str = "nonfading",
    channel: "Channel | str | None" = None,
    rng=None,
) -> float:
    """(Expected) successful transmissions of a pure profile."""
    ch = make_channel(channel if channel is not None else model, instance, beta)
    a = np.asarray(actions, dtype=bool)
    if ch.is_deterministic:
        return float(ch.realize(a).sum())
    probs = ch.conditional_success_probability(a.astype(np.float64), rng)
    return float(probs[a].sum())


def best_response_dynamics(
    instance: SINRInstance,
    beta: float,
    rng=None,
    *,
    model: str = "nonfading",
    channel: "Channel | str | None" = None,
    initial=None,
    max_rounds: int = 200,
) -> EquilibriumResult:
    """Round-robin better-response dynamics for the capacity game.

    Parameters
    ----------
    instance, beta, model, channel:
        The game; ``channel`` (spec string or built channel) takes
        precedence over the legacy ``model`` alias.
    rng:
        Randomness for the initial profile (when ``initial`` is None),
        the player order, and any Monte-Carlo payoff estimates.
    initial:
        Starting profile (boolean mask); default random.
    max_rounds:
        Cap on full passes; the game need not be a potential game, so
        convergence is reported, not assumed.

    Returns
    -------
    :class:`EquilibriumResult`
    """
    check_positive(beta, "beta")
    ch = make_channel(channel if channel is not None else model, instance, beta)
    if max_rounds <= 0:
        raise ValueError(f"max_rounds must be positive, got {max_rounds}")
    gen = as_generator(rng)
    n = instance.n
    if initial is not None:
        a = np.asarray(initial, dtype=bool).copy()
        if a.shape != (n,):
            raise ValueError(f"initial profile must have shape ({n},)")
    else:
        a = gen.random(n) < 0.5
    steps = 0
    converged = False
    for _ in range(max_rounds):
        changed = False
        for i in gen.permutation(n):
            i = int(i)
            payoff = _send_payoff(ch, a, gen)[i]
            want_send = payoff > 0.0
            if want_send != a[i]:
                a[i] = want_send
                changed = True
                steps += 1
        if not changed:
            converged = True
            break
    return EquilibriumResult(
        actions=a,
        converged=converged,
        steps=steps,
        welfare=equilibrium_welfare(instance, a, beta, channel=ch, rng=gen),
    )


def price_of_anarchy_sample(
    instance: SINRInstance,
    beta: float,
    rng=None,
    *,
    model: str = "nonfading",
    channel: "Channel | str | None" = None,
    num_starts: int = 8,
    opt_restarts: int = 6,
) -> dict:
    """Welfare of sampled equilibria vs the non-fading optimum.

    Runs best-response dynamics from ``num_starts`` random profiles and
    reports the worst and best *converged* equilibrium welfare against
    the local-search optimum — an empirical price-of-anarchy /
    price-of-stability pair for this instance (the quantities the
    game-theoretic line [5], [24] bounds).

    Returns a dict with keys ``opt``, ``worst``, ``best``, ``poa``
    (opt/worst), ``pos`` (opt/best), ``num_converged``.
    """
    gen = as_generator(rng)
    ch = make_channel(channel if channel is not None else model, instance, beta)
    opt = float(
        local_search_capacity(instance, beta, gen, restarts=opt_restarts).size
    )
    welfare_values = []
    for _ in range(num_starts):
        result = best_response_dynamics(instance, beta, gen, channel=ch)
        if result.converged:
            welfare_values.append(result.welfare)
    if not welfare_values or opt == 0.0:
        return {
            "opt": opt,
            "worst": float("nan"),
            "best": float("nan"),
            "poa": float("nan"),
            "pos": float("nan"),
            "num_converged": len(welfare_values),
        }
    worst, best = min(welfare_values), max(welfare_values)
    return {
        "opt": opt,
        "worst": worst,
        "best": best,
        "poa": opt / worst if worst > 0 else float("inf"),
        "pos": opt / best if best > 0 else float("inf"),
        "num_converged": len(welfare_values),
    }
