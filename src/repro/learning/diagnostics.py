"""Convergence diagnostics for learning trajectories.

Section 7 claims "a good performance can already be seen after 30 to 40
time steps".  These helpers turn such statements into measurable
quantities on recorded :class:`~repro.learning.game.GameResult` series:

* :func:`moving_average` — the smoothing used when eyeballing noisy
  capacity curves;
* :func:`convergence_round` — the first round whose trailing window
  stays above a target level (and never falls below it again, up to a
  tolerance), the natural formalisation of "converged by round t";
* :func:`convergence_report` — the headline numbers the E2/E9 benches
  print.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["moving_average", "convergence_round", "convergence_report", "ConvergenceReport"]


def moving_average(series, window: int) -> np.ndarray:
    """Trailing moving average; entry ``t`` averages ``series[max(0, t-w+1)..t]``.

    The leading entries average the (shorter) available prefix, so the
    output has the same length as the input.
    """
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"series must be one-dimensional, got shape {arr.shape}")
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    csum = np.concatenate(([0.0], np.cumsum(arr)))
    t = np.arange(1, arr.size + 1)
    lo = np.maximum(0, t - window)
    return (csum[t] - csum[lo]) / (t - lo)


def convergence_round(
    series,
    target: float,
    *,
    window: int = 10,
    slack: float = 0.0,
) -> "int | None":
    """First round (1-indexed) from which the trailing ``window``-average
    reaches ``target`` and never again drops below ``target - slack``.

    Returns ``None`` if the series never converges by this criterion.
    """
    smooth = moving_average(series, window)
    above = smooth >= target
    ok_tail = smooth >= target - slack
    # Candidate t: above at t and tail-ok for all t' >= t.
    tail_ok_from = np.logical_and.accumulate(ok_tail[::-1])[::-1]
    hits = np.flatnonzero(above & tail_ok_from)
    if hits.size == 0:
        return None
    return int(hits[0]) + 1


@dataclass(frozen=True)
class ConvergenceReport:
    """Headline convergence numbers of one capacity trajectory.

    Attributes
    ----------
    final_level:
        Mean of the last ``window`` rounds.
    round_to_half / round_to_90pct:
        First round with the trailing average at 50% / 90% of
        ``final_level`` (``None`` if never).
    """

    final_level: float
    round_to_half: "int | None"
    round_to_90pct: "int | None"


def convergence_report(series, *, window: int = 10) -> ConvergenceReport:
    """Summarise a capacity-per-round series (see :class:`ConvergenceReport`)."""
    arr = np.asarray(series, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("series is empty")
    w = min(window, arr.size)
    final = float(arr[-w:].mean())
    slack = max(0.05 * abs(final), 1e-9)
    return ConvergenceReport(
        final_level=final,
        round_to_half=convergence_round(arr, 0.5 * final, window=w, slack=slack),
        round_to_90pct=convergence_round(arr, 0.9 * final, window=w, slack=slack),
    )
