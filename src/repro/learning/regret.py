"""Reward accounting and regret (Definition 2, Lemmas 4–5).

The capacity game gives player ``i`` reward

* ``+1`` when it transmits and is received (SINR ≥ β),
* ``-1`` when it transmits and is not received,
* ``0`` when it stays idle.

:func:`external_regret` computes Definition 2 exactly from a recorded
game: the best fixed action in hindsight is either "always send"
(needing the counterfactual send outcomes the game engine records for
idle rounds) or "always idle" (reward 0).

:func:`expected_send_rewards` evaluates the *expected* reward function
``h̄`` of Section 6 — ``2·Q_i(q^{(t)}, β) − 1`` conditioned on sending —
which is exactly computable per round via Theorem 1; Lemma 4's claim that
realized-reward regret and expected-reward regret track each other within
``O(sqrt(T ln T))`` is checked empirically by the E9 bench.

:func:`lemma5_quantities` returns the pair ``(X, F)`` of Lemma 5 —
average expected successes and average transmission attempts per round —
whose invariant ``X ≤ F ≤ 2X + εn`` the tests verify on recorded games.
"""

from __future__ import annotations

import numpy as np

from repro.core.sinr import SINRInstance
from repro.engine import guards
from repro.fading.success import success_probability_conditional_batch
from repro.obs import metrics as _metrics
from repro.utils.validation import check_positive

__all__ = [
    "realized_rewards",
    "expected_send_rewards",
    "external_regret",
    "lemma5_quantities",
]


def realized_rewards(actions: np.ndarray, send_success: np.ndarray) -> np.ndarray:
    """Realized rewards ``h_i`` per round, shape ``(T, n)``.

    ``actions`` marks who transmitted; ``send_success`` holds the
    (counterfactual-complete) indicator of a transmission being received.
    Idle rounds earn 0.
    """
    actions = np.asarray(actions, dtype=bool)
    send_success = np.asarray(send_success, dtype=bool)
    if actions.shape != send_success.shape:
        raise ValueError("actions and send_success must have the same shape")
    return np.where(actions, np.where(send_success, 1.0, -1.0), 0.0)


def expected_send_rewards(
    instance: SINRInstance, actions: np.ndarray, beta: float
) -> np.ndarray:
    """Expected reward of the SEND action per round, ``2·Q̃_i^{(t)} − 1``.

    ``Q̃_i^{(t)}`` is the Theorem-1 probability that a transmission by
    ``i`` in round ``t`` is received, given the other players' realized
    binary actions ``q^{(t)}`` (it does not depend on ``i``'s own action).
    Shape ``(T, n)``.  In the non-fading model the same formula applies
    with the indicator in place of the probability; use the game engine's
    recorded ``send_success`` there.

    Actions are binary, so the whole ``T``-round sequence reduces to one
    ``(T, n) @ (n, n)`` product against the Theorem-1 log factors
    (:func:`~repro.fading.success.success_probability_conditional_batch`)
    instead of ``T`` scalar-kernel calls.
    """
    check_positive(beta, "beta")
    actions = np.asarray(actions, dtype=bool)
    if actions.ndim != 2 or actions.shape[1] != instance.n:
        raise ValueError(f"actions must be (T, {instance.n})")
    _metrics.add("regret.reward_rounds", actions.shape[0])
    probs = success_probability_conditional_batch(instance, actions, beta)
    rewards = 2.0 * probs - 1.0
    return guards.check_finite(
        rewards, "regret.expected_send_rewards", beta=float(beta), rounds=actions.shape[0]
    )


def external_regret(
    actions: np.ndarray, send_rewards: np.ndarray
) -> np.ndarray:
    """External regret (Definition 2) of every player over ``T`` rounds.

    Parameters
    ----------
    actions:
        ``(T, n)`` boolean — who transmitted each round.
    send_rewards:
        ``(T, n)`` — reward the SEND action yields (realized ±1 from
        :func:`realized_rewards` counterfactuals, or expected values from
        :func:`expected_send_rewards`).  The IDLE action always yields 0.

    Returns
    -------
    ndarray ``(n,)`` — ``max(total_send, total_idle) - earned`` per player,
    where ``total_idle = 0``.  Non-negative by construction.
    """
    actions = np.asarray(actions, dtype=bool)
    send_rewards = np.asarray(send_rewards, dtype=np.float64)
    if actions.shape != send_rewards.shape:
        raise ValueError("actions and send_rewards must have the same shape")
    earned = np.where(actions, send_rewards, 0.0).sum(axis=0)
    best_fixed = np.maximum(send_rewards.sum(axis=0), 0.0)
    return best_fixed - earned


def lemma5_quantities(
    instance: SINRInstance, actions: np.ndarray, beta: float
) -> tuple[float, float]:
    """The pair ``(X, F)`` of Lemma 5 for a recorded action sequence.

    ``F = Σ_i f_i`` with ``f_i`` the fraction of rounds player ``i``
    transmitted; ``X = Σ_i x_i`` with ``x_i`` the average (exact) success
    probability of its transmissions.  Lemma 5: ``X ≤ F ≤ 2X + εn``
    whenever every player's (expected-reward) regret is at most ``εT``.

    Like :func:`expected_send_rewards`, the recorded binary actions make
    this one batched Theorem-1 product over all ``T`` rounds rather than
    ``T`` scalar-kernel calls.
    """
    actions = np.asarray(actions, dtype=bool)
    T = actions.shape[0]
    _metrics.add("regret.lemma5_rounds", T)
    f = actions.mean(axis=0)
    probs = success_probability_conditional_batch(instance, actions, beta)
    guards.check_probabilities(probs, "regret.lemma5_quantities", beta=float(beta))
    x = np.where(actions, probs, 0.0).sum(axis=0) / T
    return float(x.sum()), float(f.sum())
