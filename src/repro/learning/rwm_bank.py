"""Vectorized bank of RWM learners — one array op per round, not n objects.

Figure-2-scale games run 200 learners for 100+ rounds; with scalar
:class:`~repro.learning.rwm.RWMLearner` objects that is tens of
thousands of Python-level updates per game.  The bank keeps all
learners' log-weights in one ``(n, 2)`` array and performs each round's
sampling and update as a handful of vectorized operations, exactly
replicating the scalar learner's mathematics (same loss table, same
log-domain update, same doubling η schedule — all learners share the
clock, as they do in the game).

Equivalence to the scalar learner is pinned down in
``tests/learning/test_rwm_bank.py``: driven with identical loss
sequences, bank and scalar weights match to machine precision.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["RWMLearnerBank"]

IDLE, SEND = 0, 1


class RWMLearnerBank:
    """``n`` Randomized-Weighted-Majority learners, vectorized.

    Parameters
    ----------
    n:
        Number of players.
    rng:
        One generator drives all sampling (players' draws are independent
        coordinates of vectorized uniforms).
    eta:
        Initial learning rate (paper: ``sqrt(0.5)``).
    schedule:
        ``"doubling"`` (paper) or ``"fixed"``.

    The bank exposes the team interface consumed by
    :class:`~repro.learning.game.CapacityGame`: :meth:`choose_all` and
    :meth:`observe_outcomes`.
    """

    def __init__(
        self,
        n: int,
        rng=None,
        *,
        eta: float = math.sqrt(0.5),
        schedule: str = "doubling",
    ):
        if n <= 0:
            raise ValueError(f"need at least one player, got n={n}")
        if not 0.0 < eta < 1.0:
            raise ValueError(f"eta must lie in (0, 1), got {eta}")
        if schedule not in ("doubling", "fixed"):
            raise ValueError(f"unknown schedule {schedule!r}")
        self.n = int(n)
        self._rng = as_generator(rng)
        self.eta = float(eta)
        self.schedule = schedule
        self._log_w = np.zeros((self.n, 2), dtype=np.float64)
        self.t = 0
        self._next_power = 2

    @property
    def send_probabilities(self) -> np.ndarray:
        """Per-player probability of playing SEND next round."""
        shifted = self._log_w - self._log_w.max(axis=1, keepdims=True)
        w = np.exp(shifted)
        return w[:, SEND] / w.sum(axis=1)

    def choose_all(self) -> np.ndarray:
        """Sample every player's action; ``True`` = SEND."""
        return self._rng.random(self.n) < self.send_probabilities

    def update_all(self, loss_idle: np.ndarray, loss_send: np.ndarray) -> None:
        """Vectorized weight update with per-player losses in ``[0, 1]``."""
        li = np.asarray(loss_idle, dtype=np.float64)
        ls = np.asarray(loss_send, dtype=np.float64)
        if li.shape != (self.n,) or ls.shape != (self.n,):
            raise ValueError(f"losses must have shape ({self.n},)")
        if (
            li.min(initial=0.0) < 0.0
            or ls.min(initial=0.0) < 0.0
            or li.max(initial=0.0) > 1.0
            or ls.max(initial=0.0) > 1.0
        ):
            raise ValueError("losses must lie in [0, 1]")
        log_decay = math.log1p(-self.eta)
        self._log_w[:, IDLE] += li * log_decay
        self._log_w[:, SEND] += ls * log_decay
        self._log_w -= self._log_w.max(axis=1, keepdims=True)
        self.t += 1
        if self.schedule == "doubling" and self.t > self._next_power:
            self.eta *= math.sqrt(0.5)
            self._next_power *= 2

    def observe_outcomes(self, send_would_succeed: np.ndarray, loss_scale=None) -> None:
        """The paper's loss table, vectorized: idle costs 0.5, a failed
        transmission costs 1, a received one 0 — optionally scaled
        per player (the weighted game)."""
        ok = np.asarray(send_would_succeed, dtype=bool)
        if ok.shape != (self.n,):
            raise ValueError(f"outcomes must have shape ({self.n},)")
        scale = (
            np.ones(self.n)
            if loss_scale is None
            else np.asarray(loss_scale, dtype=np.float64)
        )
        self.update_all(0.5 * scale, np.where(ok, 0.0, 1.0) * scale)

    def __repr__(self) -> str:
        return f"RWMLearnerBank(n={self.n}, t={self.t}, eta={self.eta:.4f})"
