"""The round-based capacity game (Section 6 / Figure 2 engine).

Every round, each link's learner picks send/idle; the engine evaluates
who would be received — for *every* link, including idle ones, since the
counterfactual "had I sent" outcome depends only on the other players'
actions — and feeds the learners their losses.  Reception is delegated
entirely to a :class:`~repro.channel.base.Channel`
(:meth:`~repro.channel.base.Channel.counterfactual`), so the game runs
under *any* interference model: the deterministic SINR test, the exact
Theorem-1 Rayleigh law, a Monte-Carlo fading family, or block fading.
The legacy ``model="nonfading"/"rayleigh"`` strings are channel-spec
aliases.

The engine records everything the analysis of Section 6 refers to, so
regret (Definition 2), the Lemma-4 comparison, and the Lemma-5 invariant
can all be computed after the fact from one :class:`GameResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.channel.base import Channel
from repro.channel.spec import make_channel
from repro.core.sinr import SINRInstance
from repro.learning.regret import (
    expected_send_rewards,
    external_regret,
    lemma5_quantities,
    realized_rewards,
)
from repro.learning.rwm import RWMLearner
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["GameResult", "CapacityGame"]


@dataclass(frozen=True)
class GameResult:
    """Full record of a capacity-game run.

    Attributes
    ----------
    actions:
        ``(T, n)`` boolean — who transmitted.
    send_success:
        ``(T, n)`` boolean — whether a transmission by ``i`` in round
        ``t`` was / would have been received (counterfactual-complete).
    success_counts:
        ``(T,)`` — realized successful transmissions per round (the
        Figure 2 curve).
    send_probabilities:
        ``(T, n)`` — each learner's send probability entering the round
        (diagnostics; shows convergence).
    model:
        The channel's display name (``"nonfading"``, ``"rayleigh"``,
        ``"nakagami(m=2)"``, ...).
    beta:
        The SINR threshold played.
    weights:
        Per-link weights of the weighted game (``None`` for the binary
        game of Section 6).
    weighted_values:
        ``(T,)`` — realized weighted utility per round (``None`` for the
        binary game; use :attr:`success_counts` there).
    """

    actions: np.ndarray
    send_success: np.ndarray
    success_counts: np.ndarray
    send_probabilities: np.ndarray
    model: str
    beta: float
    weights: "np.ndarray | None" = None
    weighted_values: "np.ndarray | None" = None
    meta: dict = field(default_factory=dict, compare=False)

    @property
    def num_rounds(self) -> int:
        return self.actions.shape[0]

    @property
    def n(self) -> int:
        return self.actions.shape[1]

    def realized_regret(self) -> np.ndarray:
        """External regret per player against realized rewards ``h_i``
        (``±w_i`` in the weighted game)."""
        rewards = np.where(self.send_success, 1.0, -1.0)
        if self.weights is not None:
            rewards = rewards * self.weights
        return external_regret(self.actions, rewards)

    def expected_regret(self, instance: SINRInstance) -> np.ndarray:
        """External regret per player against expected rewards ``h̄_i``
        (Rayleigh model; Lemma 4 relates this to :meth:`realized_regret`)."""
        send_rewards = expected_send_rewards(instance, self.actions, self.beta)
        return external_regret(self.actions, send_rewards)

    def lemma5(self, instance: SINRInstance) -> tuple[float, float]:
        """The pair ``(X, F)`` of Lemma 5 for this run."""
        return lemma5_quantities(instance, self.actions, self.beta)

    def average_successes(self, last: "int | None" = None) -> float:
        """Mean successful transmissions per round (optionally over the
        trailing ``last`` rounds, e.g. after convergence)."""
        counts = self.success_counts if last is None else self.success_counts[-last:]
        return float(counts.mean())


LearnerFactory = Callable[[np.random.Generator], "object"]


class CapacityGame:
    """Round-based capacity game with pluggable learners.

    Parameters
    ----------
    instance:
        Mean signals and noise.
    beta:
        Global SINR threshold (binary utilities, as in Section 6).
    model:
        Channel spec string (``"nonfading"``, ``"rayleigh"``,
        ``"nakagami:m=2"``, ...); ignored when ``channel`` is given.
    channel:
        An explicit :class:`~repro.channel.base.Channel` built on
        ``instance`` (takes precedence over ``model``).  The channel's
        threshold must match ``beta``.
    rng:
        Seed or generator; child streams are spawned per learner and for
        the channel, so runs are reproducible.
    weights:
        Optional positive per-link weights — the link-weighted utility
        family of Section 2.  Rewards become ``±w_i`` and the default
        RWM learners see losses scaled by ``w_i / max(w)`` (so a heavy
        link treats a failed attempt as proportionally more painful,
        keeping losses in ``[0, 1]``).  ``None`` is the paper's binary
        game.
    """

    def __init__(
        self,
        instance: SINRInstance,
        beta: float,
        *,
        model: str = "nonfading",
        channel: "Channel | str | None" = None,
        rng=None,
        weights=None,
    ):
        check_positive(beta, "beta")
        self.instance = instance
        self.beta = float(beta)
        self.channel = make_channel(channel if channel is not None else model, instance, beta)
        if self.channel.beta != self.beta:
            raise ValueError(
                f"channel threshold {self.channel.beta:g} differs from game beta {beta:g}"
            )
        self.model = self.channel.name
        self._rng = as_generator(rng)
        if weights is not None:
            w = np.asarray(weights, dtype=np.float64).copy()
            if w.shape != (instance.n,) or np.any(w <= 0) or not np.all(np.isfinite(w)):
                raise ValueError("weights must be a positive vector of length n")
            w.setflags(write=False)
        else:
            w = None
        self.weights = w

    def _default_learners(self) -> list[RWMLearner]:
        return [RWMLearner(child) for child in self._rng.spawn(self.instance.n)]

    def play(
        self,
        num_rounds: int,
        learners: "Sequence[object] | None" = None,
    ) -> GameResult:
        """Run the game for ``num_rounds`` rounds.

        ``learners`` defaults to one paper-configured
        :class:`~repro.learning.rwm.RWMLearner` per link.  Any object with
        ``choose() -> int`` and either ``observe_outcome(bool)``
        (full information) or ``update(action, reward)`` (bandit) works;
        :class:`~repro.learning.exp3.Exp3Learner` uses the latter.
        Alternatively pass one
        :class:`~repro.learning.rwm_bank.RWMLearnerBank` (anything with
        ``choose_all``/``observe_outcomes``) for the vectorized fast path
        — preferred at paper scale (200 players).

        Returns
        -------
        :class:`GameResult`
        """
        if num_rounds <= 0:
            raise ValueError(f"num_rounds must be positive, got {num_rounds}")
        inst = self.instance
        n = inst.n
        bank = learners if hasattr(learners, "choose_all") else None
        if bank is not None:
            if getattr(bank, "n", None) != n:
                raise ValueError(f"learner bank covers {getattr(bank, 'n', '?')} players, need {n}")
            players = []
        else:
            players = list(learners) if learners is not None else self._default_learners()
            if len(players) != n:
                raise ValueError(f"need one learner per link ({n}), got {len(players)}")
        channel = self._rng.spawn(1)[0]

        actions = np.zeros((num_rounds, n), dtype=bool)
        send_success = np.zeros((num_rounds, n), dtype=bool)
        probs_log = np.zeros((num_rounds, n), dtype=np.float64)
        success_counts = np.zeros(num_rounds, dtype=np.int64)
        loss_scale = (
            np.ones(n) if self.weights is None else self.weights / self.weights.max()
        )

        for t in range(num_rounds):
            if bank is not None:
                probs_log[t] = bank.send_probabilities
                a = bank.choose_all()
            else:
                for i, pl in enumerate(players):
                    p = getattr(pl, "send_probability", None)
                    probs_log[t, i] = p if p is not None else np.nan
                a = np.fromiter(
                    (pl.choose() for pl in players), dtype=np.int64, count=n
                ).astype(bool)
            actions[t] = a
            # Counterfactual reception of i depends only on the others —
            # the channel answers "would i have been received" for every
            # link at once, drawing any fading from the game's stream.
            ok = self.channel.counterfactual(a, channel)
            send_success[t] = ok
            success_counts[t] = int((a & ok).sum())
            if bank is not None:
                bank.observe_outcomes(
                    ok, loss_scale if self.weights is not None else None
                )
                continue
            for i, pl in enumerate(players):
                scale = loss_scale[i]
                if hasattr(pl, "observe_outcome") and scale == 1.0:
                    pl.observe_outcome(bool(ok[i]))
                elif hasattr(pl, "observe_outcome"):
                    # Weighted losses: same table, scaled per link.
                    pl.update(0.5 * scale, 0.0 if ok[i] else scale)
                else:  # bandit learner: realized reward of the played action
                    reward = (1.0 if ok[i] else -1.0) if a[i] else 0.0
                    pl.update(int(a[i]), reward * scale)
        weighted = (
            None
            if self.weights is None
            else (actions & send_success) @ self.weights
        )
        return GameResult(
            actions=actions,
            send_success=send_success,
            success_counts=success_counts,
            send_probabilities=probs_log,
            model=self.model,
            beta=self.beta,
            weights=self.weights,
            weighted_values=weighted,
            meta={"n": n},
        )
