"""Randomized Weighted Majority with the paper's loss and η schedule.

Section 7 describes the exact variant simulated in Figure 2: the
Littlestone–Warmuth algorithm [26] over the two actions {idle, send} with

* weights initialised to 1 and multiplied by ``(1 - η)^{l_a}`` each step,
  where ``l_a`` is the loss of action ``a``;
* losses: sending without being received costs 1, staying idle costs 0.5,
  everything else costs 0 (these correspond to the ±1/0 rewards of
  Section 6 shifted and scaled into [0, 1]);
* ``η`` starts at ``sqrt(0.5)`` and is multiplied by ``sqrt(0.5)`` every
  time the step count crosses the next power of two (the standard
  doubling-trick schedule that makes RWM anytime-no-regret).

The learner is full-information: it must be told the loss of *both*
actions every round (the game engine computes the counterfactual
send-outcome for idle players).
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["RWMLearner"]

IDLE, SEND = 0, 1

#: Loss of a transmission attempt that is not received.
LOSS_SEND_FAIL = 1.0
#: Loss of staying idle ("the loss of not sending at all is 0.5").
LOSS_IDLE = 0.5
#: Loss of a successful transmission.
LOSS_SEND_OK = 0.0


class RWMLearner:
    """Two-action Randomized Weighted Majority (paper configuration).

    Parameters
    ----------
    rng:
        Seed or generator for action sampling.
    eta:
        Initial learning rate (paper: ``sqrt(0.5)``).
    schedule:
        ``"doubling"`` (paper: multiply η by ``sqrt(0.5)`` at powers of
        two) or ``"fixed"``.
    """

    def __init__(self, rng=None, *, eta: float = math.sqrt(0.5), schedule: str = "doubling"):
        if not 0.0 < eta < 1.0:
            raise ValueError(f"eta must lie in (0, 1), got {eta}")
        if schedule not in ("doubling", "fixed"):
            raise ValueError(f"unknown schedule {schedule!r}")
        self._rng = as_generator(rng)
        self.eta = float(eta)
        self.schedule = schedule
        # Log-domain weights avoid underflow over long runs.
        self._log_w = np.zeros(2, dtype=np.float64)
        self.t = 0
        self._next_power = 2

    @property
    def weights(self) -> np.ndarray:
        """Current (normalised) weights over (idle, send)."""
        w = np.exp(self._log_w - self._log_w.max())
        return w / w.sum()

    @property
    def send_probability(self) -> float:
        """Probability the next :meth:`choose` plays SEND."""
        return float(self.weights[SEND])

    def choose(self) -> int:
        """Sample an action (0 = idle, 1 = send) from the current weights."""
        return SEND if self._rng.random() < self.send_probability else IDLE

    def update(self, loss_idle: float, loss_send: float) -> None:
        """Multiply both weights by ``(1 - η)^loss`` and advance the schedule.

        Losses must lie in ``[0, 1]`` (the paper's values are 0, 0.5, 1).
        """
        for name, loss in (("loss_idle", loss_idle), ("loss_send", loss_send)):
            if not 0.0 <= loss <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {loss}")
        log_decay = math.log1p(-self.eta)
        self._log_w[IDLE] += loss_idle * log_decay
        self._log_w[SEND] += loss_send * log_decay
        # Keep the log-weights anchored so neither can drift to -inf.
        self._log_w -= self._log_w.max()
        self.t += 1
        if self.schedule == "doubling" and self.t > self._next_power:
            self.eta *= math.sqrt(0.5)
            self._next_power *= 2

    def observe_outcome(self, send_would_succeed: bool) -> None:
        """Convenience wrapper applying the paper's loss table for one
        round in which a transmission would (not) have been received."""
        self.update(
            LOSS_IDLE, LOSS_SEND_OK if send_would_succeed else LOSS_SEND_FAIL
        )

    def __repr__(self) -> str:
        return (
            f"RWMLearner(t={self.t}, eta={self.eta:.4f}, "
            f"p_send={self.send_probability:.4f})"
        )
