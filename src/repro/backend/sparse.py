"""Top-k-interferer sparse representation of gain-style matrices.

The dense ``(n, n)`` mean-signal matrix ``S̄`` is the real scaling wall
of every hot path once ``n ≫ 10³``: one ``(B, n) @ (n, n)`` pattern
product costs ``B·n²`` multiply-adds and streams ``8n²`` bytes.  But at
the densities the scheduling literature operates at (Halldórsson–Mitra's
distributed bounds, the stability work in PAPERS.md), a receiver's
interference is dominated by its few strongest interferers — the tail
of weak senders contributes a vanishing fraction of the sum.

:class:`TopKGains` keeps, per **receiver** (column), only the ``k``
largest-magnitude off-diagonal entries — plus, optionally, the exact
diagonal (the own-signal term several kernels subtract back out and
which must therefore never be approximated).  A pattern product then
costs ``B·k·n`` instead of ``B·n²``.

Two product engines are provided:

* a ``scipy.sparse`` CSR product when SciPy is importable (the fast
  path: one C-loop sparse matmul);
* a chunked gather-``einsum`` fallback in pure NumPy.

Both are deterministic (fixed summation order for a fixed matrix), so
sparse-mode runs keep the engine's ``--jobs`` byte-invariance among
themselves; only the *approximation* against the dense reference is
inexact, with the deviation measured per-n by the benchmark harness
(``benchmarks/BENCH_scaling.json``).
"""

from __future__ import annotations

import numpy as np

from repro.obs import metrics as _metrics

try:  # SciPy is an optional accelerator, never a requirement.
    from scipy import sparse as _sp
except ImportError:  # pragma: no cover - exercised via the forced fallback test
    _sp = None

__all__ = ["TopKGains", "topk_indices"]

#: Elements per gather chunk of the pure-NumPy fallback product; bounds
#: the ``(B, k, n)`` temporary to ~128 MB of float64.
_CHUNK_ELEMENTS = 16_000_000


def topk_indices(matrix: np.ndarray, k: int) -> np.ndarray:
    """Row indices of the ``k`` largest-magnitude off-diagonal entries
    per column, shape ``(k, n)``, rows sorted ascending per column.

    ``k`` is clamped to ``n - 1`` (every off-diagonal entry).  The
    diagonal never competes for a slot — kernels that need it ask for
    ``keep_diagonal=True`` at build time and get it exactly.
    """
    m = np.asarray(matrix)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"matrix must be square, got shape {m.shape}")
    n = m.shape[0]
    if n < 2:
        raise ValueError("top-k selection needs at least 2 links")
    k = min(int(k), n - 1)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    mag = np.abs(m).astype(np.float64)
    np.fill_diagonal(mag, -1.0)  # strictly below any |entry| >= 0
    idx = np.argpartition(mag, n - k, axis=0)[n - k :]
    # Sorted row order per column: deterministic, and the gather walks
    # memory forward.
    return np.sort(idx, axis=0)


class TopKGains:
    """Sparse top-k view of a square matrix, optimised for ``X @ M``.

    Attributes
    ----------
    indices:
        ``(rows, n)`` sender indices per receiver column — the top-k
        off-diagonal entries, preceded by the diagonal row when
        ``keeps_diagonal``.
    values:
        Matching entries of the source matrix, cast to the compute dtype.
    """

    __slots__ = (
        "indices",
        "values",
        "n",
        "k",
        "keeps_diagonal",
        "_cols",
        "_csr",
        "_csr_perm",
    )

    is_sparse = True

    def __init__(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        *,
        keeps_diagonal: bool,
        use_scipy: bool = True,
    ):
        if indices.shape != values.shape or indices.ndim != 2:
            raise ValueError(
                f"indices/values must share a 2-D shape, got "
                f"{indices.shape} vs {values.shape}"
            )
        self.indices = np.ascontiguousarray(indices, dtype=np.intp)
        self.values = np.ascontiguousarray(values)
        self.n = indices.shape[1]
        self.keeps_diagonal = bool(keeps_diagonal)
        self.k = indices.shape[0] - (1 if self.keeps_diagonal else 0)
        self._cols = np.broadcast_to(
            np.arange(self.n, dtype=np.intp), self.indices.shape
        )
        self._csr = None
        self._csr_perm: "np.ndarray | None" = None
        if use_scipy and _sp is not None:
            self._build_csr()

    @classmethod
    def build(
        cls,
        matrix: np.ndarray,
        k: int,
        *,
        dtype=np.float64,
        keep_diagonal: bool = False,
        use_scipy: bool = True,
    ) -> "TopKGains":
        """Select the top-k interferers of ``matrix`` per receiver.

        ``keep_diagonal=True`` additionally stores the exact diagonal as
        the leading row — for kernels whose products include the own
        signal and subtract it back out (the SINR denominators).
        """
        idx = topk_indices(matrix, k)
        if keep_diagonal:
            n = matrix.shape[0]
            idx = np.vstack([np.arange(n, dtype=np.intp)[None, :], idx])
        values = np.take_along_axis(np.asarray(matrix), idx, axis=0)
        return cls(
            idx,
            np.asarray(values, dtype=dtype),
            keeps_diagonal=keep_diagonal,
            use_scipy=use_scipy,
        )

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    def __repr__(self) -> str:
        diag = "+diag" if self.keeps_diagonal else ""
        return f"TopKGains(n={self.n}, k={self.k}{diag}, dtype={self.dtype})"

    # -- scipy fast path ----------------------------------------------------

    def _build_csr(self) -> None:
        """CSR form of the sparse matrix, plus the permutation that maps
        a row-major ``(rows, n)`` value table onto the CSR data slots —
        so per-block value swaps (:meth:`gather_matmul`) never re-sort.
        """
        nnz = self.indices.size
        order = _sp.coo_array(
            (
                np.arange(nnz, dtype=np.float64),
                (self.indices.ravel(), self._cols.ravel()),
            ),
            shape=(self.n, self.n),
        ).tocsr()
        self._csr_perm = order.data.astype(np.intp)
        csr = order.copy()
        csr.data = self.values.ravel()[self._csr_perm].astype(self.dtype)
        self._csr = csr

    def _csr_with(self, values: np.ndarray):
        """The CSR matrix with ``values`` (same ``(rows, n)`` layout)
        swapped into the data slots."""
        csr = self._csr.copy()
        csr.data = values.ravel()[self._csr_perm].astype(self.dtype)
        return csr

    # -- products -----------------------------------------------------------

    def matmul(self, x: np.ndarray) -> np.ndarray:
        """``x @ M_topk`` for a ``(B, n)`` batch (the pattern product)."""
        _metrics.add("backend.sparse_matmuls")
        if self._csr is not None:
            return np.asarray(x @ self._csr)
        return self._einsum_product(x, self.values)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``x @ M_topk`` for one ``(n,)`` vector."""
        _metrics.add("backend.sparse_matmuls")
        if self._csr is not None:
            return np.asarray(x @ self._csr)
        return (x[self.indices] * self.values).sum(axis=0)

    def gather_matmul(self, x: np.ndarray, dense: np.ndarray) -> np.ndarray:
        """``x @ D`` restricted to this operator's sparsity pattern, with
        values gathered from the dense matrix ``D``.

        This is the block-fading path: the *selection* of interferers
        comes from the mean gains (where it was built once), while the
        values come from the current coherence block's draw matrix —
        the draws themselves stay dense, so randomness consumption is
        unchanged from the exact path.
        """
        _metrics.add("backend.sparse_matmuls")
        vals = np.take_along_axis(
            np.asarray(dense), self.indices, axis=0
        ).astype(self.dtype, copy=False)
        if self._csr is not None:
            return np.asarray(x @ self._csr_with(vals))
        return self._einsum_product(x, vals)

    def _einsum_product(self, x: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Pure-NumPy fallback: chunked gather + ``einsum`` contraction."""
        x2 = np.atleast_2d(x)
        rows = x2.shape[0]
        out = np.empty((rows, self.n), dtype=np.result_type(x2.dtype, values.dtype))
        block = max(1, _CHUNK_ELEMENTS // max(1, values.size))
        for start in range(0, rows, block):
            chunk = x2[start : start + block]
            out[start : start + block] = np.einsum(
                "bkn,kn->bn", chunk[:, self.indices], values
            )
        return out[0] if x.ndim == 1 else out
