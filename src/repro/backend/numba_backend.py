"""Optional Numba-JIT backend — feature-gated behind importability.

CI and the library default stay pure NumPy; this module is imported
only when a :class:`~repro.backend.config.BackendConfig` names
``backend="numba"``, and :func:`available` gates every use, so the
package is never a requirement.

What the JIT buys: the **sparse top-k gather product** is the one hot
kernel where NumPy pays for temporaries (the ``(B, k, n)`` gather) or
SciPy pays CSR indirection; a fused nopython loop streams ``indices``/
``values`` once with no intermediate allocation.  Dense products stay
on BLAS (:meth:`~repro.backend.core.ArrayBackend.matmul` is inherited
unchanged) — a hand-rolled JIT matmul would *lose* to a tuned BLAS, so
``--backend numba`` without ``--topk`` is deliberately identical to
NumPy.

Numerics: the JIT product accumulates each output entry in index order
(ascending sender index, the same order the operator stores), in the
compute dtype.  That fixed order makes numba runs deterministic, but
the summation order differs from SciPy's CSR walk, so cross-backend
equality is *allclose*, not byte-equal — the equivalence tests state
the tolerances.
"""

from __future__ import annotations

import numpy as np

from repro.backend.core import ArrayBackend
from repro.backend.sparse import TopKGains
from repro.obs import metrics as _metrics

try:  # pragma: no cover - absent in the pure-NumPy CI leg
    import numba as _numba
except ImportError:
    _numba = None

__all__ = ["NumbaBackend", "NumbaTopKGains", "available"]

_JIT_CACHE: "dict[str, object]" = {}


def available() -> bool:
    """Whether the numba package is importable here."""
    return _numba is not None


def _topk_kernel():
    """Compile (once) the fused top-k gather product.

    ``out[b, i] = Σ_r x[b, idx[r, i]] * val[r, i]`` — one pass over the
    ``(rows, n)`` tables per batch row, no gathered temporary.
    """
    fn = _JIT_CACHE.get("topk")
    if fn is None:  # pragma: no cover - requires numba
        @_numba.njit(parallel=True, cache=True)
        def _product(x, idx, val, out):
            batch, n = out.shape
            rows = idx.shape[0]
            for b in _numba.prange(batch):
                for i in range(n):
                    acc = 0.0
                    for r in range(rows):
                        acc += x[b, idx[r, i]] * val[r, i]
                    out[b, i] = acc

        fn = _JIT_CACHE["topk"] = _product
    return fn


class NumbaTopKGains(TopKGains):
    """Top-k operator whose products run through the JIT kernel."""

    def __init__(self, indices, values, *, keeps_diagonal):
        # skip the scipy CSR build: the JIT path replaces it entirely.
        super().__init__(indices, values, keeps_diagonal=keeps_diagonal, use_scipy=False)

    @classmethod
    def from_topk(cls, base: TopKGains) -> "NumbaTopKGains":
        return cls(base.indices, base.values, keeps_diagonal=base.keeps_diagonal)

    def _jit_product(self, x: np.ndarray, values: np.ndarray) -> np.ndarray:
        x2 = np.ascontiguousarray(np.atleast_2d(x))
        out = np.empty((x2.shape[0], self.n), dtype=self.dtype)
        _topk_kernel()(x2, self.indices, np.ascontiguousarray(values), out)
        return out[0] if x.ndim == 1 else out

    def matmul(self, x: np.ndarray) -> np.ndarray:
        _metrics.add("backend.sparse_matmuls")
        return self._jit_product(x, self.values)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        _metrics.add("backend.sparse_matmuls")
        return self._jit_product(x, self.values)

    def gather_matmul(self, x: np.ndarray, dense: np.ndarray) -> np.ndarray:
        _metrics.add("backend.sparse_matmuls")
        vals = np.take_along_axis(np.asarray(dense), self.indices, axis=0)
        return self._jit_product(x, vals.astype(self.dtype, copy=False))


class NumbaBackend(ArrayBackend):
    """NumPy backend with the sparse gather product JIT-compiled."""

    name = "numba"

    def __init__(self, config):
        if not available():  # pragma: no cover - resolve() checks first
            raise ImportError("numba is not importable")
        super().__init__(config)

    def _topk_operator(self, matrix, keep_diagonal):
        base = TopKGains.build(
            matrix,
            self.config.topk,
            dtype=self.dtype,
            keep_diagonal=keep_diagonal,
            use_scipy=False,
        )
        return NumbaTopKGains.from_topk(base)
