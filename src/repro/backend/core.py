"""Array backends and gain-matrix operators — the shim the kernels call.

Every dense hot path in the library is, at bottom, a product of a
pattern-like array against a *gain-style* matrix: the Theorem-1 binary
kernel (``patterns @ log_factors``), the non-fading margin test
(``patterns @ β·S̄``), the CRN Monte-Carlo kernel
(``(act · draws) @ S̄``), and the block-fading chunk evaluation.  The
shim reduces all of them to one abstraction:

* an :class:`ArrayBackend` resolves the ambient
  :class:`~repro.backend.config.BackendConfig` into concrete behaviour
  (compute dtype, dense vs top-k representation, NumPy vs JIT product);
* a **gain operator** (:class:`DenseGains` or
  :class:`~repro.backend.sparse.TopKGains`) wraps one matrix and
  answers ``matmul``/``matvec``/``gather_matmul``.

The invariant everything else leans on: with the default config, the
operator wraps the *same* float64 array it was given (no copy, no cast)
and ``matmul`` is literally ``x @ matrix`` — byte-identical to the
pre-shim code at any ``--jobs``.
"""

from __future__ import annotations

import numpy as np

from repro.backend.config import BackendConfig, get_config
from repro.backend.sparse import TopKGains

__all__ = [
    "ArrayBackend",
    "DenseGains",
    "NumbaUnavailableError",
    "NumpyBackend",
    "active",
    "numba_available",
    "resolve",
]


class NumbaUnavailableError(RuntimeError):
    """The ``numba`` backend was requested but numba is not importable."""


class DenseGains:
    """Dense gain operator: ``matmul`` is a plain BLAS product.

    With the float64 dtype policy the wrapped matrix is the caller's
    array itself (``np.asarray`` performs no copy), so every product is
    bit-for-bit the expression the kernels used before the shim.
    """

    __slots__ = ("matrix",)

    is_sparse = False

    def __init__(self, matrix: np.ndarray, dtype=np.float64):
        self.matrix = np.asarray(matrix, dtype=dtype)

    @property
    def dtype(self) -> np.dtype:
        return self.matrix.dtype

    def matmul(self, x: np.ndarray) -> np.ndarray:
        return x @ self.matrix

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return x @ self.matrix

    def gather_matmul(self, x: np.ndarray, dense: np.ndarray) -> np.ndarray:
        """Product against substitute values ``dense`` (same shape as the
        wrapped matrix) — the dense form ignores the stored matrix."""
        return x @ np.asarray(dense, dtype=self.matrix.dtype)

    def __repr__(self) -> str:
        return f"DenseGains(n={self.matrix.shape[0]}, dtype={self.dtype})"


class ArrayBackend:
    """Base backend: resolves a config into dtype + operator choices."""

    name = "numpy"

    def __init__(self, config: BackendConfig):
        self.config = config
        self.dtype = config.np_dtype

    def asarray(self, a) -> np.ndarray:
        """Cast to the compute dtype (a no-op view under float64)."""
        return np.asarray(a, dtype=self.dtype)

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Dense product; both backends delegate dense math to BLAS."""
        return a @ b

    def gain_operator(self, matrix: np.ndarray, *, keep_diagonal: bool = False):
        """Wrap a gain-style matrix per the active policy.

        ``keep_diagonal=True`` is for kernels whose product includes the
        own-signal diagonal and subtracts it back out — the top-k form
        then stores the diagonal exactly alongside the k strongest
        off-diagonal interferers, so the subtraction stays exact.
        """
        n = np.asarray(matrix).shape[0]
        if self.config.topk is None or n < 2 or self.config.topk >= n - 1:
            return DenseGains(matrix, dtype=self.dtype)
        return self._topk_operator(matrix, keep_diagonal)

    def _topk_operator(self, matrix: np.ndarray, keep_diagonal: bool) -> TopKGains:
        return TopKGains.build(
            matrix, self.config.topk, dtype=self.dtype, keep_diagonal=keep_diagonal
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.config.describe()})"


class NumpyBackend(ArrayBackend):
    """The default backend — pure NumPy (plus SciPy's sparse product
    when importable; see :mod:`repro.backend.sparse`)."""

    name = "numpy"


def numba_available() -> bool:
    """Whether the optional numba JIT backend can be used here."""
    from repro.backend.numba_backend import available

    return available()


def resolve(config: BackendConfig) -> ArrayBackend:
    """Build the backend object a config names.

    Raises :class:`NumbaUnavailableError` when the ``numba`` backend is
    requested in an environment without the numba package — callers
    (the CLI, the worker initializer) surface this as a one-line error
    instead of an ImportError deep inside a kernel.
    """
    if config.backend == "numba":
        from repro.backend.numba_backend import NumbaBackend, available

        if not available():
            raise NumbaUnavailableError(
                "the 'numba' backend requires the numba package, which is "
                "not importable in this environment; install numba or use "
                "--backend numpy"
            )
        return NumbaBackend(config)
    return NumpyBackend(config)


#: One-slot resolve cache: (config, backend).  Configs are tiny frozen
#: dataclasses, so the equality check is cheap and the cache follows
#: every ``set_config``/``backend_scope`` switch automatically.
_ACTIVE: "tuple[BackendConfig, ArrayBackend] | None" = None


def active() -> ArrayBackend:
    """The backend the ambient configuration names (cached)."""
    global _ACTIVE
    config = get_config()
    if _ACTIVE is None or _ACTIVE[0] != config:
        _ACTIVE = (config, resolve(config))
    return _ACTIVE[1]
