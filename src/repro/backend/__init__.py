"""Pluggable array backend for the gain-matrix hot paths.

See DESIGN.md, "Array backend & dtype policy".  Public surface:

* :class:`BackendConfig` + :func:`get_config` / :func:`set_config` /
  :func:`backend_scope` — the ambient (backend, dtype, top-k) policy;
* :func:`active` — the resolved :class:`ArrayBackend` for the ambient
  config (kernels call ``active().gain_operator(M)`` and cache the
  result keyed by config);
* :class:`TopKGains` — the sparse top-k-interferer matrix
  representation;
* :func:`numba_available` — whether the optional JIT backend can run.

The default config is the hard invariant: NumPy, float64, dense is
byte-identical to the pre-shim library at any ``--jobs``.
"""

from repro.backend.config import (
    BACKENDS,
    DTYPE_RTOL,
    DTYPES,
    BackendConfig,
    backend_scope,
    get_config,
    set_config,
)
from repro.backend.core import (
    ArrayBackend,
    DenseGains,
    NumbaUnavailableError,
    NumpyBackend,
    active,
    numba_available,
    resolve,
)
from repro.backend.sparse import TopKGains, topk_indices

__all__ = [
    "BACKENDS",
    "DTYPES",
    "DTYPE_RTOL",
    "ArrayBackend",
    "BackendConfig",
    "DenseGains",
    "NumbaUnavailableError",
    "NumpyBackend",
    "TopKGains",
    "active",
    "backend_scope",
    "get_config",
    "numba_available",
    "resolve",
    "set_config",
    "topk_indices",
]
