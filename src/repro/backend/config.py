"""Backend configuration — which array engine, dtype, and sparsity mode.

One frozen :class:`BackendConfig` names everything a hot-path kernel
needs to know about *how* to compute: the array backend (``numpy`` is
the default; ``numba`` is feature-gated behind importability), the
compute dtype policy (``float64`` default; ``float32`` opt-in with the
tolerances documented in :data:`DTYPE_RTOL`), and the optional top-k
sparsification of gain-style matrices (``topk=None`` keeps every matrix
dense).

The configuration is **ambient**: kernels read the process-wide config
through :func:`get_config` (installed by the CLI's
``--backend/--dtype/--topk`` flags, a :func:`backend_scope` block, or
the executor's worker initializer) instead of threading a backend
argument through every call.  The default config is the hard invariant
of the whole layer: with ``BackendConfig()`` active, every routed
kernel computes the byte-identical NumPy float64 expression it computed
before the shim existed.

Configs are plain data — :meth:`BackendConfig.to_dict` /
:meth:`BackendConfig.from_dict` round-trip them through the executor's
worker bundle, so ``--jobs N`` workers always compute under the same
policy as the parent process and the ``--jobs`` determinism invariant
carries over unchanged.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

__all__ = [
    "BACKENDS",
    "DTYPES",
    "DTYPE_RTOL",
    "BackendConfig",
    "backend_scope",
    "get_config",
    "set_config",
]

#: Recognised backend names.  ``numpy`` is always available; ``numba``
#: requires the numba package and is rejected at resolve time otherwise.
BACKENDS = ("numpy", "numba")

#: Recognised compute dtypes for the gain-matrix kernels.
DTYPES = ("float64", "float32")

#: Documented relative tolerance of each dtype policy against the
#: float64 reference: float64 is exact (byte-identical on the default
#: backend); float32 carries the usual single-precision round-off
#: through one ``(B, n) @ (n, n)`` product and an ``exp``.  The
#: equivalence tests in ``tests/channel/test_backend_equivalence.py``
#: pin these numbers.
DTYPE_RTOL = {"float64": 0.0, "float32": 2e-4}


@dataclass(frozen=True)
class BackendConfig:
    """One immutable choice of (backend, dtype, top-k sparsity).

    Attributes
    ----------
    backend:
        ``"numpy"`` (default) or ``"numba"`` (JIT kernels for the sparse
        gather product; requires the numba package).
    dtype:
        Compute dtype of the gain-matrix kernels: ``"float64"``
        (default, exact) or ``"float32"`` (documented tolerances in
        :data:`DTYPE_RTOL`).
    topk:
        ``None`` for dense matrices (default), or the number of
        strongest interferers kept per receiver in the sparse
        representation (see :class:`repro.backend.sparse.TopKGains`).
    """

    backend: str = "numpy"
    dtype: str = "float64"
    topk: "int | None" = None

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.dtype not in DTYPES:
            raise ValueError(f"dtype must be one of {DTYPES}, got {self.dtype!r}")
        if self.topk is not None:
            if not isinstance(self.topk, int) or isinstance(self.topk, bool):
                raise ValueError(f"topk must be an integer or None, got {self.topk!r}")
            if self.topk < 1:
                raise ValueError(f"topk must be >= 1, got {self.topk}")

    @property
    def np_dtype(self) -> np.dtype:
        """The NumPy dtype the policy computes in."""
        return np.dtype(self.dtype)

    @property
    def rtol(self) -> float:
        """Documented relative tolerance against the float64 reference."""
        return DTYPE_RTOL[self.dtype]

    def is_default(self) -> bool:
        """Whether this is the byte-identical NumPy/float64/dense path."""
        return self.backend == "numpy" and self.dtype == "float64" and self.topk is None

    # -- worker shipping ----------------------------------------------------

    def to_dict(self) -> "dict[str, object]":
        """Plain-data form for the executor's worker bundle / summary.json."""
        return {"backend": self.backend, "dtype": self.dtype, "topk": self.topk}

    @classmethod
    def from_dict(cls, doc: "dict[str, object]") -> "BackendConfig":
        return cls(
            backend=str(doc.get("backend", "numpy")),
            dtype=str(doc.get("dtype", "float64")),
            topk=None if doc.get("topk") is None else int(doc["topk"]),  # type: ignore[arg-type]
        )

    def describe(self) -> str:
        """Short human-readable form, e.g. ``numpy/float32/topk=16``."""
        tail = "dense" if self.topk is None else f"topk={self.topk}"
        return f"{self.backend}/{self.dtype}/{tail}"


#: The ambient process-wide configuration; default = byte-identical path.
_CONFIG = BackendConfig()


def get_config() -> BackendConfig:
    """The active backend configuration of this process."""
    return _CONFIG


def set_config(config: BackendConfig) -> BackendConfig:
    """Install ``config`` process-wide; returns the previous config.

    Kernel-level operator caches are keyed by the active config, so
    switching back and forth never mixes representations.
    """
    global _CONFIG
    if not isinstance(config, BackendConfig):
        raise TypeError(
            f"config must be a BackendConfig, got {type(config).__name__}"
        )
    previous = _CONFIG
    _CONFIG = config
    return previous


@contextmanager
def backend_scope(config: BackendConfig):
    """Temporarily run with the given backend configuration."""
    previous = set_config(config)
    try:
        yield config
    finally:
        set_config(previous)
