"""Command-line interface: run any reproduced experiment from a shell.

.. code-block:: console

    python -m repro list                      # what can be run
    python -m repro run E1                    # quick-scale Figure 1
    python -m repro run E2 --scale paper      # verbatim Section-7 scale
    python -m repro run E1 --jobs 4           # parallel sweep, same bytes
    python -m repro run E6 --seed 7 --timings # re-seeded, with stage times
    python -m repro run E8 --channel nakagami:m=2   # another fading family
    python -m repro run all --out results/    # everything, tables to disk
    python -m repro run E13 --run-id nightly  # journal results as they land
    python -m repro run E13 --resume nightly  # replay journal, run the rest
    python -m repro run E6 --on-error retry --task-timeout 120
    python -m repro run E1 --out r/ --trace --metrics   # telemetry, same bytes
    python -m repro run E1 --executor dispatch          # multi-host queue
    python -m repro worker .repro-runs        # serve dispatch queues
    python -m repro run E1 --monitor --out r/ # live event bus + metrics.prom
    python -m repro top .repro-runs           # live fleet dashboard (files only)
    python -m repro tail .repro-runs --follow # stream the event bus
    python -m repro stats r/                  # render a past run's telemetry
    python -m repro stats r/ --json           # machine-readable document
    python -m repro stats r/ --format openmetrics   # Prometheus exposition
    python -m repro report --out EXPERIMENTS.md

Experiments are discovered through :mod:`repro.engine.registry` — each
driver module self-registers with ``@register`` and the CLI holds no
experiment table of its own.  The ``run`` subcommand prints each
experiment's rendered table and its shape-check verdicts and exits
non-zero if any check fails, so the CLI doubles as a reproduction gate
in CI.  With ``--out DIR`` it also writes an aggregate ``summary.json``
covering every experiment of the invocation.

Fault tolerance (see DESIGN.md, "Fault tolerance & determinism"):
``--on-error`` chooses whether a failing task aborts the run (``raise``,
default), is recorded and skipped (``skip``), or is retried with
exponential backoff (``retry``, ``--retries`` attempts); ``--task-timeout``
bounds each task's wall clock under ``--jobs >= 2``.  ``--run-id`` journals
every completed task so a killed run can be finished with ``--resume`` —
bit-identical to an uninterrupted run at any ``--jobs``.  ``--guards``
sets the numerical-guard strictness (default ``warn``).  Runs that lose
tasks are marked ``incomplete`` in ``summary.json`` and exit non-zero.

Observability (see DESIGN.md, "Observability"): ``--trace`` streams
hierarchical spans (run → experiment → stage → task) to
``trace.jsonl``, ``--metrics`` aggregates kernel/executor counters into
``metrics.json``, and ``--profile`` dumps per-stage cProfile files —
all inside the ``--out`` directory, which these flags therefore
require.  Telemetry never changes result bytes, at any ``--jobs``.
``repro stats <run-dir>`` renders what a past run left behind
(``--json`` for the machine-readable document, ``--format openmetrics``
for the Prometheus text exposition of ``metrics.json``).

Live observability (see DESIGN.md, "Live fleet observability"):
``--monitor`` appends structured events (task lifecycle, leases,
re-issues, quarantines, degraded writes, chaos faults, heartbeats) to
``<runs-root>/events/`` and — when ``--out`` is given — refreshes a
``metrics.prom`` OpenMetrics snapshot during the run.  ``repro top
<runs-root>`` is the refreshing files-only dashboard (stage progress,
ETAs, worker health with stale-heartbeat warnings); ``repro tail
<runs-root> --follow`` streams the merged event bus.  Both work from
any host mounting the runs root.  Events never change result bytes.

Array backend (see DESIGN.md, "Array backend & dtype policy"):
``--backend numpy|numba`` picks the kernel engine (numba is
feature-gated behind importability), ``--dtype float64|float32`` the
compute precision of the gain-matrix products, and ``--topk K`` the
sparse top-k-interferer representation for large ``n``.  The defaults
(``numpy``, ``float64``, dense) are byte-identical to the pre-backend
library at any ``--jobs``; non-default modes trade the documented
tolerances for speed and are recorded in ``summary.json``.

Execution backends (see DESIGN.md, "Execution backends"):
``--executor`` picks where sweep tasks run — ``auto`` (default: serial
for ``--jobs 1``, a local process pool otherwise), ``serial``, ``pool``,
or ``dispatch``, a multi-host work-stealing file queue under
``--runs-root`` served by ``repro worker <runs-root>`` processes (on
this host or on any host mounting the same directory).
``--dispatch-workers N`` spawns N local workers for single-host use;
``--lease-timeout`` bounds how long a silent worker holds a task before
it is re-issued.  Result bytes are identical on every backend at every
worker count.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro import backend as _backend
from repro.engine import chaos, guards
from repro.engine.executor import resolve_jobs
from repro.engine.faults import EXECUTOR_MODES, ON_ERROR_MODES, ExecutionPolicy, RetryPolicy
from repro.engine.journal import JournalError, RunJournal
from repro.engine.registry import ExperimentSpec, all_specs, get_spec
from repro.obs import METRICS_FILENAME, TRACE_FILENAME, MetricsRegistry, Telemetry, obs_scope, span
from repro.obs import events as obs_events
from repro.obs import profile as obs_profile
from repro.obs.stats import RunDirError, render_run_dir, stats_doc
from repro.utils.atomic import atomic_write_text

__all__ = ["main", "build_parser"]

DEFAULT_RUNS_ROOT = ".repro-runs"


def _cmd_list(_args) -> int:
    specs = all_specs()
    width = max(len(k) for k in specs)
    for key, spec in specs.items():
        print(f"{key.ljust(width)}  {spec.title}")
    return 0


def _resolve_specs(spec: str) -> "list[ExperimentSpec]":
    if spec.lower() == "all":
        return list(all_specs().values())
    ids = [part.strip() for part in spec.split(",") if part.strip()]
    if not ids:
        raise SystemExit(f"no experiment ids in {spec!r}; pass E1..E22 or 'all'")
    try:
        return [get_spec(i) for i in ids]
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]) + "; or 'all'") from exc


def _install_backend(args) -> "_backend.BackendConfig":
    """Install the array-backend configuration the flags describe.

    Resolves the backend eagerly so a ``--backend numba`` invocation in
    an environment without numba fails with a one-line error up front,
    not with an ImportError deep inside the first kernel.  The installed
    config is shipped to ``--jobs`` workers by the executor's pool
    initializer, so parent and workers always compute under one policy.
    """
    try:
        config = _backend.BackendConfig(
            backend=args.backend, dtype=args.dtype, topk=args.topk
        )
        _backend.resolve(config)
    except (ValueError, _backend.NumbaUnavailableError) as exc:
        raise SystemExit(str(exc)) from exc
    _backend.set_config(config)
    if getattr(args, "slot_block", None) is not None:
        from repro.latency.slotloop import set_default_slot_block

        try:
            set_default_slot_block(args.slot_block)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
    return config


def _build_executor(args):
    """The ``--executor`` choice as the policy layer wants it: the mode
    string, or one configured :class:`DispatchBackend` instance shared
    by every stage of this invocation (so all stages publish to queues
    under one runs root and reuse the same local workers)."""
    if args.executor != "dispatch":
        if args.dispatch_workers:
            raise SystemExit("--dispatch-workers requires --executor dispatch")
        if args.dispatch_chunk is not None:
            raise SystemExit("--dispatch-chunk requires --executor dispatch")
        return args.executor
    from repro.engine.backends import DispatchBackend

    try:
        return DispatchBackend(
            args.runs_root,
            local_workers=args.dispatch_workers,
            lease_timeout=args.lease_timeout,
            chunk=args.dispatch_chunk,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _close_executor(policy: ExecutionPolicy) -> None:
    """Release a backend instance the policy owns (dispatch workers)."""
    if not isinstance(policy.executor, str):
        policy.executor.close()


def _build_policy(args, journal: "RunJournal | None" = None) -> ExecutionPolicy:
    """The :class:`ExecutionPolicy` this invocation's flags describe."""
    try:
        return ExecutionPolicy(
            on_error=args.on_error,
            retry=RetryPolicy(max_attempts=args.retries),
            timeout=args.task_timeout,
            journal=journal,
            executor=_build_executor(args),
            quarantine_after=args.quarantine_after,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _open_journal(args) -> "RunJournal | None":
    """Create or re-open the run journal the flags ask for (or ``None``).

    A resumed journal must have been created by a compatible invocation:
    the experiment selection, scale, seed, and channel all feed the sweep
    shape and the per-task seeds, and the array-backend configuration
    (backend/dtype/topk) feeds the recorded result bytes, so a mismatch
    would silently mix two different runs.  ``--jobs`` and ``--executor``
    are deliberately *not* checked — results are bit-identical across
    worker counts and backends by construction.
    """
    if args.resume and args.run_id:
        raise SystemExit(
            "pass either --run-id (start a new journaled run) or "
            "--resume (finish an existing one), not both"
        )
    if args.resume is None and args.run_id is None:
        return None
    meta = {
        "experiment": args.experiment,
        "scale": args.scale,
        "seed": args.seed,
        "channel": args.channel,
        "backend": _backend.get_config().to_dict(),
    }
    try:
        if args.resume is not None:
            journal = RunJournal.open(args.runs_root, args.resume)
            for key, value in meta.items():
                recorded = journal.meta.get(key)
                if recorded == value:
                    continue
                if isinstance(recorded, dict) and isinstance(value, dict):
                    diff = ", ".join(
                        f"{f}: {recorded.get(f)!r} (recorded) != "
                        f"{value.get(f)!r} (this invocation)"
                        for f in sorted(set(recorded) | set(value))
                        if recorded.get(f) != value.get(f)
                    )
                    raise SystemExit(
                        f"--resume {args.resume}: the run was created under "
                        f"a different {key} configuration [{diff}]; re-run "
                        "with matching flags or start a new --run-id"
                    )
                raise SystemExit(
                    f"--resume {args.resume}: the run was created with "
                    f"{key}={recorded!r} but this invocation has "
                    f"{key}={value!r}; re-run with matching flags or "
                    "start a new --run-id"
                )
            return journal
        return RunJournal.create(args.runs_root, args.run_id, meta)
    except JournalError as exc:
        raise SystemExit(str(exc)) from exc


def _run_specs(args, on_result, policy: "ExecutionPolicy | None" = None) -> int:
    """Run each requested experiment, feed results to ``on_result``,
    and return the number of experiments with failing checks."""
    failures = 0
    for spec in _resolve_specs(args.experiment):
        try:
            result = spec.run(
                args.scale,
                seed=args.seed,
                jobs=args.jobs,
                channel=args.channel,
                policy=policy,
            )
        except (ValueError, JournalError, RuntimeError) as exc:
            raise SystemExit(str(exc)) from exc
        failures += not result.all_checks_pass
        on_result(spec, result)
    return failures


def _summary_entry(spec: ExperimentSpec, result) -> "dict[str, object]":
    entry: "dict[str, object]" = {
        "experiment_id": spec.experiment_id,
        "title": spec.title,
        "passed": bool(result.all_checks_pass),
        "checks": {name: bool(ok) for name, ok in result.checks.items()},
        "timings": {k: round(v, 6) for k, v in result.timings.items()},
    }
    if result.faults:
        entry["faults"] = result.faults
        entry["incomplete"] = bool(result.incomplete)
    return entry


def _write_text(path: Path, text: str) -> None:
    """Atomic write with a one-line CLI error instead of a traceback."""
    try:
        atomic_write_text(path, text)
    except OSError as exc:
        raise SystemExit(f"cannot write {path}: {exc}") from exc


def _cmd_run(args) -> int:
    guards.set_guard_mode(args.guards)
    backend_config = _install_backend(args)
    journal = _open_journal(args)
    policy = _build_policy(args, journal)
    try:
        return _cmd_run_scoped(args, backend_config, journal, policy)
    finally:
        _close_executor(policy)


def _cmd_run_scoped(args, backend_config, journal, policy) -> int:
    out_dir = Path(args.out) if args.out else None
    if (args.trace or args.metrics or args.profile) and out_dir is None:
        raise SystemExit(
            "--trace/--metrics/--profile write their files into the run "
            "directory; pass --out DIR alongside them"
        )
    if out_dir is not None:
        try:
            out_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise SystemExit(
                f"cannot create --out directory {out_dir}: {exc}"
            ) from exc
    telemetry = (
        Telemetry.for_run_dir(
            out_dir, trace=args.trace, metrics=args.metrics, profile=args.profile
        )
        if out_dir is not None
        else None
    )
    snapshotter = None
    if args.monitor:
        # The event bus lives under the *runs root* (not --out) so that
        # dispatch workers on other hosts append to the same directory
        # and `repro top`/`repro tail` see the whole fleet.  Opening is
        # lazy and degraded writes are absorbed, so --monitor can never
        # take a run down or change result bytes.
        bus = obs_events.EventBus(
            Path(args.runs_root) / obs_events.EVENTS_DIRNAME,
            obs_events.default_source("run"),
        )
        if telemetry is None:
            telemetry = Telemetry(events=bus)
        else:
            telemetry.events = bus
        if out_dir is not None:
            from repro.obs.openmetrics import SNAPSHOT_FILENAME, MetricsSnapshotter

            if telemetry.metrics is None:  # --monitor implies metrics
                telemetry.metrics = MetricsRegistry()
            snapshotter = MetricsSnapshotter(
                telemetry.metrics, out_dir / SNAPSHOT_FILENAME
            ).start()
    summary: "list[dict[str, object]]" = []

    def on_result(spec: ExperimentSpec, result) -> None:
        rendered = result.render(timings=args.timings)
        print(rendered)
        print()
        if out_dir is not None:
            exp_id = spec.experiment_id
            _write_text(out_dir / f"{exp_id}.txt", rendered + "\n")
            _write_text(out_dir / f"{exp_id}.json", result.to_json())
        summary.append(_summary_entry(spec, result))

    try:
        with obs_scope(telemetry):
            with span("run", kind="run", experiments=args.experiment):
                failures = _run_specs(args, on_result, policy)
            profile_files = obs_profile.profile_dumps()
    finally:
        if snapshotter is not None:
            snapshotter.stop()
    incomplete = [
        str(entry["experiment_id"]) for entry in summary if entry.get("incomplete")
    ]
    if out_dir is not None:
        doc = {
            "scale": args.scale,
            "seed": args.seed,
            "jobs": args.jobs,
            "channel": args.channel,
            "executor": args.executor,
            "backend": backend_config.to_dict(),
            "run_id": journal.run_id if journal is not None else None,
            "passed": bool(failures == 0),
            "incomplete": bool(incomplete),
            "experiments": summary,
        }
        if journal is not None:
            doc["journal"] = journal.health()
        if telemetry is not None:
            doc["telemetry"] = {
                "trace": TRACE_FILENAME if args.trace else None,
                "metrics": METRICS_FILENAME if telemetry.metrics is not None else None,
                "profile": profile_files,
                "backend": backend_config.describe(),
                "events": (
                    str(telemetry.events.path) if telemetry.events is not None else None
                ),
                "prom": "metrics.prom" if snapshotter is not None else None,
            }
        _write_text(out_dir / "summary.json", json.dumps(doc, indent=2) + "\n")
        if telemetry is not None and telemetry.metrics is not None:
            _write_text(
                out_dir / METRICS_FILENAME,
                json.dumps(telemetry.metrics.to_dict(), indent=2) + "\n",
            )
    if journal is not None:
        journal.write_status(
            {
                "complete": not incomplete,
                "incomplete_experiments": incomplete,
                "experiments": summary,
                "journal": journal.health(),
            }
        )
    if incomplete:
        hint = (
            f"; finish it with --resume {journal.run_id}"
            if journal is not None
            else "; re-run with --run-id to make the run resumable"
        )
        print(
            f"INCOMPLETE: {', '.join(incomplete)} lost tasks "
            f"(see summary faults){hint}",
            file=sys.stderr,
        )
        return 1
    if failures:
        print(f"{failures} experiment(s) FAILED their shape checks", file=sys.stderr)
        return 1
    return 0


def _cmd_worker(args) -> int:
    """Body of ``repro worker``: steal and execute dispatch tasks."""
    from repro.engine.backends.dispatch import worker_loop

    try:
        return worker_loop(
            args.runs_root,
            name=args.name,
            poll=args.poll,
            max_idle=args.max_idle,
            heartbeat=args.heartbeat,
        )
    except KeyboardInterrupt:
        return 130


def _cmd_doctor(args) -> int:
    """Body of ``repro doctor``: audit (and repair) a runs root."""
    from repro.engine.doctor import diagnose

    report = diagnose(
        args.runs_root, repair=args.repair, stale_after=args.stale_after
    )
    print(json.dumps(report, indent=2))
    return 1 if report["unrepaired"] else 0


def _cmd_top(args) -> int:
    """Body of ``repro top``: the live files-only fleet dashboard."""
    from repro.obs.live import top

    return top(
        args.runs_root,
        once=args.once,
        interval=args.interval,
        stale_after=args.stale_after,
    )


def _cmd_tail(args) -> int:
    """Body of ``repro tail``: print/stream the merged event bus."""
    from repro.obs.live import tail

    return tail(args.runs_root, follow=args.follow, interval=args.interval)


def _cmd_stats(args) -> int:
    fmt = "json" if args.json else args.format
    try:
        if fmt == "json":
            print(json.dumps(stats_doc(args.run_dir), indent=2))
        elif fmt == "openmetrics":
            metrics_path = Path(args.run_dir) / METRICS_FILENAME
            try:
                doc = json.loads(metrics_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                raise RunDirError(
                    f"cannot read {metrics_path} ({exc}); the openmetrics "
                    "format renders metrics.json — run with --metrics or "
                    "--monitor"
                ) from exc
            from repro.obs.openmetrics import render

            sys.stdout.write(render(doc))
        else:
            print(render_run_dir(args.run_dir))
    except RunDirError as exc:
        raise SystemExit(str(exc)) from exc
    return 0


def _cmd_report(args) -> int:
    guards.set_guard_mode(args.guards)
    _install_backend(args)
    policy = _build_policy(args)
    lines = [
        "# Experiment report",
        "",
        f"Scale: `{args.scale}`.  Generated by `python -m repro report`.",
        "",
    ]

    def on_result(spec: ExperimentSpec, result) -> None:
        verdict = "PASS" if result.all_checks_pass else "FAIL"
        lines.extend(
            [
                f"## {spec.experiment_id} — {spec.title}  [{verdict}]",
                "",
                "```",
                result.render(timings=args.timings),
                "```",
                "",
            ]
        )

    try:
        failures = _run_specs(args, on_result, policy)
    finally:
        _close_executor(policy)
    text = "\n".join(lines)
    if args.out:
        _write_text(Path(args.out), text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 1 if failures else 0


def _jobs_arg(value: str) -> int:
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"jobs must be an integer, got {value!r}")
    try:
        resolve_jobs(jobs)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    return jobs


def _retries_arg(value: str) -> int:
    try:
        retries = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"retries must be an integer, got {value!r}")
    if retries < 1:
        raise argparse.ArgumentTypeError(f"retries must be >= 1, got {retries}")
    return retries


def _timeout_arg(value: str) -> float:
    try:
        seconds = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"timeout must be a number, got {value!r}")
    if seconds <= 0:
        raise argparse.ArgumentTypeError(f"timeout must be positive, got {value}")
    return seconds


def _period_arg(value: str) -> float:
    """A seconds period where 0 means "disabled" (unlike _timeout_arg)."""
    try:
        seconds = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"period must be a number, got {value!r}")
    if seconds < 0:
        raise argparse.ArgumentTypeError(
            f"period must be >= 0 (0 disables), got {value}"
        )
    return seconds


def _topk_arg(value: str) -> int:
    try:
        k = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"topk must be an integer, got {value!r}")
    if k < 1:
        raise argparse.ArgumentTypeError(f"topk must be >= 1, got {k}")
    return k


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", choices=("quick", "paper"), default="quick",
        help="quick (default) or verbatim paper parameters",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the experiment's root seed",
    )
    parser.add_argument(
        "--jobs", type=_jobs_arg, default=1,
        help="worker processes for sweep-style experiments "
        "(0 = all cores; results are identical for every value)",
    )
    parser.add_argument(
        "--channel", default=None, metavar="SPEC",
        help="interference-model override for channel-aware experiments: "
        "nonfading | rayleigh | rayleigh-mc[:slots=N] | nakagami:m=M | "
        "rician:k=K | block:coherence=L[,family=...]",
    )
    parser.add_argument(
        "--slot-block", type=int, default=None, metavar="B",
        help="speculative block size of the latency slot-loop engine "
        "(default: engine-chosen; results are identical for every value — "
        "B=1 is the sequential reference, larger B only batches kernels)",
    )
    parser.add_argument(
        "--timings", action="store_true",
        help="append per-stage wall-clock timings to each table",
    )
    parser.add_argument(
        "--on-error", choices=ON_ERROR_MODES, default="raise",
        help="failing sweep task: abort (raise, default), record and "
        "skip, or retry with exponential backoff",
    )
    parser.add_argument(
        "--retries", type=_retries_arg, default=3, metavar="N",
        help="max attempts per task under --on-error retry (default 3)",
    )
    parser.add_argument(
        "--quarantine-after", type=_retries_arg, default=3, metavar="K",
        help="quarantine a task after it kills its worker K times "
        "(default 3): it settles as a structured failure instead of "
        "being re-issued forever, so the rest of the sweep completes",
    )
    parser.add_argument(
        "--task-timeout", type=_timeout_arg, default=None, metavar="SECONDS",
        help="wall-clock budget per sweep task (process backend only)",
    )
    parser.add_argument(
        "--guards", choices=guards.GUARD_MODES, default="warn",
        help="numerical-guard strictness for kernel outputs "
        "(default warn; strict turns violations into task failures)",
    )
    parser.add_argument(
        "--backend", choices=_backend.BACKENDS, default="numpy",
        help="array backend for the gain-matrix kernels (default numpy; "
        "numba requires the numba package and JITs the sparse product)",
    )
    parser.add_argument(
        "--dtype", choices=_backend.DTYPES, default="float64",
        help="compute dtype of the gain-matrix products (default float64, "
        "exact; float32 trades documented tolerances for speed)",
    )
    parser.add_argument(
        "--topk", type=_topk_arg, default=None, metavar="K",
        help="keep only the K strongest interferers per receiver (sparse "
        "gain matrices for large n; default dense/exact)",
    )
    parser.add_argument(
        "--executor", choices=EXECUTOR_MODES, default="auto",
        help="where sweep tasks run: auto (default; serial for --jobs 1, "
        "a local process pool otherwise), serial, pool, or dispatch — a "
        "work-stealing queue under --runs-root served by 'repro worker' "
        "processes, possibly on other hosts (identical result bytes on "
        "every backend)",
    )
    parser.add_argument(
        "--dispatch-workers", type=int, default=0, metavar="N",
        help="with --executor dispatch: also spawn N local worker "
        "processes for the duration of the run (default 0 = rely on "
        "externally started 'repro worker' processes)",
    )
    parser.add_argument(
        "--dispatch-chunk", type=int, default=None, metavar="K",
        help="with --executor dispatch: tasks per claimed work unit "
        "(default: auto-sized from task and worker counts; results are "
        "identical for every chunk size)",
    )
    parser.add_argument(
        "--lease-timeout", type=_timeout_arg, default=10.0, metavar="SECONDS",
        help="with --executor dispatch: re-issue a claimed task whose "
        "worker has not heartbeat for this long (default 10)",
    )
    parser.add_argument(
        "--runs-root", default=DEFAULT_RUNS_ROOT, metavar="DIR",
        help="directory holding run journals and dispatch queues "
        f"(default {DEFAULT_RUNS_ROOT})",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Scheduling in Wireless Networks with "
        "Rayleigh-Fading Interference' (SPAA 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )

    run_p = sub.add_parser("run", help="run experiment(s) and print their tables")
    run_p.add_argument("experiment", help="experiment id, comma list, or 'all'")
    _add_run_options(run_p)
    run_p.add_argument(
        "--out", help="directory for .txt/.json results plus summary.json"
    )
    run_p.add_argument(
        "--trace", action="store_true",
        help="stream hierarchical spans (run/experiment/stage/task) to "
        "trace.jsonl in the --out directory",
    )
    run_p.add_argument(
        "--metrics", action="store_true",
        help="aggregate kernel and executor counters into metrics.json "
        "in the --out directory",
    )
    run_p.add_argument(
        "--profile", action="store_true",
        help="dump a cProfile .pstats file per driver stage into the "
        "--out directory",
    )
    run_p.add_argument(
        "--monitor", action="store_true",
        help="append live structured events (task lifecycle, leases, "
        "heartbeats, faults) under <runs-root>/events/ for repro "
        "top/tail, and refresh a metrics.prom OpenMetrics snapshot in "
        "--out during the run; never changes result bytes",
    )
    run_p.add_argument(
        "--run-id", default=None, metavar="ID",
        help="journal completed tasks under this id (makes the run resumable)",
    )
    run_p.add_argument(
        "--resume", default=None, metavar="ID",
        help="replay a journaled run's completed tasks and execute the rest",
    )
    run_p.set_defaults(func=_cmd_run)

    worker_p = sub.add_parser(
        "worker",
        help="serve dispatch queues under a runs root (start one per "
        "core, on any host sharing the directory)",
    )
    worker_p.add_argument(
        "runs_root",
        help="the shared --runs-root directory dispatch runs publish "
        "their task queues under",
    )
    worker_p.add_argument(
        "--name", default=None, metavar="NAME",
        help="worker identity on leases and task spans "
        "(default <hostname>-<pid>)",
    )
    worker_p.add_argument(
        "--poll", type=_timeout_arg, default=0.1, metavar="SECONDS",
        help="idle queue-scan interval (default 0.1)",
    )
    worker_p.add_argument(
        "--max-idle", type=_timeout_arg, default=None, metavar="SECONDS",
        help="exit after this long with no work (default: serve forever)",
    )
    worker_p.add_argument(
        "--heartbeat", type=_period_arg,
        default=obs_events.DEFAULT_HEARTBEAT_PERIOD, metavar="SECONDS",
        help="period of liveness events (host/pid/RSS/tasks-per-second) "
        "on the runs root's event bus, once a monitored run creates it "
        f"(default {obs_events.DEFAULT_HEARTBEAT_PERIOD:g}; 0 disables)",
    )
    worker_p.set_defaults(func=_cmd_worker)

    top_p = sub.add_parser(
        "top",
        help="live files-only dashboard of in-flight runs under a runs "
        "root: stage progress and ETAs, worker health, queue depths",
    )
    top_p.add_argument(
        "runs_root", nargs="?", default=DEFAULT_RUNS_ROOT,
        help=f"the runs root to watch (default {DEFAULT_RUNS_ROOT})",
    )
    top_p.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (for scripts and CI)",
    )
    top_p.add_argument(
        "--interval", type=_timeout_arg, default=2.0, metavar="SECONDS",
        help="refresh period (default 2)",
    )
    top_p.add_argument(
        "--stale-after", type=_timeout_arg, default=10.0, metavar="SECONDS",
        help="heartbeat silence before a worker is flagged STALE "
        "(default 10)",
    )
    top_p.set_defaults(func=_cmd_top)

    tail_p = sub.add_parser(
        "tail",
        help="print the merged event bus of a runs root, one line per "
        "event; --follow streams new events as they append",
    )
    tail_p.add_argument(
        "runs_root", nargs="?", default=DEFAULT_RUNS_ROOT,
        help=f"the runs root to read (default {DEFAULT_RUNS_ROOT})",
    )
    tail_p.add_argument(
        "-f", "--follow", action="store_true",
        help="keep polling for new events until interrupted",
    )
    tail_p.add_argument(
        "--interval", type=_timeout_arg, default=0.5, metavar="SECONDS",
        help="poll period under --follow (default 0.5)",
    )
    tail_p.set_defaults(func=_cmd_tail)

    doc_p = sub.add_parser(
        "doctor",
        help="audit a runs root for stale leases, orphaned claims, torn "
        "records, and incomplete runs; --repair puts it right",
    )
    doc_p.add_argument(
        "runs_root", nargs="?", default=DEFAULT_RUNS_ROOT,
        help=f"the runs root to audit (default {DEFAULT_RUNS_ROOT})",
    )
    doc_p.add_argument(
        "--repair", action="store_true",
        help="release dead leases, re-queue orphaned claims, and "
        "quarantine corrupt records into corrupt/ (default: report only)",
    )
    doc_p.add_argument(
        "--stale-after", type=_timeout_arg, default=60.0, metavar="SECONDS",
        help="age of heartbeat silence before a lease counts as stale "
        "(default 60; keep it well above the run's --lease-timeout)",
    )
    doc_p.set_defaults(func=_cmd_doctor)

    stats_p = sub.add_parser(
        "stats", help="render a past run directory's telemetry and faults"
    )
    stats_p.add_argument(
        "run_dir", help="a --out directory written by a previous repro run"
    )
    stats_p.add_argument(
        "--format", choices=("human", "json", "openmetrics"), default="human",
        help="human (default), json (the full machine-readable document), "
        "or openmetrics (the Prometheus text exposition of metrics.json)",
    )
    stats_p.add_argument(
        "--json", action="store_true",
        help="shorthand for --format json",
    )
    stats_p.set_defaults(func=_cmd_stats)

    rep_p = sub.add_parser("report", help="run experiments into one markdown report")
    rep_p.add_argument(
        "experiment", nargs="?", default="all", help="id, comma list, or 'all'"
    )
    _add_run_options(rep_p)
    rep_p.add_argument("--out", help="markdown file to write (default: stdout)")
    rep_p.set_defaults(func=_cmd_report)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        chaos.install_from_env()
    except chaos.ChaosSpecError as exc:
        raise SystemExit(str(exc)) from exc
    try:
        return args.func(args)
    except BrokenPipeError:
        # A downstream reader closed the pipe early (`repro tail | head`,
        # `repro top --once | grep -q ...`): exit quietly, like ls/git.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
