"""Command-line interface: run any reproduced experiment from a shell.

.. code-block:: console

    python -m repro list                      # what can be run
    python -m repro run E1                    # quick-scale Figure 1
    python -m repro run E2 --scale paper      # verbatim Section-7 scale
    python -m repro run all --out results/    # everything, tables to disk
    python -m repro report --out EXPERIMENTS.md

The ``run`` subcommand prints each experiment's rendered table and its
shape-check verdicts and exits non-zero if any check fails, so the CLI
doubles as a reproduction gate in CI.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable

from repro.experiments import (
    Figure1Config,
    Figure2Config,
    run_alg1_ablation,
    run_aloha_transform_check,
    run_approximation_factors,
    run_block_fading_check,
    run_capacity_compare,
    run_delta_sweep,
    run_density_sweep,
    run_equilibria_study,
    run_fading_families,
    run_feedback_comparison,
    run_figure1,
    run_figure2,
    run_graph_gap,
    run_latency_compare,
    run_latency_scaling,
    run_lemma2_transfer,
    run_lemma_bounds,
    run_optimum_gap,
    run_optimum_stat,
    run_regret_stats,
    run_shannon_figure,
    run_theorem2,
)
from repro.experiments.runner import ExperimentResult

__all__ = ["main", "EXPERIMENTS"]


def _fig1(scale: str) -> Figure1Config:
    return Figure1Config.paper() if scale == "paper" else Figure1Config.quick()


def _fig2(scale: str) -> Figure2Config:
    return Figure2Config.paper() if scale == "paper" else Figure2Config.quick()


#: Experiment id -> (description, runner taking the scale string).
EXPERIMENTS: dict[str, tuple[str, Callable[[str], ExperimentResult]]] = {
    "E1": ("Figure 1: capacity vs transmit probability", lambda s: run_figure1(_fig1(s))),
    "E2": ("Figure 2: no-regret learning over time", lambda s: run_figure2(_fig2(s))),
    "E3": ("Optimum statistic (paper: 49.75)", lambda s: run_optimum_stat(_fig1(s))),
    "E4": ("Theorem 1 / Lemma 1 bounds", lambda s: run_lemma_bounds(_fig1(s))),
    "E5": ("Lemma 2: 1/e transfer", lambda s: run_lemma2_transfer(_fig1(s))),
    "E6": (
        "Theorem 2 / Algorithm 1 simulation",
        lambda s: run_theorem2(trials=500 if s == "paper" else 150),
    ),
    "E7": ("Capacity algorithm comparison", lambda s: run_capacity_compare(_fig1(s))),
    "E8": ("Latency schedulers, both models", lambda s: run_latency_compare(_fig1(s))),
    "E9": ("Regret-learning statistics", lambda s: run_regret_stats(_fig2(s))),
    "E10": ("ALOHA 4-repeat transformation", lambda s: run_aloha_transform_check(_fig1(s))),
    "E11": (
        "Measured optimum gap vs log* n",
        lambda s: run_optimum_gap(
            sizes=(20, 40, 80, 160) if s == "paper" else (20, 40, 80)
        ),
    ),
    "E12": (
        "Algorithm 1 constants ablation",
        lambda s: run_alg1_ablation(trials=500 if s == "paper" else 150),
    ),
    "E13": (
        "Density sweep: crossover location",
        lambda s: run_density_sweep(num_networks=10 if s == "paper" else 4),
    ),
    "E14": (
        "Fading families (Nakagami / Rician)",
        lambda s: run_fading_families(mc_slots=8000 if s == "paper" else 1500),
    ),
    "E15": (
        "Block fading: the transformation's i.i.d. assumption",
        lambda s: run_block_fading_check(trials=4000 if s == "paper" else 1200),
    ),
    "E16": (
        "Equilibria & price of anarchy",
        lambda s: run_equilibria_study(
            num_networks=8 if s == "paper" else 4,
            num_starts=12 if s == "paper" else 8,
        ),
    ),
    "E17": (
        "Shannon-utility Figure 1 (no crossover)",
        lambda s: run_shannon_figure(
            _fig1(s), fading_slots=10 if s == "paper" else 6
        ),
    ),
    "E18": (
        "Latency scaling vs lower bounds",
        lambda s: run_latency_scaling(
            sizes=(25, 50, 100, 200) if s == "paper" else (25, 50, 100),
            networks_per_size=5 if s == "paper" else 3,
        ),
    ),
    "E19": (
        "Approximation factors vs exact optima",
        lambda s: run_approximation_factors(seeds=6 if s == "paper" else 3),
    ),
    "E20": (
        "Graph-model gap vs density (why SINR)",
        lambda s: run_graph_gap(
            networks_per_area=5 if s == "paper" else 3,
            num_samples=300 if s == "paper" else 120,
        ),
    ),
    "E21": (
        "Power-assignment hierarchy vs delta",
        lambda s: run_delta_sweep(networks_per_delta=8 if s == "paper" else 4),
    ),
    "E22": (
        "Full-information vs bandit feedback",
        lambda s: run_feedback_comparison(
            config=Figure2Config.paper() if s == "paper" else Figure2Config.quick()
        ),
    ),
}


def _cmd_list(_args) -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for key, (desc, _) in EXPERIMENTS.items():
        print(f"{key.ljust(width)}  {desc}")
    return 0


def _resolve_ids(spec: str) -> list[str]:
    if spec.lower() == "all":
        return list(EXPERIMENTS)
    ids = [part.strip().upper() for part in spec.split(",") if part.strip()]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise SystemExit(
            f"unknown experiment id(s) {', '.join(unknown)}; "
            f"choose from {', '.join(EXPERIMENTS)} or 'all'"
        )
    return ids


def _cmd_run(args) -> int:
    failures = 0
    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    for exp_id in _resolve_ids(args.experiment):
        _, runner = EXPERIMENTS[exp_id]
        result = runner(args.scale)
        rendered = result.render()
        print(rendered)
        print()
        if out_dir is not None:
            (out_dir / f"{exp_id}.txt").write_text(rendered + "\n", encoding="utf-8")
            (out_dir / f"{exp_id}.json").write_text(result.to_json(), encoding="utf-8")
        if not result.all_checks_pass:
            failures += 1
    if failures:
        print(f"{failures} experiment(s) FAILED their shape checks", file=sys.stderr)
        return 1
    return 0


def _cmd_report(args) -> int:
    lines = [
        "# Experiment report",
        "",
        f"Scale: `{args.scale}`.  Generated by `python -m repro report`.",
        "",
    ]
    failures = 0
    for exp_id in _resolve_ids(args.experiment):
        desc, runner = EXPERIMENTS[exp_id]
        result = runner(args.scale)
        verdict = "PASS" if result.all_checks_pass else "FAIL"
        failures += not result.all_checks_pass
        lines += [f"## {exp_id} — {desc}  [{verdict}]", "", "```", result.render(), "```", ""]
    text = "\n".join(lines)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Scheduling in Wireless Networks with "
        "Rayleigh-Fading Interference' (SPAA 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )

    run_p = sub.add_parser("run", help="run experiment(s) and print their tables")
    run_p.add_argument("experiment", help="experiment id, comma list, or 'all'")
    run_p.add_argument(
        "--scale", choices=("quick", "paper"), default="quick",
        help="quick (default) or verbatim paper parameters",
    )
    run_p.add_argument("--out", help="directory for .txt/.json results")
    run_p.set_defaults(func=_cmd_run)

    rep_p = sub.add_parser("report", help="run experiments into one markdown report")
    rep_p.add_argument(
        "experiment", nargs="?", default="all", help="id, comma list, or 'all'"
    )
    rep_p.add_argument("--scale", choices=("quick", "paper"), default="quick")
    rep_p.add_argument("--out", help="markdown file to write (default: stdout)")
    rep_p.set_defaults(func=_cmd_report)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
