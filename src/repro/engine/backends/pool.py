"""Process-pool backend — :class:`concurrent.futures.ProcessPoolExecutor`.

Workers are initialised with the shared worker bundle (context, guards,
chaos plan, metrics switch, array-backend config), futures are awaited
in task order, and every fault path of the single-host world is
handled here: a task exception is retried or settled, a hung task is
abandoned after its wall-clock budget (the pool is restarted so the
remaining tasks keep running), and a broken pool (a worker died hard)
is rebuilt a bounded number of times before degrading to re-executing
the unfinished remainder on the serial backend.

Poison-task quarantine: every submission runs under an *in-flight
marker* (a file named for the task index, holding the worker's pid)
that the worker removes when the task settles — so when a worker death
breaks the pool, the surviving markers identify exactly which tasks
were executing, and matching their pids against the dead workers'
identifies which of those to blame.  Blamed tasks accumulate fatal-
attempt counts (persisted in the journal's ``crashes.json`` so they
survive rebuilds and ``--resume``); a task blamed
``state.quarantine_after`` times is settled as
``TaskFailure(kind="quarantined")`` instead of being re-submitted, so
one deterministically crashing task can no longer pin the run in a
rebuild loop.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from typing import TYPE_CHECKING, Any

from repro.engine.backends.base import (
    ExecutionBackend,
    RunState,
    execute_task,
    install_worker_bundle,
    record_event,
    set_worker_name,
    settle_failure,
    settle_success,
    worker_bundle,
)
from repro.engine.backends.serial import SerialBackend
from repro.engine.faults import TaskFailure
from repro.obs import metrics as obs_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.executor import Task

__all__ = ["ProcessPoolBackend"]

#: How many times a broken pool is rebuilt (under ``on_error="retry"``)
#: before the run degrades to the serial backend.
_MAX_POOL_REBUILDS = 2


def _init_worker(bundle: tuple) -> None:
    """Pool initializer: install the shared worker bundle and declare
    this process's identity for task spans."""
    install_worker_bundle(bundle)
    set_worker_name(f"pool-{os.getpid()}")


def _execute_marked(marker_dir: str, fn, task, stage: str):
    """Run one task under an in-flight marker (executes in the worker).

    The marker (named for the task index, holding this worker's pid) is
    removed however the task settles — return or raise — so it survives
    only a hard worker death (``SIGKILL``, ``os._exit``), which is
    precisely the signal the dispatching process needs to blame the
    right task when the pool breaks.  Marker I/O is best effort: a full
    disk costs blame precision, never the task.
    """
    path = os.path.join(marker_dir, f"inflight-{int(task.index):06d}")
    try:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(str(os.getpid()))
    except OSError:
        path = None
    try:
        return execute_task(fn, task, stage)
    finally:
        if path is not None:
            try:
                os.unlink(path)
            except OSError:
                pass


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on hung or dead workers."""
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            proc.kill()
        except Exception:  # already gone
            pass


class ProcessPoolBackend(ExecutionBackend):
    """Execute pending tasks on a local pool of worker processes."""

    name = "pool"

    def run(
        self,
        state: RunState,
        pending: "list[Task]",
        results: "dict[int, Any]",
    ) -> None:
        queue: "dict[int, Task]" = {t.index: t for t in pending}
        attempts: "dict[int, int]" = {t.index: 0 for t in pending}
        losses: "dict[int, int]" = {}
        if state.journal is not None:
            for idx, count in state.journal.crash_counts(state.stage).items():
                if idx in queue:
                    losses[idx] = count
        if state.on_error != "raise":
            # A resumed run already knows its poison tasks: settle them
            # up front instead of feeding them a fresh pool.
            for idx in sorted(queue):
                if losses.get(idx, 0) >= state.quarantine_after:
                    self._quarantine(state, queue, attempts, results, idx, losses[idx])
        marker_dir = tempfile.mkdtemp(prefix="repro-pool-inflight-")
        try:
            self._run_rounds(state, queue, attempts, losses, results, marker_dir)
        finally:
            shutil.rmtree(marker_dir, ignore_errors=True)

    def _run_rounds(
        self,
        state: RunState,
        queue: "dict[int, Task]",
        attempts: "dict[int, int]",
        losses: "dict[int, int]",
        results: "dict[int, Any]",
        marker_dir: str,
    ) -> None:
        pool_breaks = 0
        unresolved_at_break: "int | None" = None
        while queue:
            self._clear_markers(marker_dir)
            submitted = sorted(queue)
            pool = ProcessPoolExecutor(
                max_workers=min(max(state.n_jobs, 1), len(submitted)),
                initializer=_init_worker,
                initargs=(worker_bundle(state.context),),
            )
            futures = {}
            for idx in submitted:
                attempts[idx] += 1
                futures[idx] = pool.submit(
                    _execute_marked, marker_dir, state.fn, queue[idx], state.stage
                )
            abort = None
            for idx in submitted:
                if idx not in queue:
                    continue
                fut = futures[idx]
                try:
                    value = fut.result(timeout=state.timeout)
                except BrokenExecutor:
                    abort = "broken"
                    break
                except _FuturesTimeout as exc:
                    if fut.done():  # the task itself raised a TimeoutError
                        if state.on_error == "raise":
                            pool.shutdown(wait=True, cancel_futures=True)
                            raise
                        self._task_error(state, queue, attempts, results, idx, exc)
                        continue
                    budget = state.timeout if state.timeout is not None else 0.0
                    record_event(
                        state,
                        "timeout",
                        f"task {idx} exceeded its {budget:g}s wall-clock budget; "
                        "restarting the worker pool",
                        index=idx,
                    )
                    if state.on_error == "raise":
                        _kill_pool(pool)
                        raise TimeoutError(
                            f"task {idx} (stage {state.stage!r}) exceeded its "
                            f"{budget:g}s wall-clock budget"
                        ) from None
                    self._task_error(
                        state, queue, attempts, results, idx,
                        TimeoutError(f"exceeded {budget:g}s budget"), kind="timeout",
                    )
                    abort = "timeout"
                    break
                except Exception as exc:
                    if state.on_error == "raise":
                        pool.shutdown(wait=True, cancel_futures=True)
                        raise
                    self._task_error(state, queue, attempts, results, idx, exc)
                else:
                    results[idx] = settle_success(state, queue.pop(idx), value)

            if abort is None:
                pool.shutdown(wait=True)
            else:
                self._harvest_done(state, futures, queue, results)
                dead_pids = self._dead_pids(pool) if abort == "broken" else set()
                _kill_pool(pool)
                if abort == "broken":
                    # The rebuild budget guards against a *stuck* loop,
                    # not against many distinct transient deaths: a break
                    # that arrives with fewer unresolved tasks than the
                    # previous one means the run is advancing, so the
                    # budget starts over.
                    if unresolved_at_break is not None and (
                        len(queue) < unresolved_at_break
                    ):
                        pool_breaks = 0
                    unresolved_at_break = len(queue)
                    pool_breaks += 1
                    record_event(
                        state,
                        "pool-broken",
                        "a worker process died and broke the pool "
                        f"({len(queue)} task(s) unresolved)",
                    )
                    blamed = self._blame(marker_dir, queue, dead_pids)
                    quarantined = 0
                    for idx in blamed:
                        losses[idx] = losses.get(idx, 0) + 1
                        if state.journal is not None:
                            losses[idx] = max(
                                losses[idx],
                                state.journal.record_crash(state.stage, idx),
                            )
                        obs_metrics.add("executor.worker_losses")
                        if (
                            state.on_error == "retry"
                            and losses[idx] >= state.quarantine_after
                        ):
                            self._quarantine(
                                state, queue, attempts, results, idx, losses[idx]
                            )
                            quarantined += 1
                    if quarantined:
                        # The breaker tripped and removed the culprit:
                        # that is forward progress, so the rebuild budget
                        # starts over for the survivors.
                        pool_breaks = 0
                    if not queue:
                        return
                    can_rebuild = (
                        state.on_error == "retry"
                        and pool_breaks <= _MAX_POOL_REBUILDS
                        and all(
                            attempts[i] < state.retry.max_attempts for i in queue
                        )
                    )
                    if not can_rebuild:
                        if queue:
                            record_event(
                                state,
                                "degraded-serial",
                                f"re-executing the unfinished {len(queue)} task(s) "
                                "on the serial backend",
                            )
                            SerialBackend().run(
                                state, [queue[i] for i in sorted(queue)], results
                            )
                            queue.clear()
                        return
                    obs_metrics.add("executor.pool_rebuilds")
            if state.on_error == "retry" and queue:
                time.sleep(max(state.retry.delay(i, attempts[i]) for i in queue))

    @staticmethod
    def _dead_pids(pool: ProcessPoolExecutor) -> "set[int]":
        """Pids of workers that died on their own (before the teardown)."""
        procs = list((getattr(pool, "_processes", None) or {}).values())
        return {p.pid for p in procs if p.exitcode not in (None, 0)}

    @staticmethod
    def _clear_markers(marker_dir: str) -> None:
        """Drop stale in-flight markers (e.g. left by a timeout teardown)."""
        try:
            names = os.listdir(marker_dir)
        except OSError:
            return
        for name in names:
            try:
                os.unlink(os.path.join(marker_dir, name))
            except OSError:
                pass

    @staticmethod
    def _blame(
        marker_dir: str, queue: "dict[int, Task]", dead_pids: "set[int]"
    ) -> "list[int]":
        """Unresolved task indices whose in-flight marker survived the
        break — narrowed to markers held by a worker that actually died,
        when the dead workers are identifiable (innocent tasks that were
        merely co-resident in the pool are not blamed)."""
        marked: "dict[int, int | None]" = {}
        try:
            names = os.listdir(marker_dir)
        except OSError:
            return []
        for name in names:
            if not name.startswith("inflight-"):
                continue
            path = os.path.join(marker_dir, name)
            idx: "int | None" = None
            pid: "int | None" = None
            try:
                idx = int(name.split("-", 1)[1])
                with open(path, "r", encoding="utf-8") as fh:
                    pid = int(fh.read().strip() or "0")
            except (OSError, ValueError):
                pass
            try:
                os.unlink(path)
            except OSError:
                pass
            if idx is not None and idx in queue:
                marked[idx] = pid
        if not marked:
            return []
        blamed = [i for i, pid in marked.items() if pid in dead_pids]
        return sorted(blamed if blamed else marked)

    @staticmethod
    def _quarantine(
        state: RunState,
        queue: "dict[int, Task]",
        attempts: "dict[int, int]",
        results: "dict[int, Any]",
        idx: int,
        count: int,
    ) -> None:
        """Settle a poison task: it has killed ``count`` workers, which
        meets the ``quarantine_after`` budget, so it is never re-issued."""
        obs_metrics.add("quarantine.tasks")
        record_event(
            state,
            "quarantined",
            f"task {idx} killed its worker {count} time(s) "
            f"(quarantine-after={state.quarantine_after}); no longer re-issued",
            index=idx,
        )
        queue.pop(idx, None)
        results[idx] = settle_failure(
            state,
            TaskFailure(
                index=idx,
                stage=state.stage,
                kind="quarantined",
                error_type="WorkerLost",
                message=f"worker died {count} time(s) executing this task",
                attempts=max(attempts.get(idx, 0), count),
            ),
        )

    @staticmethod
    def _task_error(
        state: RunState,
        queue: "dict[int, Task]",
        attempts: "dict[int, int]",
        results: "dict[int, Any]",
        idx: int,
        exc: BaseException,
        kind: str = "error",
    ) -> None:
        """Handle a task-level failure on the pool backend: requeue for a
        retry when the policy allows, else settle a :class:`TaskFailure`."""
        if state.on_error == "retry" and attempts[idx] < state.retry.max_attempts:
            obs_metrics.add("executor.retries")
            return  # stays in the queue; next pool round re-runs it
        queue.pop(idx)
        results[idx] = settle_failure(
            state,
            TaskFailure(
                index=idx,
                stage=state.stage,
                kind=kind,
                error_type=type(exc).__name__,
                message=str(exc),
                attempts=attempts[idx],
            ),
        )

    @staticmethod
    def _harvest_done(
        state: RunState,
        futures: dict,
        queue: "dict[int, Task]",
        results: "dict[int, Any]",
    ) -> None:
        """After an abort, collect results of futures that finished cleanly
        before the pool went down (their work must not be discarded)."""
        for idx in list(queue):
            fut = futures.get(idx)
            if fut is None or not fut.done():
                continue
            try:
                value = fut.result(timeout=0)
            except Exception:
                continue  # broken-pool sentinel or task error: re-run / re-judge later
            results[idx] = settle_success(state, queue.pop(idx), value)
