"""Process-pool backend — :class:`concurrent.futures.ProcessPoolExecutor`.

Workers are initialised with the shared worker bundle (context, guards,
chaos plan, metrics switch, array-backend config), futures are awaited
in task order, and every fault path of the single-host world is
handled here: a task exception is retried or settled, a hung task is
abandoned after its wall-clock budget (the pool is restarted so the
remaining tasks keep running), and a broken pool (a worker died hard)
is rebuilt a bounded number of times before degrading to re-executing
the unfinished remainder on the serial backend.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from typing import TYPE_CHECKING, Any

from repro.engine.backends.base import (
    ExecutionBackend,
    RunState,
    execute_task,
    install_worker_bundle,
    record_event,
    set_worker_name,
    settle_failure,
    settle_success,
    worker_bundle,
)
from repro.engine.backends.serial import SerialBackend
from repro.engine.faults import TaskFailure
from repro.obs import metrics as obs_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.executor import Task

__all__ = ["ProcessPoolBackend"]

#: How many times a broken pool is rebuilt (under ``on_error="retry"``)
#: before the run degrades to the serial backend.
_MAX_POOL_REBUILDS = 2


def _init_worker(bundle: tuple) -> None:
    """Pool initializer: install the shared worker bundle and declare
    this process's identity for task spans."""
    install_worker_bundle(bundle)
    set_worker_name(f"pool-{os.getpid()}")


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on hung or dead workers."""
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            proc.kill()
        except Exception:  # already gone
            pass


class ProcessPoolBackend(ExecutionBackend):
    """Execute pending tasks on a local pool of worker processes."""

    name = "pool"

    def run(
        self,
        state: RunState,
        pending: "list[Task]",
        results: "dict[int, Any]",
    ) -> None:
        queue: "dict[int, Task]" = {t.index: t for t in pending}
        attempts: "dict[int, int]" = {t.index: 0 for t in pending}
        pool_breaks = 0
        while queue:
            submitted = sorted(queue)
            pool = ProcessPoolExecutor(
                max_workers=min(max(state.n_jobs, 1), len(submitted)),
                initializer=_init_worker,
                initargs=(worker_bundle(state.context),),
            )
            futures = {}
            for idx in submitted:
                attempts[idx] += 1
                futures[idx] = pool.submit(
                    execute_task, state.fn, queue[idx], state.stage
                )
            abort = None
            for idx in submitted:
                if idx not in queue:
                    continue
                fut = futures[idx]
                try:
                    value = fut.result(timeout=state.timeout)
                except BrokenExecutor:
                    abort = "broken"
                    break
                except _FuturesTimeout as exc:
                    if fut.done():  # the task itself raised a TimeoutError
                        if state.on_error == "raise":
                            pool.shutdown(wait=True, cancel_futures=True)
                            raise
                        self._task_error(state, queue, attempts, results, idx, exc)
                        continue
                    budget = state.timeout if state.timeout is not None else 0.0
                    record_event(
                        state,
                        "timeout",
                        f"task {idx} exceeded its {budget:g}s wall-clock budget; "
                        "restarting the worker pool",
                        index=idx,
                    )
                    if state.on_error == "raise":
                        _kill_pool(pool)
                        raise TimeoutError(
                            f"task {idx} (stage {state.stage!r}) exceeded its "
                            f"{budget:g}s wall-clock budget"
                        ) from None
                    self._task_error(
                        state, queue, attempts, results, idx,
                        TimeoutError(f"exceeded {budget:g}s budget"), kind="timeout",
                    )
                    abort = "timeout"
                    break
                except Exception as exc:
                    if state.on_error == "raise":
                        pool.shutdown(wait=True, cancel_futures=True)
                        raise
                    self._task_error(state, queue, attempts, results, idx, exc)
                else:
                    results[idx] = settle_success(state, queue.pop(idx), value)

            if abort is None:
                pool.shutdown(wait=True)
            else:
                self._harvest_done(state, futures, queue, results)
                _kill_pool(pool)
                if abort == "broken":
                    pool_breaks += 1
                    record_event(
                        state,
                        "pool-broken",
                        "a worker process died and broke the pool "
                        f"({len(queue)} task(s) unresolved)",
                    )
                    can_rebuild = (
                        state.on_error == "retry"
                        and pool_breaks <= _MAX_POOL_REBUILDS
                        and all(
                            attempts[i] < state.retry.max_attempts for i in queue
                        )
                    )
                    if not can_rebuild:
                        if queue:
                            record_event(
                                state,
                                "degraded-serial",
                                f"re-executing the unfinished {len(queue)} task(s) "
                                "on the serial backend",
                            )
                            SerialBackend().run(
                                state, [queue[i] for i in sorted(queue)], results
                            )
                            queue.clear()
                        return
                    obs_metrics.add("executor.pool_rebuilds")
            if state.on_error == "retry" and queue:
                time.sleep(max(state.retry.delay(i, attempts[i]) for i in queue))

    @staticmethod
    def _task_error(
        state: RunState,
        queue: "dict[int, Task]",
        attempts: "dict[int, int]",
        results: "dict[int, Any]",
        idx: int,
        exc: BaseException,
        kind: str = "error",
    ) -> None:
        """Handle a task-level failure on the pool backend: requeue for a
        retry when the policy allows, else settle a :class:`TaskFailure`."""
        if state.on_error == "retry" and attempts[idx] < state.retry.max_attempts:
            obs_metrics.add("executor.retries")
            return  # stays in the queue; next pool round re-runs it
        queue.pop(idx)
        results[idx] = settle_failure(
            state,
            TaskFailure(
                index=idx,
                stage=state.stage,
                kind=kind,
                error_type=type(exc).__name__,
                message=str(exc),
                attempts=attempts[idx],
            ),
        )

    @staticmethod
    def _harvest_done(
        state: RunState,
        futures: dict,
        queue: "dict[int, Task]",
        results: "dict[int, Any]",
    ) -> None:
        """After an abort, collect results of futures that finished cleanly
        before the pool went down (their work must not be discarded)."""
        for idx in list(queue):
            fut = futures.get(idx)
            if fut is None or not fut.done():
                continue
            try:
                value = fut.result(timeout=0)
            except Exception:
                continue  # broken-pool sentinel or task error: re-run / re-judge later
            results[idx] = settle_success(state, queue.pop(idx), value)
