"""Shared machinery of every execution backend.

An :class:`ExecutionBackend` turns a list of pending
:class:`~repro.engine.executor.Task` objects into settled results under
one :class:`RunState` (the resolved knobs of a ``map_tasks`` call).
Everything that must behave identically no matter *where* a task runs
lives here:

* :func:`execute_task` — the instrumented task invocation (chaos hooks,
  telemetry buffers, wall-clock) that runs in whatever process executes
  the task;
* :class:`TaskEnvelope` — the result wrapper that carries worker-side
  telemetry (and the worker's identity) back to the dispatching process;
* :func:`settle_success` / :func:`settle_failure` — the single settle
  path (metric merge, task span, journal record, failure report) every
  backend funnels through, in task order;
* :func:`worker_bundle` / :func:`install_worker_bundle` — the shared
  state a worker process must install before running tasks (context,
  guard mode, chaos plan, metrics switch, array-backend config), used
  by both the process pool's initializer and the multi-host dispatch
  workers.

The determinism contract is enforced by this split: task randomness
rides on the tasks (spawned seeds), shared state ships via the bundle,
and results settle in task order — so serial, process-pool, and
dispatch execution produce bit-identical aggregates.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro import backend as array_backend
from repro.engine import chaos, guards
from repro.engine.faults import RetryPolicy, RunReport, TaskFailure
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.executor import Task
    from repro.engine.journal import RunJournal

__all__ = [
    "ExecutionBackend",
    "RunState",
    "TaskEnvelope",
    "execute_task",
    "get_worker_context",
    "get_worker_name",
    "install_worker_bundle",
    "record_event",
    "set_worker_name",
    "settle_failure",
    "settle_success",
    "worker_bundle",
]

#: Per-process shared state installed by ``map_tasks``'s ``context``
#: argument — set once per worker (pool initializer, dispatch-queue
#: bundle, or around the serial loop) and read back with
#: :func:`get_worker_context`.
_WORKER_CONTEXT: Any = None

#: Identity of this worker process on task spans (``None`` in the main
#: process; ``pool-<pid>`` in pool workers; the ``repro worker`` name in
#: dispatch workers).
_WORKER_NAME: "str | None" = None


def get_worker_context() -> Any:
    """The shared object passed as ``map_tasks(..., context=...)``.

    Valid only inside a task function during a :func:`map_tasks` call
    that supplied a context; returns ``None`` otherwise.
    """
    return _WORKER_CONTEXT


def set_worker_context(context: Any) -> Any:
    """Install the per-process shared context; returns the previous one."""
    global _WORKER_CONTEXT
    previous = _WORKER_CONTEXT
    _WORKER_CONTEXT = context
    return previous


def get_worker_name() -> "str | None":
    """This process's worker identity, if it has declared one."""
    return _WORKER_NAME


def set_worker_name(name: "str | None") -> None:
    """Declare this process's worker identity (attached to task spans)."""
    global _WORKER_NAME
    _WORKER_NAME = name


def observing() -> bool:
    """Whether task executions should ship telemetry envelopes: metrics
    are being collected, or a tracer wants per-task spans (directly or
    via cross-process span collection)."""
    return (
        obs_metrics.collecting()
        or obs_trace.current_tracer() is not None
        or obs_trace.span_collection()
    )


def worker_bundle(context: Any) -> tuple:
    """Everything a worker process must install before running tasks:
    the shared context, the guard strictness, any chaos plan, whether to
    buffer telemetry metrics for shipping back, the array-backend
    configuration (so workers — pool or dispatch, local or remote —
    compute under the parent's backend/dtype/top-k policy and the
    determinism invariant holds), whether to collect task spans for
    trace stitching, and the event-bus directory of a monitored run."""
    plan = chaos.current_plan()
    return (
        context,
        guards.get_guard_mode(),
        None if plan is None else plan.to_dict(),
        observing(),
        array_backend.get_config().to_dict(),
        obs_trace.current_tracer() is not None or obs_trace.span_collection(),
        obs_events.current_events_dir(),
    )


def install_worker_bundle(bundle: tuple) -> None:
    """Install a :func:`worker_bundle` in this process: shared context,
    guards, chaos, the metrics switch, the array-backend config, the
    span-collection switch, and (for monitored runs) the event bus."""
    context, guard_mode, chaos_doc, metrics_on, backend_doc, trace_on, events_dir = (
        bundle
    )
    set_worker_context(context)
    guards.set_guard_mode(guard_mode)
    chaos.install(None if chaos_doc is None else chaos.ChaosPlan.from_dict(chaos_doc))
    obs_metrics.set_collection(metrics_on)
    array_backend.set_config(array_backend.BackendConfig.from_dict(backend_doc))
    # A forked pool worker inherits the parent's TraceWriter (and its
    # file descriptor) — drop it: workers must *buffer* spans for the
    # dispatcher to stitch, never write the trace file themselves, or
    # their forked id counters would collide with the parent's.
    obs_trace.install_tracer(None)
    obs_trace.set_span_collection(trace_on)
    if events_dir is not None:
        obs_events.ensure_bus(events_dir, role="worker")


@dataclass
class TaskEnvelope:
    """A task result plus the telemetry measured where it executed.

    When metrics collection is on, workers ship their buffered counter
    deltas (plus the task's wall-clock and the worker's identity) back
    to the dispatching process on this envelope; :func:`settle_success`
    unwraps it, so journals, failure handling, and driver aggregation
    only ever see the raw value — the envelope can never leak into
    result bytes.
    """

    value: Any
    metrics: "obs_metrics.MetricsRegistry | None"
    seconds: float
    worker: "str | None" = None
    #: Spans collected where the task executed, for cross-process trace
    #: stitching: ``None`` = this process did not collect (the settler
    #: falls back to a synthesized task span), ``[]`` = the task span
    #: was already emitted in place (a real tracer was installed), a
    #: non-empty list = a :class:`~repro.obs.trace.SpanCollector` buffer
    #: for :func:`~repro.obs.trace.emit_subtree`.
    spans: "list[dict[str, Any]] | None" = None


def execute_task(fn: "Callable[[Task], Any]", task: "Task", stage: str) -> Any:
    """Run one task with chaos + telemetry instrumentation (executes in
    the worker).  Successful executions return a :class:`TaskEnvelope`
    when metrics are being collected; failed attempts drop their buffer
    (only metrics of executions that produced a result are aggregated,
    which keeps the merged totals identical across worker counts).

    When tracing is on, the task's span is opened *here*, in the
    executing process: with a local tracer (serial backend) it emits in
    place; in a worker it is buffered by a
    :class:`~repro.obs.trace.SpanCollector` — together with any spans
    the task function itself opened — and shipped back on the envelope
    for stitching, so distributed traces keep every worker's subtree.
    """
    chaos.set_current_task(stage, task.index)
    collect = observing()
    previous = obs_metrics.begin_task() if collect else None
    collector: "obs_trace.SpanCollector | None" = None
    prev_tracer = None
    start = time.perf_counter()
    try:
        obs_events.emit("task-start", stage=stage, index=task.index)
        chaos.on_task_start(stage, task.index)
        if obs_trace.current_tracer() is None and obs_trace.span_collection():
            collector = obs_trace.SpanCollector()
            prev_tracer = obs_trace.install_tracer(collector)
        if obs_trace.current_tracer() is not None:
            meta: "dict[str, Any]" = {"index": task.index, "stage": stage}
            if _WORKER_NAME is not None:
                meta["worker"] = _WORKER_NAME
            with obs_trace.span(f"task-{task.index}", kind="task", **meta):
                value = fn(task)
        else:
            value = fn(task)
    finally:
        if collector is not None:
            obs_trace.install_tracer(prev_tracer)
        chaos.set_current_task(None, None)
        delta = obs_metrics.end_task(previous) if collect else None
    if not collect:
        return value
    spans = collector.records if collector is not None else (
        [] if obs_trace.current_tracer() is not None else None
    )
    return TaskEnvelope(value, delta, time.perf_counter() - start, _WORKER_NAME, spans)


@dataclass
class RunState:
    """Resolved knobs of one ``map_tasks`` call, handed to the backend."""

    fn: "Callable[[Task], Any]"
    stage: str
    context: Any
    on_error: str
    retry: RetryPolicy
    timeout: "float | None"
    journal: "RunJournal | None"
    report: "RunReport | None"
    n_jobs: int = 1
    #: Poison-task circuit breaker: after this many fatal attempts
    #: (worker deaths) a task is quarantined instead of re-issued.
    quarantine_after: int = 3


def settle_success(state: RunState, task: "Task", outcome: Any) -> Any:
    """Unwrap a telemetry envelope (merge metrics, emit the task span),
    journal the raw value, and return it.  The journal always stores the
    unwrapped value, so a checkpointed run resumes identically whether
    telemetry was on or off when it recorded."""
    if isinstance(outcome, TaskEnvelope):
        value = outcome.value
        obs_metrics.merge_task_metrics(outcome.metrics)
        obs_metrics.observe("executor.task_seconds", outcome.seconds)
        if outcome.spans:
            # A worker collected the task's span subtree: stitch it into
            # the local trace with fresh ids under the open stage span.
            obs_trace.emit_subtree(outcome.spans)
        elif outcome.spans is None:
            # Legacy envelope (no collection where it ran): synthesize
            # the task span from the shipped duration.
            meta: "dict[str, Any]" = {"index": task.index, "stage": state.stage}
            if outcome.worker is not None:
                meta["worker"] = outcome.worker
            obs_trace.record_complete(
                "task-" + str(task.index), "task", outcome.seconds, **meta
            )
        # spans == [] means the span already emitted where it executed.
        obs_events.emit(
            "task-done",
            stage=state.stage,
            index=task.index,
            seconds=round(outcome.seconds, 6),
            worker=outcome.worker,
            experiment=obs_trace.current_experiment(),
        )
    else:
        value = outcome
        obs_events.emit(
            "task-done",
            stage=state.stage,
            index=task.index,
            experiment=obs_trace.current_experiment(),
        )
    if state.journal is not None:
        state.journal.record(state.stage, task.index, value)
    return value


def settle_failure(state: RunState, failure: TaskFailure) -> TaskFailure:
    """Record a terminal task failure everywhere it must be visible."""
    obs_metrics.add("executor.task_failures")
    obs_events.emit(
        "task-failed",
        stage=failure.stage,
        index=failure.index,
        fail_kind=failure.kind,
        error_type=failure.error_type,
        attempts=failure.attempts,
        experiment=obs_trace.current_experiment(),
    )
    if state.report is not None:
        state.report.record_failure(failure)
    if state.journal is not None:
        state.journal.log_failure(failure)
    warnings.warn(failure.describe(), stacklevel=3)
    return failure


def record_event(state: RunState, kind: str, detail: str, **extra) -> None:
    """Record a degradation event (timeout, pool-broken, worker-lost...)."""
    obs_metrics.add("executor.events." + kind)
    obs_events.emit(kind, stage=state.stage, detail=detail, **extra)
    warnings.warn(f"{kind}: {detail}", stacklevel=3)
    if state.report is not None:
        state.report.record_event(kind, detail, stage=state.stage, **extra)


class ExecutionBackend:
    """Protocol of an execution backend.

    A backend receives the resolved :class:`RunState`, the pending tasks
    (journal-replayed results already removed), and the mutable
    ``results`` mapping to fill — one entry per pending task index,
    holding either the task's value or a
    :class:`~repro.engine.faults.TaskFailure`.  Backends must settle
    every outcome through :func:`settle_success` / :func:`settle_failure`
    and must never touch task randomness, so any backend at any worker
    count produces bit-identical aggregates.
    """

    #: Short name used by ``--executor`` and the ambient policy.
    name = "abstract"

    def run(
        self,
        state: RunState,
        pending: "list[Task]",
        results: "dict[int, Any]",
    ) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (dispatch workers, queues)."""
