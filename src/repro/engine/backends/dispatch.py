"""Dispatch backend — multi-host work-stealing over a shared directory.

The serial and pool backends are bounded by one machine's core count.
This backend removes that ceiling without a network stack: the
dispatcher (the process inside ``map_tasks``) publishes a *task queue*
as plain files under a runs root, and any number of worker processes —
started with ``repro worker <runs-root>``, on this host or on any host
that mounts the same directory — steal tasks from it::

    <runs-root>/queues/<queue-id>/
        manifest.json        # queue announce: stage, status open|closed,
                             # task count, worker heartbeat period
        bundle.pkl           # task function + shared worker bundle
                             # (context, guards, chaos plan, metrics
                             # switch, array-backend config)
        todo/task-NNNNNN-aK.pkl      # unclaimed work unit, attempt K
        claimed/task-NNNNNN-aK.pkl   # claimed by exactly one worker
        leases/lease-NNNNNN.json     # who holds it; mtime = heartbeat
        results/task-NNNNNN-aK.pkl   # per-task result envelope

Small tasks amortize the claim/heartbeat/pickle round trip through
**chunking**: a queue file is a *work unit* — a list of consecutive
tasks named after its head task's index — and a worker claims the whole
unit at once (``chunk`` tasks per claim, auto-sized from the task and
worker counts by default).  Results still stream back as one envelope
*per task*, settled strictly in task order, so chunking is invisible to
result bytes; on a lost worker or a retry, surviving tasks of a unit
are re-issued as singleton units.

Work stealing is one atomic ``os.rename`` from ``todo/`` into
``claimed/`` — exactly one worker wins the race, no locks, no server.
The winner records a lease (:class:`~repro.engine.journal.LeaseLedger`)
and touches it while the task executes; the dispatcher measures
heartbeats on its **own** monotonic clock (cross-host wall clocks are
never compared), declares a worker lost when its lease stops moving,
and re-issues the task.  Every file is written atomically
(write-then-rename), so readers on any host see whole records or
nothing.

Determinism is inherited, not re-proven: tasks carry their spawned
seeds, workers install the dispatcher's exact bundle before executing,
result envelopes are settled strictly in task order, and retry /
timeout / worker-loss recovery re-executes tasks whose randomness lives
on the task — so ``--executor dispatch`` with any worker count (and any
worker deaths) produces result bytes identical to ``--executor serial``.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import shutil
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.engine import chaos
from repro.engine.backends.base import (
    ExecutionBackend,
    RunState,
    execute_task,
    install_worker_bundle,
    record_event,
    set_worker_name,
    settle_failure,
    settle_success,
    worker_bundle,
)
from repro.engine.backends.serial import attempt_serial
from repro.engine.faults import TaskFailure, is_failure
from repro.engine.journal import LeaseLedger
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.utils.atomic import atomic_write_bytes, atomic_write_text, exhaustion_kind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.executor import Task

__all__ = [
    "DEFAULT_DISPATCH_ROOT",
    "DISPATCH_ROOT_ENV",
    "DispatchBackend",
    "sleep_echo_task",
    "worker_loop",
]

#: Where queues live when no root is configured (matches the CLI's
#: default ``--runs-root``).
DEFAULT_DISPATCH_ROOT = ".repro-runs"

#: Environment override for the queue root when ``--executor dispatch``
#: is selected without a configured backend instance.
DISPATCH_ROOT_ENV = "REPRO_DISPATCH_ROOT"

_MANIFEST_FORMAT = "repro-dispatch-queue"
_MANIFEST_VERSION = 1

#: Seconds without any claim before the dispatcher reminds the user
#: that dispatch needs ``repro worker`` processes.
_NO_WORKER_HINT_AFTER = 10.0

_TASK_FILE = re.compile(r"^task-(\d{6})-a(\d+)\.pkl$")
_SAFE = re.compile(r"[^-._A-Za-z0-9]")


def _task_name(index: int, attempt: int) -> str:
    return f"task-{int(index):06d}-a{int(attempt)}.pkl"


def _parse_task_name(name: str) -> "tuple[int, int] | None":
    m = _TASK_FILE.match(name)
    return None if m is None else (int(m.group(1)), int(m.group(2)))


def sleep_echo_task(task: "Task") -> Any:
    """Benchmark/smoke task function, module-level so external dispatch
    workers can unpickle it by reference: optionally sleeps
    ``payload["sleep"]`` seconds, then echoes its payload."""
    payload = task.payload
    if isinstance(payload, dict) and payload.get("sleep"):
        time.sleep(float(payload["sleep"]))
    return payload


def seeded_norm_task(task: "Task") -> float:
    """Soak-harness task function (module-level for the same reason as
    :func:`sleep_echo_task`): draws from the task's *spawned seed* — the
    determinism contract's randomness channel — so a re-executed attempt
    (after a retry, a lost worker, or a quarantine near-miss) reproduces
    the exact bytes of the first, on any backend at any worker count."""
    import numpy as np

    n = int(task.payload.get("n", 64)) if isinstance(task.payload, dict) else 64
    values = np.random.default_rng(task.seed).standard_normal(n)
    return float(np.sum(values * values))


# ---------------------------------------------------------------------------
# Dispatcher side.
# ---------------------------------------------------------------------------


class DispatchBackend(ExecutionBackend):
    """Publish tasks to a shared-directory queue and merge streamed
    result envelopes back in task order.

    Parameters
    ----------
    root:
        The shared runs root (workers join with ``repro worker ROOT``).
        Defaults to ``$REPRO_DISPATCH_ROOT`` or ``.repro-runs``.
    local_workers:
        Convenience: spawn this many local ``repro worker`` processes
        the first time a queue opens (killed again by :meth:`close`).
        Zero (the default) relies on externally started workers.
    lease_timeout:
        Seconds a claimed unit's lease may go without a heartbeat before
        its worker is declared lost and the unit's unfinished tasks are
        re-issued.
    poll:
        Dispatcher poll interval in seconds.
    chunk:
        Tasks per claimed work unit.  ``None`` (the default) auto-sizes
        to ``num_tasks // (4 · workers)`` clamped into ``[1, 16]`` — a
        few units per worker so stealing still balances load, but small
        tasks stop paying one claim/heartbeat/pickle round trip each.
        Results are identical for every chunk size.
    """

    name = "dispatch"

    def __init__(
        self,
        root=None,
        *,
        local_workers: int = 0,
        lease_timeout: float = 10.0,
        poll: float = 0.05,
        chunk: "int | None" = None,
    ):
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be positive, got {lease_timeout}")
        if chunk is not None and int(chunk) < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        self.root = Path(
            root
            if root is not None
            else os.environ.get(DISPATCH_ROOT_ENV, DEFAULT_DISPATCH_ROOT)
        )
        self.local_workers = int(local_workers)
        self.lease_timeout = float(lease_timeout)
        self.poll = float(poll)
        self.chunk = None if chunk is None else int(chunk)
        self._seq = 0
        self._procs: "list[subprocess.Popen]" = []
        self._spawned = False

    def _resolve_chunk(self, num_tasks: int) -> int:
        """Tasks per work unit: the explicit setting, or auto-sized so
        every worker still sees several units to steal."""
        if self.chunk is not None:
            return self.chunk
        workers = self.local_workers if self.local_workers > 0 else 4
        return max(1, min(16, num_tasks // (workers * 4)))

    # -- queue lifecycle ---------------------------------------------------

    def _queue_dir(self, stage: str) -> Path:
        self._seq += 1
        stage_part = _SAFE.sub("_", stage) or "stage"
        queue_id = f"{socket.gethostname()}-{os.getpid()}-{self._seq:03d}-{stage_part}"
        return self.root / "queues" / queue_id

    def _open_queue(
        self,
        state: RunState,
        pending: "list[Task]",
        attempts: "dict[int, int]",
        units: "dict[int, list[int]]",
        unit_attempt: "dict[int, int]",
        unit_size: "dict[int, int]",
    ) -> Path:
        """Publish bundle + chunked todo units, then the manifest
        (workers only act once the manifest appears, so ordering makes
        the queue appear atomically complete)."""
        chaos.on_write("dispatch.queue", state.stage)
        qdir = self._queue_dir(state.stage)
        for sub in ("todo", "claimed", "leases", "results"):
            (qdir / sub).mkdir(parents=True)
        bundle_doc = {
            "fn": state.fn,
            "stage": state.stage,
            "bundle": worker_bundle(state.context),
        }
        atomic_write_bytes(
            qdir / "bundle.pkl",
            pickle.dumps(bundle_doc, protocol=pickle.HIGHEST_PROTOCOL),
        )
        chunk = self._resolve_chunk(len(pending))
        for lo in range(0, len(pending), chunk):
            group = pending[lo : lo + chunk]
            head = group[0].index
            units[head] = [t.index for t in group]
            unit_attempt[head] = 1
            unit_size[head] = len(group)
            for task in group:
                attempts[task.index] = 1
            payload: "Any" = group if len(group) > 1 else group[0]
            atomic_write_bytes(
                qdir / "todo" / _task_name(head, 1),
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
            )
        manifest = {
            "format": _MANIFEST_FORMAT,
            "version": _MANIFEST_VERSION,
            "queue": qdir.name,
            "stage": state.stage,
            "status": "open",
            "tasks": len(pending),
            "chunk": chunk,
            "heartbeat": max(0.2, self.lease_timeout / 4.0),
        }
        atomic_write_text(qdir / "manifest.json", json.dumps(manifest, indent=2) + "\n")
        obs_metrics.add("executor.dispatch.queues")
        obs_events.emit(
            "queue-open",
            queue=qdir.name,
            stage=state.stage,
            tasks=len(pending),
            chunk=chunk,
        )
        return qdir

    @staticmethod
    def _close_queue(qdir: Path) -> None:
        try:
            doc = json.loads((qdir / "manifest.json").read_text(encoding="utf-8"))
            doc["status"] = "closed"
            atomic_write_text(qdir / "manifest.json", json.dumps(doc) + "\n")
        except OSError:
            pass
        shutil.rmtree(qdir, ignore_errors=True)
        obs_events.emit("queue-closed", queue=qdir.name)

    # -- local convenience workers ----------------------------------------

    def _ensure_workers(self) -> None:
        if self.local_workers <= 0 or self._spawned:
            return
        self._spawned = True
        pkg_root = str(Path(__file__).resolve().parents[3])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (pkg_root, env.get("PYTHONPATH")) if p
        )
        for i in range(self.local_workers):
            self._procs.append(
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro", "worker", str(self.root),
                        "--poll", "0.02", "--max-idle", "600",
                        "--name", f"local-{os.getpid()}-{i}",
                    ],
                    env=env,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
            )

    def close(self) -> None:
        """Terminate any locally spawned workers."""
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
        self._procs.clear()
        self._spawned = False

    # -- the dispatch loop -------------------------------------------------

    def run(
        self,
        state: RunState,
        pending: "list[Task]",
        results: "dict[int, Any]",
    ) -> None:
        if not pending:
            return
        taskmap = {t.index: t for t in pending}
        order = [t.index for t in pending]
        attempts: "dict[int, int]" = {}
        losses: "dict[int, int]" = {i: 0 for i in order}
        if state.journal is not None:
            for idx, count in state.journal.crash_counts(state.stage).items():
                if idx in losses:
                    losses[idx] = count
        terminal: "dict[int, tuple[str, Any]]" = {}
        # A resumed run already knows its poison tasks: settle them up
        # front instead of publishing them to a fresh worker fleet.
        if state.on_error != "raise":
            for idx in order:
                if losses[idx] >= state.quarantine_after:
                    terminal[idx] = (
                        "fail", self._quarantine_failure(state, idx, losses[idx], 0)
                    )
        publish = [t for t in pending if t.index not in terminal]
        reissue_at: "dict[int, tuple[float, int]]" = {}
        # Work-unit state, keyed by the head task's index: live (still
        # unresolved) members, the unit's queue-file attempt, and its
        # size at issue time (which scales the wall-clock budget).
        units: "dict[int, list[int]]" = {}
        unit_attempt: "dict[int, int]" = {}
        unit_size: "dict[int, int]" = {}
        claim_seen: "dict[int, float]" = {}
        beat_seen: "dict[int, tuple[float, float]]" = {}
        settle_ptr = 0
        started = time.monotonic()
        hinted = False

        try:
            qdir = self._open_queue(state, publish, attempts, units,
                                    unit_attempt, unit_size)
        except OSError as exc:
            kind = exhaustion_kind(exc)
            if kind is None:
                raise
            # The queue root itself is exhausted: the degraded-local
            # path (execute in the dispatcher process) beats crashing.
            record_event(
                state,
                "degraded-serial",
                f"cannot publish the dispatch queue ({kind}: {exc}); "
                f"executing {len(publish)} task(s) in the dispatcher process",
            )
            for task in publish:
                outcome = attempt_serial(state, task)
                if is_failure(outcome):
                    results[task.index] = settle_failure(state, outcome)
                else:
                    results[task.index] = settle_success(state, task, outcome)
            for idx in order:
                if idx in terminal and terminal[idx][0] == "fail":
                    results[idx] = settle_failure(state, terminal[idx][1])
            return
        ledger = LeaseLedger(qdir / "leases")
        self._ensure_workers()
        pulse = obs_events.Heartbeat(
            "dispatcher", period=min(2.0, max(0.5, self.lease_timeout / 4.0))
        )
        try:
            while settle_ptr < len(order):
                now = time.monotonic()
                pulse.beat(tasks=settle_ptr, stage=state.stage,
                           inflight=len(claim_seen))
                self._harvest(state, qdir, ledger, taskmap, attempts, terminal,
                              reissue_at, units, unit_attempt, unit_size,
                              claim_seen, beat_seen, now)
                self._watch_inflight(state, qdir, ledger, taskmap, attempts,
                                     losses, terminal, reissue_at, units,
                                     unit_attempt, unit_size, claim_seen,
                                     beat_seen, now)
                self._issue_due(state, qdir, taskmap, attempts, terminal,
                                reissue_at, units, unit_attempt, unit_size,
                                claim_seen, beat_seen, now)
                while settle_ptr < len(order) and order[settle_ptr] in terminal:
                    idx = order[settle_ptr]
                    kind, payload = terminal.pop(idx)
                    if kind == "ok":
                        results[idx] = settle_success(state, taskmap[idx], payload)
                    else:
                        results[idx] = settle_failure(state, payload)
                    terminal[idx] = ("settled", None)
                    settle_ptr += 1
                if (
                    not hinted
                    and not claim_seen
                    and settle_ptr < len(order)
                    and now - started > _NO_WORKER_HINT_AFTER
                ):
                    hinted = True
                    print(
                        f"dispatch: no worker has claimed a task yet; start "
                        f"workers with: repro worker {self.root}",
                        file=sys.stderr,
                    )
                if settle_ptr < len(order):
                    time.sleep(self.poll)
        finally:
            self._close_queue(qdir)

    # The helpers below mutate the per-run dicts the loop owns; ``terminal``
    # maps a resolved index to ("ok", outcome) / ("fail", TaskFailure) until
    # the ordered settle replaces it with ("settled", None).

    @staticmethod
    def _unit_of(units: "dict[int, list[int]]", idx: int) -> "int | None":
        for head, members in units.items():
            if idx in members:
                return head
        return None

    def _clear_unit(
        self,
        qdir: Path,
        ledger: LeaseLedger,
        head: int,
        attempt: int,
        units: "dict[int, list[int]]",
        unit_attempt: "dict[int, int]",
        unit_size: "dict[int, int]",
        claim_seen: "dict[int, float]",
        beat_seen: "dict[int, tuple[float, float]]",
    ) -> None:
        """Drop a work unit's queue file, lease, and tracking state."""
        try:
            (qdir / "claimed" / _task_name(head, attempt)).unlink()
        except OSError:
            pass
        try:
            (qdir / "todo" / _task_name(head, attempt)).unlink()
        except OSError:
            pass
        ledger.release(head)
        units.pop(head, None)
        unit_attempt.pop(head, None)
        unit_size.pop(head, None)
        claim_seen.pop(head, None)
        beat_seen.pop(head, None)

    def _resolve_member(self, qdir, ledger, idx, units, unit_attempt,
                        unit_size, claim_seen, beat_seen) -> None:
        """Mark one task resolved inside its unit; drop the unit once its
        last member resolves."""
        head = self._unit_of(units, idx)
        if head is None:
            return
        units[head].remove(idx)
        if not units[head]:
            self._clear_unit(qdir, ledger, head, unit_attempt[head], units,
                             unit_attempt, unit_size, claim_seen, beat_seen)

    def _harvest(self, state, qdir, ledger, taskmap, attempts, terminal,
                 reissue_at, units, unit_attempt, unit_size, claim_seen,
                 beat_seen, now) -> None:
        """Consume streamed per-task result envelopes; schedule retries
        for failed attempts; raise under ``on_error="raise"``."""
        results_dir = qdir / "results"
        try:
            names = sorted(p.name for p in results_dir.iterdir())
        except OSError:
            return
        for name in names:
            parsed = _parse_task_name(name)
            if parsed is None:
                continue
            idx, attempt = parsed
            path = results_dir / name
            try:
                doc = pickle.loads(path.read_bytes())
            except Exception:
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            try:
                path.unlink()
            except OSError:
                pass
            if (
                idx in terminal
                or idx in reissue_at
                or idx not in taskmap
                or attempt != attempts.get(idx)
            ):
                continue  # stale attempt (timed out and re-issued) or unknown
            self._resolve_member(qdir, ledger, idx, units, unit_attempt,
                                 unit_size, claim_seen, beat_seen)
            if doc.get("ok"):
                terminal[idx] = ("ok", doc["outcome"])
                continue
            if state.on_error == "raise":
                exc = None
                if doc.get("exception") is not None:
                    try:
                        exc = pickle.loads(doc["exception"])
                    except Exception:
                        exc = None
                if isinstance(exc, BaseException):
                    raise exc
                raise RuntimeError(
                    f"task {idx} (stage {state.stage!r}) failed on worker "
                    f"{doc.get('worker')!r}: [{doc.get('error_type')}] "
                    f"{doc.get('message')}"
                )
            if state.on_error == "retry" and attempt < state.retry.max_attempts:
                obs_metrics.add("executor.retries")
                reissue_at[idx] = (now + state.retry.delay(idx, attempt), attempt + 1)
                continue
            terminal[idx] = (
                "fail",
                TaskFailure(
                    index=idx,
                    stage=state.stage,
                    kind="error",
                    error_type=str(doc.get("error_type")),
                    message=str(doc.get("message")),
                    attempts=attempt,
                ),
            )

    def _watch_inflight(self, state, qdir, ledger, taskmap, attempts, losses,
                        terminal, reissue_at, units, unit_attempt, unit_size,
                        claim_seen, beat_seen, now) -> None:
        """Track unit claims and heartbeats; enforce the wall-clock
        budget; re-issue units whose worker stopped heartbeating."""
        for head in list(units):
            members = units.get(head)
            if not members:
                continue
            attempt = unit_attempt[head]
            claimed = (qdir / "claimed" / _task_name(head, attempt)).exists()
            if not claimed:
                pending_results = any(
                    (qdir / "results" / _task_name(m, attempts[m])).exists()
                    for m in members
                )
                if head in claim_seen and not pending_results:
                    # Claim vanished without results for the live members
                    # (a worker died mid-cleanup): treat like a lost
                    # worker below.  When result files exist the worker
                    # simply finished between our harvest and this scan.
                    self._worker_lost(state, qdir, ledger, taskmap, attempts,
                                      losses, terminal, reissue_at, units,
                                      unit_attempt, unit_size, claim_seen,
                                      beat_seen, head, now)
                continue
            if head not in claim_seen:
                claim_seen[head] = now
            mt = ledger.mtime(head)
            prev = beat_seen.get(head)
            if mt is not None and (prev is None or mt != prev[0]):
                beat_seen[head] = (mt, now)
            if state.timeout is not None:
                # A unit executes its tasks back to back on one claim, so
                # its budget is the per-task budget times its issue size.
                budget = state.timeout * unit_size[head]
                if now - claim_seen[head] > budget:
                    self._timed_out(state, qdir, ledger, attempts, terminal,
                                    reissue_at, units, unit_attempt, unit_size,
                                    claim_seen, beat_seen, head, now)
                    continue
            last_sign = beat_seen[head][1] if head in beat_seen else claim_seen[head]
            if now - last_sign > self.lease_timeout:
                self._worker_lost(state, qdir, ledger, taskmap, attempts, losses,
                                  terminal, reissue_at, units, unit_attempt,
                                  unit_size, claim_seen, beat_seen, head, now)

    def _timed_out(self, state, qdir, ledger, attempts, terminal, reissue_at,
                   units, unit_attempt, unit_size, claim_seen, beat_seen,
                   head, now) -> None:
        members = list(units.get(head, ()))
        attempt = unit_attempt[head]
        budget = (state.timeout or 0.0) * unit_size.get(head, 1)
        record_event(
            state,
            "timeout",
            f"work unit {head} ({len(members)} unfinished tasks) exceeded "
            f"its {budget:g}s wall-clock budget on the dispatch backend; "
            "abandoning the attempt",
            index=head,
        )
        self._clear_unit(qdir, ledger, head, attempt, units, unit_attempt,
                         unit_size, claim_seen, beat_seen)
        if state.on_error == "raise":
            raise TimeoutError(
                f"task {members[0] if members else head} "
                f"(stage {state.stage!r}) exceeded its "
                f"{budget:g}s wall-clock budget"
            )
        for idx in members:
            m_attempt = attempts[idx]
            if state.on_error == "retry" and m_attempt < state.retry.max_attempts:
                obs_metrics.add("executor.retries")
                reissue_at[idx] = (now + state.retry.delay(idx, m_attempt),
                                   m_attempt + 1)
                continue
            # Bump the attempt so a late result from the hung worker is
            # ignored as stale (the worker itself cannot be preempted).
            attempts[idx] = m_attempt + 1
            terminal[idx] = (
                "fail",
                TaskFailure(
                    index=idx,
                    stage=state.stage,
                    kind="timeout",
                    error_type="TimeoutError",
                    message=f"exceeded {budget:g}s budget",
                    attempts=m_attempt,
                ),
            )

    def _worker_lost(self, state, qdir, ledger, taskmap, attempts, losses,
                     terminal, reissue_at, units, unit_attempt, unit_size,
                     claim_seen, beat_seen, head, now) -> None:
        lease = ledger.load(head) or {}
        members = list(units.get(head, ()))
        attempt = unit_attempt[head]
        obs_metrics.add("executor.dispatch.workers_lost")
        record_event(
            state,
            "worker-lost",
            f"worker {lease.get('worker', '<unknown>')!r} stopped "
            f"heartbeating while holding work unit {head} "
            f"({len(members)} unfinished tasks); re-issuing them",
            index=head,
        )
        self._clear_unit(qdir, ledger, head, attempt, units, unit_attempt,
                         unit_size, claim_seen, beat_seen)
        for idx in members:
            losses[idx] += 1
            if state.journal is not None:
                losses[idx] = max(
                    losses[idx], state.journal.record_crash(state.stage, idx)
                )
            if losses[idx] >= state.quarantine_after:
                # Workers keep dying on this task: quarantine it (never
                # re-issue, never execute it in the dispatcher — it just
                # proved it kills its host) and let the sweep complete.
                if state.on_error == "raise":
                    raise RuntimeError(
                        f"task {idx} (stage {state.stage!r}) killed "
                        f"{losses[idx]} worker(s) and was quarantined; re-run "
                        "with --on-error skip or retry to let the remaining "
                        "tasks complete without it"
                    )
                terminal[idx] = (
                    "fail",
                    self._quarantine_failure(
                        state, idx, losses[idx], attempts.get(idx, 0)
                    ),
                )
                continue
            # Worker loss is not a task failure: re-issue the same attempt.
            reissue_at[idx] = (now, attempts[idx])

    @staticmethod
    def _quarantine_failure(
        state: RunState, idx: int, count: int, attempted: int
    ) -> TaskFailure:
        """Build (and count) the failure record of a quarantined task."""
        obs_metrics.add("quarantine.tasks")
        record_event(
            state,
            "quarantined",
            f"task {idx} killed its worker {count} time(s) "
            f"(quarantine-after={state.quarantine_after}); no longer re-issued",
            index=idx,
        )
        return TaskFailure(
            index=idx,
            stage=state.stage,
            kind="quarantined",
            error_type="WorkerLost",
            message=f"worker died {count} time(s) executing this task",
            attempts=max(attempted, count),
        )

    def _issue_due(self, state, qdir, taskmap, attempts, terminal, reissue_at,
                   units, unit_attempt, unit_size, claim_seen, beat_seen,
                   now) -> None:
        """Re-issue due tasks as singleton units.  A task whose index
        still heads a live unit (its siblings remain in flight under that
        head) waits until the unit drains, so queue-file names and the
        head's lease stay unambiguous."""
        for idx, (due, attempt) in list(reissue_at.items()):
            if due > now or idx in units:
                continue
            del reissue_at[idx]
            attempts[idx] = attempt
            obs_metrics.add("executor.dispatch.reissues")
            obs_events.emit(
                "reissue", stage=state.stage, index=idx, attempt=attempt
            )
            try:
                chaos.on_write("dispatch.todo", state.stage, idx)
                atomic_write_bytes(
                    qdir / "todo" / _task_name(idx, attempt),
                    pickle.dumps(taskmap[idx], protocol=pickle.HIGHEST_PROTOCOL),
                )
            except OSError as exc:
                if exhaustion_kind(exc) is None:
                    reissue_at[idx] = (now, attempt)  # transient FS error; retry
                    continue
                # The queue filesystem is exhausted — re-queueing cannot
                # succeed, so fall back to the degraded-local path.
                record_event(
                    state,
                    "degraded-serial",
                    f"cannot re-issue task {idx} "
                    f"({exhaustion_kind(exc)}: {exc}); executing it in the "
                    "dispatcher process",
                    index=idx,
                )
                outcome = attempt_serial(state, taskmap[idx])
                terminal[idx] = (
                    ("fail", outcome) if is_failure(outcome) else ("ok", outcome)
                )
                continue
            units[idx] = [idx]
            unit_attempt[idx] = attempt
            unit_size[idx] = 1


# ---------------------------------------------------------------------------
# Worker side (``repro worker <runs-root>``).
# ---------------------------------------------------------------------------


def _scan_queues(root: Path) -> "list[Path]":
    """Open dispatch queues under a runs root, oldest name first."""
    queues = root / "queues"
    try:
        candidates = sorted(p for p in queues.iterdir() if p.is_dir())
    except OSError:
        return []
    return [p for p in candidates if (p / "manifest.json").is_file()]


def _claim_next(qdir: Path) -> "tuple[Path, int, int] | None":
    """Steal one work unit: atomically rename a todo file into
    ``claimed/``.

    Exactly one worker wins each rename; losers see ``FileNotFoundError``
    and move on to the next file.  A unit file holds either a bare
    :class:`Task` or a list of consecutive tasks; the returned index is
    the unit's head (its first member).
    """
    todo = qdir / "todo"
    try:
        names = sorted(p.name for p in todo.iterdir())
    except OSError:
        return None
    for name in names:
        parsed = _parse_task_name(name)
        if parsed is None:
            continue
        target = qdir / "claimed" / name
        try:
            os.rename(todo / name, target)
        except OSError:
            continue  # another worker won the race (or the queue closed)
        return target, parsed[0], parsed[1]
    return None


def _heartbeat_loop(ledger: LeaseLedger, index: int, period: float,
                    stop: threading.Event) -> None:
    while not stop.wait(period):
        ledger.heartbeat(index)


def _run_claimed(qdir: Path, fn, stage: str, worker: str, heartbeat: float,
                 claimed: Path, head: int, attempt: int) -> None:
    """Execute one stolen work unit and stream one envelope per member
    task back.  Never raises: every failure becomes an envelope (or, for
    hard process death, a stale lease the dispatcher will notice).

    The heartbeat lease is keyed by the unit's head index and covers all
    members.  Member envelopes carry the *unit's* attempt number (the
    dispatcher issued every member at that attempt) and are written
    before the claimed file is removed, so a vanished claim with no
    member envelopes reliably signals a dead worker.
    """
    ledger = LeaseLedger(qdir / "leases")
    ledger.claim(head, attempt, worker)
    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop, args=(ledger, head, heartbeat, stop), daemon=True
    )
    beat.start()
    try:
        try:
            payload_obj = pickle.loads(claimed.read_bytes())
        except Exception as exc:
            # The unit file itself is unreadable: report on the head; the
            # dispatcher recovers any remaining members via the
            # lost-worker path once the claim disappears.
            doc: "dict[str, Any]" = {
                "ok": False,
                "error_type": type(exc).__name__,
                "message": str(exc),
                "worker": worker,
                "attempt": attempt,
            }
            try:
                doc["exception"] = pickle.dumps(
                    exc, protocol=pickle.HIGHEST_PROTOCOL
                )
            except Exception:
                doc["exception"] = None
            try:
                atomic_write_bytes(
                    qdir / "results" / _task_name(head, attempt),
                    pickle.dumps(doc, protocol=pickle.HIGHEST_PROTOCOL),
                )
            except OSError:
                pass
            return
        tasks = payload_obj if isinstance(payload_obj, list) else [payload_obj]
        for task in tasks:
            try:
                outcome = execute_task(fn, task, stage)
                doc = {
                    "ok": True,
                    "outcome": outcome,
                    "worker": worker,
                    "attempt": attempt,
                }
                payload = pickle.dumps(doc, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as exc:
                doc = {
                    "ok": False,
                    "error_type": type(exc).__name__,
                    "message": str(exc),
                    "worker": worker,
                    "attempt": attempt,
                }
                try:
                    doc["exception"] = pickle.dumps(
                        exc, protocol=pickle.HIGHEST_PROTOCOL
                    )
                except Exception:
                    doc["exception"] = None
                payload = pickle.dumps(doc, protocol=pickle.HIGHEST_PROTOCOL)
            try:
                chaos.on_write("dispatch.result", stage, task.index)
                atomic_write_bytes(
                    qdir / "results" / _task_name(task.index, attempt), payload
                )
            except OSError:
                pass  # queue closed under us; the attempt was re-issued
    finally:
        stop.set()
        beat.join(timeout=1.0)
        ledger.release(head)
        try:
            claimed.unlink()
        except OSError:
            pass


def _drain_queue(
    qdir: Path,
    worker: str,
    pulse: "obs_events.Heartbeat | None" = None,
    done_before: int = 0,
) -> int:
    """Steal and execute tasks from one queue until its todo pile is
    empty; returns how many tasks this worker executed."""
    try:
        manifest = json.loads((qdir / "manifest.json").read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return 0
    if (
        manifest.get("format") != _MANIFEST_FORMAT
        or manifest.get("status") != "open"
    ):
        return 0
    try:
        bundle_doc = pickle.loads((qdir / "bundle.pkl").read_bytes())
        install_worker_bundle(bundle_doc["bundle"])
        fn, stage = bundle_doc["fn"], bundle_doc["stage"]
    except Exception:
        return 0  # half-removed queue, or a bundle this worker cannot load
    heartbeat = float(manifest.get("heartbeat", 1.0))
    count = 0
    while True:
        stolen = _claim_next(qdir)
        if stolen is None:
            return count
        claimed, head, attempt = stolen
        _run_claimed(qdir, fn, stage, worker, heartbeat, claimed, head, attempt)
        count += 1
        if pulse is not None:
            pulse.beat(tasks=done_before + count, worker=worker)


def worker_loop(
    root,
    *,
    name: "str | None" = None,
    poll: float = 0.1,
    max_idle: "float | None" = None,
    heartbeat: float = obs_events.DEFAULT_HEARTBEAT_PERIOD,
) -> int:
    """Serve dispatch queues under ``root`` until told to stop.

    The body of ``repro worker``: scan for open queues, steal tasks,
    execute them under the dispatcher's shipped bundle, and stream
    envelopes back.  Exits 0 after ``max_idle`` seconds with nothing to
    do (``None`` = serve forever).  Chaos ``worker-lost`` faults may
    kill this process hard — that is the point of them.

    When the runs root has an ``events/`` directory (a monitored run is
    or was live), the worker joins the event bus: a ``worker-start``
    line, periodic ``heartbeat`` lines carrying host/pid/RSS and the
    tasks-per-second rate (every ``heartbeat`` seconds; ``0`` disables),
    and a ``worker-exit`` line on a clean idle exit.  A SIGKILLed worker
    simply stops heartbeating — which is exactly what ``repro top``'s
    stale-heartbeat warning and the dispatcher's lease timeout detect.
    """
    root = Path(root)
    worker = name or f"{socket.gethostname()}-{os.getpid()}"
    chaos.declare_worker_process()
    set_worker_name(worker)
    events_dir = root / obs_events.EVENTS_DIRNAME
    pulse = obs_events.Heartbeat("worker", period=heartbeat)
    total = 0
    idle_since = time.monotonic()
    try:
        while True:
            if obs_events.current_bus() is None and events_dir.is_dir():
                # A monitored run appeared (or was live before we
                # started): join the bus under our worker identity.
                obs_events.install(
                    obs_events.EventBus(events_dir, f"worker-{worker}")
                )
                obs_events.emit("worker-start", worker=worker)
            pulse.beat(tasks=total, worker=worker)
            processed = 0
            for qdir in _scan_queues(root):
                processed += _drain_queue(qdir, worker, pulse, total)
            total += processed
            if processed:
                idle_since = time.monotonic()
            else:
                if max_idle is not None and time.monotonic() - idle_since >= max_idle:
                    obs_events.emit("worker-exit", worker=worker, tasks=total)
                    return 0
                time.sleep(poll)
    finally:
        bus = obs_events.install(None)
        if bus is not None:
            bus.close()
