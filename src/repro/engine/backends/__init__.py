"""Pluggable execution backends for :func:`~repro.engine.executor.map_tasks`.

Three implementations of one protocol (:class:`ExecutionBackend`):

* :class:`SerialBackend` — a plain loop in the calling process; the
  reference implementation every other backend must match byte-for-byte;
* :class:`ProcessPoolBackend` — a local
  :class:`~concurrent.futures.ProcessPoolExecutor` fleet;
* :class:`DispatchBackend` — a multi-host work-stealing file queue
  served by ``repro worker`` processes.

:func:`resolve_executor` maps the ``--executor`` vocabulary (``auto`` /
``serial`` / ``pool`` / ``dispatch``, or an already-constructed backend
instance) to a backend; ``auto`` preserves the historical behaviour of
picking serial for ``jobs <= 1`` or single-task sweeps and the pool
otherwise.
"""

from __future__ import annotations

from repro.engine.backends.base import (
    ExecutionBackend,
    RunState,
    TaskEnvelope,
    execute_task,
    get_worker_context,
    get_worker_name,
    install_worker_bundle,
    record_event,
    set_worker_context,
    set_worker_name,
    settle_failure,
    settle_success,
    worker_bundle,
)
from repro.engine.backends.dispatch import DispatchBackend, worker_loop
from repro.engine.backends.pool import ProcessPoolBackend
from repro.engine.backends.serial import SerialBackend
from repro.engine.faults import EXECUTOR_MODES

__all__ = [
    "DispatchBackend",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "RunState",
    "SerialBackend",
    "TaskEnvelope",
    "execute_task",
    "get_worker_context",
    "get_worker_name",
    "install_worker_bundle",
    "record_event",
    "resolve_executor",
    "set_worker_context",
    "set_worker_name",
    "settle_failure",
    "settle_success",
    "worker_bundle",
    "worker_loop",
]


def resolve_executor(choice, n_jobs: int, n_pending: int) -> ExecutionBackend:
    """Turn an ``--executor`` choice into a backend instance.

    ``choice`` may be a mode string from
    :data:`~repro.engine.faults.EXECUTOR_MODES`, an
    :class:`ExecutionBackend` instance (used as-is, so the CLI can hand
    one configured :class:`DispatchBackend` to every ``map_tasks`` call
    of a run), or ``None`` (= ``"auto"``).
    """
    if choice is None:
        choice = "auto"
    if not isinstance(choice, str):
        if not callable(getattr(choice, "run", None)):
            raise TypeError(
                f"executor must be one of {EXECUTOR_MODES} or an "
                f"ExecutionBackend instance, got {choice!r}"
            )
        return choice
    if choice == "auto":
        if n_jobs <= 1 or n_pending <= 1:
            return SerialBackend()
        return ProcessPoolBackend()
    if choice == "serial":
        return SerialBackend()
    if choice == "pool":
        return ProcessPoolBackend()
    if choice == "dispatch":
        return DispatchBackend()
    raise ValueError(
        f"executor must be one of {EXECUTOR_MODES}, got {choice!r}"
    )
