"""Serial backend — a plain loop in the calling process.

The reference implementation of the backend protocol: every other
backend must produce exactly the results this loop produces.  Retries
follow the shared :class:`~repro.engine.faults.RetryPolicy`; per-task
wall-clock timeouts cannot be enforced in-process and are ignored
(documented in ``map_tasks``).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

from repro.engine.backends.base import (
    ExecutionBackend,
    RunState,
    execute_task,
    set_worker_context,
    settle_failure,
    settle_success,
)
from repro.engine.faults import TaskFailure, is_failure
from repro.obs import metrics as obs_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.executor import Task

__all__ = ["SerialBackend", "attempt_serial"]


def attempt_serial(state: RunState, task: "Task") -> Any:
    """Run one task in-process with the retry schedule; returns the
    value or a :class:`TaskFailure` (under ``skip``/``retry``)."""
    max_attempts = state.retry.max_attempts if state.on_error == "retry" else 1
    last_exc: "BaseException | None" = None
    for attempt in range(1, max_attempts + 1):
        try:
            return execute_task(state.fn, task, state.stage)
        except Exception as exc:
            if state.on_error == "raise":
                raise
            last_exc = exc
            if attempt < max_attempts:
                obs_metrics.add("executor.retries")
                time.sleep(state.retry.delay(task.index, attempt))
    return TaskFailure(
        index=task.index,
        stage=state.stage,
        kind="error",
        error_type=type(last_exc).__name__,
        message=str(last_exc),
        attempts=max_attempts,
    )


class SerialBackend(ExecutionBackend):
    """Execute every pending task in the calling process, in task order."""

    name = "serial"

    def run(
        self,
        state: RunState,
        pending: "list[Task]",
        results: "dict[int, Any]",
    ) -> None:
        previous = set_worker_context(state.context)
        try:
            for task in pending:
                outcome = attempt_serial(state, task)
                if is_failure(outcome):
                    results[task.index] = settle_failure(state, outcome)
                else:
                    results[task.index] = settle_success(state, task, outcome)
        finally:
            set_worker_context(previous)
