"""Checkpoint journal — incremental, resumable task-result storage.

A journaled run writes every completed task's result to its run
directory the moment it finishes, so a crash, kill, or power loss
forfeits at most the tasks in flight.  ``repro run E13 --resume RUN_ID``
re-opens the journal, replays the recorded results, and executes only
the missing tasks — and because every task owns its randomness (seeds
live on tasks, never on workers), the resumed aggregate is bit-identical
to an uninterrupted run at any ``--jobs`` value.

Layout of one run directory (``<runs_root>/<run_id>/``)::

    meta.json                       # flags the run was created with
    status.json                     # completeness marker + fault records
    stages/<ns>/<stage>/task-00007.json   # one record per completed task

Each record file is written atomically (temp file + ``os.replace``) and
carries a SHA-256 checksum of its pickled payload; a torn or corrupted
record fails verification on load and is simply treated as missing —
the task re-runs, and determinism repairs the damage.  Records are
keyed by task index within a namespaced stage (namespace = experiment
id, stage = the driver's ``map_tasks`` stage name), which is what makes
the journal valid only for the exact sweep shape it was created with;
:meth:`RunJournal.load_stage` rejects records beyond the current task
count rather than silently mixing two configurations.

Since the dispatch backend, the journal module is also the home of the
dispatcher's *shared ledger* of in-flight work: a :class:`LeaseLedger`
holds one lease record per claimed task (who claimed it, which attempt)
whose file mtime doubles as the worker's heartbeat.  Workers — possibly
on other hosts sharing the runs root — touch their lease while a task
executes; the dispatcher watches for heartbeats that stop moving and
re-issues a dead worker's tasks.  Lease records live next to the
journal's checkpoint records, so one run directory tells the whole
story: what finished (``stages/``), what failed (``failures.jsonl``),
and what was in flight when a worker disappeared (``leases/``).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import re
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.engine import chaos
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.utils.atomic import atomic_write_text, exhaustion_kind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.faults import TaskFailure

__all__ = ["JournalError", "LeaseLedger", "RunJournal"]

_RECORD_FORMAT = "repro-journal-record"
_RECORD_VERSION = 1
_SAFE = re.compile(r"[^-._A-Za-z0-9]")


class JournalError(RuntimeError):
    """A run directory is missing, corrupt, or belongs to another config."""


def _sanitize(name: str) -> str:
    safe = _SAFE.sub("_", name)
    if not safe:
        raise JournalError(f"unusable stage/run name {name!r}")
    return safe


class LeaseLedger:
    """Lease + heartbeat records for tasks claimed by dispatch workers.

    One JSON file per in-flight task index, written atomically by the
    claiming worker and removed when the task's result lands.  The
    file's **mtime is the heartbeat**: the worker touches its lease
    every few seconds while the task executes, and the dispatcher —
    which never trusts cross-host clocks — re-issues a task whose lease
    mtime has not moved for the lease timeout (measured on the
    dispatcher's own monotonic clock).
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        self._degraded = False

    def _path(self, index: int) -> Path:
        return self.directory / f"lease-{int(index):06d}.json"

    def claim(self, index: int, attempt: int, worker: str) -> None:
        """Record that ``worker`` holds attempt ``attempt`` of a task.

        Best effort: a claim that cannot be written (full disk,
        read-only filesystem) degrades to a warning instead of killing
        the worker — the dispatcher then sees no heartbeat and recovers
        through its ordinary re-issue path, which is strictly better
        than losing the worker process to an ``ENOSPC``.
        """
        doc = {"index": int(index), "attempt": int(attempt), "worker": str(worker)}
        try:
            chaos.on_write("journal.lease", index=index)
            self.directory.mkdir(parents=True, exist_ok=True)
            atomic_write_text(self._path(index), json.dumps(doc))
        except OSError as exc:
            _metrics.add("journal.degraded_writes")
            _events.emit(
                "degraded-write", what="lease", cause=exhaustion_kind(exc)
            )
            if not self._degraded:
                self._degraded = True
                warnings.warn(
                    f"cannot write lease records under {self.directory} "
                    f"({exc}); continuing without leases — tasks will be "
                    "recovered via re-issue instead of heartbeats",
                    stacklevel=2,
                )
            return
        _metrics.add("journal.leases")
        _events.emit("lease-claim", index=int(index), attempt=int(attempt),
                     worker=str(worker))

    def heartbeat(self, index: int) -> None:
        """Touch the lease so its mtime shows the worker is alive."""
        try:
            os.utime(self._path(index))
        except OSError:  # released concurrently; nothing to prove
            pass

    def release(self, index: int) -> None:
        """Remove the lease record (the task settled or was re-issued)."""
        try:
            self._path(index).unlink()
        except OSError:
            pass

    def load(self, index: int) -> "dict[str, Any] | None":
        """The lease record of a task, or ``None`` when unclaimed.

        A torn or garbled lease (the writer died mid-rename, the disk
        filled, cosmic rays) reads as "unclaimed" — ``ValueError``
        covers both bad JSON and bytes that are not UTF-8 at all.
        """
        try:
            return json.loads(self._path(index).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    def mtime(self, index: int) -> "float | None":
        """The lease file's mtime (the last heartbeat), or ``None``."""
        try:
            return self._path(index).stat().st_mtime
        except OSError:
            return None


class RunJournal:
    """The journal of one run directory.  Use :meth:`create`/:meth:`open`."""

    def __init__(self, run_dir: Path, meta: "dict[str, Any]"):
        self.run_dir = Path(run_dir)
        self.meta = meta
        self._namespace = ""
        self._loaded_stages: "set[str]" = set()
        #: Corrupt/torn records skipped (and re-run) by :meth:`load_stage`.
        self.corrupt_records = 0
        #: Checkpoint/status writes dropped because the filesystem was
        #: exhausted — the run continued, merely un-checkpointed.
        self.degraded_writes = 0
        #: Task count of every stage this run opened (full stage name →
        #: expected count); recorded into ``status.json`` so offline
        #: auditors (``repro doctor``) can detect out-of-range records.
        self.stage_counts: "dict[str, int]" = {}
        self._degraded_warned = False

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, root, run_id: str, meta: "dict[str, Any]") -> "RunJournal":
        """Start a fresh journaled run; refuses to reuse an existing id."""
        run_dir = Path(root) / _sanitize(run_id)
        if run_dir.exists():
            raise JournalError(
                f"run directory {run_dir} already exists; resume it with "
                f"--resume {run_id} or pick a new --run-id"
            )
        run_dir.mkdir(parents=True)
        doc = {"format": "repro-run", "version": _RECORD_VERSION, "run_id": run_id}
        doc.update(meta)
        atomic_write_text(run_dir / "meta.json", json.dumps(doc, indent=2) + "\n")
        return cls(run_dir, doc)

    @classmethod
    def open(cls, root, run_id: str) -> "RunJournal":
        """Re-open an existing run for resumption."""
        run_dir = Path(root) / _sanitize(run_id)
        meta_path = run_dir / "meta.json"
        if not run_dir.is_dir() or not meta_path.is_file():
            known = cls.list_runs(root)
            hint = f"; known run ids: {', '.join(known)}" if known else ""
            raise JournalError(f"no journaled run at {run_dir}{hint}")
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise JournalError(f"corrupt run metadata at {meta_path}: {exc}") from exc
        if meta.get("format") != "repro-run":
            raise JournalError(f"{meta_path} is not a repro run journal")
        return cls(run_dir, meta)

    @staticmethod
    def list_runs(root) -> "list[str]":
        """Run ids present under a runs root (for error messages)."""
        base = Path(root)
        if not base.is_dir():
            return []
        return sorted(p.name for p in base.iterdir() if (p / "meta.json").is_file())

    @property
    def run_id(self) -> str:
        return str(self.meta.get("run_id", self.run_dir.name))

    # -- namespacing -------------------------------------------------------

    @contextmanager
    def namespace(self, prefix: str):
        """Scope stage names under ``prefix`` (the experiment id)."""
        previous = self._namespace
        self._namespace = _sanitize(prefix)
        try:
            yield self
        finally:
            self._namespace = previous

    def _stage_dir(self, stage: str) -> Path:
        parts = ["stages"]
        if self._namespace:
            parts.append(self._namespace)
        parts.append(_sanitize(stage))
        return self.run_dir.joinpath(*parts)

    def _full_stage(self, stage: str) -> str:
        return f"{self._namespace}/{stage}" if self._namespace else stage

    # -- degradation -------------------------------------------------------

    def _degrade(self, what: str, exc: OSError) -> None:
        """Absorb a failed best-effort write: count it, warn once.

        Checkpoint, status, and crash-count writes are diagnostics plus
        resume capital — never correctness — so a full or read-only
        filesystem downgrades them to "un-checkpointed" instead of
        failing the run.  The count lands in ``status.json`` (when that
        file is still writable) and in the ``journal.degraded_writes``
        counter, so the degradation is visible after the fact.
        """
        self.degraded_writes += 1
        _metrics.add("journal.degraded_writes")
        _events.emit(
            "degraded-write", what=what, cause=exhaustion_kind(exc) or "write-error"
        )
        if not self._degraded_warned:
            self._degraded_warned = True
            kind = exhaustion_kind(exc) or "write-error"
            warnings.warn(
                f"journal write failed ({kind}: {exc}) — continuing "
                f"without checkpointing {what}; results stay correct but "
                "the run is no longer resumable past this point",
                stacklevel=3,
            )

    # -- records -----------------------------------------------------------

    def record(self, stage: str, index: int, result: Any) -> None:
        """Journal one completed task result (atomic, checksummed).

        Records are pickled at ``pickle.HIGHEST_PROTOCOL`` (matching the
        dispatch queue); :meth:`load_stage` reads any protocol, so
        journals written by older versions (protocol 4) still resume.
        Best effort under resource exhaustion: see :meth:`_degrade`.
        """
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        doc = {
            "format": _RECORD_FORMAT,
            "version": _RECORD_VERSION,
            "stage": self._full_stage(stage),
            "index": int(index),
            "sha256": hashlib.sha256(payload).hexdigest(),
            "pickle_b64": base64.b64encode(payload).decode("ascii"),
        }
        try:
            chaos.on_write("journal.record", self._full_stage(stage), int(index))
            stage_dir = self._stage_dir(stage)
            stage_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_text(stage_dir / f"task-{index:06d}.json", json.dumps(doc))
        except OSError as exc:
            self._degrade(f"task {index} (stage {stage!r})", exc)
            return
        _metrics.add("journal.records")

    def load_stage(self, stage: str, expected_count: int) -> "dict[int, Any]":
        """Valid recorded results of a stage, keyed by task index.

        Records that fail to parse or checksum are skipped with a warning
        (the task simply re-runs); a record index beyond
        ``expected_count`` means the journal belongs to a different
        configuration and is an error.
        """
        full = self._full_stage(stage)
        if full in self._loaded_stages:
            raise JournalError(
                f"stage {full!r} opened twice in one run — give each "
                "map_tasks call a distinct stage name"
            )
        self._loaded_stages.add(full)
        self.stage_counts[full] = int(expected_count)
        stage_dir = self._stage_dir(stage)
        results: "dict[int, Any]" = {}
        if not stage_dir.is_dir():
            return results
        for path in sorted(stage_dir.glob("task-*.json")):
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
                if doc.get("format") != _RECORD_FORMAT:
                    raise ValueError("not a journal record")
                index = int(doc["index"])
                payload = base64.b64decode(doc["pickle_b64"])
                if hashlib.sha256(payload).hexdigest() != doc["sha256"]:
                    raise ValueError("checksum mismatch")
                value = pickle.loads(payload)
            except (OSError, ValueError, KeyError, pickle.UnpicklingError) as exc:
                self.corrupt_records += 1
                _metrics.add("journal.corrupt_records")
                warnings.warn(
                    f"journal record {path} is corrupt ({exc}); the task "
                    "will re-run",
                    stacklevel=2,
                )
                continue
            if index >= expected_count or index < 0:
                raise JournalError(
                    f"journal stage {full!r} holds task index {index} but the "
                    f"current sweep has only {expected_count} task(s) — the "
                    "run was created with a different config/scale/seed"
                )
            results[index] = value
        return results

    # -- crash counts (poison-task quarantine) -----------------------------

    def _crashes_path(self, stage: str) -> Path:
        return self._stage_dir(stage) / "crashes.json"

    def crash_counts(self, stage: str) -> "dict[int, int]":
        """Fatal-attempt counts per task index, persisted per stage.

        Survives pool rebuilds, dispatcher restarts, and ``--resume``:
        a task that killed its worker K times in a previous incarnation
        of the run starts this incarnation already at K.
        """
        try:
            doc = json.loads(self._crashes_path(stage).read_text(encoding="utf-8"))
            return {int(k): int(v) for k, v in doc.items()}
        except (OSError, ValueError, json.JSONDecodeError):
            return {}

    def record_crash(self, stage: str, index: int) -> int:
        """Bump a task's fatal-attempt count; returns the new count.

        Best effort on disk (see :meth:`_degrade`) but always counted in
        memory via the returned value, so quarantine still trips within
        one process even when the filesystem is exhausted.
        """
        counts = self.crash_counts(stage)
        counts[int(index)] = counts.get(int(index), 0) + 1
        try:
            chaos.on_write("journal.crashes", self._full_stage(stage), int(index))
            stage_dir = self._stage_dir(stage)
            stage_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_text(
                self._crashes_path(stage),
                json.dumps({str(k): v for k, v in sorted(counts.items())}),
            )
        except OSError as exc:
            self._degrade(f"crash count of task {index} (stage {stage!r})", exc)
        return counts[int(index)]

    # -- run status --------------------------------------------------------

    def log_failure(self, failure: "TaskFailure") -> None:
        """Append a failure record to ``failures.jsonl`` (best effort)."""
        doc = dict(failure.to_dict())
        doc["stage"] = self._full_stage(failure.stage)
        try:
            chaos.on_write("journal.failures", doc["stage"], failure.index)
            with open(self.run_dir / "failures.jsonl", "a", encoding="utf-8") as fh:
                fh.write(json.dumps(doc) + "\n")
        except OSError as exc:  # diagnostics must never take the run down
            self._degrade("failure log", exc)

    def write_status(self, doc: "dict[str, Any]") -> None:
        """Atomically (re)write the run's ``status.json`` (best effort)."""
        try:
            chaos.on_write("journal.status")
            atomic_write_text(
                self.run_dir / "status.json", json.dumps(doc, indent=2) + "\n"
            )
        except OSError as exc:
            self._degrade("status.json", exc)

    def health(self) -> "dict[str, Any]":
        """Journal-health block for ``status.json``/``summary.json``."""
        return {
            "corrupt_records": self.corrupt_records,
            "degraded_writes": self.degraded_writes,
            "stages": dict(sorted(self.stage_counts.items())),
        }
