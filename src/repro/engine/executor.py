"""Deterministic task executor for experiment sweeps.

Every experiment sweep (networks × seeds × trials) is expressed as a
list of :class:`Task` objects mapped through a pure task function with
:func:`map_tasks`.  Two backends are provided:

* **serial** (``jobs=1``) — a plain loop in the calling process;
* **process pool** (``jobs>1``) — :class:`concurrent.futures.ProcessPoolExecutor`.

Determinism contract: a task function may only draw randomness from its
task — either the task's ``seed`` (a child
:class:`~numpy.random.SeedSequence` spawned from the experiment's root
seed) or streams re-derived inside the worker from seeds in the payload
(e.g. via :class:`repro.utils.rng.RngFactory`).  Results are returned in
task order regardless of completion order, and aggregation happens in
that fixed order, so ``jobs=1`` and ``jobs=8`` produce bit-identical
results.

Shared read-only state (a config, a generated network list, a channel
spec) can be passed once per worker through ``map_tasks(..., context=...)``
instead of being pickled into every task payload: the process backend
ships it via the pool's ``initializer`` and task functions read it back
with :func:`get_worker_context`.  Context must never carry randomness —
seeds stay on the tasks, so the ``jobs`` invariance is unaffected.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.utils.rng import RngFactory

__all__ = [
    "Task",
    "StageTimer",
    "get_worker_context",
    "make_tasks",
    "map_tasks",
    "resolve_jobs",
]

#: Per-process shared state installed by :func:`map_tasks`'s ``context``
#: argument — set once per worker by the pool initializer (or around the
#: serial loop) and read back with :func:`get_worker_context`.
_WORKER_CONTEXT: Any = None


def _init_worker(context: Any) -> None:
    """Pool initializer: install the shared context in this process."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def get_worker_context() -> Any:
    """The shared object passed as ``map_tasks(..., context=...)``.

    Valid only inside a task function during a :func:`map_tasks` call
    that supplied a context; returns ``None`` otherwise.
    """
    return _WORKER_CONTEXT


@dataclass(frozen=True)
class Task:
    """One unit of an experiment sweep.

    Attributes
    ----------
    index:
        Position in the sweep; results are aggregated in this order.
    payload:
        Whatever the task function needs (must be picklable for the
        process backend — configs, indices, arrays are all fine).
    seed:
        Child :class:`~numpy.random.SeedSequence` spawned from the
        experiment's root seed; ``None`` for deterministic tasks.
    """

    index: int
    payload: Any
    seed: "np.random.SeedSequence | None" = None


def make_tasks(
    payloads: Iterable[Any],
    *,
    root_seed: "int | np.random.SeedSequence | RngFactory | None" = None,
    name: str = "task",
) -> list[Task]:
    """Wrap ``payloads`` into :class:`Task` objects with spawned seeds.

    When ``root_seed`` is given, task ``i`` carries the child sequence
    ``RngFactory(root_seed).seed_sequence(name, i)`` — the same derivation
    no matter which process later consumes it.
    """
    items = list(payloads)
    if root_seed is None:
        return [Task(i, p) for i, p in enumerate(items)]
    factory = root_seed if isinstance(root_seed, RngFactory) else RngFactory(root_seed)
    return [Task(i, p, factory.seed_sequence(name, i)) for i, p in enumerate(items)]


def resolve_jobs(jobs: "int | None") -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means all CPUs."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return int(jobs)


def map_tasks(
    fn: Callable[[Task], Any],
    tasks: Sequence[Task],
    *,
    jobs: "int | None" = 1,
    context: Any = None,
) -> list[Any]:
    """Apply ``fn`` to every task, returning results in task order.

    ``fn`` must be a module-level function and each task payload
    picklable when ``jobs > 1`` (the process backend).  Exceptions from
    any task propagate to the caller on both backends.

    ``context`` is shared read-only state shipped **once per worker**
    (via the pool initializer) rather than pickled into every task;
    task functions retrieve it with :func:`get_worker_context`.  On the
    serial backend it is installed around the loop, so task functions
    behave identically on both backends.
    """
    items = list(tasks)
    n_jobs = resolve_jobs(jobs)
    if n_jobs <= 1 or len(items) <= 1:
        global _WORKER_CONTEXT
        previous = _WORKER_CONTEXT
        _WORKER_CONTEXT = context
        try:
            return [fn(task) for task in items]
        finally:
            _WORKER_CONTEXT = previous
    pool_kwargs = {"max_workers": min(n_jobs, len(items))}
    if context is not None:
        pool_kwargs["initializer"] = _init_worker
        pool_kwargs["initargs"] = (context,)
    with ProcessPoolExecutor(**pool_kwargs) as pool:
        futures = [pool.submit(fn, task) for task in items]
        return [future.result() for future in futures]


class StageTimer:
    """Accumulates per-stage wall-clock timings for an experiment run.

    >>> timer = StageTimer()
    >>> with timer.stage("sweep"):
    ...     pass
    >>> sorted(timer.timings) == ["sweep"]
    True
    """

    def __init__(self) -> None:
        self.timings: dict[str, float] = {}

    @contextmanager
    def stage(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timings[name] = self.timings.get(name, 0.0) + elapsed
