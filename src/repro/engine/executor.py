"""Deterministic, fault-tolerant task executor for experiment sweeps.

Every experiment sweep (networks × seeds × trials) is expressed as a
list of :class:`Task` objects mapped through a pure task function with
:func:`map_tasks`.  Execution is delegated to a pluggable backend (see
:mod:`repro.engine.backends`):

* **serial** — a plain loop in the calling process (the reference
  implementation);
* **pool** — a local :class:`concurrent.futures.ProcessPoolExecutor`;
* **dispatch** — a multi-host work-stealing file queue served by
  ``repro worker`` processes sharing a runs root;
* **auto** (the default) — serial for ``jobs <= 1`` or single-task
  sweeps, the pool otherwise (the historical behaviour).

Determinism contract: a task function may only draw randomness from its
task — either the task's ``seed`` (a child
:class:`~numpy.random.SeedSequence` spawned from the experiment's root
seed) or streams re-derived inside the worker from seeds in the payload
(e.g. via :class:`repro.utils.rng.RngFactory`).  Results are settled in
task order regardless of completion order, and aggregation happens in
that fixed order, so any backend at any worker count — including
workers on other hosts, including workers that die mid-task — produces
bit-identical results.

Shared read-only state (a config, a generated network list, a channel
spec) can be passed once per worker through ``map_tasks(..., context=...)``
instead of being pickled into every task payload: process backends ship
it via the shared worker bundle (pool initializer / dispatch-queue
bundle) and task functions read it back with :func:`get_worker_context`.
Context must never carry randomness — seeds stay on the tasks, so the
backend invariance is unaffected.

Fault tolerance (see :mod:`repro.engine.faults`): ``map_tasks`` accepts
an error policy (``on_error="raise" | "skip" | "retry"``), a per-task
wall-clock ``timeout`` for the process backends, a
:class:`~repro.engine.faults.RetryPolicy` (exponential backoff with
deterministic jitter), and a :class:`~repro.engine.journal.RunJournal`
for checkpoint/resume.  Under ``skip``/``retry`` a task that ultimately
cannot produce a result occupies its slot with a structured
:class:`~repro.engine.faults.TaskFailure` instead of raising, a hung
task is abandoned after its budget, and a dying worker degrades the run
(pool rebuild / dispatch re-issue / serial fallback) rather than
discarding the sweep.  None of this touches task randomness, so a
journaled run interrupted at any point resumes to the bit-identical
aggregate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

import numpy as np

from repro.engine.faults import (
    ON_ERROR_MODES,
    RetryPolicy,
    current_policy,
)
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.trace import StageTimer  # re-export: spans subsume stage timing
from repro.utils.rng import RngFactory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.journal import RunJournal

__all__ = [
    "Task",
    "StageTimer",
    "get_worker_context",
    "make_tasks",
    "map_tasks",
    "resolve_jobs",
]

#: Sanity cap for ``--jobs``: far above any real core count, far below
#: values that would fork-bomb the host.
JOBS_CAP = max(64, 4 * (os.cpu_count() or 1))


@dataclass(frozen=True)
class Task:
    """One unit of an experiment sweep.

    Attributes
    ----------
    index:
        Position in the sweep; results are aggregated in this order and
        the journal keys checkpointed results by it.
    payload:
        Whatever the task function needs (must be picklable for the
        process backends — configs, indices, arrays are all fine).
    seed:
        Child :class:`~numpy.random.SeedSequence` spawned from the
        experiment's root seed; ``None`` for deterministic tasks.
    """

    index: int
    payload: Any
    seed: "np.random.SeedSequence | None" = None


def make_tasks(
    payloads: Iterable[Any],
    *,
    root_seed: "int | np.random.SeedSequence | RngFactory | None" = None,
    name: str = "task",
) -> list[Task]:
    """Wrap ``payloads`` into :class:`Task` objects with spawned seeds.

    When ``root_seed`` is given, task ``i`` carries the child sequence
    ``RngFactory(root_seed).seed_sequence(name, i)`` — the same derivation
    no matter which process later consumes it.
    """
    items = list(payloads)
    if root_seed is None:
        return [Task(i, p) for i, p in enumerate(items)]
    factory = root_seed if isinstance(root_seed, RngFactory) else RngFactory(root_seed)
    return [Task(i, p, factory.seed_sequence(name, i)) for i, p in enumerate(items)]


def resolve_jobs(jobs: "int | None") -> int:
    """Normalise and validate a ``--jobs`` value.

    ``None``/``0`` means all CPUs; negative values and values beyond
    :data:`JOBS_CAP` (= ``max(64, 4 × CPUs)``) are rejected with a clear
    error instead of spawning a nonsensical worker fleet.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs > JOBS_CAP:
        raise ValueError(
            f"jobs={jobs} exceeds the sanity cap {JOBS_CAP} "
            "(= max(64, 4 x CPU count)); pass 0 to use every core"
        )
    return int(jobs)


def get_worker_context() -> Any:
    """The shared object passed as ``map_tasks(..., context=...)``.

    Valid only inside a task function during a :func:`map_tasks` call
    that supplied a context; returns ``None`` otherwise.
    """
    from repro.engine.backends import base

    return base.get_worker_context()


def map_tasks(
    fn: Callable[[Task], Any],
    tasks: Sequence[Task],
    *,
    jobs: "int | None" = 1,
    context: Any = None,
    stage: str = "sweep",
    on_error: "str | None" = None,
    timeout: "float | None" = None,
    retry: "RetryPolicy | None" = None,
    journal: "RunJournal | None" = None,
    executor: Any = None,
    quarantine_after: "int | None" = None,
) -> list[Any]:
    """Apply ``fn`` to every task, returning results in task order.

    ``fn`` must be a module-level function and each task payload
    picklable when a process backend runs it (for the dispatch backend
    ``fn`` must additionally be importable on the worker hosts — it is
    pickled by reference).

    ``context`` is shared read-only state shipped **once per worker**
    (via the shared worker bundle) rather than pickled into every task;
    task functions retrieve it with :func:`get_worker_context`.  On the
    serial backend it is installed around the loop, so task functions
    behave identically on every backend.

    ``executor`` picks the backend: one of the
    :data:`~repro.engine.faults.EXECUTOR_MODES` strings (``"auto"``,
    ``"serial"``, ``"pool"``, ``"dispatch"``) or a configured
    :class:`~repro.engine.backends.ExecutionBackend` instance.  The
    default defers to the ambient policy and falls back to ``"auto"``
    — serial for ``jobs <= 1`` or single-task sweeps, the process pool
    otherwise.

    Fault knobs (each defaults to the ambient
    :class:`~repro.engine.faults.ExecutionPolicy` installed by
    :func:`~repro.engine.faults.execution_scope`, or to the strict
    legacy behaviour when no policy is active):

    ``stage``
        Names this sweep for the journal and failure records; a driver
        calling ``map_tasks`` more than once must use distinct names.
    ``on_error``
        ``"raise"`` propagates the first exception (legacy behaviour);
        ``"skip"`` captures failures as :class:`TaskFailure` slots;
        ``"retry"`` re-runs a failed task with exponential backoff and
        deterministic jitter before giving up to a :class:`TaskFailure`.
    ``timeout``
        Per-task wall-clock budget in seconds, enforced on the process
        backends (the pool is restarted around a hung task; the
        dispatcher abandons the attempt and ignores its late result;
        the serial backend cannot preempt and ignores it).
    ``journal``
        A :class:`~repro.engine.journal.RunJournal`: completed results
        are checkpointed as they land, previously recorded results are
        replayed without re-execution, and only missing tasks run.
    ``quarantine_after``
        Poison-task circuit breaker (``--quarantine-after``): a task
        whose execution kills its worker this many times is settled as
        ``TaskFailure(kind="quarantined")`` instead of being re-issued,
        so the rest of the sweep completes.
    """
    from repro.engine.backends import resolve_executor
    from repro.engine.backends.base import RunState

    policy = current_policy()
    on_error = on_error if on_error is not None else (policy.on_error if policy else "raise")
    if on_error not in ON_ERROR_MODES:
        raise ValueError(f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}")
    timeout = timeout if timeout is not None else (policy.timeout if policy else None)
    retry = retry if retry is not None else (policy.retry if policy else RetryPolicy())
    journal = journal if journal is not None else (policy.journal if policy else None)
    if executor is None:
        executor = policy.executor if policy is not None else "auto"
    if quarantine_after is None:
        quarantine_after = policy.quarantine_after if policy else 3
    if quarantine_after < 1:
        raise ValueError(f"quarantine_after must be >= 1, got {quarantine_after}")

    items = list(tasks)
    results: "dict[int, Any]" = {}
    if journal is not None:
        replayed = journal.load_stage(stage, len(items))
        if replayed:
            obs_metrics.add("journal.tasks_replayed", len(replayed))
        results.update(replayed)
    pending = [t for t in items if t.index not in results]

    n_jobs = resolve_jobs(jobs)
    obs_metrics.add("executor.tasks", len(items))
    if pending:
        state = RunState(
            fn=fn,
            stage=stage,
            context=context,
            on_error=on_error,
            retry=retry,
            timeout=timeout,
            journal=journal,
            report=policy.report if policy else None,
            n_jobs=n_jobs,
            quarantine_after=int(quarantine_after),
        )
        backend = resolve_executor(executor, n_jobs, len(pending))
        obs_metrics.add("executor.tasks_executed", len(pending))
        # No per-backend counter here: counters are jobs-invariant by
        # contract, and the backend choice depends on --jobs.  Which
        # backend ran is recorded in summary.json and on task spans.
        obs_events.emit(
            "stage-start",
            stage=stage,
            tasks=len(items),
            pending=len(pending),
            replayed=len(items) - len(pending),
            backend=backend.name,
            experiment=obs_trace.current_experiment(),
        )
        backend.run(state, pending, results)
        obs_events.emit(
            "stage-done",
            stage=stage,
            tasks=len(items),
            experiment=obs_trace.current_experiment(),
        )
    return [results[t.index] for t in items]
