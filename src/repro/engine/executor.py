"""Deterministic, fault-tolerant task executor for experiment sweeps.

Every experiment sweep (networks × seeds × trials) is expressed as a
list of :class:`Task` objects mapped through a pure task function with
:func:`map_tasks`.  Two backends are provided:

* **serial** (``jobs=1``) — a plain loop in the calling process;
* **process pool** (``jobs>1``) — :class:`concurrent.futures.ProcessPoolExecutor`.

Determinism contract: a task function may only draw randomness from its
task — either the task's ``seed`` (a child
:class:`~numpy.random.SeedSequence` spawned from the experiment's root
seed) or streams re-derived inside the worker from seeds in the payload
(e.g. via :class:`repro.utils.rng.RngFactory`).  Results are returned in
task order regardless of completion order, and aggregation happens in
that fixed order, so ``jobs=1`` and ``jobs=8`` produce bit-identical
results.

Shared read-only state (a config, a generated network list, a channel
spec) can be passed once per worker through ``map_tasks(..., context=...)``
instead of being pickled into every task payload: the process backend
ships it via the pool's ``initializer`` and task functions read it back
with :func:`get_worker_context`.  Context must never carry randomness —
seeds stay on the tasks, so the ``jobs`` invariance is unaffected.

Fault tolerance (see :mod:`repro.engine.faults`): ``map_tasks`` accepts
an error policy (``on_error="raise" | "skip" | "retry"``), a per-task
wall-clock ``timeout`` for the process backend, a
:class:`~repro.engine.faults.RetryPolicy` (exponential backoff with
deterministic jitter), and a :class:`~repro.engine.journal.RunJournal`
for checkpoint/resume.  Under ``skip``/``retry`` a task that ultimately
cannot produce a result occupies its slot with a structured
:class:`~repro.engine.faults.TaskFailure` instead of raising, a hung
task is abandoned after its budget (the pool is restarted so the
remaining tasks keep running), and a broken pool (a worker died hard)
degrades to re-executing the unfinished remainder on the serial backend
rather than discarding the sweep.  None of this touches task
randomness, so a journaled run interrupted at any point resumes to the
bit-identical aggregate.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

import numpy as np

from repro import backend
from repro.engine import chaos
from repro.engine import guards
from repro.engine.faults import (
    ON_ERROR_MODES,
    RetryPolicy,
    RunReport,
    TaskFailure,
    current_policy,
    is_failure,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.trace import StageTimer  # re-export: spans subsume stage timing
from repro.utils.rng import RngFactory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.journal import RunJournal

__all__ = [
    "Task",
    "StageTimer",
    "get_worker_context",
    "make_tasks",
    "map_tasks",
    "resolve_jobs",
]

#: Sanity cap for ``--jobs``: far above any real core count, far below
#: values that would fork-bomb the host.
JOBS_CAP = max(64, 4 * (os.cpu_count() or 1))

#: How many times a broken pool is rebuilt (under ``on_error="retry"``)
#: before the run degrades to the serial backend.
_MAX_POOL_REBUILDS = 2

#: Per-process shared state installed by :func:`map_tasks`'s ``context``
#: argument — set once per worker by the pool initializer (or around the
#: serial loop) and read back with :func:`get_worker_context`.
_WORKER_CONTEXT: Any = None


def _worker_bundle(context: Any) -> tuple:
    """Everything a worker process must install before running tasks:
    the shared context, the guard strictness, any chaos plan, whether to
    buffer telemetry metrics for shipping back, and the array-backend
    configuration (so ``--jobs N`` workers compute under the parent's
    backend/dtype/top-k policy and the determinism invariant holds)."""
    plan = chaos.current_plan()
    return (
        context,
        guards.get_guard_mode(),
        None if plan is None else plan.to_dict(),
        _observing(),
        backend.get_config().to_dict(),
    )


def _observing() -> bool:
    """Whether task executions should ship telemetry envelopes: metrics
    are being collected, or a tracer wants per-task spans."""
    return obs_metrics.collecting() or obs_trace.current_tracer() is not None


def _init_worker(bundle: tuple) -> None:
    """Pool initializer: install shared context, guards, chaos, metrics,
    and the parent's array-backend configuration."""
    global _WORKER_CONTEXT
    context, guard_mode, chaos_doc, metrics_on, backend_doc = bundle
    _WORKER_CONTEXT = context
    guards.set_guard_mode(guard_mode)
    chaos.install(None if chaos_doc is None else chaos.ChaosPlan.from_dict(chaos_doc))
    obs_metrics.set_collection(metrics_on)
    backend.set_config(backend.BackendConfig.from_dict(backend_doc))


def get_worker_context() -> Any:
    """The shared object passed as ``map_tasks(..., context=...)``.

    Valid only inside a task function during a :func:`map_tasks` call
    that supplied a context; returns ``None`` otherwise.
    """
    return _WORKER_CONTEXT


@dataclass(frozen=True)
class Task:
    """One unit of an experiment sweep.

    Attributes
    ----------
    index:
        Position in the sweep; results are aggregated in this order and
        the journal keys checkpointed results by it.
    payload:
        Whatever the task function needs (must be picklable for the
        process backend — configs, indices, arrays are all fine).
    seed:
        Child :class:`~numpy.random.SeedSequence` spawned from the
        experiment's root seed; ``None`` for deterministic tasks.
    """

    index: int
    payload: Any
    seed: "np.random.SeedSequence | None" = None


def make_tasks(
    payloads: Iterable[Any],
    *,
    root_seed: "int | np.random.SeedSequence | RngFactory | None" = None,
    name: str = "task",
) -> list[Task]:
    """Wrap ``payloads`` into :class:`Task` objects with spawned seeds.

    When ``root_seed`` is given, task ``i`` carries the child sequence
    ``RngFactory(root_seed).seed_sequence(name, i)`` — the same derivation
    no matter which process later consumes it.
    """
    items = list(payloads)
    if root_seed is None:
        return [Task(i, p) for i, p in enumerate(items)]
    factory = root_seed if isinstance(root_seed, RngFactory) else RngFactory(root_seed)
    return [Task(i, p, factory.seed_sequence(name, i)) for i, p in enumerate(items)]


def resolve_jobs(jobs: "int | None") -> int:
    """Normalise and validate a ``--jobs`` value.

    ``None``/``0`` means all CPUs; negative values and values beyond
    :data:`JOBS_CAP` (= ``max(64, 4 × CPUs)``) are rejected with a clear
    error instead of spawning a nonsensical worker fleet.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs > JOBS_CAP:
        raise ValueError(
            f"jobs={jobs} exceeds the sanity cap {JOBS_CAP} "
            "(= max(64, 4 x CPU count)); pass 0 to use every core"
        )
    return int(jobs)


@dataclass
class _TaskEnvelope:
    """A task result plus the telemetry measured where it executed.

    When metrics collection is on, workers ship their buffered counter
    deltas (and the task's wall-clock) back to the main process on this
    envelope; :func:`_settle_success` unwraps it, so journals, failure
    handling, and driver aggregation only ever see the raw value — the
    envelope can never leak into result bytes.
    """

    value: Any
    metrics: "obs_metrics.MetricsRegistry | None"
    seconds: float


def _execute_task(fn: Callable[[Task], Any], task: Task, stage: str) -> Any:
    """Run one task with chaos + telemetry instrumentation (executes in
    the worker).  Successful executions return a :class:`_TaskEnvelope`
    when metrics are being collected; failed attempts drop their buffer
    (only metrics of executions that produced a result are aggregated,
    which keeps the merged totals identical across ``--jobs``)."""
    chaos.set_current_task(stage, task.index)
    collect = _observing()
    previous = obs_metrics.begin_task() if collect else None
    start = time.perf_counter()
    try:
        chaos.on_task_start(stage, task.index)
        value = fn(task)
    finally:
        chaos.set_current_task(None, None)
        delta = obs_metrics.end_task(previous) if collect else None
    if not collect:
        return value
    return _TaskEnvelope(value, delta, time.perf_counter() - start)


@dataclass
class _RunState:
    """Resolved knobs of one ``map_tasks`` call."""

    fn: Callable[[Task], Any]
    stage: str
    context: Any
    on_error: str
    retry: RetryPolicy
    timeout: "float | None"
    journal: "RunJournal | None"
    report: "RunReport | None"


def _settle_success(state: _RunState, task: Task, outcome: Any) -> Any:
    """Unwrap a telemetry envelope (merge metrics, emit the task span),
    journal the raw value, and return it.  The journal always stores the
    unwrapped value, so a checkpointed run resumes identically whether
    telemetry was on or off when it recorded."""
    if isinstance(outcome, _TaskEnvelope):
        value = outcome.value
        obs_metrics.merge_task_metrics(outcome.metrics)
        obs_metrics.observe("executor.task_seconds", outcome.seconds)
        obs_trace.record_complete(
            "task-" + str(task.index),
            "task",
            outcome.seconds,
            index=task.index,
            stage=state.stage,
        )
    else:
        value = outcome
    if state.journal is not None:
        state.journal.record(state.stage, task.index, value)
    return value


def _settle_failure(state: _RunState, failure: TaskFailure) -> TaskFailure:
    obs_metrics.add("executor.task_failures")
    if state.report is not None:
        state.report.record_failure(failure)
    if state.journal is not None:
        state.journal.log_failure(failure)
    warnings.warn(failure.describe(), stacklevel=3)
    return failure


def _attempt_serial(state: _RunState, task: Task) -> Any:
    """Run one task in-process with the retry schedule; returns the
    value or a :class:`TaskFailure` (under ``skip``/``retry``)."""
    max_attempts = state.retry.max_attempts if state.on_error == "retry" else 1
    last_exc: "BaseException | None" = None
    for attempt in range(1, max_attempts + 1):
        try:
            return _execute_task(state.fn, task, state.stage)
        except Exception as exc:
            if state.on_error == "raise":
                raise
            last_exc = exc
            if attempt < max_attempts:
                obs_metrics.add("executor.retries")
                time.sleep(state.retry.delay(task.index, attempt))
    return TaskFailure(
        index=task.index,
        stage=state.stage,
        kind="error",
        error_type=type(last_exc).__name__,
        message=str(last_exc),
        attempts=max_attempts,
    )


def _run_serial(state: _RunState, pending: "list[Task]", results: "dict[int, Any]") -> None:
    global _WORKER_CONTEXT
    previous = _WORKER_CONTEXT
    _WORKER_CONTEXT = state.context
    try:
        for task in pending:
            outcome = _attempt_serial(state, task)
            if is_failure(outcome):
                results[task.index] = _settle_failure(state, outcome)
            else:
                results[task.index] = _settle_success(state, task, outcome)
    finally:
        _WORKER_CONTEXT = previous


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on hung or dead workers."""
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            proc.kill()
        except Exception:  # already gone
            pass


def _record_event(state: _RunState, kind: str, detail: str, **extra) -> None:
    obs_metrics.add("executor.events." + kind)
    warnings.warn(f"{kind}: {detail}", stacklevel=3)
    if state.report is not None:
        state.report.record_event(kind, detail, stage=state.stage, **extra)


def _task_error(
    state: _RunState,
    queue: "dict[int, Task]",
    attempts: "dict[int, int]",
    results: "dict[int, Any]",
    idx: int,
    exc: BaseException,
    kind: str = "error",
) -> None:
    """Handle a task-level failure on the pool backend: requeue for a
    retry when the policy allows, else settle a :class:`TaskFailure`."""
    if state.on_error == "retry" and attempts[idx] < state.retry.max_attempts:
        obs_metrics.add("executor.retries")
        return  # stays in the queue; next pool round re-runs it
    queue.pop(idx)
    results[idx] = _settle_failure(
        state,
        TaskFailure(
            index=idx,
            stage=state.stage,
            kind=kind,
            error_type=type(exc).__name__,
            message=str(exc),
            attempts=attempts[idx],
        ),
    )


def _harvest_done(
    state: _RunState,
    futures: dict,
    queue: "dict[int, Task]",
    results: "dict[int, Any]",
) -> None:
    """After an abort, collect results of futures that finished cleanly
    before the pool went down (their work must not be discarded)."""
    for idx in list(queue):
        fut = futures.get(idx)
        if fut is None or not fut.done():
            continue
        try:
            value = fut.result(timeout=0)
        except Exception:
            continue  # broken-pool sentinel or task error: re-run / re-judge later
        results[idx] = _settle_success(state, queue.pop(idx), value)


def _run_pool(
    state: _RunState,
    pending: "list[Task]",
    results: "dict[int, Any]",
    n_jobs: int,
) -> None:
    queue: "dict[int, Task]" = {t.index: t for t in pending}
    attempts: "dict[int, int]" = {t.index: 0 for t in pending}
    pool_breaks = 0
    while queue:
        submitted = sorted(queue)
        pool = ProcessPoolExecutor(
            max_workers=min(n_jobs, len(submitted)),
            initializer=_init_worker,
            initargs=(_worker_bundle(state.context),),
        )
        futures = {}
        for idx in submitted:
            attempts[idx] += 1
            futures[idx] = pool.submit(_execute_task, state.fn, queue[idx], state.stage)
        abort = None
        for idx in submitted:
            if idx not in queue:
                continue
            fut = futures[idx]
            try:
                value = fut.result(timeout=state.timeout)
            except BrokenExecutor:
                abort = "broken"
                break
            except _FuturesTimeout as exc:
                if fut.done():  # the task itself raised a TimeoutError
                    if state.on_error == "raise":
                        pool.shutdown(wait=True, cancel_futures=True)
                        raise
                    _task_error(state, queue, attempts, results, idx, exc)
                    continue
                budget = state.timeout if state.timeout is not None else 0.0
                _record_event(
                    state,
                    "timeout",
                    f"task {idx} exceeded its {budget:g}s wall-clock budget; "
                    "restarting the worker pool",
                    index=idx,
                )
                if state.on_error == "raise":
                    _kill_pool(pool)
                    raise TimeoutError(
                        f"task {idx} (stage {state.stage!r}) exceeded its "
                        f"{budget:g}s wall-clock budget"
                    ) from None
                _task_error(
                    state, queue, attempts, results, idx,
                    TimeoutError(f"exceeded {budget:g}s budget"), kind="timeout",
                )
                abort = "timeout"
                break
            except Exception as exc:
                if state.on_error == "raise":
                    pool.shutdown(wait=True, cancel_futures=True)
                    raise
                _task_error(state, queue, attempts, results, idx, exc)
            else:
                results[idx] = _settle_success(state, queue.pop(idx), value)

        if abort is None:
            pool.shutdown(wait=True)
        else:
            _harvest_done(state, futures, queue, results)
            _kill_pool(pool)
            if abort == "broken":
                pool_breaks += 1
                _record_event(
                    state,
                    "pool-broken",
                    "a worker process died and broke the pool "
                    f"({len(queue)} task(s) unresolved)",
                )
                can_rebuild = (
                    state.on_error == "retry"
                    and pool_breaks <= _MAX_POOL_REBUILDS
                    and all(attempts[i] < state.retry.max_attempts for i in queue)
                )
                if not can_rebuild:
                    if queue:
                        _record_event(
                            state,
                            "degraded-serial",
                            f"re-executing the unfinished {len(queue)} task(s) "
                            "on the serial backend",
                        )
                        _run_serial(state, [queue[i] for i in sorted(queue)], results)
                        queue.clear()
                    return
                obs_metrics.add("executor.pool_rebuilds")
        if state.on_error == "retry" and queue:
            time.sleep(max(state.retry.delay(i, attempts[i]) for i in queue))


def map_tasks(
    fn: Callable[[Task], Any],
    tasks: Sequence[Task],
    *,
    jobs: "int | None" = 1,
    context: Any = None,
    stage: str = "sweep",
    on_error: "str | None" = None,
    timeout: "float | None" = None,
    retry: "RetryPolicy | None" = None,
    journal: "RunJournal | None" = None,
) -> list[Any]:
    """Apply ``fn`` to every task, returning results in task order.

    ``fn`` must be a module-level function and each task payload
    picklable when ``jobs > 1`` (the process backend).

    ``context`` is shared read-only state shipped **once per worker**
    (via the pool initializer) rather than pickled into every task;
    task functions retrieve it with :func:`get_worker_context`.  On the
    serial backend it is installed around the loop, so task functions
    behave identically on both backends.

    Fault knobs (each defaults to the ambient
    :class:`~repro.engine.faults.ExecutionPolicy` installed by
    :func:`~repro.engine.faults.execution_scope`, or to the strict
    legacy behaviour when no policy is active):

    ``stage``
        Names this sweep for the journal and failure records; a driver
        calling ``map_tasks`` more than once must use distinct names.
    ``on_error``
        ``"raise"`` propagates the first exception (legacy behaviour);
        ``"skip"`` captures failures as :class:`TaskFailure` slots;
        ``"retry"`` re-runs a failed task with exponential backoff and
        deterministic jitter before giving up to a :class:`TaskFailure`.
    ``timeout``
        Per-task wall-clock budget in seconds, enforced on the process
        backend (the pool is restarted around a hung task; the serial
        backend cannot preempt and ignores it).
    ``journal``
        A :class:`~repro.engine.journal.RunJournal`: completed results
        are checkpointed as they land, previously recorded results are
        replayed without re-execution, and only missing tasks run.
    """
    policy = current_policy()
    on_error = on_error if on_error is not None else (policy.on_error if policy else "raise")
    if on_error not in ON_ERROR_MODES:
        raise ValueError(f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}")
    timeout = timeout if timeout is not None else (policy.timeout if policy else None)
    retry = retry if retry is not None else (policy.retry if policy else RetryPolicy())
    journal = journal if journal is not None else (policy.journal if policy else None)
    state = _RunState(
        fn=fn,
        stage=stage,
        context=context,
        on_error=on_error,
        retry=retry,
        timeout=timeout,
        journal=journal,
        report=policy.report if policy else None,
    )

    items = list(tasks)
    results: "dict[int, Any]" = {}
    if journal is not None:
        replayed = journal.load_stage(stage, len(items))
        if replayed:
            obs_metrics.add("journal.tasks_replayed", len(replayed))
        results.update(replayed)
    pending = [t for t in items if t.index not in results]

    n_jobs = resolve_jobs(jobs)
    obs_metrics.add("executor.tasks", len(items))
    if pending:
        obs_metrics.add("executor.tasks_executed", len(pending))
        if n_jobs <= 1 or len(pending) <= 1:
            _run_serial(state, pending, results)
        else:
            _run_pool(state, pending, results, n_jobs)
    return [results[t.index] for t in items]
