"""Decorator-based experiment registry.

Each experiment driver module registers itself:

.. code-block:: python

    @register(
        "E1",
        title="Figure 1: capacity vs transmit probability",
        config=lambda scale, seed: {"config": scaled_config(Figure1Config, scale, seed)},
    )
    def run_figure1(config=None, *, jobs=1) -> ExperimentResult: ...

The registry replaces the hand-maintained experiment table that used to
live in ``cli.py``: ``python -m repro {list,run,report}`` and the test
suite discover experiments through :func:`all_specs`, and adding an
experiment is just decorating its driver.

The ``config`` factory maps ``(scale, seed)`` to the keyword arguments
of the runner; ``scale`` is ``"quick"`` or ``"paper"`` and ``seed`` is
an optional root-seed override (``None`` keeps the driver default).
Runners that accept a ``jobs`` parameter are automatically detected and
receive the CLI's ``--jobs`` value; likewise runners with a ``channel``
parameter receive the CLI's ``--channel`` spec (e.g. ``rayleigh``,
``nakagami:m=2``, ``block:coherence=5``).
"""

from __future__ import annotations

import inspect
from contextlib import ExitStack
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable

from repro.engine.faults import ExecutionPolicy, RunReport, execution_scope
from repro.obs import experiment_scope

if TYPE_CHECKING:  # circular at runtime: driver modules import this one
    from repro.experiments.runner import ExperimentResult

__all__ = [
    "ExperimentSpec",
    "all_specs",
    "get_spec",
    "register",
    "scaled_config",
    "seed_kwargs",
]

#: (scale, seed-override) -> runner keyword arguments.
ConfigFactory = Callable[[str, "int | None"], "dict[str, Any]"]

SCALES = ("quick", "paper")


def scaled_config(cls, scale: str, seed: "int | None" = None):
    """Build ``cls.paper()`` or ``cls.quick()``, optionally re-seeded.

    ``cls`` is a frozen config dataclass with a ``seed`` field (e.g.
    :class:`~repro.experiments.config.Figure1Config`).
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")
    cfg = cls.paper() if scale == "paper" else cls.quick()
    if seed is not None:
        cfg = replace(cfg, seed=int(seed))
    return cfg


def seed_kwargs(seed: "int | None") -> "dict[str, int]":
    """``{"seed": seed}`` when an override is given, else ``{}`` — for
    drivers that take the root seed as a keyword argument."""
    return {} if seed is None else {"seed": int(seed)}


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: identity, config factory, and runner."""

    experiment_id: str
    title: str
    config_factory: ConfigFactory
    runner: Callable[..., ExperimentResult]
    supports_jobs: bool
    supports_channel: bool = False

    def make_kwargs(
        self, scale: str = "quick", seed: "int | None" = None
    ) -> "dict[str, Any]":
        """Runner keyword arguments for a scale and optional seed override."""
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")
        return dict(self.config_factory(scale, seed))

    def run(
        self,
        scale: str = "quick",
        *,
        seed: "int | None" = None,
        jobs: "int | None" = 1,
        channel: "str | None" = None,
        policy: "ExecutionPolicy | None" = None,
    ) -> ExperimentResult:
        """Run the experiment, recording total wall-clock in ``timings``.

        ``channel`` (a spec string) overrides the experiment's channel
        when the driver supports it; passing one to a driver that does
        not is an error rather than a silent default run.

        ``policy`` installs fault-tolerance knobs for the duration of the
        run: the driver's ``map_tasks`` calls inherit ``on_error``/retry/
        timeout/journal from the ambient scope, the journal is namespaced
        under this experiment's id, and a fresh :class:`RunReport`
        collects whatever failures and degradation events the executor
        records — its contents land on ``result.faults``.
        """
        kwargs = self.make_kwargs(scale, seed)
        if self.supports_jobs:
            kwargs["jobs"] = jobs
        if channel is not None:
            if not self.supports_channel:
                raise ValueError(
                    f"experiment {self.experiment_id} does not take a "
                    "--channel override"
                )
            kwargs["channel"] = channel
        report: "RunReport | None" = None
        with ExitStack() as stack:
            # The experiment span both namespaces the run's telemetry
            # (metrics prefix, trace subtree) and is the sole timing
            # source for ``timings["total"]``.
            sp = stack.enter_context(experiment_scope(self.experiment_id))
            if policy is not None:
                report = RunReport()
                run_policy = replace(policy, report=report)
                stack.enter_context(execution_scope(run_policy))
                if run_policy.journal is not None:
                    stack.enter_context(
                        run_policy.journal.namespace(self.experiment_id)
                    )
            result = self.runner(**kwargs)
        timings = dict(result.timings)
        timings["total"] = sp.duration
        updates: "dict[str, Any]" = {"timings": timings}
        if report is not None and (report.failures or report.events):
            updates["faults"] = report.to_dict()
        return replace(result, **updates)


_REGISTRY: "dict[str, ExperimentSpec]" = {}


def register(experiment_id: str, *, title: str, config: ConfigFactory):
    """Register the decorated driver function under ``experiment_id``.

    Raises if the id is registered twice — each DESIGN.md experiment has
    exactly one driver.
    """

    def decorate(fn: Callable[..., ExperimentResult]):
        exp_id = experiment_id.upper()
        if exp_id in _REGISTRY:
            raise ValueError(
                f"experiment {exp_id} is already registered "
                f"(by {_REGISTRY[exp_id].runner.__module__})"
            )
        params = inspect.signature(fn).parameters
        _REGISTRY[exp_id] = ExperimentSpec(
            experiment_id=exp_id,
            title=title,
            config_factory=config,
            runner=fn,
            supports_jobs="jobs" in params,
            supports_channel="channel" in params,
        )
        return fn

    return decorate


def _load_all() -> None:
    """Import every driver module (they self-register on import)."""
    import repro.experiments  # noqa: F401


def _sort_key(exp_id: str):
    tail = exp_id[1:]
    return (0, int(tail)) if tail.isdigit() else (1, exp_id)


def all_specs() -> "dict[str, ExperimentSpec]":
    """All registered experiments, ordered by numeric id (E1, E2, ...)."""
    _load_all()
    return {k: _REGISTRY[k] for k in sorted(_REGISTRY, key=_sort_key)}


def get_spec(experiment_id: str) -> ExperimentSpec:
    """Look up one experiment by id (case-insensitive)."""
    _load_all()
    exp_id = experiment_id.upper()
    if exp_id not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY, key=_sort_key))
        raise KeyError(f"unknown experiment id {experiment_id!r}; choose from {known}")
    return _REGISTRY[exp_id]
