"""Run-state doctor — audit (and repair) a runs root after an incident.

A messy multi-host incident — dispatch workers OOM-killed, a dispatcher
host rebooted, a disk filled mid-checkpoint — leaves debris under the
runs root: leases whose worker will never heartbeat again, claimed
queue files no worker owns, torn journal records, stage directories
holding indices the current config cannot produce, and runs whose
``status.json`` never said "complete".  None of that debris is
individually fatal (every reader tolerates it), but it hides real
state: ``repro doctor <runs-root>`` makes it visible, and with
``--repair`` puts it right.

Findings (each a ``{kind, path, detail, repaired}`` record):

``stale-lease``
    A ``lease-*.json`` whose mtime (the worker's heartbeat) is older
    than ``--stale-after`` seconds.  Repair: delete the lease — the
    worker is dead, and a fresh claim must not inherit its heartbeat.
``orphaned-claim``
    A claimed work unit with no live lease: its worker died between
    claiming and heartbeating.  Repair: rename the unit back into
    ``todo/`` so a live worker (or a future dispatcher) can steal it.
``corrupt-record``
    A journal ``task-*.json`` that fails parsing or its SHA-256
    checksum (a torn write).  Repair: quarantine the file into the run
    directory's ``corrupt/`` folder — the task simply re-runs on
    resume, and the evidence is preserved for forensics.
``index-out-of-range``
    A record whose index exceeds the stage's task count recorded in
    ``status.json`` — the journal was written by a different
    config/scale/seed.  Repair: quarantine into ``corrupt/``.
``incomplete-run``
    A run directory with no ``status.json`` (it never finished) or one
    marked incomplete.  Not repairable by the doctor — resume it with
    ``repro run ... --resume <run-id>``.

Repairs are counted on the ``doctor.repairs`` metric.  The report is a
plain JSON document, so fleet tooling can diff it between sweeps.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any

from repro.obs import metrics as _metrics

__all__ = ["diagnose", "iter_jsonl", "read_json"]

#: Default seconds of heartbeat silence before a lease counts as stale —
#: generous next to the dispatcher's 10 s lease timeout, so the doctor
#: never races a live run.
DEFAULT_STALE_AFTER = 60.0

_RECORD_FORMAT = "repro-journal-record"


# -- torn-tolerant readers ---------------------------------------------------
# The doctor audits runs roots that may be *live*: a writer can be
# mid-rename, mid-append, or dead mid-line at any moment.  These two
# readers encode the tolerance policy once — unreadable JSON reads as
# "absent", a torn JSONL tail reads as "not yet written" — and are
# shared by the live views (``repro top`` / ``repro tail``), which watch
# exactly the same in-flight state.


def read_json(path) -> "dict[str, Any] | None":
    """A JSON document, or ``None`` when missing, torn, or garbled."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return doc if isinstance(doc, dict) else None


def iter_jsonl(path) -> "list[dict[str, Any]]":
    """Whole records of a JSONL file; torn or garbled lines (a writer
    died mid-append, or is appending right now) are silently skipped."""
    records: "list[dict[str, Any]]" = []
    try:
        text = Path(path).read_text(encoding="utf-8", errors="replace")
    except OSError:
        return records
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except ValueError:
            continue
        if isinstance(doc, dict):
            records.append(doc)
    return records


def _finding(kind: str, path: Path, detail: str) -> "dict[str, Any]":
    return {"kind": kind, "path": str(path), "detail": detail, "repaired": False}


def _quarantine_record(run_dir: Path, path: Path) -> bool:
    """Move a bad record into ``<run_dir>/corrupt/`` (structure kept)."""
    rel = path.relative_to(run_dir)
    target = run_dir / "corrupt" / rel
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        os.replace(path, target)
    except OSError:
        return False
    return True


def _audit_records(
    run_dir: Path, stage_counts: "dict[str, int]", repair: bool
) -> "list[dict[str, Any]]":
    findings: "list[dict[str, Any]]" = []
    stages_dir = run_dir / "stages"
    if not stages_dir.is_dir():
        return findings
    for path in sorted(stages_dir.rglob("task-*.json")):
        problem = None
        doc: "dict[str, Any]" = {}
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
            if doc.get("format") != _RECORD_FORMAT:
                raise ValueError("not a journal record")
            payload = base64.b64decode(doc["pickle_b64"])
            if hashlib.sha256(payload).hexdigest() != doc["sha256"]:
                raise ValueError("checksum mismatch")
            int(doc["index"])
        except (OSError, ValueError, KeyError) as exc:
            problem = _finding(
                "corrupt-record", path, f"torn or invalid record ({exc})"
            )
        if problem is None:
            stage = str(doc.get("stage", ""))
            expected = stage_counts.get(stage)
            index = int(doc["index"])
            if expected is not None and not (0 <= index < expected):
                problem = _finding(
                    "index-out-of-range",
                    path,
                    f"index {index} outside stage {stage!r} "
                    f"({expected} task(s)) — written by another config",
                )
        if problem is None:
            continue
        if repair:
            problem["repaired"] = _quarantine_record(run_dir, path)
        findings.append(problem)
    return findings


def _audit_run(run_dir: Path, repair: bool) -> "list[dict[str, Any]]":
    findings: "list[dict[str, Any]]" = []
    status_path = run_dir / "status.json"
    stage_counts: "dict[str, int]" = {}
    if not status_path.is_file():
        findings.append(
            _finding(
                "incomplete-run",
                run_dir,
                "no status.json — the run never finished; resume it with "
                f"--resume {run_dir.name}",
            )
        )
    else:
        try:
            status = json.loads(status_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            status = {}
            findings.append(
                _finding("corrupt-record", status_path, f"unreadable status.json ({exc})")
            )
        stage_counts = {
            str(k): int(v)
            for k, v in (status.get("journal") or {}).get("stages", {}).items()
        }
        if status and not status.get("complete", True):
            findings.append(
                _finding(
                    "incomplete-run",
                    run_dir,
                    "status.json marks the run incomplete; resume it with "
                    f"--resume {run_dir.name}",
                )
            )
    findings.extend(_audit_records(run_dir, stage_counts, repair))
    return findings


def _audit_queue(
    qdir: Path, stale_after: float, repair: bool
) -> "list[dict[str, Any]]":
    findings: "list[dict[str, Any]]" = []
    now = time.time()
    stale: "set[int]" = set()
    leases_dir = qdir / "leases"
    if leases_dir.is_dir():
        for lease in sorted(leases_dir.glob("lease-*.json")):
            try:
                age = now - lease.stat().st_mtime
                index = int(lease.stem.split("-", 1)[1])
            except (OSError, ValueError):
                continue
            if age <= stale_after:
                continue
            stale.add(index)
            finding = _finding(
                "stale-lease",
                lease,
                f"no heartbeat for {age:.0f}s (> {stale_after:g}s) — "
                "its worker is gone",
            )
            if repair:
                try:
                    lease.unlink()
                    finding["repaired"] = True
                except OSError:
                    pass
            findings.append(finding)
    claimed_dir = qdir / "claimed"
    if claimed_dir.is_dir():
        for claim in sorted(claimed_dir.glob("task-*.pkl")):
            try:
                head = int(claim.name.split("-")[1])
            except (ValueError, IndexError):
                continue
            lease = leases_dir / f"lease-{head:06d}.json"
            if lease.is_file() and head not in stale:
                continue  # a live worker holds it
            finding = _finding(
                "orphaned-claim",
                claim,
                f"claimed work unit {head} has no live lease — its worker "
                "died between claim and heartbeat",
            )
            if repair:
                try:
                    os.replace(claim, qdir / "todo" / claim.name)
                    finding["repaired"] = True
                except OSError:
                    pass
            findings.append(finding)
    return findings


def diagnose(
    runs_root,
    *,
    repair: bool = False,
    stale_after: float = DEFAULT_STALE_AFTER,
) -> "dict[str, Any]":
    """Audit every run directory and dispatch queue under ``runs_root``.

    Returns the machine-readable report: scanned-entity counts, the
    findings (with ``repaired`` flags when ``repair=True``), and the
    repair total (also added to the ``doctor.repairs`` metric).
    """
    root = Path(runs_root)
    findings: "list[dict[str, Any]]" = []
    runs = 0
    queues = 0
    if root.is_dir():
        for run_dir in sorted(p for p in root.iterdir() if p.is_dir()):
            if run_dir.name == "queues":
                continue
            if not (run_dir / "meta.json").is_file():
                continue
            runs += 1
            findings.extend(_audit_run(run_dir, repair))
        queues_root = root / "queues"
        if queues_root.is_dir():
            for qdir in sorted(p for p in queues_root.iterdir() if p.is_dir()):
                queues += 1
                findings.extend(_audit_queue(qdir, stale_after, repair))
    repairs = sum(1 for f in findings if f["repaired"])
    if repairs:
        _metrics.add("doctor.repairs", repairs)
    return {
        "runs_root": str(root),
        "runs": runs,
        "queues": queues,
        "findings": findings,
        "repairs": repairs,
        "unrepaired": sum(1 for f in findings if not f["repaired"]),
    }
