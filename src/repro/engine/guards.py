"""Numerical guards — validate kernel outputs before they hit aggregates.

An extreme ``α``/``β`` configuration (or a genuine kernel bug) can push
the Theorem-1 factors, Monte-Carlo SINR samples, or regret rewards into
NaN/Inf territory; un-checked, one poisoned link silently contaminates
every mean downstream and a whole sweep is wasted.  The guard layer
sits at the kernel boundaries — :class:`~repro.fading.success.Theorem1Kernel`,
:meth:`~repro.channel.base.Channel.realize_batch`'s SINR path, the
Monte-Carlo probability estimators, and the regret kernels — and checks
each output for NaN/Inf, negative probabilities, and ``Q_i > 1``.

Three strictness levels (process-wide, shipped to pool workers by the
executor's initializer):

* ``"off"``   — checks compile to a single mode comparison (default for
  library use; the hot kernels stay untouched);
* ``"warn"``  — violations emit a :class:`GuardWarning` naming the call
  site, offending link indices, and parameters, then let the value
  through (the CLI default: visible, never fatal);
* ``"strict"`` — violations raise :class:`GuardViolation` inside the
  task, which the executor captures as a structured
  :class:`~repro.engine.faults.TaskFailure` under ``on_error=skip/retry``.

Guard checks consume no randomness and never modify values, so enabling
them cannot change any experiment's numbers — only whether bad numbers
travel.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager

import numpy as np

from repro.obs import metrics as _metrics

__all__ = [
    "GUARD_MODES",
    "GuardViolation",
    "GuardWarning",
    "check_finite",
    "check_probabilities",
    "enabled",
    "get_guard_mode",
    "guard_scope",
    "set_guard_mode",
]

GUARD_MODES = ("off", "warn", "strict")

_MODE = "off"


class GuardViolation(ValueError):
    """A kernel output failed validation under strict guards."""


class GuardWarning(UserWarning):
    """A kernel output failed validation under warn-level guards."""


def get_guard_mode() -> str:
    return _MODE


def set_guard_mode(mode: str) -> str:
    """Set the process-wide guard mode; returns the previous mode."""
    global _MODE
    if mode not in GUARD_MODES:
        raise ValueError(f"guard mode must be one of {GUARD_MODES}, got {mode!r}")
    previous = _MODE
    _MODE = mode
    return previous


@contextmanager
def guard_scope(mode: str):
    """Temporarily run with the given guard mode."""
    previous = set_guard_mode(mode)
    try:
        yield
    finally:
        set_guard_mode(previous)


def enabled() -> bool:
    return _MODE != "off"


def _describe(site: str, arr: np.ndarray, bad: np.ndarray, problem: str, info) -> str:
    """One line naming the site, offending link indices, values, params."""
    where = np.argwhere(bad)
    links = sorted({int(pos[-1]) for pos in where[:64]})
    sample = np.asarray(arr)[bad][:4]
    values = ", ".join(f"{v!r}" for v in sample.tolist())
    params = "".join(f", {k}={v}" for k, v in info.items())
    return (
        f"numerical guard tripped at {site!r}: {int(bad.sum())} {problem} "
        f"value(s) at link(s) {links[:16]} (e.g. {values}{params})"
    )


def _violate(site: str, message: str) -> None:
    _metrics.add("guards.violations." + site)
    if _MODE == "strict":
        raise GuardViolation(message)
    warnings.warn(message, GuardWarning, stacklevel=3)


def check_finite(arr: np.ndarray, site: str, allow_inf: bool = False, **info) -> np.ndarray:
    """Assert every entry is finite (no NaN/Inf); returns ``arr``.

    ``allow_inf=True`` flags only NaN — for quantities like SINR where
    ``+inf`` is a legitimate value (no interference, zero noise).
    """
    if _MODE == "off":
        return arr
    a = np.asarray(arr)
    bad = np.isnan(a) if allow_inf else ~np.isfinite(a)
    if bad.any():
        _violate(site, _describe(site, a, bad, "NaN" if allow_inf else "non-finite", info))
    return arr


def check_probabilities(arr: np.ndarray, site: str, tol: float = 1e-9, **info) -> np.ndarray:
    """Assert every entry is a probability: finite and in ``[0, 1]``.

    ``tol`` absorbs float round-off at the interval edges.  Returns
    ``arr`` unchanged.
    """
    if _MODE == "off":
        return arr
    a = np.asarray(arr)
    finite = np.isfinite(a)
    bad = ~finite | (a < -tol) | (a > 1.0 + tol)
    if bad.any():
        nonfinite = int((~finite).sum())
        problem = "non-finite" if nonfinite else "out-of-[0,1] probability"
        _violate(site, _describe(site, a, bad, problem, info))
    return arr
