"""Deterministic fault injection — crashes, hangs, and NaN payloads.

Recovery code that is never executed is broken code; this module makes
every recovery path of the engine exercisable on demand.  A
:class:`ChaosPlan` names faults by *where they strike*:

* ``kind="raise"`` — the task function raises :class:`ChaosError`;
* ``kind="exit"`` — the worker process dies hard (``os._exit``),
  breaking the process pool (in the main process this downgrades to a
  :class:`ChaosError` so a serial fallback never kills the run itself);
* ``kind="hang"`` — the task sleeps past any reasonable wall-clock
  budget, exercising the executor's timeout path;
* ``kind="worker-lost"`` — the process dies hard *while holding a task
  lease*: in a dispatch worker (a process that called
  :func:`declare_worker_process`, i.e. ``repro worker``) or a pool
  worker this is ``os._exit``, leaving the claimed task's lease to go
  stale so the dispatcher's re-issue path is exercised; in a main
  process it downgrades to a :class:`ChaosError`;
* ``kind="nan"`` — a numerical kernel's output array is corrupted with
  NaNs at chosen link positions, exercising the
  :mod:`~repro.engine.guards` layer;
* ``kind="enospc"`` — a best-effort disk write (journal checkpoint,
  status file, dispatch queue protocol — the sites in
  :data:`FAULT_SITES`) raises ``OSError(ENOSPC)``, exercising the
  resource-exhaustion degradation ladder.

Faults match on the executor stage name and task index (either may be
``None`` = any), and are **once-only by default**: the first attempt
that reaches the fault claims a marker file in ``state_dir`` (atomic
``O_CREAT | O_EXCL``, so the claim is race-free across worker
processes) and later attempts run clean — exactly the transient-fault
shape retry/backoff is built for.  Set ``once=False`` for a persistent
fault.

Beyond hand-placed faults, a plan may carry a seeded
:class:`RandomSchedule` — the soak harness's fault generator: each
``(stage, index)`` pair deterministically draws whether its *first*
attempt raises, hangs, dies as a worker, or hits an injected ENOSPC
(probabilities per fault, seeded, so two runs of the same schedule
inject identical faults).  Schedule faults are always once-only, which
is what lets a soak run assert byte-identity with a clean serial run:
every injected fault is recoverable by design.

Plans are plain JSON: the CLI and pool workers load them from the
``REPRO_CHAOS`` environment variable (a path to a plan file), and the
executor re-ships the installed plan through its pool initializer, so
injection behaves identically on fork and spawn start methods.

No fault fires unless a plan is installed; the inactive fast path is a
single module-level ``None`` check.
"""

from __future__ import annotations

import errno
import json
import multiprocessing
import os
import random
import time
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any

import numpy as np

from repro.obs import events as _events
from repro.obs import metrics as _metrics

__all__ = [
    "ChaosError",
    "ChaosPlan",
    "ChaosSpecError",
    "FAULT_KINDS",
    "FAULT_SITES",
    "Fault",
    "RandomSchedule",
    "active",
    "corrupt",
    "current_plan",
    "declare_worker_process",
    "install",
    "install_from_env",
    "install_from_file",
    "is_worker_process",
    "on_task_start",
    "on_write",
    "set_current_task",
    "uninstall",
]

#: Environment variable naming a JSON chaos-plan file.
CHAOS_ENV = "REPRO_CHAOS"

FAULT_KINDS = ("raise", "exit", "hang", "nan", "worker-lost", "enospc")

#: Site names a fault's ``site`` may target, for error messages: the
#: guarded kernel outputs (``nan`` faults) and the best-effort write
#: sites (``enospc`` faults).
FAULT_SITES = (
    # numerical-guard sites (kind="nan")
    "theorem1.conditional",
    "theorem1.conditional_binary",
    "theorem1.conditional_batch",
    "theorem1.conditional_at",
    # best-effort write sites (kind="enospc")
    "journal.record",
    "journal.status",
    "journal.failures",
    "journal.crashes",
    "journal.lease",
    "dispatch.queue",
    "dispatch.todo",
    "dispatch.result",
)


class ChaosError(RuntimeError):
    """The exception an injected ``raise`` (or downgraded ``exit``) fault throws."""


class ChaosSpecError(ValueError):
    """A ``REPRO_CHAOS`` plan file does not parse into a valid plan."""


@dataclass(frozen=True)
class Fault:
    """One injected fault.

    ``stage``/``index`` select the executor task (``None`` = any);
    ``site``/``links`` select the kernel call site for ``nan`` faults.
    """

    kind: str
    stage: "str | None" = None
    index: "int | None" = None
    site: "str | None" = None
    links: "tuple[int, ...]" = ()
    once: bool = True
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {', '.join(FAULT_KINDS)}, "
                f"got {self.kind!r}"
            )
        if self.kind == "nan" and not self.site:
            raise ValueError(
                "nan faults need a site (a kernel call site name such as "
                + " or ".join(repr(s) for s in FAULT_SITES if s.startswith("theorem1"))
                + ")"
            )

    def matches_task(self, stage: str, index: int) -> bool:
        return (self.stage is None or self.stage == stage) and (
            self.index is None or self.index == index
        )

    def to_dict(self) -> "dict[str, Any]":
        return {
            "kind": self.kind,
            "stage": self.stage,
            "index": self.index,
            "site": self.site,
            "links": list(self.links),
            "once": self.once,
            "hang_seconds": self.hang_seconds,
        }

    @classmethod
    def from_dict(cls, doc: "dict[str, Any]") -> "Fault":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(
                f"unknown fault field(s) {', '.join(map(repr, unknown))}; "
                f"valid fields: {', '.join(sorted(known))}"
            )
        if "kind" not in doc:
            raise ValueError(
                f"fault needs a 'kind' (one of {', '.join(FAULT_KINDS)})"
            )
        return cls(
            kind=doc["kind"],
            stage=doc.get("stage"),
            index=doc.get("index"),
            site=doc.get("site"),
            links=tuple(int(x) for x in doc.get("links", ())),
            once=bool(doc.get("once", True)),
            hang_seconds=float(doc.get("hang_seconds", 3600.0)),
        )


@dataclass(frozen=True)
class RandomSchedule:
    """A seeded probabilistic fault schedule — the soak harness's engine.

    Each executor task ``(stage, index)`` deterministically draws one
    uniform variate from ``seed`` and fires at most one fault on its
    *first* attempt: ``raise`` with probability ``p_raise``, ``hang``
    with ``p_hang``, ``worker-lost`` with ``p_worker_lost``, ``exit``
    with ``p_exit`` (cumulative, in that order).  Independently, the
    task's journal-checkpoint write fails with ``OSError(ENOSPC)`` with
    probability ``p_enospc``.  Every schedule fault is once-only (a
    marker in the plan's ``state_dir``), so a run under
    ``on_error="retry"`` recovers from all of them and stays
    byte-identical to a clean run — the soak invariant.
    """

    seed: int
    p_raise: float = 0.0
    p_hang: float = 0.0
    p_worker_lost: float = 0.0
    p_exit: float = 0.0
    p_enospc: float = 0.0
    stage: "str | None" = None
    hang_seconds: float = 2.0

    def __post_init__(self) -> None:
        probs = (self.p_raise, self.p_hang, self.p_worker_lost, self.p_exit)
        if any(p < 0.0 for p in probs + (self.p_enospc,)):
            raise ValueError("schedule probabilities must be non-negative")
        if sum(probs) > 1.0:
            raise ValueError(
                "p_raise + p_hang + p_worker_lost + p_exit must not exceed 1"
            )
        if self.p_enospc > 1.0:
            raise ValueError("p_enospc must not exceed 1")

    def task_fault(self, stage: str, index: int) -> "str | None":
        """The fault kind this schedule injects into a task, if any.

        Pure function of ``(seed, stage, index)`` — string seeding uses
        a stable hash, so the draw is identical in every process and on
        every run of the same schedule.
        """
        if self.stage is not None and self.stage != stage:
            return None
        u = random.Random(f"{self.seed}:task:{stage}:{index}").random()
        for kind, p in (
            ("raise", self.p_raise),
            ("hang", self.p_hang),
            ("worker-lost", self.p_worker_lost),
            ("exit", self.p_exit),
        ):
            if u < p:
                return kind
            u -= p
        return None

    def write_fault(self, stage: str, index: int) -> bool:
        """Whether this task's checkpoint write draws an injected ENOSPC."""
        if self.p_enospc <= 0.0:
            return False
        if self.stage is not None and self.stage != stage:
            return False
        u = random.Random(f"{self.seed}:write:{stage}:{index}").random()
        return u < self.p_enospc

    def to_dict(self) -> "dict[str, Any]":
        return {
            "seed": self.seed,
            "p_raise": self.p_raise,
            "p_hang": self.p_hang,
            "p_worker_lost": self.p_worker_lost,
            "p_exit": self.p_exit,
            "p_enospc": self.p_enospc,
            "stage": self.stage,
            "hang_seconds": self.hang_seconds,
        }

    @classmethod
    def from_dict(cls, doc: "dict[str, Any]") -> "RandomSchedule":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(
                f"unknown schedule field(s) {', '.join(map(repr, unknown))}; "
                f"valid fields: {', '.join(sorted(known))}"
            )
        if "seed" not in doc:
            raise ValueError("a random schedule needs a 'seed'")
        return cls(
            seed=int(doc["seed"]),
            p_raise=float(doc.get("p_raise", 0.0)),
            p_hang=float(doc.get("p_hang", 0.0)),
            p_worker_lost=float(doc.get("p_worker_lost", 0.0)),
            p_exit=float(doc.get("p_exit", 0.0)),
            p_enospc=float(doc.get("p_enospc", 0.0)),
            stage=doc.get("stage"),
            hang_seconds=float(doc.get("hang_seconds", 2.0)),
        )


@dataclass(frozen=True)
class ChaosPlan:
    """A set of faults plus the marker directory for once-only claims."""

    state_dir: str
    faults: "tuple[Fault, ...]" = field(default_factory=tuple)
    #: Optional seeded probabilistic schedule, layered on top of the
    #: hand-placed faults (the soak harness's knob).
    schedule: "RandomSchedule | None" = None

    def to_dict(self) -> "dict[str, Any]":
        doc: "dict[str, Any]" = {
            "state_dir": self.state_dir,
            "faults": [f.to_dict() for f in self.faults],
        }
        if self.schedule is not None:
            doc["schedule"] = self.schedule.to_dict()
        return doc

    @classmethod
    def from_dict(cls, doc: "dict[str, Any]") -> "ChaosPlan":
        if "state_dir" not in doc:
            raise ValueError(
                "a chaos plan needs a 'state_dir' (the marker directory "
                "for once-only fault claims)"
            )
        sched = doc.get("schedule")
        return cls(
            state_dir=str(doc["state_dir"]),
            faults=tuple(Fault.from_dict(f) for f in doc.get("faults", ())),
            schedule=None if sched is None else RandomSchedule.from_dict(sched),
        )


_PLAN: "ChaosPlan | None" = None
#: The (stage, index) of the task currently executing in this process.
_CURRENT_TASK: "tuple[str, int] | None" = None
#: Whether this process declared itself a dispatch worker (``repro
#: worker``) — the target population of ``worker-lost`` faults.
_WORKER_PROCESS = False


def declare_worker_process(flag: bool = True) -> None:
    """Mark this process as a dispatch worker (``worker-lost`` faults
    may kill it hard instead of downgrading to an exception)."""
    global _WORKER_PROCESS
    _WORKER_PROCESS = bool(flag)


def is_worker_process() -> bool:
    return _WORKER_PROCESS


def install(plan: "ChaosPlan | None") -> None:
    """Install ``plan`` process-wide (``None`` uninstalls)."""
    global _PLAN
    if plan is not None:
        Path(plan.state_dir).mkdir(parents=True, exist_ok=True)
    _PLAN = plan


def uninstall() -> None:
    install(None)


def active() -> bool:
    return _PLAN is not None


def current_plan() -> "ChaosPlan | None":
    return _PLAN


def install_from_file(path) -> ChaosPlan:
    """Load and install a JSON plan file; returns the plan.

    A malformed plan raises :class:`ChaosSpecError` naming the file,
    the problem, and the valid fault kinds and site names — mirroring
    the channel-spec error style, so a typo in a ``REPRO_CHAOS`` plan
    is a one-line fix instead of a bare traceback.
    """
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ChaosSpecError(f"cannot read chaos plan {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ChaosSpecError(
            f"chaos plan {path} is not valid JSON: {exc}"
        ) from exc
    try:
        plan = ChaosPlan.from_dict(doc)
    except (ValueError, TypeError, KeyError) as exc:
        raise ChaosSpecError(
            f"bad chaos plan {path}: {exc}; "
            f"valid fault kinds: {', '.join(FAULT_KINDS)}; "
            f"valid sites: {', '.join(FAULT_SITES)}"
        ) from exc
    install(plan)
    return plan


def install_from_env() -> "ChaosPlan | None":
    """Install the plan named by ``$REPRO_CHAOS``, if any."""
    path = os.environ.get(CHAOS_ENV)
    if not path:
        return None
    return install_from_file(path)


def _claim(plan: ChaosPlan, marker: str) -> bool:
    """Atomically claim a once-only marker; True exactly once per marker."""
    target = Path(plan.state_dir) / marker
    try:
        fd = os.open(target, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _should_fire(plan: ChaosPlan, fault: Fault, fault_pos: int, key: str) -> bool:
    if not fault.once:
        return True
    return _claim(plan, f"fault-{fault_pos}-{key}")


def set_current_task(stage: "str | None", index: "int | None") -> None:
    """Record which executor task this process is running (``None`` clears)."""
    global _CURRENT_TASK
    _CURRENT_TASK = None if stage is None else (stage, int(index))


def _fire_task_fault(kind: str, stage: str, index: int,
                     hang_seconds: float) -> None:
    """Execute one task-level fault kind in the current process."""
    _metrics.add("chaos.faults_fired")
    _events.emit("chaos-fault", fault=kind, stage=stage, index=index)
    if kind == "raise":
        raise ChaosError(f"injected crash in task {index} (stage {stage!r})")
    if kind == "hang":
        time.sleep(hang_seconds)
        return
    if kind == "exit":
        if multiprocessing.parent_process() is None:
            # Hard-killing the main process would take the harness
            # down with the fault; degrade to an ordinary crash.
            raise ChaosError(
                f"injected worker death in task {index} (stage {stage!r}) "
                "downgraded to an exception in the main process"
            )
        os._exit(43)
    if kind == "worker-lost":
        # Kill any kind of worker — a dispatch worker (its own
        # top-level process, so ``exit`` would not reach it) dies
        # holding its task lease, which is exactly the stale-lease
        # shape the dispatcher's re-issue path recovers from.
        if _WORKER_PROCESS or multiprocessing.parent_process() is not None:
            os._exit(44)
        raise ChaosError(
            f"injected worker loss in task {index} (stage {stage!r}) "
            "downgraded to an exception in the main process"
        )


def on_task_start(stage: str, index: int) -> None:
    """Fire any crash/hang fault aimed at this task.

    Called by the executor at the top of every task execution (every
    attempt), in the process that runs the task.  Hand-placed faults
    fire first, then the plan's :class:`RandomSchedule` (always
    once-only) draws for the task.
    """
    plan = _PLAN
    if plan is None:
        return
    for pos, fault in enumerate(plan.faults):
        if fault.kind in ("nan", "enospc") or not fault.matches_task(stage, index):
            continue
        if not _should_fire(plan, fault, pos, f"{fault.kind}-{stage}-{index}"):
            continue
        _fire_task_fault(fault.kind, stage, index, fault.hang_seconds)
        return
    sched = plan.schedule
    if sched is None:
        return
    kind = sched.task_fault(stage, index)
    if kind is None:
        return
    if not _claim(plan, f"sched-{kind}-{stage}-{index}"):
        return
    _fire_task_fault(kind, stage, index, sched.hang_seconds)


def on_write(site: str, stage: "str | None" = None,
             index: "int | None" = None) -> None:
    """Fire any ``enospc`` fault aimed at a best-effort write site.

    Called by the journal and the dispatch queue protocol immediately
    before a write, with the site name (one of :data:`FAULT_SITES`) and
    — where the write belongs to one task — the stage and index.
    Raises ``OSError(ENOSPC)`` when a fault fires, which the caller's
    degradation path then has to absorb; a no-op without a plan.
    """
    plan = _PLAN
    if plan is None:
        return
    for pos, fault in enumerate(plan.faults):
        if fault.kind != "enospc":
            continue
        if fault.site is not None and fault.site != site:
            continue
        if fault.stage is not None or fault.index is not None:
            if stage is None or index is None:
                continue
            if not fault.matches_task(stage, index):
                continue
        if not _should_fire(plan, fault, pos, f"enospc-{site}-{stage}-{index}"):
            continue
        _metrics.add("chaos.faults_fired")
        _events.emit("chaos-fault", fault="enospc", site=site, stage=stage,
                     index=index)
        raise OSError(
            errno.ENOSPC, f"chaos: injected ENOSPC at {site} "
            f"(stage {stage!r}, index {index})"
        )
    sched = plan.schedule
    if sched is None or stage is None or index is None:
        return
    if site != "journal.record" or not sched.write_fault(stage, index):
        return
    if not _claim(plan, f"sched-enospc-{stage}-{index}"):
        return
    _metrics.add("chaos.faults_fired")
    _events.emit("chaos-fault", fault="enospc", site=site, stage=stage, index=index)
    raise OSError(
        errno.ENOSPC,
        f"chaos: scheduled ENOSPC at {site} (stage {stage!r}, index {index})",
    )


def corrupt(site: str, arr: np.ndarray) -> np.ndarray:
    """Apply any matching ``nan`` fault to a kernel output array.

    Returns ``arr`` untouched (same object) when no fault matches; a
    corrupted copy otherwise.  ``links`` index the array's last axis.
    """
    plan = _PLAN
    if plan is None:
        return arr
    for pos, fault in enumerate(plan.faults):
        if fault.kind != "nan" or fault.site != site:
            continue
        if _CURRENT_TASK is not None and not fault.matches_task(*_CURRENT_TASK):
            continue
        if fault.stage is not None and _CURRENT_TASK is None:
            continue
        key = f"nan-{site}" if _CURRENT_TASK is None else f"nan-{site}-{_CURRENT_TASK[0]}-{_CURRENT_TASK[1]}"
        if not _should_fire(plan, fault, pos, key):
            continue
        _metrics.add("chaos.faults_fired")
        out = np.array(arr, dtype=np.float64, copy=True)
        links = fault.links if fault.links else (0,)
        out[..., list(links)] = np.nan
        return out
    return arr
